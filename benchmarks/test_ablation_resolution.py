"""Ablation: raster resolution vs similarity quality.

Section 5.1: "the data space ... contains objects represented as voxel
approximations using a raster resolution of r = 15 [cover models] ...
r = 30 [histogram models].  These values were optimized to the quality
of the evaluation results."  This sweep re-runs that tuning for the
vector set model: best-cut ARI over r, on the Car dataset.
"""

from repro.clustering.optics import distance_rows_from_matrix, optics
from repro.clustering.quality import best_cut_quality
from repro.evaluation.experiments import (
    distance_matrix_for,
    extract_features,
    prepare_dataset,
)
from repro.evaluation.report import format_table
from repro.features.vector_set_model import VectorSetModel

RESOLUTIONS = (9, 12, 15, 21, 30)


def test_resolution_sweep(benchmark):
    def sweep():
        rows = []
        for resolution in RESOLUTIONS:
            bundle = prepare_dataset("car", resolution=resolution)
            features = extract_features(bundle, VectorSetModel(k=7))
            matrix, _ = distance_matrix_for(
                bundle, features, "matching", cache_tag=f"res{resolution}_car_k7"
            )
            ordering = optics(
                bundle.n, distance_rows_from_matrix(matrix), min_pts=5
            )
            ari, _ = best_cut_quality(ordering, bundle.labels)
            rows.append([resolution, ari])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["resolution r", "best ARI"],
            rows,
            title="Ablation — raster resolution vs quality (vector set, Car)",
        )
    )
    by_r = {int(r): ari for r, ari in rows}
    # The paper's operating point r = 15 is competitive: within 0.1 of
    # the best resolution in the sweep, and clearly better than the
    # coarsest raster.
    best = max(by_r.values())
    assert by_r[15] >= best - 0.1
    assert by_r[15] >= by_r[9] - 0.02
"""Micro-benchmarks of the performance-critical primitives.

These are classic pytest-benchmark timings (multiple rounds) of the
operations whose complexity the paper argues about:

* the O(k^3) Kuhn–Munkres matching at the paper's k = 7,
* one minimal-matching distance on extracted cover sets,
* one greedy cover extraction at r = 15,
* the extended-centroid filter distance (the thing that replaces a
  matching in the filter step — it must be orders of magnitude cheaper).
"""

import numpy as np
import pytest

from repro.core.centroid import centroid_lower_bound, extended_centroid
from repro.core.matching import hungarian
from repro.core.min_matching import min_matching_distance
from repro.features.cover_sequence import extract_cover_sequence
from repro.geometry.sdf import Box, Torus
from repro.voxel.voxelize import voxelize_solid


@pytest.fixture(scope="module")
def cover_sets():
    rng = np.random.default_rng(0)
    return [rng.normal(size=(7, 6)) for _ in range(2)]


def test_bench_hungarian_k7(benchmark):
    rng = np.random.default_rng(1)
    matrix = rng.normal(size=(7, 7))
    benchmark(hungarian, matrix)


def test_bench_min_matching_distance(benchmark, cover_sets):
    benchmark(min_matching_distance, cover_sets[0], cover_sets[1])


def test_bench_centroid_filter_distance(benchmark, cover_sets):
    c_x = extended_centroid(cover_sets[0], 7)
    c_y = extended_centroid(cover_sets[1], 7)
    benchmark(centroid_lower_bound, c_x, c_y, 7)


def test_bench_cover_extraction_r15(benchmark):
    grid = voxelize_solid(
        Torus(major_radius=1.0, minor_radius=0.35) | Box(size=(0.5, 0.5, 1.2)),
        resolution=15,
    )
    benchmark(extract_cover_sequence, grid, 7)


def test_bench_voxelize_solid_r15(benchmark):
    solid = Torus(major_radius=1.0, minor_radius=0.35)
    benchmark(voxelize_solid, solid, 15)


def test_filter_distance_is_orders_cheaper(benchmark, cover_sets):
    """The reason the filter step pays off: one centroid comparison is
    far cheaper than one matching (asserted at 20x here, typically
    >100x)."""
    import time

    c_x = extended_centroid(cover_sets[0], 7)
    c_y = extended_centroid(cover_sets[1], 7)

    def measure():
        start = time.perf_counter()
        for _ in range(200):
            min_matching_distance(cover_sets[0], cover_sets[1])
        matching_time = time.perf_counter() - start
        start = time.perf_counter()
        for _ in range(200):
            centroid_lower_bound(c_x, c_y, 7)
        filter_time = time.perf_counter() - start
        return matching_time, filter_time

    matching_time, filter_time = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(f"\nmatching: {matching_time / 200 * 1e6:.1f}us, "
          f"filter: {filter_time / 200 * 1e6:.1f}us")
    assert matching_time > 20 * filter_time

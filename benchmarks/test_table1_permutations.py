"""Table 1: percentage of proper permutations during an OPTICS run.

Paper (Car dataset):

    covers | permutations
    -------+-------------
       3   |    68.2 %
       5   |    95.1 %
       7   |    99.0 %
       9   |    99.4 %

Expected shape on the synthetic Car dataset: the rate *increases
monotonically* with the cover count and the k=3 rate already exceeds
50 % ("in most of all distance calculations ... at least one permutation
[was] necessary").
"""

from repro.evaluation.report import format_table
from repro.evaluation.table1 import run_table1

PAPER_RATES = {3: 68.2, 5: 95.1, 7: 99.0, 9: 99.4}


def test_table1_permutation_rates(benchmark):
    rows = benchmark.pedantic(run_table1, rounds=1, iterations=1)

    print()
    print(
        format_table(
            ["covers", "measured", "paper", "mean set size"],
            [
                [
                    row.covers,
                    f"{100 * row.permutation_rate:.1f}%",
                    f"{PAPER_RATES[row.covers]:.1f}%",
                    f"{row.mean_set_size:.2f}",
                ]
                for row in rows
            ],
            title="Table 1 — percentage of proper permutations (Car dataset)",
        )
    )

    rates = [row.permutation_rate for row in rows]
    # Shape: monotone increase with k ...
    assert all(b >= a for a, b in zip(rates, rates[1:]))
    # ... and permutations are the common case already at small k.
    assert rates[0] > 0.5
    assert rates[-1] > 0.8

"""Ablation: partial similarity (Section 4.1's outlook, implemented).

The vector set representation lets the distance combination rule change
independently of the element distance — e.g. "compare the closest
i < k vectors of a set".  This benchmark demonstrates the retrieval
consequence on a constructed assembly scenario: parts that *contain* a
tire-like component plus unrelated structure.  Full matching pushes
such assemblies away from plain tires; partial matching (i = common
component size) retrieves them.
"""

import numpy as np

from repro.core.min_matching import min_matching_distance
from repro.core.partial import partial_matching_distance
from repro.evaluation.report import format_table
from repro.features.vector_set_model import VectorSetModel
from repro.geometry.sdf import Box, Torus
from repro.pipeline import Pipeline


def test_partial_similarity_retrieval(benchmark):
    pipeline = Pipeline(resolution=15)
    model = VectorSetModel(k=7)

    def build_and_compare():
        tire = Torus(major_radius=1.0, minor_radius=0.33)
        # An "assembly": the same tire plus an unrelated mounting frame.
        assembly = tire | Box(center=(0.0, 0.0, 0.9), size=(2.4, 0.4, 0.5))
        # A completely unrelated part of similar complexity.
        unrelated = Box(size=(2.0, 1.2, 0.6)) - Box(size=(1.2, 0.7, 0.8))

        sets = {}
        for name, solid in (("tire", tire), ("assembly", assembly), ("unrelated", unrelated)):
            grid, _ = pipeline.process_solid(solid)
            sets[name] = model.extract(grid)

        i = min(len(sets["tire"]), len(sets["assembly"]), len(sets["unrelated"]), 2)
        rows = []
        for other in ("assembly", "unrelated"):
            rows.append(
                [
                    f"tire vs {other}",
                    min_matching_distance(sets["tire"], sets[other]),
                    partial_matching_distance(sets["tire"], sets[other], i),
                ]
            )
        return rows, i

    rows, i = benchmark.pedantic(build_and_compare, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["pair", "full matching", f"partial (i={i})"],
            rows,
            title="Ablation — partial similarity on an assembly scenario",
        )
    )
    (tire_assembly_full, tire_assembly_partial) = rows[0][1], rows[0][2]
    (tire_unrelated_full, tire_unrelated_partial) = rows[1][1], rows[1][2]
    # Partial matching recognizes the shared component much more
    # strongly than full matching does ...
    assert tire_assembly_partial < 0.5 * tire_assembly_full
    # ... while still separating genuinely unrelated parts.
    assert tire_assembly_partial < tire_unrelated_partial
"""Ablation: greedy vs beam-search cover extraction.

Jagadish & Bruckstein offer an exact-but-exponential branch-and-bound
and the polynomial greedy the paper uses.  Beam search spans the space
between them; this ablation measures how much symmetric-volume-
difference the greedy heuristic actually leaves on the table on real
part shapes — the justification for the paper's algorithm choice.
"""

import time

import numpy as np

from repro.evaluation.experiments import prepare_dataset
from repro.evaluation.report import format_table
from repro.features.beam import beam_cover_search
from repro.features.cover_sequence import extract_cover_sequence


def test_greedy_vs_beam(benchmark):
    bundle = prepare_dataset("car", resolution=15)
    grids = bundle.grids()[::8]  # a systematic sample of parts

    def run():
        greedy_errors, beam_errors = [], []
        greedy_time = beam_time = 0.0
        for grid in grids:
            start = time.perf_counter()
            greedy = extract_cover_sequence(grid, k=7)
            greedy_time += time.perf_counter() - start
            start = time.perf_counter()
            beam = beam_cover_search(grid, k=7, beam_width=4, candidates_per_sign=3)
            beam_time += time.perf_counter() - start
            base = max(1, greedy.errors[0])
            greedy_errors.append(greedy.final_error / base)
            beam_errors.append(beam.final_error / base)
            assert beam.final_error <= greedy.final_error
        return (
            float(np.mean(greedy_errors)),
            float(np.mean(beam_errors)),
            greedy_time / len(grids),
            beam_time / len(grids),
        )

    greedy_err, beam_err, greedy_s, beam_s = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            ["extractor", "mean rel. error", "seconds/object"],
            [
                ["greedy (paper)", greedy_err, greedy_s],
                ["beam (w=4, c=3)", beam_err, beam_s],
            ],
            title="Ablation — greedy vs beam-search cover extraction (k=7)",
        )
    )
    # Beam is never worse; the paper's greedy must be close (< 25 %
    # relative error left on the table), justifying the cheap algorithm.
    assert beam_err <= greedy_err
    assert greedy_err - beam_err < 0.25 * max(greedy_err, 1e-9) + 0.02

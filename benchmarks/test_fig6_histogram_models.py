"""Figure 6: reachability plots of the volume and solid-angle models.

Paper: "the volume model performs rather ineffective[ly]; both plots
show a minimum of structure" (6a, 6b); "the solid-angle model performs
slightly better" but clusters intuitively dissimilar objects together
(6c, 6d).

On the synthetic datasets we quantify each panel by the best adjusted
Rand index over all cuts of its reachability plot.  Note (documented in
EXPERIMENTS.md): synthetic part families differ more in gross mass
distribution than the paper's real CAD parts, so the histogram models
score better here than the paper's visual verdict — the *comparative*
statement checked below is that neither histogram model beats the
vector set model (Figure 9's panels).
"""

import pytest

from benchmarks.conftest import print_panel
from repro.evaluation.figures import run_panel


@pytest.mark.parametrize("dataset", ["car", "aircraft"])
@pytest.mark.parametrize("model", ["volume", "solid-angle"])
def test_fig6_histogram_panel(benchmark, model, dataset, aircraft_n):
    n = aircraft_n if dataset == "aircraft" else None
    result = benchmark.pedantic(
        run_panel,
        kwargs={"figure": f"fig6-{model}", "dataset": dataset, "n": n},
        rounds=1,
        iterations=1,
    )
    print_panel(result)
    print(f"best ARI (cut sweep): {result.best_ari:.3f}")

    # The plot must at least be cuttable into several clusters.
    assert result.best_ari > 0.0
    assert result.contrast > 0.1


def test_fig6_histograms_do_not_beat_vector_set(benchmark, aircraft_n):
    """The paper's ranking: histogram models < vector set model."""

    def run_all():
        vector_set = run_panel("fig9-vector-set-7", "car")
        volume = run_panel("fig6-volume", "car")
        solid_angle = run_panel("fig6-solid-angle", "car")
        return vector_set, volume, solid_angle

    vector_set, volume, solid_angle = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )
    print(
        f"\ncar best-ARI: vector-set={vector_set.best_ari:.3f} "
        f"volume={volume.best_ari:.3f} solid-angle={solid_angle.best_ari:.3f}"
    )
    assert vector_set.best_ari >= solid_angle.best_ari - 0.05
    assert vector_set.best_ari >= volume.best_ari - 0.05

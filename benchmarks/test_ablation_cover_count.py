"""Ablation: clustering quality as a function of the cover count.

The paper concludes "we need about 7 covers to model similarity most
accurately" from visual plot comparisons of k = 3 vs k = 7.  This sweep
measures best-cut ARI for k in {1, 2, 3, 5, 7, 9} on the Car dataset,
together with the mean extracted set size and the mean relative
approximation error — showing *why* quality saturates: the greedy
covers stop reducing the symmetric volume difference.
"""

import numpy as np

from repro.clustering.optics import distance_rows_from_matrix, optics
from repro.clustering.quality import best_cut_quality
from repro.evaluation.experiments import (
    distance_matrix_for,
    extract_features,
    prepare_dataset,
)
from repro.evaluation.report import format_table
from repro.features.cover_sequence import extract_cover_sequence
from repro.features.vector_set_model import VectorSetModel


def test_cover_count_sweep(benchmark):
    bundle = prepare_dataset("car", resolution=15)

    def sweep():
        rows = []
        for k in (1, 2, 3, 5, 7, 9):
            features = extract_features(bundle, VectorSetModel(k=k))
            matrix, _ = distance_matrix_for(
                bundle, features, "matching", cache_tag=f"ablation_k{k}_car"
            )
            ordering = optics(
                bundle.n, distance_rows_from_matrix(matrix), min_pts=5
            )
            ari, _ = best_cut_quality(ordering, bundle.labels)
            sizes = [len(f) for f in features]
            errors = []
            for grid in bundle.grids()[::10]:
                sequence = extract_cover_sequence(grid, k)
                errors.append(sequence.final_error / max(1, sequence.errors[0]))
            rows.append([k, ari, float(np.mean(sizes)), float(np.mean(errors))])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["covers k", "best ARI", "mean |X|", "mean rel. err"],
            rows,
            title="Ablation — cover count vs clustering quality (Car dataset)",
        )
    )
    by_k = {int(row[0]): row[1] for row in rows}
    # More covers help up to the paper's operating point...
    assert by_k[7] > by_k[1]
    assert by_k[7] >= by_k[3] - 0.02
    # ...and the approximation error shrinks monotonically with k.
    errors = [row[3] for row in rows]
    assert all(b <= a + 1e-9 for a, b in zip(errors, errors[1:]))

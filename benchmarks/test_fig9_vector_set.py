"""Figure 9: reachability plots of the vector set model (3 and 7 covers).

Paper: the vector set model produces the best plots; "7 covers are
necessary to model real-world CAD objects accurately" — with only 3
covers the same problems as the plain cover sequence model reappear.

Checks per dataset: the 7-cover panel scores at least as well as the
3-cover panel, and both produce structured plots.
"""

import pytest

from benchmarks.conftest import print_panel
from repro.evaluation.figures import run_panel


@pytest.mark.parametrize("dataset", ["car", "aircraft"])
@pytest.mark.parametrize("covers", [3, 7])
def test_fig9_vector_set_panel(benchmark, covers, dataset, aircraft_n):
    n = aircraft_n if dataset == "aircraft" else None
    result = benchmark.pedantic(
        run_panel,
        kwargs={"figure": f"fig9-vector-set-{covers}", "dataset": dataset, "n": n},
        rounds=1,
        iterations=1,
    )
    print_panel(result)
    print(f"best ARI (cut sweep): {result.best_ari:.3f}")
    assert result.best_ari > 0.2
    assert result.contrast > 0.3


def test_fig9_seven_covers_beat_three_on_car(benchmark):
    """Paper: "7 covers are necessary to model real-world CAD objects
    accurately".  The car dataset — whose parts are complex enough to
    genuinely need many covers — reproduces this."""

    def run_both():
        three = run_panel("fig9-vector-set-3", "car")
        seven = run_panel("fig9-vector-set-7", "car")
        return three, seven

    three, seven = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print(f"\ncar best-ARI: k=3 {three.best_ari:.3f}, k=7 {seven.best_ari:.3f}")
    assert seven.best_ari >= three.best_ari - 0.02


def test_fig9_cover_count_on_aircraft(benchmark, aircraft_n):
    """Documented deviation (see EXPERIMENTS.md): the *synthetic*
    aircraft dataset is dominated by geometrically simple hardware
    (nuts, bolts, washers need 2–4 covers), so covers beyond that only
    encode voxel-sampling detail and add intra-class variance — k = 3
    can therefore match or beat k = 7 here, unlike on the paper's real
    (complex) aircraft parts.  Both settings must still produce a
    usable clustering."""

    def run_both():
        three = run_panel("fig9-vector-set-3", "aircraft", n=aircraft_n)
        seven = run_panel("fig9-vector-set-7", "aircraft", n=aircraft_n)
        return three, seven

    three, seven = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print(
        f"\naircraft best-ARI: k=3 {three.best_ari:.3f}, k=7 {seven.best_ari:.3f}"
    )
    assert three.best_ari > 0.4
    assert seven.best_ari > 0.4

"""Shared configuration of the benchmark suite.

Every benchmark regenerates one table or figure of the paper and prints
the measured rows/series next to the paper's published values (see
EXPERIMENTS.md).  Results are also *asserted* against the expected
qualitative shape, so a regression in any model breaks the suite.

Scale: the paper ran 5,000 aircraft objects; the benchmark default is
``REPRO_AIRCRAFT_N`` (or 300) so the whole suite completes in minutes.
Feature and distance-matrix caches live in ``REPRO_CACHE_DIR``
(default ``.repro_cache/``) and make repeat runs fast.
"""

from __future__ import annotations

import os

import pytest


def aircraft_benchmark_size() -> int:
    """Aircraft dataset size used by the figure benchmarks."""
    return int(os.environ.get("REPRO_AIRCRAFT_N", 300))


@pytest.fixture(scope="session")
def aircraft_n() -> int:
    return aircraft_benchmark_size()


def print_panel(result, height: int = 9, width: int = 100) -> None:
    """Render one reachability panel to stdout."""
    print()
    print(result.render(height=height, width=width))

"""Figure 8: cover sequence model with the minimum Euclidean distance
under permutation (7 covers).

Paper: these plots "look quite similar" to the vector set model's
(Figure 9, 7 covers) and "a careful investigation ... showed that [they]
lead to basically equivalent results"; the distance itself is computed
via the Kuhn–Munkres reduction because the naive method costs k!.

Checks: (a) panels run on both datasets, (b) the permutation-distance
panel and the vector-set panel of the Car dataset agree in quality to
within a small tolerance — the equivalence statement.
"""

import pytest

from benchmarks.conftest import print_panel
from repro.evaluation.figures import run_panel


@pytest.mark.parametrize("dataset", ["car", "aircraft"])
def test_fig8_permutation_panel(benchmark, dataset, aircraft_n):
    n = aircraft_n if dataset == "aircraft" else None
    result = benchmark.pedantic(
        run_panel,
        kwargs={"figure": "fig8-cover-permutation", "dataset": dataset, "n": n},
        rounds=1,
        iterations=1,
    )
    print_panel(result)
    print(f"best ARI (cut sweep): {result.best_ari:.3f}")
    assert result.best_ari > 0.0


def test_fig8_equivalent_to_fig9(benchmark):
    """Permutation distance == vector set model, up to eps-cut noise."""

    def run_both():
        permutation = run_panel("fig8-cover-permutation", "car")
        vector_set = run_panel("fig9-vector-set-7", "car")
        return permutation, vector_set

    permutation, vector_set = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print(
        f"\ncar best-ARI: permutation={permutation.best_ari:.3f} "
        f"vector-set={vector_set.best_ari:.3f}"
    )
    assert abs(permutation.best_ari - vector_set.best_ari) < 0.15

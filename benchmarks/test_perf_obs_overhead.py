"""Disabled-mode telemetry overhead: the "<2%" acceptance number.

The observability layer promises that *disabled means free*: with
``repro.obs`` disabled, the query path pays only a handful of cheap
``enabled`` checks for all its instrumentation (spans, wide query
events, counters).  This bench measures that price directly with an
interleaved A/B comparison — A is the real (disabled-telemetry) query
path, B the same path with the instrumentation entry points
monkeypatched to raw no-ops, i.e. the code as if it had never been
instrumented.  Interleaving the two arms round by round and taking the
best-of per arm cancels thermal/scheduler drift, which at the 2% scale
would otherwise dominate the signal.
"""

import time
from contextlib import contextmanager

import numpy as np
import pytest

from repro import obs
from repro.core import queries as queries_mod
from repro.core.queries import FilterRefineEngine
from repro.obs import querylog
from repro.obs.spans import NULL_SPAN

N_SETS = 300
K = 6
DIM = 6
QUERIES = 8
ROUNDS = 7
MAX_OVERHEAD = 0.02


@contextmanager
def _null_span(name, /, force=False, **attrs):
    yield NULL_SPAN


def _noop_record(*args, **kwargs):
    return None


@contextmanager
def stripped_instrumentation():
    """The engine as if PR 6/9 telemetry had never been written."""
    original_span = queries_mod.span
    original_record = querylog.record_query
    queries_mod.span = _null_span
    querylog.record_query = _noop_record
    try:
        yield
    finally:
        queries_mod.span = original_span
        querylog.record_query = original_record


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(2026)
    sets = [
        rng.standard_normal((int(rng.integers(1, K + 1)), DIM))
        for _ in range(N_SETS)
    ]
    engine = FilterRefineEngine(sets, capacity=K)
    engine.knn_query(sets[0], 5)  # warm every lazy path once
    return engine, sets


def _run_queries(engine, sets):
    for query in sets[:QUERIES]:
        engine.knn_query(query, 5)


def test_disabled_telemetry_overhead_below_two_percent(workload):
    engine, sets = workload
    assert obs.enabled() is False

    instrumented_best = float("inf")
    stripped_best = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        _run_queries(engine, sets)
        instrumented_best = min(instrumented_best, time.perf_counter() - start)

        with stripped_instrumentation():
            start = time.perf_counter()
            _run_queries(engine, sets)
        stripped_best = min(stripped_best, time.perf_counter() - start)

    overhead = instrumented_best / stripped_best - 1.0
    print(
        f"\ndisabled-mode telemetry: instrumented {instrumented_best * 1e3:.2f} ms"
        f" vs stripped {stripped_best * 1e3:.2f} ms per {QUERIES} queries"
        f" ({overhead * 100:.2f}% overhead)"
    )
    assert overhead < MAX_OVERHEAD, (
        f"disabled-mode telemetry costs {overhead * 100:.2f}% "
        f"(budget {MAX_OVERHEAD * 100:.0f}%)"
    )


def test_disabled_query_leaves_no_telemetry(workload):
    engine, sets = workload
    assert obs.enabled() is False
    engine.knn_query(sets[0], 5)
    snap = obs.registry().snapshot()
    assert snap["counters"] == {} and snap["events"] == []

"""Ablation: the runtime scaling-invariance toggle (Section 3.2).

The paper stores each object normalized plus its three scale factors
"so that we can (de)activate scaling invariance depending on the user's
needs at runtime".  This benchmark verifies the toggle end-to-end: with
invariance ON a part and its 2x-scaled copy are nearest neighbors; with
invariance OFF (features denormalized by the stored factors) the scaled
copy is pushed away while same-size parts stay close.
"""

import numpy as np

from repro.core.min_matching import min_matching_distance
from repro.datasets.parts import make_part
from repro.evaluation.report import format_table
from repro.features.scaling import denormalize_cover_vectors
from repro.features.vector_set_model import VectorSetModel
from repro.geometry.transform import Transform
from repro.pipeline import Pipeline


def test_scaling_invariance_toggle(benchmark):
    pipeline = Pipeline(resolution=15)
    model = VectorSetModel(k=7)
    rng = np.random.default_rng(17)

    def run():
        base = make_part("bracket", rng, place=False)
        double = base.solid.transformed(Transform.scaling(2.0))
        sibling = make_part("bracket", rng, place=False).solid  # same size class

        features = {}
        poses = {}
        for name, solid in (("base", base.solid), ("double", double), ("sibling", sibling)):
            grid, pose = pipeline.process_solid(solid)
            features[name] = model.extract(grid)
            poses[name] = pose

        invariant_scaled = min_matching_distance(features["base"], features["double"])
        invariant_sibling = min_matching_distance(features["base"], features["sibling"])

        denorm = {
            name: denormalize_cover_vectors(features[name], poses[name])
            for name in features
        }
        aware_scaled = min_matching_distance(denorm["base"], denorm["double"])
        aware_sibling = min_matching_distance(denorm["base"], denorm["sibling"])
        return invariant_scaled, invariant_sibling, aware_scaled, aware_sibling

    invariant_scaled, invariant_sibling, aware_scaled, aware_sibling = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )
    print()
    print(
        format_table(
            ["pair", "scaling invariance ON", "scaling invariance OFF"],
            [
                ["bracket vs 2x-scaled self", invariant_scaled, aware_scaled],
                ["bracket vs same-size sibling", invariant_sibling, aware_sibling],
            ],
            title="Ablation — (de)activating scaling invariance at runtime",
        )
    )
    # ON: the scaled copy is (near-)identical — closer than the sibling.
    assert invariant_scaled < invariant_sibling
    # OFF: the 2x copy is pushed away beyond the same-size sibling.
    assert aware_scaled > aware_sibling
"""Table 2 follow-up: how the filter/scan trade-off scales with n.

At the benchmark's reduced database size the sequential scan wins on
total (simulated) time because one full read of a tiny vector-set file
is cheap; the paper's 5,000-object scale reverses this.  This sweep
measures total times at increasing n and asserts the *trend*: the
scan's I/O grows linearly with n while the filter's grows sublinearly,
shrinking the gap — the crossover direction of Table 2.
"""

import numpy as np

from repro.evaluation.report import format_table
from repro.evaluation.table2 import run_table2

SIZES = (150, 400, 800)


def test_scan_vs_filter_scaling(benchmark):
    def sweep():
        rows = []
        for n in SIZES:
            results, consistent = run_table2(
                n_queries=4, variants=8, n=n, seed=11
            )
            assert consistent
            one_vec, filtered, scan = results
            rows.append(
                [
                    n,
                    filtered.io_seconds,
                    scan.io_seconds,
                    filtered.total_seconds,
                    scan.total_seconds,
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["n objects", "filter I/O s", "scan I/O s", "filter total s", "scan total s"],
            rows,
            title="Table 2 scale sweep (4 queries, 8 variants)",
        )
    )
    # Scan I/O grows linearly with n ...
    scan_io = [row[2] for row in rows]
    assert scan_io[-1] > scan_io[0] * (SIZES[-1] / SIZES[0]) * 0.6
    # ... while the filter's I/O grows slower than linearly.
    filter_io = [row[1] for row in rows]
    assert filter_io[-1] / max(filter_io[0], 1e-9) < (SIZES[-1] / SIZES[0]) * 1.5
"""Ablation: access structures for vector set queries.

Section 4.3 names two routes: a metric index (M-tree) directly on the
vector sets, or the centroid filter over a spatial index.  This
benchmark pits them (plus the incremental-vs-bulk-loaded spatial index)
against each other on the same 10-nn workload, counting the dominant
cost of each: exact matching-distance evaluations.
"""

import numpy as np

from repro.core.min_matching import min_matching_distance
from repro.core.queries import FilterRefineEngine
from repro.evaluation.experiments import extract_features, prepare_dataset
from repro.evaluation.report import format_table
from repro.features.vector_set_model import VectorSetModel
from repro.index.bulkload import bulk_load
from repro.index.mtree import MTree
from repro.index.rstar import RStarTree


def test_access_structure_comparison(benchmark):
    bundle = prepare_dataset("car", resolution=15)
    sets = [np.asarray(s) for s in extract_features(bundle, VectorSetModel(k=7))]
    queries = list(range(0, len(sets), 10))

    def run_all():
        results = {}

        # Centroid filter (the paper's choice).
        engine = FilterRefineEngine(sets, capacity=7)
        refined = []
        answers = {}
        for query_id in queries:
            matches, stats = engine.knn_query(sets[query_id], 10)
            refined.append(stats.exact_computations)
            answers[query_id] = sorted(round(m.distance, 9) for m in matches)
        results["centroid filter + scan ranking"] = float(np.mean(refined))

        # M-tree directly on the metric.
        tree = MTree(min_matching_distance, capacity=8)
        for index, vector_set in enumerate(sets):
            tree.insert(vector_set, index)
        per_query = []
        for query_id in queries:
            tree.distance_computations = 0
            matches = tree.knn(sets[query_id], 10)
            per_query.append(tree.distance_computations)
            got = sorted(round(d, 9) for _, d in matches)
            assert got == answers[query_id], "M-tree must agree with the engine"
        results["M-tree (metric index)"] = float(np.mean(per_query))

        # Sequential scan: one matching per object.
        results["sequential scan"] = float(len(sets))
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["access structure", "exact matchings / 10-nn query"],
            [[name, value] for name, value in results.items()],
            title="Ablation — access structures for vector set 10-nn queries",
        )
    )
    # Both index routes must beat the scan on matching count.
    assert results["centroid filter + scan ranking"] < results["sequential scan"]
    assert results["M-tree (metric index)"] < results["sequential scan"]


def test_bulk_load_vs_incremental(benchmark):
    """STR bulk loading: same answers, smaller tree, fewer query pages."""
    rng = np.random.default_rng(2)
    points = rng.random(size=(3000, 6))

    def run_both():
        from repro.index.pages import PageManager

        pm_inc, pm_bulk = PageManager(), PageManager()
        incremental = RStarTree(6, page_manager=pm_inc)
        for index, point in enumerate(points):
            incremental.insert(point, index)
        packed = bulk_load(points, page_manager=pm_bulk)
        packed.validate()

        pm_inc.reset()
        pm_bulk.reset()
        for query in points[::300]:
            a = [oid for oid, _ in incremental.knn(query, 10)]
            b = [oid for oid, _ in packed.knn(query, 10)]
            assert a == b
        return (
            incremental.node_count(),
            packed.node_count(),
            pm_inc.cost.page_accesses,
            pm_bulk.cost.page_accesses,
        )

    nodes_inc, nodes_bulk, pages_inc, pages_bulk = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    print(
        f"\nnodes: incremental={nodes_inc} bulk={nodes_bulk}; "
        f"query pages: incremental={pages_inc} bulk={pages_bulk}"
    )
    assert nodes_bulk <= nodes_inc
    assert pages_bulk <= pages_inc * 1.2
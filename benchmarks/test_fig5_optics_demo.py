"""Figure 5: OPTICS reachability plot of a sample 2-D dataset.

The paper's Figure 5 shows a 2-D point set whose reachability plot has
two valleys at a coarse cut (clusters A, B) and three at a finer cut
(A1, A2, B) — the nested-density structure OPTICS is designed to expose.
Our demo dataset replicates that nesting: cluster A consists of two
sub-clusters A1 and A2, cluster B is a single looser blob.
"""

import numpy as np

from repro.clustering.reachability import extract_clusters
from repro.evaluation.figures import figure5_demo


def test_fig5_reachability_demo(benchmark):
    result = benchmark.pedantic(figure5_demo, rounds=1, iterations=1)

    print()
    print(result.render(height=9, width=100))

    from repro.clustering.reachability import cut_levels

    # The nested structure of Figure 5: some coarse cut yields exactly
    # two big clusters (A = A1+A2, and B), some finer cut yields three
    # (A1, A2, B).
    cluster_counts = set()
    for eps in cut_levels(result.ordering, 30):
        clusters, _ = extract_clusters(result.ordering, float(eps))
        cluster_counts.add(len([c for c in clusters if len(c) >= 10]))
    assert 2 in cluster_counts, "a coarse two-valley cut must exist"
    assert 3 in cluster_counts, "a fine three-valley cut must exist"
    assert result.best_ari > 0.85

"""Table 2: runtimes of sample 10-nn queries on the Aircraft dataset.

Paper (100 queries, 5,000 objects, XEON 1.7 GHz, simulated I/O):

    model                 | CPU s   | I/O s   | total s
    ----------------------+---------+---------+--------
    1-Vect. (X-tree)      |  142.82 | 2632.06 | 2774.88
    Vect. Set w. filter   |  105.88 |  932.80 | 1038.68
    Vect. Set seq. scan   | 1025.32 |  806.40 | 1831.72

Expected shape at reduced scale (10 queries, REPRO_AIRCRAFT_N objects,
48 rotation/reflection variants per query):

* the centroid filter refines only a small fraction of the candidates
  (CPU speed-up ~10x over the sequential scan; the paper reports 10x),
* the 1-vector X-tree pays the worst I/O (the 6k-d index degenerates
  and its pages carry dummy-padded vectors),
* filter and scan return identical 10-nn results (Lemma 2 losslessness).

The scan's *total* advantage at small n is a scale artifact: its I/O
grows linearly with the database while the filter's grows with the
result size — at the paper's 5,000 objects the filter wins overall (run
with ``REPRO_AIRCRAFT_N=5000`` to see the crossover).
"""

import os

from repro.evaluation.report import format_table
from repro.evaluation.table2 import run_table2

PAPER = {
    "1-Vect. (X-tree)": (142.82, 2632.06, 2774.88),
    "Vect. Set w. filter": (105.88, 932.80, 1038.68),
    "Vect. Set seq. scan": (1025.32, 806.40, 1831.72),
}


def test_table2_knn_runtimes(benchmark):
    n = int(os.environ.get("REPRO_AIRCRAFT_N", 600))
    rows, consistent = benchmark.pedantic(
        run_table2,
        kwargs={"n_queries": 10, "variants": 48, "n": n},
        rounds=1,
        iterations=1,
    )

    print()
    print(
        format_table(
            ["method", "CPU s", "I/O s", "total s", "pages", "refinements",
             "paper CPU", "paper I/O"],
            [
                [
                    row.method,
                    row.cpu_seconds,
                    row.io_seconds,
                    row.total_seconds,
                    row.page_accesses,
                    row.exact_computations,
                    PAPER[row.method][0],
                    PAPER[row.method][1],
                ]
                for row in rows
            ],
            title=f"Table 2 — 10-nn queries ({n} objects, 10 queries, 48 variants)",
        )
    )

    one_vector, filtered, scan = rows
    assert consistent, "filter and scan must return identical 10-nn sets"
    # Filter refines only a fraction of what the scan computes.
    assert filtered.exact_computations < 0.25 * scan.exact_computations
    # CPU: filter beats the sequential scan clearly (paper: ~10x).
    assert filtered.cpu_seconds < scan.cpu_seconds / 3
    # I/O: the high-dimensional 1-vector index is the worst I/O citizen.
    assert one_vector.io_seconds > filtered.io_seconds
    # Total: the filter beats the degenerated 1-vector index.
    assert filtered.total_seconds < one_vector.total_seconds

"""Figure 7: reachability plots of the cover sequence model (7 covers).

Paper: the plots "look considerably better" than the histogram models',
but the model suffers from the cover-order problem: meaningful cluster
hierarchies are lost, some clusters are missed, and dissimilar objects
land in one class (the three shortcomings listed in Section 5.3).

Quantified check: the plain cover sequence model scores *below* the
vector set model with the same covers (Figure 9) on both datasets.
"""

import pytest

from benchmarks.conftest import print_panel
from repro.evaluation.figures import run_panel


@pytest.mark.parametrize("dataset", ["car", "aircraft"])
def test_fig7_cover_sequence_panel(benchmark, dataset, aircraft_n):
    n = aircraft_n if dataset == "aircraft" else None
    result = benchmark.pedantic(
        run_panel,
        kwargs={"figure": "fig7-cover", "dataset": dataset, "n": n},
        rounds=1,
        iterations=1,
    )
    print_panel(result)
    print(f"best ARI (cut sweep): {result.best_ari:.3f}")
    assert result.best_ari > 0.0


def test_fig7_cover_order_hurts(benchmark, aircraft_n):
    """The headline comparison: same covers, worse similarity when the
    greedy order is frozen into one vector."""

    def run_both():
        cover = run_panel("fig7-cover", "car")
        vector_set = run_panel("fig9-vector-set-7", "car")
        return cover, vector_set

    cover, vector_set = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print(
        f"\ncar best-ARI: cover-sequence={cover.best_ari:.3f} "
        f"vector-set={vector_set.best_ari:.3f}"
    )
    assert vector_set.best_ari > cover.best_ari

"""Micro-benchmarks of the batched minimal-matching kernels.

pytest-benchmark timings of the packed-tensor distance layer against the
per-pair baseline it replaces: the stacked cost-tensor assembly, the
lockstep batched Hungarian, one-query-vs-database refinement, and the
full pairwise matrix behind the OPTICS experiments.  The ≥5x acceptance
number lives in ``BENCH_PR2.json`` (``python -m repro bench``); these
tests track the same kernels per call so regressions show up in CI.
"""

import numpy as np
import pytest

from repro.core.batch import (
    PackedSets,
    hungarian_batch,
    match_many,
    pairwise_matrix,
)
from repro.core.min_matching import min_matching_distance
from repro.core.queries import FilterRefineEngine

N_SETS = 200
K = 7
DIM = 6


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(2003)
    sets = [
        rng.standard_normal((int(rng.integers(1, K + 1)), DIM)) for _ in range(N_SETS)
    ]
    return sets, PackedSets.pack(sets, capacity=K)


def test_bench_pack(benchmark, workload):
    sets, _ = workload
    benchmark(PackedSets.pack, sets, capacity=K)


def test_bench_hungarian_lockstep_batch(benchmark):
    rng = np.random.default_rng(7)
    costs = rng.uniform(size=(1024, K, K))
    benchmark(hungarian_batch, costs)


def test_bench_match_many(benchmark, workload):
    sets, packed = workload
    prepared = packed.pad_query(sets[0])
    benchmark(match_many, prepared, packed)


def test_bench_pairwise_matrix(benchmark, workload):
    sets, _ = workload
    benchmark(pairwise_matrix, sets, capacity=K)


def test_bench_knn_sequential_batched(benchmark, workload):
    sets, _ = workload
    engine = FilterRefineEngine(sets, capacity=K)
    benchmark(engine.knn_sequential, sets[0], 10)


def test_batch_beats_per_pair(benchmark, workload):
    """The whole point of the packed layer: one batched call over the
    database must clearly beat the per-pair Python loop (asserted at a
    conservative 2x per-query; the pairwise-matrix workload in
    BENCH_PR2.json shows the full ≥5x)."""
    import time

    sets, packed = workload
    prepared = packed.pad_query(sets[0])

    def measure():
        start = time.perf_counter()
        for _ in range(5):
            match_many(prepared, packed)
        batched = time.perf_counter() - start
        start = time.perf_counter()
        for _ in range(5):
            for candidate in sets:
                min_matching_distance(sets[0], candidate)
        per_pair = time.perf_counter() - start
        return per_pair, batched

    per_pair, batched = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(
        f"\nper-pair: {per_pair / 5 * 1e3:.2f}ms/query, "
        f"batched: {batched / 5 * 1e3:.2f}ms/query "
        f"({per_pair / batched:.1f}x)"
    )
    assert per_pair > 2 * batched

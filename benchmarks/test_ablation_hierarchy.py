"""Ablation: cluster hierarchies (the paper's G / G1 / G2 observation).

Section 5.3, shortcoming 1 of the cover sequence model: "meaningful
hierarchies of clusters detected by the vector set model ... are lost in
the plot of the cover sequence model."  The ξ-extraction makes this
measurable: count nested (parent, child) cluster pairs whose children
split one part family into sub-groups.
"""

import numpy as np

from repro.clustering.optics import distance_rows_from_matrix, optics
from repro.clustering.xi import extract_xi_clusters, hierarchy_pairs
from repro.evaluation.experiments import (
    distance_matrix_for,
    extract_features,
    prepare_dataset,
)
from repro.evaluation.report import format_table
from repro.features.vector_set_model import VectorSetModel


def test_vector_set_hierarchies(benchmark):
    bundle = prepare_dataset("car", resolution=15)

    def run():
        features = extract_features(bundle, VectorSetModel(k=7))
        matrix, _ = distance_matrix_for(
            bundle, features, "matching", cache_tag="hierarchy_car_k7"
        )
        ordering = optics(bundle.n, distance_rows_from_matrix(matrix), min_pts=5)
        clusters = extract_xi_clusters(ordering, xi=0.08, min_cluster_size=5)
        nested = hierarchy_pairs(clusters)
        families = [obj.family for obj in bundle.objects]
        family_splits = 0
        for parent, child in nested:
            parent_families = {families[o] for o in parent.objects}
            child_families = {families[o] for o in child.objects}
            if len(child_families) == 1 and child.size < parent.size:
                family_splits += 1
        return len(clusters), len(nested), family_splits

    n_clusters, n_nested, family_splits = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            ["metric", "value"],
            [
                ["xi-clusters extracted", n_clusters],
                ["nested (parent, child) pairs", n_nested],
                ["single-family sub-clusters", family_splits],
            ],
            title="Ablation — cluster hierarchy in the vector set model (Car)",
        )
    )
    # The vector set model's plot contains genuine hierarchy: nested
    # clusters exist and at least one child is a pure family subgroup.
    assert n_nested >= 1
    assert family_splits >= 1

"""Ablation: the surveyed set distances as similarity measures.

Section 4.2 dismisses the alternatives qualitatively: Hausdorff "relies
too much on the extreme positions", the sum of minimum distances and the
surjection variants "are not metric[s]".  Here every surveyed distance
actually drives the same OPTICS clustering on the Car dataset, so the
choice becomes measurable: the minimal matching distance should be at
least competitive with every alternative, and it is the only one in the
group that is both metric and assignment-faithful.
"""

import numpy as np
import pytest

from repro.clustering.optics import distance_rows_from_matrix, optics
from repro.clustering.quality import best_cut_quality
from repro.core.min_matching import min_matching_distance
from repro.distances.set_distances import (
    hausdorff_distance,
    link_distance,
    sum_of_minimum_distances,
)
from repro.evaluation.experiments import extract_features, prepare_dataset
from repro.evaluation.report import format_table
from repro.features.vector_set_model import VectorSetModel
from repro.pipeline import pairwise_distance_matrix

DISTANCES = {
    "min-matching (paper)": min_matching_distance,
    "hausdorff": hausdorff_distance,
    "sum-of-min": sum_of_minimum_distances,
    "link": link_distance,
}


def test_set_distance_comparison(benchmark):
    bundle = prepare_dataset("car", resolution=15)
    sets = [np.asarray(s) for s in extract_features(bundle, VectorSetModel(k=7))]

    def run_all():
        scores = {}
        for name, distance in DISTANCES.items():
            matrix = pairwise_distance_matrix(sets, distance)
            ordering = optics(
                len(sets), distance_rows_from_matrix(matrix), min_pts=5
            )
            ari, _ = best_cut_quality(ordering, bundle.labels)
            scores[name] = ari
        return scores

    scores = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["set distance", "best ARI"],
            [[name, score] for name, score in scores.items()],
            title="Ablation — set distances driving OPTICS (Car dataset)",
        )
    )
    paper_score = scores["min-matching (paper)"]
    # The matching distance is competitive with every alternative.
    assert paper_score >= max(scores.values()) - 0.1
    # And clearly better than the outlier-dominated Hausdorff distance.
    assert paper_score >= scores["hausdorff"] - 0.02

"""Figure 10: evaluation of the classes OPTICS finds in the Car dataset.

The paper displays the actual parts inside the clusters found by the
solid-angle model (10a), the cover sequence model (10b) and the vector
set model (10c), observing that the vector set model's clusters are
family-pure and retain meaningful hierarchies while the others mix
families.  With ground-truth labels this becomes measurable: per model
we print the family composition of every cluster at the best cut and
assert that the vector set model's clusters are the purest.
"""

import numpy as np

from repro.evaluation.figures import figure10_class_evaluation


def _mean_cluster_purity(evaluation) -> float:
    purities = []
    for composition in evaluation.clusters:
        total = sum(composition.values())
        if total >= 2:  # singleton "clusters" say nothing about purity
            purities.append(max(composition.values()) / total)
    return float(np.mean(purities)) if purities else 0.0


def test_fig10_class_composition(benchmark):
    evaluations = benchmark.pedantic(
        figure10_class_evaluation, rounds=1, iterations=1
    )

    print()
    by_model = {}
    for evaluation in evaluations:
        purity = _mean_cluster_purity(evaluation)
        by_model[evaluation.model] = purity
        print(
            f"model={evaluation.model}  cut eps={evaluation.eps:.3f}  "
            f"ARI={evaluation.ari:.3f}  mean cluster purity={purity:.3f}  "
            f"noise={evaluation.n_noise}"
        )
        for index, composition in enumerate(evaluation.clusters):
            if sum(composition.values()) >= 3:
                print(f"  cluster {index:2d}: {composition}")

    solid_angle, cover, vector_set = evaluations
    vs_purity = _mean_cluster_purity(vector_set)
    # The vector set model's clusters are at least as family-pure as the
    # other two models' (the paper's Figure 10 observation).
    assert vs_purity >= _mean_cluster_purity(cover) - 0.05
    assert vs_purity >= _mean_cluster_purity(solid_angle) - 0.05
    assert vector_set.ari >= cover.ari

"""Ablation: selectivity of the extended-centroid filter step.

Two questions the paper leaves implicit:

* **How selective is the Lemma 2 bound on real cover data?**  We count
  the fraction of database objects the optimal multi-step 10-nn query
  refines (lower = better filter).
* **Does the choice of omega matter?**  The paper picks omega = 0
  ("shortest average distance within the position and has no volume");
  we compare the refinement counts for omega = 0 against a displaced
  reference point.  (Lemma 2 holds for any omega outside the data, but
  the bound's tightness — and hence the filter's selectivity — differs.)
"""

import numpy as np
import pytest

from repro.core.queries import FilterRefineEngine
from repro.evaluation.experiments import extract_features, prepare_dataset
from repro.evaluation.report import format_table
from repro.features.vector_set_model import VectorSetModel


@pytest.fixture(scope="module")
def car_sets():
    bundle = prepare_dataset("car", resolution=15)
    sets = extract_features(bundle, VectorSetModel(k=7))
    return [np.asarray(s) for s in sets]


def test_filter_selectivity(benchmark, car_sets):
    engine = FilterRefineEngine(car_sets, capacity=7)

    def run_queries():
        refinements = []
        for query_id in range(0, len(car_sets), 5):
            _, stats = engine.knn_query(car_sets[query_id], 10)
            refinements.append(stats.exact_computations)
        return float(np.mean(refinements))

    mean_refined = benchmark.pedantic(run_queries, rounds=1, iterations=1)
    fraction = mean_refined / len(car_sets)
    print(f"\nmean refinements per 10-nn query: {mean_refined:.1f} "
          f"of {len(car_sets)} objects ({100 * fraction:.1f}%)")
    # The filter must skip a substantial share of the database.
    assert fraction < 0.8


def test_omega_choice(benchmark, car_sets):
    """Selectivity of the filter for different reference points omega.

    Important subtlety: omega enters *both* the centroids and the weight
    function of the exact distance (Lemma 2 requires the same omega on
    both sides), so each row below is a different — each internally
    consistent — metric.  The paper picks omega = 0 because no real
    cover has zero volume (metric condition) and dummy covers live at
    the zero point; a displaced omega additionally separates sets by
    cardinality, which can tighten the filter but *changes the
    similarity notion* (unmatched covers then pay distance-to-omega
    rather than their own size).
    """

    def run_for_omegas():
        results = []
        for name, omega in (
            ("origin (paper)", None),
            ("displaced +2", np.full(6, 2.0)),
            ("displaced -2", np.full(6, -2.0)),
        ):
            engine = FilterRefineEngine(car_sets, capacity=7, omega=omega)
            refined = []
            for query_id in range(0, len(car_sets), 10):
                results_q, stats = engine.knn_query(car_sets[query_id], 10)
                seq_q, _ = engine.knn_sequential(car_sets[query_id], 10)
                # Losslessness must hold for every omega (Lemma 2):
                # compare distances, not ids, because near-identical
                # parts produce exact distance ties that either side may
                # break differently.
                assert np.allclose(
                    [m.distance for m in results_q],
                    [m.distance for m in seq_q],
                )
                refined.append(stats.exact_computations)
            results.append([name, float(np.mean(refined))])
        return results

    results = benchmark.pedantic(run_for_omegas, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["omega", "mean refinements"],
            results,
            title="Ablation — filter selectivity by omega (self-consistent metrics)",
        )
    )
    # Every configuration's filter must skip part of the database.
    for name, refined in results:
        assert refined < 0.9 * len(car_sets), name

"""Micro-benchmarks of the cover-extraction fast path (PR 3).

Times the three levers the parallel-ingestion work added:

* the blocked exact max-sum-box kernel vs the dense reference tensor,
* full incremental greedy extraction vs the reference extractor,
* a warm content-addressed feature-cache lookup vs re-extraction.

The correctness of each lever is asserted inline (bit-identical results)
before anything is timed, mirroring ``repro bench``.
"""

import numpy as np
import pytest

from repro.features.cache import FeatureCache, feature_cache_key
from repro.features.cover_sequence import extract_cover_sequence, max_sum_box
from repro.features.vector_set_model import VectorSetModel
from repro.geometry.sdf import Box, Torus
from repro.voxel.voxelize import voxelize_solid


@pytest.fixture(scope="module")
def grid_r15():
    return voxelize_solid(
        Torus(major_radius=1.0, minor_radius=0.35) | Box(size=(0.5, 0.5, 1.2)),
        resolution=15,
    )


@pytest.fixture(scope="module")
def weights_r15(grid_r15):
    return grid_r15.occupancy.astype(np.int8) * 2 - 1


def test_bench_max_sum_box_reference(benchmark, weights_r15):
    benchmark(max_sum_box, weights_r15, engine="reference")


def test_bench_max_sum_box_blocked(benchmark, weights_r15):
    expected = max_sum_box(weights_r15, engine="reference")
    got = max_sum_box(weights_r15)
    assert got[0] == expected[0]
    assert np.array_equal(got[1], expected[1])
    assert np.array_equal(got[2], expected[2])
    benchmark(max_sum_box, weights_r15)


def test_bench_extraction_reference_r15(benchmark, grid_r15):
    benchmark(extract_cover_sequence, grid_r15, 7, engine="reference")


def test_bench_extraction_incremental_r15(benchmark, grid_r15):
    reference = extract_cover_sequence(grid_r15, 7, engine="reference")
    incremental = extract_cover_sequence(grid_r15, 7, engine="incremental")
    assert incremental.covers == reference.covers
    assert incremental.errors == reference.errors
    benchmark(extract_cover_sequence, grid_r15, 7, engine="incremental")


def test_bench_warm_cache_lookup(benchmark, grid_r15, tmp_path_factory):
    model = VectorSetModel(k=7)
    cache = FeatureCache(root=tmp_path_factory.mktemp("feature-cache"))
    expected = model.extract(grid_r15)
    cache.put(grid_r15, model, expected)
    assert cache.path_for(feature_cache_key(grid_r15, model)).exists()

    hit = benchmark(cache.get, grid_r15, model)
    assert hit is not None
    assert np.array_equal(hit, expected)

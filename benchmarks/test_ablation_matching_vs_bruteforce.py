"""Ablation: Kuhn–Munkres O(k^3) vs. the k!-permutation brute force.

Section 4 argues that enumerating all permutations "increases
exponentially" and that the matching reduction is "far better ... for
larger numbers of k".  This benchmark measures both on identical inputs
and asserts the crossover: at k = 7 (the paper's working point) the
matching path must win by a large factor, while both paths return the
same distance values (they are the same mathematical quantity).
"""

import time

import numpy as np

from repro.core.permutation import (
    permutation_distance_bruteforce,
    permutation_distance_via_matching,
)
from repro.evaluation.report import format_table


def test_bruteforce_crossover(benchmark):
    rng = np.random.default_rng(3)

    def sweep():
        rows = []
        for k in (2, 3, 4, 5, 6, 7):
            x = rng.normal(size=(k, 6))
            y = rng.normal(size=(k, 6))
            repeats = 5
            start = time.perf_counter()
            for _ in range(repeats):
                brute = permutation_distance_bruteforce(x, y)
            brute_time = (time.perf_counter() - start) / repeats
            start = time.perf_counter()
            for _ in range(repeats):
                fast = permutation_distance_via_matching(x, y)
            fast_time = (time.perf_counter() - start) / repeats
            assert fast == __import__("pytest").approx(brute, abs=1e-9)
            rows.append([k, brute_time * 1e3, fast_time * 1e3, brute_time / fast_time])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["k", "k! brute ms", "matching ms", "speed-up"],
            rows,
            title="Ablation — permutation distance: brute force vs Kuhn-Munkres",
        )
    )
    by_k = {int(row[0]): row[3] for row in rows}
    # At the paper's k = 7 the matching reduction must win decisively.
    assert by_k[7] > 10.0

"""Leave-one-out k-nn family classification per similarity model.

An objective version of the paper's "sample k-nn queries" evaluation
(every object queries once, majority-family vote of its 5 nearest
neighbors).  Expected shape: the vector set model classifies at least
as well as the plain cover sequence model — the retrieval-side mirror
of the clustering result.
"""

from repro.evaluation.experiments import (
    distance_matrix_for,
    extract_features,
    paper_model,
    prepare_dataset,
)
from repro.evaluation.knn_quality import leave_one_out_accuracy
from repro.evaluation.report import format_table

CONFIGS = (
    ("volume", "euclidean"),
    ("solid-angle", "euclidean"),
    ("cover", "euclidean"),
    ("vector-set", "matching"),
)


def test_knn_family_classification(benchmark):
    def run_all():
        results = []
        for model_name, kind in CONFIGS:
            from repro.evaluation.experiments import model_resolution

            bundle = prepare_dataset("car", resolution=model_resolution(model_name))
            model = paper_model(model_name, k=7)
            features = extract_features(bundle, model)
            matrix, _ = distance_matrix_for(
                bundle, features, kind, cache_tag=f"knnq_{model_name}_car"
            )
            families = [obj.family for obj in bundle.objects]
            results.append(
                leave_one_out_accuracy(
                    matrix, bundle.labels, families, k=5, model_name=model.name
                )
            )
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["model", "accuracy", "queries"],
            [[r.model, r.accuracy, r.n_queries] for r in results],
            title="Leave-one-out 5-nn family classification (Car dataset)",
        )
    )
    worst_family = min(results[-1].per_family.items(), key=lambda kv: kv[1])
    print(f"vector set's weakest family: {worst_family[0]} ({worst_family[1]:.2f})")

    by_model = {r.model: r.accuracy for r in results}
    vector_set = by_model["vector-set(k=7)"]
    cover = by_model["cover-sequence(k=7)"]
    # Retrieval mirrors the clustering result: sets beat the frozen order.
    assert vector_set >= cover
    # And the vector set model is a genuinely usable classifier.
    assert vector_set > 0.8
"""Approximate filter-refine: Hamming shortlist, exact refine on top.

:class:`ApproxFilterRefineEngine` composes the three exact-tier pieces
this package adds nothing to: the existing
:class:`~repro.core.queries.FilterRefineEngine` (refinement + canonical
result order), a :class:`~repro.approx.sketch.SetSketcher` (query →
packed code) and a :class:`~repro.approx.hamming.HammingIndex`
(code → shortlist).  A query sketches once, Hamming-ranks the database,
and runs the *exact* batched minimal-matching refine over only the
``shortlist`` best codes — so results are always true distances over a
possibly-incomplete candidate set, never approximate distances.  With
``shortlist >= n`` every object is refined and the result equals the
exact engine's by construction.

The exact path stays the default and the oracle:
:meth:`knn_query_with_oracle` runs both tiers and records the
ground-truth-vs-returned overlap in :mod:`repro.obs` (histogram
``approx.overlap``), alongside ``approx.shortlist_size`` and
``approx.exact_skipped`` recorded on every approximate query.
"""

from __future__ import annotations

import numpy as np

from repro.approx.hamming import HammingIndex
from repro.approx.sketch import SetSketcher
from repro.core.queries import FilterRefineEngine, QueryMatch, QueryStats
from repro.exceptions import QueryError
from repro.obs import emit, registry, span
from repro.obs import querylog

__all__ = ["ApproxFilterRefineEngine", "default_shortlist"]


def default_shortlist(n_neighbors: int) -> int:
    """Default Hamming budget: generous oversampling of small k."""
    return max(8 * n_neighbors, 64)


class ApproxFilterRefineEngine:
    """Sketch-shortlisted approximate k-nn over an exact engine."""

    def __init__(
        self,
        engine: FilterRefineEngine,
        sketcher: SetSketcher,
        hamming: HammingIndex,
    ):
        if sketcher.words != hamming.words:
            raise QueryError(
                f"sketcher produces {sketcher.words}-word codes but the "
                f"Hamming index stores {hamming.words}-word codes"
            )
        self.engine = engine
        self.sketcher = sketcher
        self.hamming = hamming

    def knn_query(
        self,
        query: np.ndarray,
        n_neighbors: int,
        *,
        shortlist: int | None = None,
    ) -> tuple[list[QueryMatch], QueryStats]:
        """Approximate k-nn: exact refine restricted to a Hamming shortlist.

        ``shortlist`` is the candidate budget (clamped to at least
        ``n_neighbors``, at most the database size); ``None`` picks
        :func:`default_shortlist`.  Returned distances are exact, and
        the result order is the same canonical ``(distance, oid)`` key
        as the exact engine's.
        """
        if n_neighbors < 1:
            raise QueryError("n_neighbors must be >= 1")
        budget = default_shortlist(n_neighbors) if shortlist is None else int(shortlist)
        if budget < 1:
            raise QueryError("shortlist budget must be >= 1")
        budget = max(budget, n_neighbors)
        n = len(self.hamming)
        with span("query.approx_knn", k=n_neighbors, budget=budget):
            # The sketch + Hamming shortlist is this tier's filter
            # phase; its measured time rides into the wide query record
            # as the filter_seconds context field (the inner subset
            # refine only measures refinement).
            with span("query.shortlist", force=True, budget=budget) as ssp:
                code = self.sketcher.sketch(query)
                candidates = self.hamming.shortlist(code[None, :], budget)[0]
            with querylog.query_context(
                mode="approx",
                kind="approx_knn",
                budget=budget,
                shortlist_size=len(candidates),
                filter_seconds=ssp.seconds,
            ):
                results, stats = self.engine.knn_refine_subset(
                    query, n_neighbors, candidates
                )
        reg = registry()
        if reg.enabled:
            reg.counter("approx.queries").inc()
            reg.histogram("approx.shortlist_size").observe(len(candidates))
            reg.counter("approx.exact_skipped").inc(n - len(candidates))
            emit(
                "approx_query",
                k=n_neighbors,
                budget=budget,
                shortlist=len(candidates),
                exact_skipped=n - len(candidates),
            )
        return results, stats

    def knn_query_with_oracle(
        self,
        query: np.ndarray,
        n_neighbors: int,
        *,
        shortlist: int | None = None,
    ) -> tuple[list[QueryMatch], list[QueryMatch], float]:
        """Run both tiers; returns ``(approx, exact, overlap)``.

        *overlap* is ``|approx ∩ exact| / |exact|`` over the returned
        oid sets (recall@k against the exact oracle), recorded in the
        ``approx.overlap`` histogram.  Used by the Pareto bench and by
        anyone wanting a live recall estimate on real traffic.
        """
        approx, _ = self.knn_query(query, n_neighbors, shortlist=shortlist)
        exact, _ = self.engine.knn_query(query, n_neighbors)
        truth = {match.object_id for match in exact}
        got = {match.object_id for match in approx}
        overlap = len(truth & got) / len(truth) if truth else 1.0
        reg = registry()
        if reg.enabled:
            reg.histogram("approx.overlap").observe(overlap)
        return approx, exact, overlap

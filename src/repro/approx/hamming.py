"""Vectorized Hamming shortlisting over packed binary sketches.

The index keeps one ``(words,)`` uint64 code per object, rows always in
ascending-oid order.  That single invariant is what makes incremental
maintenance *byte-identical* to a fresh build: an add inserts at the
``searchsorted`` position, a remove deletes the row, and the resulting
``(oids, codes)`` arrays are exactly what sketching the surviving
objects in sorted-oid order would produce — the differential harness
asserts this via :meth:`digest` equality after arbitrary mutation
sequences.

Distances are popcounts of XOR-ed words (``np.bitwise_count``), batched
over queries × objects; shortlists come back in the canonical
``(hamming, oid)`` order so downstream exact refinement sees a
deterministic candidate set.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.exceptions import QueryError

__all__ = ["HammingIndex"]

#: Objects per distance block — bounds the (queries, block, words) XOR
#: buffer to a few MB regardless of database size.
_BLOCK = 8192


class HammingIndex:
    """Incrementally maintained Hamming index over packed sketches."""

    def __init__(self, words: int):
        if words < 1:
            raise QueryError("HammingIndex words must be >= 1")
        self.words = int(words)
        self._oids = np.zeros(0, dtype=np.int64)
        self._codes = np.zeros((0, self.words), dtype=np.uint64)

    def __len__(self) -> int:
        return len(self._oids)

    def __contains__(self, oid: int) -> bool:
        return self._find(int(oid)) is not None

    @property
    def oids(self) -> np.ndarray:
        """Ascending oid array (read-only view)."""
        view = self._oids.view()
        view.setflags(write=False)
        return view

    @property
    def codes(self) -> np.ndarray:
        """``(n, words)`` code matrix, row *i* belonging to ``oids[i]``."""
        view = self._codes.view()
        view.setflags(write=False)
        return view

    # -- maintenance -------------------------------------------------------

    def _find(self, oid: int) -> int | None:
        pos = int(np.searchsorted(self._oids, oid))
        if pos < len(self._oids) and self._oids[pos] == oid:
            return pos
        return None

    def _check_code(self, code: np.ndarray) -> np.ndarray:
        arr = np.ascontiguousarray(code, dtype=np.uint64)
        if arr.shape != (self.words,):
            raise QueryError(f"sketch code shape {arr.shape} != ({self.words},)")
        return arr

    def add(self, oid: int, code: np.ndarray) -> None:
        oid = int(oid)
        arr = self._check_code(code)
        pos = int(np.searchsorted(self._oids, oid))
        if pos < len(self._oids) and self._oids[pos] == oid:
            raise QueryError(f"object id {oid} already in Hamming index")
        self._oids = np.insert(self._oids, pos, oid)
        self._codes = np.insert(self._codes, pos, arr, axis=0)

    def remove(self, oid: int) -> None:
        pos = self._find(int(oid))
        if pos is None:
            raise QueryError(f"object id {oid} not in Hamming index")
        self._oids = np.delete(self._oids, pos)
        self._codes = np.delete(self._codes, pos, axis=0)

    def update(self, oid: int, code: np.ndarray) -> None:
        """Replace the code of an existing object (oid position is stable)."""
        pos = self._find(int(oid))
        if pos is None:
            raise QueryError(f"object id {oid} not in Hamming index")
        # Replace the whole row array so snapshot zero-copy views are
        # never mutated in place.
        codes = self._codes.copy()
        codes[pos] = self._check_code(code)
        self._codes = codes

    # -- queries -----------------------------------------------------------

    def distances(self, queries: np.ndarray) -> np.ndarray:
        """Hamming distances: ``(q, words)`` codes → ``(q, n)`` uint32."""
        q = np.ascontiguousarray(queries, dtype=np.uint64)
        if q.ndim == 1:
            q = q[None, :]
        if q.ndim != 2 or q.shape[1] != self.words:
            raise QueryError(f"query codes shape {q.shape} != (*, {self.words})")
        n = len(self._oids)
        out = np.empty((len(q), n), dtype=np.uint32)
        for start in range(0, n, _BLOCK):
            block = self._codes[start : start + _BLOCK]
            xor = q[:, None, :] ^ block[None, :, :]
            out[:, start : start + len(block)] = np.bitwise_count(xor).sum(
                axis=-1, dtype=np.uint32
            )
        return out

    def shortlist(self, queries: np.ndarray, budget: int) -> list[np.ndarray]:
        """Per-query oids of the *budget* Hamming-nearest codes.

        Each returned array is ordered by the canonical
        ``(hamming distance, oid)`` key; with ``budget >= n`` it is a
        permutation of every stored oid.
        """
        if budget < 1:
            raise QueryError("shortlist budget must be >= 1")
        dists = self.distances(queries)
        budget = min(budget, len(self._oids))
        out: list[np.ndarray] = []
        for row in dists:
            order = np.lexsort((self._oids, row))[:budget]
            out.append(self._oids[order].copy())
        return out

    # -- persistence -------------------------------------------------------

    def serialized(self) -> dict[str, np.ndarray]:
        """Snapshot arrays (``oids``, row-matched ``codes``)."""
        return {"oids": self._oids.copy(), "codes": self._codes.copy()}

    @classmethod
    def from_arrays(
        cls, oids: np.ndarray, codes: np.ndarray, *, copy: bool = False
    ) -> "HammingIndex":
        """Rebuild from snapshot arrays (zero-copy views welcome: every
        mutation path reallocates, so read-only buffers are never written)."""
        codes = np.asarray(codes, dtype=np.uint64)
        if codes.ndim != 2:
            raise QueryError(f"codes must be 2-D, got shape {codes.shape}")
        oids = np.asarray(oids, dtype=np.int64)
        if oids.shape != (len(codes),):
            raise QueryError(f"{len(oids)} oids for {len(codes)} codes")
        if len(oids) > 1 and not np.all(oids[:-1] < oids[1:]):
            raise QueryError("Hamming index oids must be strictly ascending")
        index = cls(codes.shape[1])
        index._oids = oids.copy() if copy else oids
        index._codes = codes.copy() if copy else codes
        return index

    def digest(self) -> str:
        """SHA-256 over rows — the differential harness's equality probe."""
        h = hashlib.sha256()
        h.update(np.ascontiguousarray(self._oids).tobytes())
        h.update(np.ascontiguousarray(self._codes).tobytes())
        return h.hexdigest()

"""Approximate candidate tier: LSH set sketches + Hamming shortlisting.

See :mod:`repro.approx.sketch` (set → packed binary sketch),
:mod:`repro.approx.hamming` (incremental Hamming index) and
:mod:`repro.approx.engine` (shortlist-then-exact-refine queries).
"""

from repro.approx.engine import ApproxFilterRefineEngine, default_shortlist
from repro.approx.hamming import HammingIndex
from repro.approx.sketch import (
    DEFAULT_NNZ,
    DEFAULT_WIDTH,
    DEFAULT_WTA,
    SetSketcher,
)

__all__ = [
    "ApproxFilterRefineEngine",
    "HammingIndex",
    "SetSketcher",
    "default_shortlist",
    "DEFAULT_WIDTH",
    "DEFAULT_NNZ",
    "DEFAULT_WTA",
]

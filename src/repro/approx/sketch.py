"""Binary set sketches via seeded sparse random projections.

Implements the fly-olfactory-style locality-sensitive sketch of
"Approximate Vector Set Search" (arXiv 2412.03301) adapted to the
paper's vector-set objects: every element of a set is expanded through a
sparse signed random projection into a wide activation vector, the
``wta`` strongest activations per element light one bit each, and the
per-element codes are pooled over the set (OR-pool by default, which
makes the sketch invariant under element permutation — a hard
requirement, since minimal matching distance is permutation invariant).
The pooled code is packed into little-endian ``uint64`` words so Hamming
distances reduce to ``popcount(xor)``.

The projection matrix is generated deterministically from
``(seed, dims, width, nnz)`` through :mod:`repro.seeding` — two
processes with the same parameters build bit-identical matrices — and is
additionally *persisted* inside database snapshots, content-addressed by
a SHA-256 digest, so sketches stay reproducible even across future
changes to the generation scheme.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np

from repro.exceptions import QueryError
from repro.seeding import DEFAULT_SEED, spawn

__all__ = ["SetSketcher", "DEFAULT_WIDTH", "DEFAULT_NNZ", "DEFAULT_WTA"]

#: Sketch width in bits; must be a multiple of 64 (one uint64 word each).
DEFAULT_WIDTH = 512

#: Nonzero entries per projection row (sparse fly-style expansion).
DEFAULT_NNZ = 4

#: Activations kept per element (winner-take-all sparsification).
DEFAULT_WTA = 40

_POOLS = ("or", "wta")


def _projection(dims: int, width: int, nnz: int, seed: int) -> np.ndarray:
    """The ``(width, dims)`` sparse signed projection, deterministically.

    Row *i* connects output bit *i* to ``nnz`` distinct input dimensions
    with signs ±1.  Signed (rather than the fly's binary) connections
    keep the expansion informative when features are correlated or share
    a common offset, at identical cost.
    """
    rng = spawn(seed, "sketch-projection", dims, width, nnz)
    proj = np.zeros((width, dims), dtype=np.float64)
    for row in range(width):
        cols = rng.choice(dims, size=nnz, replace=False)
        signs = rng.integers(0, 2, size=nnz) * 2 - 1
        proj[row, cols] = signs.astype(np.float64)
    return proj


class SetSketcher:
    """Map ``(m, dims)`` vector sets to fixed-width packed binary sketches.

    Parameters
    ----------
    dims:
        Element dimensionality of the sets to sketch.
    width:
        Sketch width in bits (multiple of 64).
    nnz:
        Nonzero entries per projection row.
    wta:
        Bits set per element before pooling (``pool="or"``) or kept in
        the pooled activation (``pool="wta"``).
    seed:
        Root seed for the projection matrix (see :mod:`repro.seeding`).
    pool:
        ``"or"`` — per-element winner-take-all codes OR-ed over the set
        (default; each element contributes its own signature, so small
        sets are not drowned out).  ``"wta"`` — element activations are
        max-pooled first, then thresholded once.
    projection:
        Pre-built projection matrix (snapshot restore path); must have
        shape ``(width, dims)``.  When given, the matrix is trusted as
        the source of truth and *seed* only labels its provenance.
    """

    def __init__(
        self,
        dims: int,
        *,
        width: int = DEFAULT_WIDTH,
        nnz: int | None = None,
        wta: int = DEFAULT_WTA,
        seed: int = DEFAULT_SEED,
        pool: str = "or",
        projection: np.ndarray | None = None,
    ):
        if dims < 1:
            raise QueryError("sketch dims must be >= 1")
        if nnz is None:
            # The default clamps to low-dimensional feature spaces (a
            # row cannot draw more distinct coordinates than exist).
            nnz = min(DEFAULT_NNZ, int(dims))
        if width < 64 or width % 64:
            raise QueryError(f"sketch width must be a positive multiple of 64: {width}")
        if not 1 <= nnz <= dims:
            raise QueryError(f"sketch nnz must be in [1, dims={dims}]: {nnz}")
        if not 1 <= wta <= width:
            raise QueryError(f"sketch wta must be in [1, width={width}]: {wta}")
        if pool not in _POOLS:
            raise QueryError(f"sketch pool must be one of {_POOLS}: {pool!r}")
        self.dims = int(dims)
        self.width = int(width)
        self.nnz = int(nnz)
        self.wta = int(wta)
        self.seed = int(seed)
        self.pool = pool
        if projection is None:
            projection = _projection(self.dims, self.width, self.nnz, self.seed)
        else:
            projection = np.ascontiguousarray(projection, dtype=np.float64)
            if projection.shape != (self.width, self.dims):
                raise QueryError(
                    f"projection shape {projection.shape} != ({width}, {dims})"
                )
        self.projection = projection
        self.projection.setflags(write=False)

    # -- identity ----------------------------------------------------------

    @property
    def words(self) -> int:
        """Packed sketch length in ``uint64`` words."""
        return self.width // 64

    def params(self) -> dict:
        """The content-addressing key (everything but the matrix bytes)."""
        return {
            "dims": self.dims,
            "width": self.width,
            "nnz": self.nnz,
            "wta": self.wta,
            "seed": self.seed,
            "pool": self.pool,
        }

    def digest(self) -> str:
        """SHA-256 over parameters and projection content.

        Snapshots store this next to the matrix; the loader recomputes
        it to detect a projection that drifted from its declared
        parameters (e.g. partial corruption the per-array CRC missed
        because meta and arrays were swapped between files).
        """
        h = hashlib.sha256()
        h.update(json.dumps(self.params(), sort_keys=True).encode())
        h.update(np.ascontiguousarray(self.projection).tobytes())
        return h.hexdigest()

    @classmethod
    def from_snapshot(cls, params: dict, projection: np.ndarray) -> "SetSketcher":
        """Rebuild from persisted parameters + matrix, verifying the digest."""
        expected = params.get("digest")
        kwargs = {k: params[k] for k in ("width", "nnz", "wta", "seed", "pool")}
        sketcher = cls(int(params["dims"]), projection=projection, **kwargs)
        if expected is not None and sketcher.digest() != expected:
            raise QueryError(
                "sketch projection does not match its content digest; "
                "snapshot sketch arrays are corrupt or mismatched"
            )
        return sketcher

    # -- sketching ---------------------------------------------------------

    def _pack(self, bits: np.ndarray) -> np.ndarray:
        """Pack a ``(width,)`` 0/1 array into little-endian uint64 words."""
        packed = np.packbits(bits.astype(np.uint8), bitorder="little")
        return np.frombuffer(packed.tobytes(), dtype="<u8").astype(np.uint64)

    def sketch(self, vectors: np.ndarray) -> np.ndarray:
        """Sketch one set: ``(m, dims)`` → ``(words,)`` uint64.

        Deterministic including ties: the top-``wta`` activations are
        selected by a stable sort, so equal activations resolve to the
        lower bit index in every process.
        """
        arr = np.asarray(
            getattr(vectors, "vectors", vectors), dtype=np.float64
        )
        if arr.ndim != 2 or not len(arr) or arr.shape[1] != self.dims:
            raise QueryError(f"cannot sketch set of shape {arr.shape}")
        acts = arr @ self.projection.T  # (m, width)
        bits = np.zeros(self.width, dtype=bool)
        if self.pool == "or":
            top = np.argsort(-acts, axis=1, kind="stable")[:, : self.wta]
            bits[top.ravel()] = True
        else:  # "wta": pool activations, threshold once
            pooled = acts.max(axis=0)
            top = np.argsort(-pooled, kind="stable")[: self.wta]
            bits[top] = True
        return self._pack(bits)

    def sketch_many(self, sets) -> np.ndarray:
        """Sketch a sequence of sets into an ``(n, words)`` uint64 matrix."""
        if not len(sets):
            return np.zeros((0, self.words), dtype=np.uint64)
        return np.stack([self.sketch(s) for s in sets])

"""Principal-axis transform for full rotation invariance.

For similarity search that is not confined to 90-degree rotations, the
paper applies a principal-axis transform (Section 3.2).  The functions
here compute the PCA frame of a voxel object and re-voxelize it aligned
to that frame.  Axis signs are disambiguated by third-moment (skewness)
so that mirrored inputs map to mirrored outputs rather than to arbitrary
frames.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import VoxelizationError
from repro.voxel.grid import VoxelGrid
from repro.voxel.voxelize import voxelize_points


def principal_axes(points: np.ndarray) -> np.ndarray:
    """Return the 3x3 matrix whose rows are the principal axes of *points*.

    Rows are ordered by decreasing variance.  Each axis's sign is fixed so
    that the third central moment along it is non-negative; if an axis has
    (numerically) zero skewness, its sign is fixed by the first non-zero
    coordinate.  The returned matrix has determinant +1 (a rotation): if
    the skewness-based orientation produces a reflection, the last axis is
    flipped.
    """
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2 or pts.shape[1] != 3 or len(pts) < 2:
        raise VoxelizationError("principal_axes needs at least two 3-D points")
    centered = pts - pts.mean(axis=0)
    cov = centered.T @ cov_weight(centered)
    eigenvalues, eigenvectors = np.linalg.eigh(cov)
    order = np.argsort(eigenvalues)[::-1]
    axes = eigenvectors[:, order].T
    projected = centered @ axes.T
    for row in range(3):
        skew = float(np.mean(projected[:, row] ** 3))
        if abs(skew) > 1e-9:
            if skew < 0:
                axes[row] = -axes[row]
        else:
            lead = axes[row][np.argmax(np.abs(axes[row]))]
            if lead < 0:
                axes[row] = -axes[row]
    if np.linalg.det(axes) < 0:
        axes[2] = -axes[2]
    return axes


def cov_weight(centered: np.ndarray) -> np.ndarray:
    """Weight matrix for the covariance product (uniform weights).

    Separated out so subclasses of the pipeline can plug in e.g.
    surface-only weighting without copying the eigen decomposition code.
    """
    return centered / len(centered)


def pca_align_points(points: np.ndarray) -> np.ndarray:
    """Rotate *points* into their principal-axis frame (centered)."""
    pts = np.asarray(points, dtype=float)
    axes = principal_axes(pts)
    return (pts - pts.mean(axis=0)) @ axes.T


def pca_align_grid(grid: VoxelGrid, margin: int = 1) -> VoxelGrid:
    """Re-voxelize *grid* aligned to its principal axes.

    The voxel centers are rotated into the PCA frame and re-rasterized at
    the same resolution.  This necessarily resamples the object; the
    paper applies the transform before feature extraction for queries
    that need full rotation invariance.
    """
    if grid.is_empty():
        raise VoxelizationError("cannot PCA-align an empty grid")
    aligned = pca_align_points(grid.centers())
    return voxelize_points(aligned, resolution=grid.resolution, margin=margin)

"""Minimum distance over the cube symmetry group (Definition 2).

The paper achieves 90-degree-rotation and (optionally) reflection
invariance by evaluating the distance for all 24/48 permutations of the
*query* object at runtime and taking the minimum.  These helpers do the
same for arbitrary feature models: the query grid is transformed by each
group element, features are re-extracted, and the minimum distance to the
database object's stored features is returned.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence, TypeVar

import numpy as np

from repro.exceptions import VoxelizationError
from repro.geometry.transform import symmetry_matrices
from repro.voxel.grid import VoxelGrid

FeatureT = TypeVar("FeatureT")


def symmetry_variants(
    grid: VoxelGrid, include_reflections: bool = True
) -> list[VoxelGrid]:
    """All symmetric variants of *grid* — 24 rotations, 48 with mirrors."""
    return [grid.transformed(mat) for mat in symmetry_matrices(include_reflections)]


def invariant_distance(
    query_grid: VoxelGrid,
    database_features: FeatureT,
    extract: Callable[[VoxelGrid], FeatureT],
    distance: Callable[[FeatureT, FeatureT], float],
    include_reflections: bool = True,
) -> float:
    """Minimum distance over all query-object symmetries (Definition 2).

    Parameters
    ----------
    query_grid:
        Normalized voxel grid of the query object.
    database_features:
        Pre-extracted features of the database object.
    extract:
        Feature extraction to apply to every transformed query grid.
    distance:
        Distance on the extracted features.
    include_reflections:
        48 variants when true (design similarity), 24 when false
        (production similarity, where mirrored parts differ).
    """
    best = np.inf
    for variant in symmetry_variants(query_grid, include_reflections):
        value = distance(extract(variant), database_features)
        if value < best:
            best = value
    return float(best)


def invariant_distance_precomputed(
    query_variants: Sequence[FeatureT],
    database_features: FeatureT,
    distance: Callable[[FeatureT, FeatureT], float],
) -> float:
    """Like :func:`invariant_distance` but with the query's per-symmetry
    features already extracted — the form used inside query loops, where
    the 24/48 extractions are paid once per query instead of once per
    database object."""
    best = np.inf
    for features in query_variants:
        value = distance(features, database_features)
        if value < best:
            best = value
    return float(best)


def extract_all_variants(
    grid: VoxelGrid,
    extract: Callable[[VoxelGrid], FeatureT],
    include_reflections: bool = True,
) -> list[FeatureT]:
    """Extract features for every symmetry variant of *grid* once."""
    return [extract(variant) for variant in symmetry_variants(grid, include_reflections)]


def canonical_symmetry_matrix(
    grid: VoxelGrid, include_reflections: bool = True
) -> np.ndarray:
    """A deterministic cube symmetry that brings *grid* into canonical pose.

    This is the principal-axis idea of Section 3.2 restricted to the
    90-degree group: axes are reordered by decreasing coordinate variance
    of the object voxels and each axis' sign is fixed so the third
    central moment (skewness) along it is non-negative.  Moments vary
    continuously with the shape, so near-identical parts in different
    orientations canonicalize to near-identical grids — which lets
    dataset preparation quotient out the 24/48-fold invariance once
    instead of evaluating Definition 2's minimum for every distance.

    With ``include_reflections=False`` the returned matrix is forced to
    determinant +1 (mirrored parts then remain distinguishable) by
    flipping the sign of the axis with the smallest absolute skewness.
    """
    if grid.is_empty():
        raise VoxelizationError("cannot canonicalize an empty grid")
    centered = grid.indices() - grid.center_of_mass()
    variance = centered.var(axis=0)
    skewness = (centered**3).mean(axis=0)
    # Stable ordering: variance descending, axis index as tie-breaker.
    order = np.lexsort((np.arange(3), -variance))
    signs = np.where(skewness[order] >= 0, 1.0, -1.0)
    matrix = np.zeros((3, 3))
    for new_axis in range(3):
        matrix[new_axis, order[new_axis]] = signs[new_axis]
    if not include_reflections and np.linalg.det(matrix) < 0:
        weakest = int(np.argmin(np.abs(skewness[order])))
        matrix[weakest] = -matrix[weakest]
    return matrix


def canonicalize_grid(grid: VoxelGrid, include_reflections: bool = True) -> VoxelGrid:
    """Transform *grid* into its canonical 90-degree pose."""
    return grid.transformed(canonical_symmetry_matrix(grid, include_reflections))

"""Normalization layer: translation, scaling, rotation, reflection.

Section 3.2 of the paper requires translation and rotation invariance and
*tunable* reflection and scaling invariance.  This subpackage provides:

* :mod:`repro.normalize.pose` — translation/scale normalization with the
  per-axis scale factors stored so scaling invariance can be switched on
  or off at query time,
* :mod:`repro.normalize.pca` — the principal-axis transform used when
  arbitrary (not just 90-degree) rotation invariance is desired,
* :mod:`repro.normalize.symmetry` — minimum distance over the 24/48-fold
  cube symmetry group (Definition 2).
"""

from repro.normalize.pca import pca_align_grid, pca_align_points, principal_axes
from repro.normalize.pose import PoseInfo, center_grid, normalize_grid
from repro.normalize.symmetry import (
    canonical_symmetry_matrix,
    canonicalize_grid,
    invariant_distance,
    symmetry_variants,
)

__all__ = [
    "PoseInfo",
    "normalize_grid",
    "center_grid",
    "principal_axes",
    "pca_align_points",
    "pca_align_grid",
    "invariant_distance",
    "symmetry_variants",
    "canonical_symmetry_matrix",
    "canonicalize_grid",
]

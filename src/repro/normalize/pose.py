"""Translation and scale normalization of voxel grids.

The paper stores every object "normalized with respect to translation and
scaling" together with its three original scale factors, so that scaling
invariance can be (de)activated at runtime.  :func:`normalize_grid`
implements exactly that: it recenters the occupied bounding box on the
raster and records the world extents in a :class:`PoseInfo`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import VoxelizationError
from repro.voxel.grid import VoxelGrid


@dataclass(frozen=True)
class PoseInfo:
    """Bookkeeping produced by normalization.

    Attributes
    ----------
    scale_factors:
        Original world extents of the object along x, y, z — the "scaling
        factors for each of the three dimensions" of Section 3.2.  With
        scaling invariance *off*, distances may compare these directly.
    translation:
        Index-space translation that was applied to center the object.
    """

    scale_factors: tuple[float, float, float]
    translation: tuple[int, int, int]

    def size_ratio(self, other: "PoseInfo") -> float:
        """Ratio of bounding-volume sizes in [0, 1]; used as an optional
        penalty when scaling invariance is disabled."""
        mine = float(np.prod(self.scale_factors))
        theirs = float(np.prod(other.scale_factors))
        if mine == 0 or theirs == 0:
            return 0.0
        return min(mine, theirs) / max(mine, theirs)


def center_grid(grid: VoxelGrid) -> VoxelGrid:
    """Translate the occupied voxels so their bounding box is centered.

    The integer translation moves the bounding-box center as close as
    possible to the raster center; ties round toward the origin so the
    operation is deterministic.
    """
    if grid.is_empty():
        raise VoxelizationError("cannot center an empty grid")
    lower, upper = grid.bounding_box()
    r = grid.resolution
    # Desired lower corner: centered with the extra cell (if any) below.
    extent = upper - lower + 1
    target_lower = (r - extent) // 2
    shift = target_lower - lower
    idx = grid.indices() + shift
    occupancy = np.zeros_like(grid.occupancy)
    occupancy[idx[:, 0], idx[:, 1], idx[:, 2]] = True
    return VoxelGrid(occupancy, grid.origin - shift * grid.voxel_size, grid.voxel_size)


def normalize_grid(grid: VoxelGrid) -> tuple[VoxelGrid, PoseInfo]:
    """Center *grid* and report its pose bookkeeping.

    Returns the centered grid and a :class:`PoseInfo` carrying the world
    extents (scale factors) and the applied integer translation.
    """
    if grid.is_empty():
        raise VoxelizationError("cannot normalize an empty grid")
    lower, upper = grid.bounding_box()
    extents = (upper - lower + 1) * grid.voxel_size
    centered = center_grid(grid)
    new_lower, _ = centered.bounding_box()
    shift = new_lower - lower
    info = PoseInfo(
        scale_factors=(float(extents[0]), float(extents[1]), float(extents[2])),
        translation=(int(shift[0]), int(shift[1]), int(shift[2])),
    )
    return centered, info

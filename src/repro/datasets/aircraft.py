"""The synthetic Aircraft dataset (substitute for the paper's 5,000 parts).

Section 5.1: "contains many small objects (e.g. nuts, bolts, etc.) and a
few large ones (e.g. wings)".  The class mix is therefore heavily skewed
toward small hardware; large structural parts are rare.  The size ``n``
is a parameter — the paper's scale is ``n = 5000``, the benchmark suite
defaults to a smaller value for bounded runtimes (see DESIGN.md) and
honors the ``REPRO_AIRCRAFT_N`` environment variable.
"""

from __future__ import annotations

import os

import numpy as np

from repro.datasets.parts import CADPart, make_noise_part, make_part, random_placement
from repro.exceptions import DatasetError

#: Family -> sampling weight.  Hardware dominates; wings are rare.
AIRCRAFT_CLASSES: dict[str, float] = {
    "nut": 0.20,
    "bolt": 0.22,
    "rivet": 0.18,
    "washer": 0.14,
    "clip": 0.08,
    "hinge": 0.06,
    "bracket": 0.05,
    "wing": 0.02,
    "spar": 0.02,
    "panel": 0.03,
}
_NOISE_WEIGHT = 0.04  # unclassified one-offs


def default_aircraft_size(fallback: int = 600) -> int:
    """Benchmark-scale dataset size; ``REPRO_AIRCRAFT_N=5000`` restores
    the paper's scale."""
    try:
        value = int(os.environ.get("REPRO_AIRCRAFT_N", fallback))
    except ValueError:
        raise DatasetError("REPRO_AIRCRAFT_N must be an integer") from None
    if value < 1:
        raise DatasetError("aircraft dataset size must be >= 1")
    return value


def make_aircraft_dataset(
    n: int | None = None,
    seed: int = 1903,
    place: bool = True,
) -> tuple[list[CADPart], np.ndarray]:
    """Generate the Aircraft dataset with *n* objects.

    Returns ``(parts, labels)``; class ids follow the sorted family
    order, noise objects get unique negative labels.
    """
    if n is None:
        n = default_aircraft_size()
    if n < 1:
        raise DatasetError("n must be >= 1")
    rng = np.random.default_rng(seed)
    families = sorted(AIRCRAFT_CLASSES)
    weights = np.array([AIRCRAFT_CLASSES[f] for f in families] + [_NOISE_WEIGHT])
    weights = weights / weights.sum()
    parts: list[CADPart] = []
    labels: list[int] = []
    noise_counter = 0
    draws = rng.choice(len(weights), size=n, p=weights)
    for index, draw in enumerate(draws):
        if draw == len(families):
            solid = make_noise_part(rng)
            if place:
                solid = solid.transformed(random_placement(rng))
            noise_counter += 1
            parts.append(
                CADPart(
                    name=f"noise-{noise_counter:04d}",
                    family="noise",
                    class_id=-noise_counter,
                    solid=solid,
                )
            )
            labels.append(-noise_counter)
        else:
            family = families[draw]
            parts.append(
                make_part(
                    family,
                    rng,
                    name=f"{family}-{index:04d}",
                    class_id=int(draw),
                    place=place,
                )
            )
            labels.append(int(draw))
    return parts, np.asarray(labels)

"""The synthetic Car dataset (substitute for the paper's ~200 parts).

Section 5.1: "contains several groups of intuitively similar objects,
e.g. a set of tires, doors, fenders, engine blocks and kinematic
envelopes of seats".  We generate exactly those groups (plus rims,
exhausts and brackets for variety) and a handful of noise parts.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.parts import CADPart, make_noise_part, make_part, random_placement
from repro.exceptions import DatasetError

#: Family -> default object count; totals 200 like the paper's dataset.
CAR_CLASSES: dict[str, int] = {
    "tire": 30,
    "rim": 24,
    "door": 28,
    "fender": 24,
    "engine_block": 18,
    "seat": 24,
    "exhaust": 16,
    "bracket": 20,
}
_CAR_NOISE = 16  # one-off parts without a class


def make_car_dataset(
    seed: int = 2003,
    class_counts: dict[str, int] | None = None,
    n_noise: int = _CAR_NOISE,
    place: bool = True,
) -> tuple[list[CADPart], np.ndarray]:
    """Generate the Car dataset.

    Returns ``(parts, labels)`` where ``labels[i]`` is a small integer
    class id per family and noise objects get unique negative labels (so
    no two noise parts ever count as "same class" in quality metrics).
    """
    counts = dict(class_counts or CAR_CLASSES)
    if any(count < 0 for count in counts.values()):
        raise DatasetError("class counts must be non-negative")
    if n_noise < 0:
        raise DatasetError("n_noise must be non-negative")
    rng = np.random.default_rng(seed)
    parts: list[CADPart] = []
    labels: list[int] = []
    for class_id, (family, count) in enumerate(sorted(counts.items())):
        for index in range(count):
            parts.append(
                make_part(
                    family,
                    rng,
                    name=f"{family}-{index:03d}",
                    class_id=class_id,
                    place=place,
                )
            )
            labels.append(class_id)
    for index in range(n_noise):
        solid = make_noise_part(rng)
        if place:
            solid = solid.transformed(random_placement(rng))
        parts.append(
            CADPart(
                name=f"noise-{index:03d}", family="noise", class_id=-(index + 1), solid=solid
            )
        )
        labels.append(-(index + 1))
    return parts, np.asarray(labels)

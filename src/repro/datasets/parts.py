"""Parametric CAD part families.

Every family is a function ``rng -> Solid`` that produces one part with
randomized (but family-typical) proportions, so parts of one family are
"intuitively similar" in the paper's sense while differing in detail.
Families cover the part types the paper names: tires, doors, fenders,
engine blocks and seat envelopes for the car dataset; nuts, bolts and
wings (plus other small hardware) for the aircraft dataset.

All parts are built near the origin with a characteristic size of ~1–3
units and then randomly placed by :func:`make_part` (random 90-degree
orientation, offset and mirroring), exercising the invariances of
Section 3.2: the normalization pipeline must undo these placements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.exceptions import DatasetError
from repro.geometry.sdf import (
    Box,
    Capsule,
    Cone,
    Cylinder,
    Ellipsoid,
    Solid,
    Sphere,
    Torus,
    union_all,
)
from repro.geometry.transform import Transform, reflection_matrix, symmetry_matrices


@dataclass(frozen=True)
class CADPart:
    """One labeled dataset object."""

    name: str
    family: str
    class_id: int
    solid: Solid


def _jitter(rng: np.random.Generator, base: float, spread: float = 0.15) -> float:
    """Family-typical randomization: *base* scaled by up to +-spread."""
    return float(base * (1.0 + rng.uniform(-spread, spread)))


# -- car part families -------------------------------------------------------


def make_tire(rng: np.random.Generator) -> Solid:
    """A tire: torus with a fat profile."""
    major = _jitter(rng, 1.0)
    minor = _jitter(rng, 0.34)
    return Torus(major_radius=major, minor_radius=minor, axis="z")


def make_rim(rng: np.random.Generator) -> Solid:
    """A wheel rim: annular disc with a hub cylinder."""
    outer = _jitter(rng, 1.0)
    disc = Cylinder(radius=outer, height=_jitter(rng, 0.4), inner_radius=outer * 0.35)
    hub = Cylinder(radius=outer * 0.28, height=_jitter(rng, 0.55))
    return disc | hub


def make_door(rng: np.random.Generator) -> Solid:
    """A car door: a tall thin panel with a window cut-out.

    Window position and size vary within the family (front vs. rear
    doors), and a handle block sits at a varying height — structural
    variation that moves mass between histogram cells while the
    box-decomposition stays door-like.
    """
    width = _jitter(rng, 2.2)
    height = _jitter(rng, 1.8)
    thickness = _jitter(rng, 0.22)
    panel = Box(size=(width, thickness, height))
    window = Box(
        center=(width * rng.uniform(-0.15, 0.15), 0.0, height * rng.uniform(0.2, 0.33)),
        size=(width * rng.uniform(0.45, 0.68), thickness * 2.5, height * rng.uniform(0.3, 0.45)),
    )
    handle = Box(
        center=(width * rng.uniform(0.25, 0.4), thickness * 0.8, -height * rng.uniform(0.0, 0.15)),
        size=(width * 0.16, thickness * 1.2, height * 0.07),
    )
    return (panel - window) | handle


def make_fender(rng: np.random.Generator) -> Solid:
    """A fender: a block with the wheel-arch cylinder carved out."""
    length = _jitter(rng, 2.4)
    height = _jitter(rng, 1.0)
    depth = _jitter(rng, 0.5)
    block = Box(size=(length, depth, height))
    arch = Cylinder(
        center=(0.0, 0.0, -height / 2.0),
        radius=_jitter(rng, 0.75),
        height=depth * 2.5,
        axis="y",
    )
    return block - arch


def make_engine_block(rng: np.random.Generator) -> Solid:
    """An engine block: a massive cuboid with 3–5 cylinder bores and a
    sump flange; the bore count and spacing vary within the family."""
    length = _jitter(rng, 2.2)
    width = _jitter(rng, 1.1)
    height = _jitter(rng, 1.2)
    block = Box(size=(length, width, height))
    n_bores = int(rng.integers(3, 6))
    bore_radius = width * _jitter(rng, 0.16)
    span = rng.uniform(0.28, 0.38)
    bores = [
        Cylinder(
            center=(x, width * rng.uniform(-0.08, 0.08), height * 0.25),
            radius=bore_radius,
            height=height,
            axis="z",
        )
        for x in np.linspace(-length * span, length * span, n_bores)
    ]
    result: Solid = block
    for bore in bores:
        result = result - bore
    flange = Box(
        center=(0.0, 0.0, -height * 0.55),
        size=(length * _jitter(rng, 0.8), width * 1.3, height * 0.14),
    )
    return result | flange


def make_seat(rng: np.random.Generator) -> Solid:
    """A seat's kinematic envelope: cushion, backrest and headrest; the
    backrest rake and headrest offset vary (seat adjustment range)."""
    seat_w = _jitter(rng, 1.2)
    cushion = Box(center=(0.15, 0.0, 0.0), size=(1.3, seat_w, _jitter(rng, 0.4)))
    rake = rng.uniform(-0.15, 0.1)
    back_h = _jitter(rng, 1.5)
    backrest = Box(
        center=(-0.5 + rake, 0.0, 0.7),
        size=(_jitter(rng, 0.4), seat_w * 0.95, back_h),
    )
    headrest = Box(
        center=(-0.5 + rake * 1.5, 0.0, 0.7 + back_h / 2 + 0.2),
        size=(0.3, seat_w * rng.uniform(0.4, 0.55), 0.3),
    )
    return cushion | backrest | headrest


def make_exhaust(rng: np.random.Generator) -> Solid:
    """An exhaust section: a long tube with a muffler bulge."""
    length = _jitter(rng, 2.6)
    pipe = Cylinder(radius=_jitter(rng, 0.16), height=length, axis="x")
    muffler = Ellipsoid(
        center=(length * 0.18, 0.0, 0.0),
        radii=(length * 0.22, _jitter(rng, 0.34), _jitter(rng, 0.34)),
    )
    return pipe | muffler


def make_bracket(rng: np.random.Generator) -> Solid:
    """A mounting bracket: a small L-profile with a gusset; the wall
    sits at a varying position along the base."""
    width = _jitter(rng, 0.9)
    base_len = _jitter(rng, 1.0)
    wall_x = base_len * rng.uniform(0.25, 0.42)
    base = Box(center=(0.0, 0.0, 0.0), size=(base_len, width, 0.18))
    wall = Box(center=(wall_x, 0.0, 0.45), size=(0.18, width * 0.95, _jitter(rng, 1.0)))
    gusset = Box(
        center=(wall_x - 0.2, 0.0, 0.18),
        size=(0.3, width * rng.uniform(0.3, 0.5), 0.3),
    )
    return base | wall | gusset


# -- aircraft part families ---------------------------------------------------


def _hex_prism(radius: float, height: float) -> Solid:
    """A hexagonal prism along z: intersection of three rotated slabs."""
    slab = Box(size=(radius * 2.4, radius * np.sqrt(3.0), height))
    return (
        slab
        & slab.rotated("z", np.pi / 3.0)
        & slab.rotated("z", 2.0 * np.pi / 3.0)
    )


def make_nut(rng: np.random.Generator) -> Solid:
    """A nut: hexagonal prism with a threaded bore."""
    outer = _jitter(rng, 0.5)
    height = _jitter(rng, 0.4)
    bore = Cylinder(radius=outer * _jitter(rng, 0.45, 0.1), height=height * 1.5)
    return _hex_prism(outer, height) - bore


def make_bolt(rng: np.random.Generator) -> Solid:
    """A bolt: shaft capsule plus a hexagonal head."""
    shaft_len = _jitter(rng, 1.5)
    shaft = Capsule(radius=_jitter(rng, 0.16), height=shaft_len, axis="z")
    head = _hex_prism(_jitter(rng, 0.38), _jitter(rng, 0.26)).translated(
        [0.0, 0.0, shaft_len / 2.0]
    )
    return shaft | head


def make_rivet(rng: np.random.Generator) -> Solid:
    """A rivet: short shaft with a domed head."""
    shaft_len = _jitter(rng, 0.7)
    shaft = Cylinder(radius=_jitter(rng, 0.14), height=shaft_len, axis="z")
    head = Sphere(center=(0.0, 0.0, shaft_len / 2.0), radius=_jitter(rng, 0.28))
    return shaft | head


def make_washer(rng: np.random.Generator) -> Solid:
    """A washer: a very thin annulus."""
    outer = _jitter(rng, 0.55)
    return Cylinder(
        radius=outer, height=_jitter(rng, 0.12), inner_radius=outer * _jitter(rng, 0.5, 0.1)
    )


def make_clip(rng: np.random.Generator) -> Solid:
    """A retaining clip: a small U of three thin boxes."""
    span = _jitter(rng, 0.8)
    depth = _jitter(rng, 0.35)
    base = Box(size=(span, depth, 0.12))
    left = Box(center=(-span / 2 + 0.06, 0.0, 0.25), size=(0.12, depth, 0.5))
    right = Box(center=(span / 2 - 0.06, 0.0, 0.25), size=(0.12, depth, 0.5))
    return union_all([base, left, right])


def make_hinge(rng: np.random.Generator) -> Solid:
    """A hinge: two plates joined by a barrel cylinder."""
    plate = _jitter(rng, 0.9)
    left = Box(center=(-plate / 2, 0.0, 0.0), size=(plate, _jitter(rng, 0.6), 0.14))
    right = Box(center=(plate / 2, 0.0, 0.0), size=(plate, _jitter(rng, 0.6), 0.14))
    barrel = Cylinder(radius=_jitter(rng, 0.14), height=_jitter(rng, 0.7), axis="y")
    return union_all([left, right, barrel])


def make_wing(rng: np.random.Generator) -> Solid:
    """A wing: a large tapered plate with a flap cut-out; taper ratio
    and flap position vary within the family."""
    span = _jitter(rng, 3.0)
    chord = _jitter(rng, 1.1)
    taper = rng.uniform(0.5, 0.75)
    # Thicknesses stay above one voxel at the paper's r = 15 raster
    # (span ~3 -> voxel ~0.25); sub-voxel sheet metal cannot be
    # represented at that resolution anyway.
    inner = Box(center=(-span * 0.25, 0.0, 0.0), size=(span * 0.5, chord, 0.34))
    outer = Box(
        center=(span * 0.25, 0.0, 0.0), size=(span * 0.52, chord * taper, 0.28)
    )
    tip = Cone(
        center=(span * 0.5, 0.0, 0.0), radius=chord * 0.3, height=span * 0.3, axis="x"
    )
    flap = Box(
        center=(-span * rng.uniform(0.1, 0.3), -chord * 0.45, 0.0),
        size=(span * 0.25, chord * 0.22, 0.6),
    )
    return union_all([inner, outer, tip]) - flap


def make_spar(rng: np.random.Generator) -> Solid:
    """A spar: a long slender beam with an I-profile.  Web and flange
    thicknesses stay above one voxel at r = 15 (length ~3.2 -> voxel
    ~0.27)."""
    length = _jitter(rng, 3.2)
    web = Box(size=(length, 0.3, _jitter(rng, 0.55)))
    top = Box(center=(0.0, 0.0, 0.4), size=(length, _jitter(rng, 0.55), 0.28))
    bottom = Box(center=(0.0, 0.0, -0.4), size=(length, _jitter(rng, 0.55), 0.28))
    return union_all([web, top, bottom])


def make_panel(rng: np.random.Generator) -> Solid:
    """A fuselage panel: a broad thin plate with 2–4 stiffening ribs at
    varying positions."""
    width = _jitter(rng, 2.4)
    height = _jitter(rng, 1.7)
    plate = Box(size=(width, 0.22, height))
    n_ribs = int(rng.integers(2, 5))
    span = rng.uniform(0.25, 0.38)
    ribs = [
        Box(center=(x, 0.22, 0.0), size=(0.24, 0.26, height * rng.uniform(0.8, 0.95)))
        for x in np.linspace(-width * span, width * span, n_ribs)
    ]
    return union_all([plate] + ribs)


#: All known part families, by name.
PART_FAMILIES: dict[str, Callable[[np.random.Generator], Solid]] = {
    "tire": make_tire,
    "rim": make_rim,
    "door": make_door,
    "fender": make_fender,
    "engine_block": make_engine_block,
    "seat": make_seat,
    "exhaust": make_exhaust,
    "bracket": make_bracket,
    "nut": make_nut,
    "bolt": make_bolt,
    "rivet": make_rivet,
    "washer": make_washer,
    "clip": make_clip,
    "hinge": make_hinge,
    "wing": make_wing,
    "spar": make_spar,
    "panel": make_panel,
}


def make_noise_part(rng: np.random.Generator) -> Solid:
    """An unclassifiable one-off: a random union of 2–4 primitives."""
    n_pieces = int(rng.integers(2, 5))
    pieces: list[Solid] = []
    for _ in range(n_pieces):
        kind = rng.integers(0, 4)
        offset = rng.uniform(-0.6, 0.6, size=3)
        if kind == 0:
            piece: Solid = Box(size=tuple(rng.uniform(0.3, 1.4, size=3)))
        elif kind == 1:
            piece = Sphere(radius=float(rng.uniform(0.2, 0.6)))
        elif kind == 2:
            piece = Cylinder(
                radius=float(rng.uniform(0.15, 0.5)),
                height=float(rng.uniform(0.4, 1.6)),
                axis="xyz"[rng.integers(0, 3)],
            )
        else:
            piece = Cone(
                radius=float(rng.uniform(0.2, 0.6)), height=float(rng.uniform(0.4, 1.2))
            )
        pieces.append(piece.translated(offset))
    return union_all(pieces)


def random_placement(rng: np.random.Generator, mirror: bool = True) -> Transform:
    """A random rigid placement: 90-degree orientation, offset, optional
    mirroring — the nuisance transformations normalization must undo."""
    matrices = symmetry_matrices(include_reflections=False)
    matrix = matrices[rng.integers(0, len(matrices))]
    if mirror and rng.random() < 0.5:
        matrix = matrix @ reflection_matrix("x")
    offset = rng.uniform(-5.0, 5.0, size=3)
    return Transform(matrix, offset)


def make_part(
    family: str,
    rng: np.random.Generator,
    name: str | None = None,
    class_id: int | None = None,
    place: bool = True,
) -> CADPart:
    """Instantiate one randomized part of *family*."""
    try:
        factory = PART_FAMILIES[family]
    except KeyError:
        raise DatasetError(
            f"unknown part family {family!r}; choose from {sorted(PART_FAMILIES)}"
        ) from None
    solid = factory(rng)
    if place:
        solid = solid.transformed(random_placement(rng))
    families = sorted(PART_FAMILIES)
    return CADPart(
        name=name or family,
        family=family,
        class_id=class_id if class_id is not None else families.index(family),
        solid=solid,
    )

"""Synthetic labeled CAD datasets.

The paper's two test datasets are proprietary (a German car maker's ~200
parts and an American aircraft maker's 5,000 parts).  As documented in
DESIGN.md we substitute parametric part families with intra-class jitter:
the evaluation needs *groups of intuitively similar parts plus noise*,
which these generators produce — with the advantage of ground-truth
class labels that make the cluster evaluation objective.
"""

from repro.datasets.aircraft import AIRCRAFT_CLASSES, make_aircraft_dataset
from repro.datasets.car import CAR_CLASSES, make_car_dataset
from repro.datasets.parts import CADPart, PART_FAMILIES, make_part

__all__ = [
    "CADPart",
    "PART_FAMILIES",
    "make_part",
    "make_car_dataset",
    "CAR_CLASSES",
    "make_aircraft_dataset",
    "AIRCRAFT_CLASSES",
]

"""``repro.wal`` — crash-safe durability for the mutable database.

The mutable :class:`~repro.db.SimilarityDatabase` acknowledges a
mutation the moment it returns; a process crash must not take
acknowledged work with it.  This module supplies the two halves of that
contract:

* :class:`WriteAheadLog` — an append-only, length-prefixed,
  CRC32-per-record mutation log.  Every record is framed as
  ``[u32 payload_len][u32 crc32(payload)][payload]``; the payload is a
  ``[u32 header_len][JSON header][raw float64 array bytes]`` pair, so
  add/update records carry their full vector set and replay never needs
  the original inputs.  The fsync policy is configurable —
  ``"always"`` (fsync every append: zero acknowledged loss),
  ``"every-N"`` / an integer N (fsync every N appends, bounded loss),
  or ``"none"`` (leave flushing to the OS).  Opening a segment for
  append scans it first and truncates a torn tail — the half-written
  record a crash mid-``write`` leaves behind — so the log is always
  well-formed from its header to its end.

* :class:`DurableLayout` — the on-disk generation store a durable
  database lives in::

      mydb/
        durable.json          # capacity/backend/omega/... (static config)
        CURRENT               # text: the published snapshot generation
        snapshot-00000002.npz # CRC-checked archive for generation 2
        wal-00000002.log      # mutations applied after generation 2
        snapshot-00000001.npz # previous generation (recovery fallback)
        wal-00000001.log      # its segment, closed by a checkpoint record

  A checkpoint writes ``snapshot-(G+1)``, seals ``wal-G`` with a
  checkpoint record, opens ``wal-(G+1)``, and atomically republishes
  ``CURRENT`` — in that order, so a crash anywhere in between leaves the
  previous generation fully recoverable.  Old generations beyond
  ``keep_generations`` are retired only after the new one is published.

Recovery (the ladder itself lives in :meth:`repro.db.SimilarityDatabase.load`)
reads ``CURRENT``, loads that snapshot, and replays its WAL segment; if
the snapshot fails its CRC it falls back one generation and replays two
segments, and so on down to generation 0 (an empty database plus the
full retained WAL chain).  Chained replay is sound because segment
``wal-g`` contains exactly the mutations between snapshot *g* and
snapshot *g+1*.
"""

from __future__ import annotations

import io
import json
import os
import struct
import zlib
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.exceptions import WALError
from repro.obs import emit, registry
from repro.testing.faults import crash_point

WAL_MAGIC = b"REPROWAL"
WAL_VERSION = 1

#: Record frame: payload length, then CRC32 of the payload.
_FRAME = struct.Struct("<II")
#: Payload prelude: JSON header length.
_HEADER_LEN = struct.Struct("<I")

#: Mutation operations a segment may carry.  ``checkpoint`` is a
#: control record sealing a segment; everything else replays as a state
#: change.
RECORD_OPS = ("add", "add_grid", "remove", "update", "compact", "checkpoint")


def _parse_fsync(policy) -> int:
    """Normalize a policy spec to an interval: 1=always, 0=never, N=every-N."""
    if policy in (None, "always", 1):
        return 1
    if policy in ("none", 0):
        return 0
    if isinstance(policy, str) and policy.startswith("every-"):
        policy = policy[len("every-") :]
    try:
        if not isinstance(policy, (str, int)):
            raise ValueError(policy)
        interval = int(policy)
    except (TypeError, ValueError):
        raise WALError(
            f"unknown fsync policy {policy!r}: use 'always', 'none', "
            "'every-N' or an integer interval"
        ) from None
    if interval < 0:
        raise WALError(f"fsync interval must be >= 0, got {interval}")
    return interval


def _fsync_dir(path: Path) -> None:
    """Flush directory metadata so a rename/create survives power loss."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _encode_record(header: dict, array: np.ndarray | None) -> bytes:
    blob = json.dumps(header, sort_keys=True).encode("utf-8")
    body = b"" if array is None else np.ascontiguousarray(array, dtype=np.float64).tobytes()
    return _HEADER_LEN.pack(len(blob)) + blob + body


def _decode_record(payload: bytes, *, context: str) -> dict:
    if len(payload) < _HEADER_LEN.size:
        raise WALError(f"{context}: record payload shorter than its header prelude")
    (header_len,) = _HEADER_LEN.unpack_from(payload)
    blob = payload[_HEADER_LEN.size : _HEADER_LEN.size + header_len]
    if len(blob) != header_len:
        raise WALError(f"{context}: record header truncated")
    try:
        record = json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WALError(f"{context}: unreadable record header: {exc}") from exc
    if record.get("op") not in RECORD_OPS:
        raise WALError(f"{context}: unknown record op {record.get('op')!r}")
    body = payload[_HEADER_LEN.size + header_len :]
    shape = record.get("shape")
    if shape is not None:
        expected = int(np.prod(shape)) * 8
        if len(body) != expected:
            raise WALError(
                f"{context}: array body holds {len(body)} bytes, "
                f"shape {shape} needs {expected}"
            )
        record["array"] = (
            np.frombuffer(body, dtype=np.float64).reshape(shape).copy()
        )
    elif body:
        raise WALError(f"{context}: unexpected {len(body)} trailing body bytes")
    return record


class ScanResult:
    """Outcome of scanning one segment: the clean records, where the
    clean prefix ends, and what (if anything) was wrong with the tail."""

    def __init__(self, records: list[dict], good_until: int, error: str | None):
        self.records = records
        self.good_until = good_until
        self.error = error

    @property
    def torn(self) -> bool:
        return self.error is not None


class WriteAheadLog:
    """One append-only segment of the mutation log.

    Opening an existing segment validates the header, scans every
    record, and truncates a torn tail in place; the write position is
    therefore always the end of a well-formed record.  ``fsync``
    follows the parsed policy of :func:`_parse_fsync`.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        generation: int = 0,
        fsync="always",
        fresh: bool = False,
    ):
        self.path = Path(path)
        self.generation = generation
        self.fsync_interval = _parse_fsync(fsync)
        self._since_sync = 0
        self.appended = 0
        if fresh or not self.path.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
            header = WAL_MAGIC + _FRAME.pack(
                WAL_VERSION, generation & 0xFFFFFFFF
            )
            with open(self.path, "wb") as handle:
                handle.write(header)
                handle.flush()
                os.fsync(handle.fileno())
            _fsync_dir(self.path.parent)
            self._file = open(self.path, "r+b")
            self._file.seek(0, io.SEEK_END)
        else:
            scan = scan_segment(self.path)
            self._file = open(self.path, "r+b")
            if scan.torn:
                self._file.truncate(scan.good_until)
                self._file.flush()
                os.fsync(self._file.fileno())
                registry().counter("wal.torn_tail_truncations").inc()
                emit(
                    "wal.torn_tail",
                    path=str(self.path),
                    truncated_at=scan.good_until,
                    reason=scan.error,
                )
            self._file.seek(scan.good_until)

    # -- writing -----------------------------------------------------------

    def append(self, op: str, *, oid: int | None = None, array=None, **extra) -> int:
        """Append one record; returns the byte offset it starts at.

        The record is on disk (per the fsync policy) when this returns —
        callers log *before* applying the mutation, so an acknowledged
        mutation is always recoverable under ``fsync='always'``.
        """
        if op not in RECORD_OPS:
            raise WALError(f"unknown record op {op!r}")
        header: dict = {"op": op, **extra}
        if oid is not None:
            header["oid"] = int(oid)
        if array is not None:
            array = np.ascontiguousarray(array, dtype=np.float64)
            header["shape"] = list(array.shape)
        payload = _encode_record(header, array)
        frame = _FRAME.pack(len(payload), zlib.crc32(payload))
        offset = self._file.tell()
        self._file.write(frame + payload)
        self.appended += 1
        self._since_sync += 1
        if self.fsync_interval == 1:
            self.sync()
        elif self.fsync_interval and self._since_sync >= self.fsync_interval:
            self.sync()
        else:
            self._file.flush()
        registry().counter(f"wal.appends.{op}").inc()
        crash_point("after-wal-append")
        return offset

    def sync(self) -> None:
        """Flush Python and OS buffers for everything appended so far."""
        self._file.flush()
        os.fsync(self._file.fileno())
        self._since_sync = 0

    def close(self) -> None:
        if not self._file.closed:
            if self.fsync_interval:
                self.sync()
            else:
                self._file.flush()
            self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def size(self) -> int:
        return self._file.tell()


# -- reading ---------------------------------------------------------------


def _read_header(data: bytes, path: Path) -> int:
    prelude = len(WAL_MAGIC) + _FRAME.size
    if len(data) < prelude or data[: len(WAL_MAGIC)] != WAL_MAGIC:
        raise WALError(f"{path} is not a WAL segment (bad magic)")
    version, _generation = _FRAME.unpack_from(data, len(WAL_MAGIC))
    if version != WAL_VERSION:
        raise WALError(f"{path}: unsupported WAL version {version}")
    return prelude


def scan_segment(path: str | Path) -> ScanResult:
    """Read every clean record of a segment, stopping at the first
    torn/corrupt one.

    A missing/short header is a hard :class:`WALError` (the segment is
    not ours); anything wrong *after* the header is a torn tail — the
    scan reports where the clean prefix ends so the opener can truncate.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise WALError(f"cannot read WAL segment {path}: {exc}") from exc
    offset = _read_header(data, path)
    records: list[dict] = []
    error: str | None = None
    good_until = offset
    while offset < len(data):
        if offset + _FRAME.size > len(data):
            error = "truncated record frame"
            break
        length, crc = _FRAME.unpack_from(data, offset)
        start = offset + _FRAME.size
        payload = data[start : start + length]
        if len(payload) != length:
            error = "truncated record payload"
            break
        if zlib.crc32(payload) != crc:
            error = "record CRC mismatch"
            break
        try:
            record = _decode_record(
                payload, context=f"{path} @ {offset}"
            )
        except WALError as exc:
            error = str(exc)
            break
        record["_offset"] = offset
        records.append(record)
        offset = start + length
        good_until = offset
    return ScanResult(records, good_until, error)


def replay(path: str | Path) -> Iterator[dict]:
    """Yield the clean records of a segment in append order.

    Tolerates a torn tail (yields the clean prefix); raises
    :class:`WALError` only when the segment header itself is unreadable.
    """
    yield from scan_segment(path).records


def verify_segment(path: str | Path) -> tuple[int, str | None]:
    """CRC-walk a segment: ``(clean_record_count, error_or_None)``."""
    try:
        scan = scan_segment(path)
    except WALError as exc:
        return 0, str(exc)
    return len(scan.records), scan.error


# -- the generation store --------------------------------------------------


CONFIG_NAME = "durable.json"
CURRENT_NAME = "CURRENT"
CONFIG_FORMAT = "repro-durable-db"
CONFIG_VERSION = 1


class DurableLayout:
    """Path arithmetic and atomic publication for a durable directory."""

    def __init__(self, root: str | Path):
        self.root = Path(root)

    # -- naming ------------------------------------------------------------

    def snapshot_path(self, generation: int) -> Path:
        return self.root / f"snapshot-{generation:08d}.npz"

    def wal_path(self, generation: int) -> Path:
        return self.root / f"wal-{generation:08d}.log"

    @property
    def config_path(self) -> Path:
        return self.root / CONFIG_NAME

    @property
    def current_path(self) -> Path:
        return self.root / CURRENT_NAME

    def exists(self) -> bool:
        return self.current_path.exists()

    # -- config ------------------------------------------------------------

    def write_config(self, config: dict) -> None:
        payload = dict(config)
        payload["format"] = CONFIG_FORMAT
        payload["version"] = CONFIG_VERSION
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = self.config_path.with_suffix(f".{os.getpid()}.tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, self.config_path)
        _fsync_dir(self.root)

    def read_config(self) -> dict:
        try:
            config = json.loads(self.config_path.read_text())
        except OSError as exc:
            raise WALError(
                f"{self.root} is not a durable database (no {CONFIG_NAME}): {exc}"
            ) from exc
        except json.JSONDecodeError as exc:
            raise WALError(f"{self.config_path}: corrupt config: {exc}") from exc
        if config.get("format") != CONFIG_FORMAT:
            raise WALError(
                f"{self.config_path} holds {config.get('format')!r}, "
                f"expected {CONFIG_FORMAT!r}"
            )
        return config

    # -- generation publication --------------------------------------------

    def current_generation(self) -> int:
        try:
            text = self.current_path.read_text().strip()
        except OSError as exc:
            raise WALError(
                f"{self.root}: no {CURRENT_NAME} marker ({exc})"
            ) from exc
        try:
            return int(text)
        except ValueError as exc:
            raise WALError(
                f"{self.current_path}: corrupt generation marker {text!r}"
            ) from exc

    def publish(self, generation: int) -> None:
        """Atomically repoint ``CURRENT`` (tmp + fsync + rename + dir fsync)."""
        tmp = self.current_path.with_suffix(f".{os.getpid()}.tmp")
        with open(tmp, "w") as handle:
            handle.write(f"{generation}\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.current_path)
        _fsync_dir(self.root)

    # -- housekeeping ------------------------------------------------------

    def generations_on_disk(self) -> list[int]:
        """Every generation with a snapshot archive present, ascending."""
        found = []
        for path in self.root.glob("snapshot-*.npz"):
            stem = path.stem.split("-")[-1]
            if stem.isdigit():
                found.append(int(stem))
        return sorted(found)

    def wal_generations_on_disk(self) -> list[int]:
        found = []
        for path in self.root.glob("wal-*.log"):
            stem = path.stem.split("-")[-1]
            if stem.isdigit():
                found.append(int(stem))
        return sorted(found)

    def retire(self, *, published: int, keep_generations: int) -> list[Path]:
        """Delete snapshots and WAL segments older than the keep window.

        The window is the *keep_generations* most recent published
        generations: with ``keep_generations=2`` and ``published=5``,
        snapshot/wal 4 and 5 survive and everything ≤3 is removed.  The
        WAL floor matches the snapshot floor so every retained snapshot
        can still replay its full chain.
        """
        floor = published - max(keep_generations, 1) + 1
        removed = []
        for generation in self.generations_on_disk():
            if generation < floor:
                path = self.snapshot_path(generation)
                path.unlink(missing_ok=True)
                removed.append(path)
        for generation in self.wal_generations_on_disk():
            if generation < floor:
                path = self.wal_path(generation)
                path.unlink(missing_ok=True)
                removed.append(path)
        if removed:
            _fsync_dir(self.root)
            registry().counter("wal.segments_retired").inc(len(removed))
        return removed

"""Feature models for voxelized CAD objects (Sections 3.3 and 4).

Four models are provided:

* :class:`~repro.features.volume.VolumeModel` — normalized voxel counts
  per grid cell (Section 3.3.1),
* :class:`~repro.features.solid_angle.SolidAngleModel` — mean solid-angle
  values per cell (Section 3.3.2),
* :class:`~repro.features.cover_sequence.CoverSequenceModel` — 6k-d
  feature vector from a greedy rectangular cover sequence
  (Section 3.3.3),
* :class:`~repro.features.vector_set_model.VectorSetModel` — the paper's
  contribution: the same covers as a *set* of 6-d vectors (Section 4).
"""

from repro.features.base import FeatureModel, cell_counts, cell_index_of_voxels
from repro.features.beam import all_box_gains, beam_cover_search
from repro.features.cover_sequence import (
    Cover,
    CoverSequence,
    CoverSequenceModel,
    extract_cover_sequence,
    max_sum_box,
)
from repro.features.scaling import denormalize_cover_vectors, scale_aware_sets
from repro.features.solid_angle import SolidAngleModel, solid_angle_values
from repro.features.vector_set_model import VectorSetModel
from repro.features.volume import VolumeModel

__all__ = [
    "FeatureModel",
    "cell_counts",
    "cell_index_of_voxels",
    "VolumeModel",
    "SolidAngleModel",
    "solid_angle_values",
    "Cover",
    "CoverSequence",
    "CoverSequenceModel",
    "extract_cover_sequence",
    "max_sum_box",
    "VectorSetModel",
    "denormalize_cover_vectors",
    "scale_aware_sets",
    "beam_cover_search",
    "all_box_gains",
]

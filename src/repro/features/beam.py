"""Beam search for cover sequences.

Jagadish & Bruckstein propose two retrieval algorithms for the cover
sequence ``S_k``: an exact branch-and-bound with exponential runtime and
the greedy heuristic the paper (and our
:func:`~repro.features.cover_sequence.extract_cover_sequence`) uses.
Beam search interpolates between them: it expands the ``beam_width``
best partial sequences per step over the ``candidates_per_sign`` best
"+"/"-" boxes each.

* ``beam_width=1, candidates_per_sign=1`` reproduces the greedy result
  exactly;
* the best final error is **never worse than greedy's** for any
  ``beam_width >= 1`` (the greedy trajectory survives every pruning
  step as long as nothing strictly better displaces it);
* in the limit it enumerates everything (the branch-and-bound regime),
  with cost growing as ``(beam_width * candidates)^k``-ish.

The ablation benchmark measures how much approximation error greedy
actually leaves on the table — on the synthetic datasets the margin is
small, supporting the paper's choice of the polynomial algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import FeatureError
from repro.features.cover_sequence import Cover, CoverSequence, _pair_indices
from repro.voxel.grid import VoxelGrid


def all_box_gains(weights: np.ndarray, top: int) -> list[tuple[float, np.ndarray, np.ndarray]]:
    """The *top* boxes of a weight grid by total weight, descending.

    Enumerates all O(r^6) boxes through the summed-area table (cropped
    to the non-zero region like :func:`max_sum_box`) and returns the
    best *top* as ``(gain, lower, upper)`` triples with positive gain.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 3:
        raise FeatureError(f"expected a 3-D weight grid, got shape {weights.shape}")
    if top < 1:
        raise FeatureError("top must be >= 1")
    nonzero = np.nonzero(weights)
    if not len(nonzero[0]):
        return []
    lows = np.array([axis.min() for axis in nonzero])
    highs = np.array([axis.max() for axis in nonzero])
    cropped = weights[
        lows[0] : highs[0] + 1, lows[1] : highs[1] + 1, lows[2] : highs[2] + 1
    ]

    rx, ry, rz = cropped.shape
    sat = np.zeros((rx + 1, ry + 1, rz + 1))
    sat[1:, 1:, 1:] = cropped.cumsum(0).cumsum(1).cumsum(2)
    x_lo, x_hi = _pair_indices(rx)
    y_lo, y_hi = _pair_indices(ry)
    z_lo, z_hi = _pair_indices(rz)
    diff_x = sat[x_hi] - sat[x_lo]
    diff_xy = diff_x[:, y_hi, :] - diff_x[:, y_lo, :]
    diff_xyz = diff_xy[:, :, z_hi] - diff_xy[:, :, z_lo]

    flat = diff_xyz.reshape(-1)
    count = min(top, flat.size)
    best_idx = np.argpartition(flat, -count)[-count:]
    best_idx = best_idx[np.argsort(flat[best_idx])[::-1]]
    results = []
    shape = diff_xyz.shape
    for index in best_idx:
        gain = float(flat[index])
        if gain <= 0:
            break
        ix, iy, iz = np.unravel_index(int(index), shape)
        lower = np.array([x_lo[ix], y_lo[iy], z_lo[iz]]) + lows
        upper = np.array([x_hi[ix] - 1, y_hi[iy] - 1, z_hi[iz] - 1]) + lows
        results.append((gain, lower, upper))
    return results


@dataclass
class _BeamState:
    """One partial cover sequence in the beam."""

    state: np.ndarray  # current approximation S
    covers: list[Cover]
    errors: list[int]

    @property
    def error(self) -> int:
        return self.errors[-1]


def beam_cover_search(
    grid: VoxelGrid,
    k: int = 7,
    beam_width: int = 4,
    candidates_per_sign: int = 4,
    allow_subtraction: bool = True,
) -> CoverSequence:
    """Cover sequence via beam search over the best candidate boxes.

    Parameters
    ----------
    grid:
        Voxel object to approximate.
    k:
        Maximum number of covers.
    beam_width:
        Partial sequences kept per step (1 = greedy).
    candidates_per_sign:
        Top boxes considered per sign per expansion.
    allow_subtraction:
        Permit "-" covers (as in the greedy extractor).
    """
    if k < 1:
        raise FeatureError("need k >= 1 covers")
    if beam_width < 1 or candidates_per_sign < 1:
        raise FeatureError("beam_width and candidates_per_sign must be >= 1")
    if grid.is_empty():
        raise FeatureError("cannot extract covers from an empty grid")

    target = grid.occupancy
    initial = _BeamState(
        state=np.zeros_like(target),
        covers=[],
        errors=[int(target.sum())],
    )
    beam = [initial]
    finished: list[_BeamState] = []

    for _ in range(k):
        expansions: list[_BeamState] = []
        seen: set[bytes] = set()
        for node in beam:
            uncovered = ~node.state
            weight_add = np.where(target & uncovered, 1.0, 0.0) - np.where(
                ~target & uncovered, 1.0, 0.0
            )
            candidates = [
                (1, gain, lower, upper)
                for gain, lower, upper in all_box_gains(weight_add, candidates_per_sign)
            ]
            if allow_subtraction and node.covers:
                weight_sub = np.where(node.state & ~target, 1.0, 0.0) - np.where(
                    node.state & target, 1.0, 0.0
                )
                candidates.extend(
                    (-1, gain, lower, upper)
                    for gain, lower, upper in all_box_gains(
                        weight_sub, candidates_per_sign
                    )
                )
            if not candidates:
                finished.append(node)
                continue
            for sign, gain, lower, upper in candidates:
                cover = Cover(
                    sign=sign,
                    lower=(int(lower[0]), int(lower[1]), int(lower[2])),
                    upper=(int(upper[0]), int(upper[1]), int(upper[2])),
                    gain=int(round(gain)),
                )
                mask = cover.mask(grid.resolution)
                new_state = node.state | mask if sign > 0 else node.state & ~mask
                key = new_state.tobytes()
                if key in seen:
                    continue  # two paths reached the same approximation
                seen.add(key)
                error = int(np.count_nonzero(new_state ^ target))
                expansions.append(
                    _BeamState(
                        state=new_state,
                        covers=node.covers + [cover],
                        errors=node.errors + [error],
                    )
                )
        if not expansions:
            break
        expansions.sort(key=lambda node: (node.error, len(node.covers)))
        beam = expansions[:beam_width]
        exact = [node for node in beam if node.error == 0]
        if exact:
            finished.extend(exact)
            beam = [node for node in beam if node.error != 0]
            if not beam:
                break

    finished.extend(beam)
    best = min(finished, key=lambda node: (node.error, len(node.covers)))
    return CoverSequence(covers=best.covers, errors=best.errors, resolution=grid.resolution)

"""The volume model (Section 3.3.1).

Each of the ``p^3`` grid cells contributes one histogram bin holding the
normalized number of object voxels in that cell:

    f_o^(i) = |V_i^o| / K,   K = (r / p)^3

so every bin lies in [0, 1] and a completely filled cell reads 1.
"""

from __future__ import annotations

import numpy as np

from repro.features.base import FeatureModel, cell_counts, check_partition
from repro.voxel.grid import VoxelGrid


class VolumeModel(FeatureModel):
    """Normalized per-cell voxel counts.

    Parameters
    ----------
    partitions:
        Number of cells per dimension ``p``; must divide the raster
        resolution.  The paper tunes ``p`` to the dataset (its r = 30
        runs correspond to small ``p`` such as 3--6).
    """

    def __init__(self, partitions: int = 3):
        if partitions < 1:
            raise ValueError("partitions must be >= 1")
        self.partitions = partitions

    @property
    def name(self) -> str:
        return f"volume(p={self.partitions})"

    def dimension(self, resolution: int) -> int:
        check_partition(resolution, self.partitions)
        return self.partitions**3

    def extract(self, grid: VoxelGrid) -> np.ndarray:
        side = check_partition(grid.resolution, self.partitions)
        cell_capacity = float(side**3)
        return cell_counts(grid, self.partitions).astype(float) / cell_capacity

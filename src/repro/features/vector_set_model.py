"""The vector set model (Section 4) — the paper's primary contribution.

Instead of flattening the cover sequence into one ``6k``-dimensional
vector (whose cover *order* can ruin the similarity notion, Figure 4),
the object is represented by the *set* of its 6-d cover vectors, with
cardinality at most ``k`` and no dummy padding.  Distances between such
sets are computed by :mod:`repro.core.min_matching`.
"""

from __future__ import annotations

import numpy as np

from repro.features.base import FeatureModel
from repro.features.cover_sequence import extract_cover_sequence
from repro.voxel.grid import VoxelGrid


class VectorSetModel(FeatureModel):
    """Extract an object's covers as an ``(m, 6)`` vector set, ``m <= k``.

    Parameters mirror :class:`~repro.features.cover_sequence.CoverSequenceModel`;
    the difference is purely representational: no ordering is imposed and
    no dummy covers are stored (Section 4.1 names this storage advantage
    explicitly).
    """

    def __init__(
        self,
        k: int = 7,
        allow_subtraction: bool = True,
        normalize: bool = True,
        engine: str = "incremental",
    ):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.allow_subtraction = allow_subtraction
        self.normalize = normalize
        self.engine = engine

    @property
    def name(self) -> str:
        return f"vector-set(k={self.k})"

    def dimension(self, resolution: int) -> int:
        """Dimensionality of the *element* space (6), not of the set."""
        return 6

    def extract(self, grid: VoxelGrid) -> np.ndarray:
        sequence = extract_cover_sequence(
            grid, self.k, self.allow_subtraction, engine=self.engine
        )
        return sequence.feature_vectors(self.normalize)

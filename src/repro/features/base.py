"""Shared infrastructure of the feature models.

The histogram models of Section 3.3 partition the ``r^3`` raster into
``p^3`` axis-parallel, equi-sized cells ("coarse voxels"); the paper
requires ``r / p`` to be an integer so each voxel belongs to exactly one
cell.  This module provides that partitioning plus the abstract
:class:`FeatureModel` interface every model implements.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.exceptions import FeatureError
from repro.voxel.grid import VoxelGrid


def check_partition(resolution: int, p: int) -> int:
    """Validate the cell partitioning and return the cell side ``r / p``."""
    if p < 1:
        raise FeatureError("number of partitions p must be >= 1")
    if resolution % p != 0:
        raise FeatureError(
            f"r/p must be an integer for a unique voxel-to-cell assignment "
            f"(got r={resolution}, p={p})"
        )
    return resolution // p


def cell_counts(grid: VoxelGrid, p: int) -> np.ndarray:
    """Number of object voxels per cell, flattened to ``(p^3,)``.

    Cell ``(a, b, c)`` maps to flat index ``a * p^2 + b * p + c``; this
    fixed enumeration is what makes histogram bins comparable between
    objects.
    """
    side = check_partition(grid.resolution, p)
    blocks = grid.occupancy.reshape(p, side, p, side, p, side)
    return blocks.sum(axis=(1, 3, 5)).reshape(-1)


def cell_index_of_voxels(indices: np.ndarray, resolution: int, p: int) -> np.ndarray:
    """Map ``(n, 3)`` voxel indices to their flat cell index."""
    side = check_partition(resolution, p)
    cells = indices // side
    return cells[:, 0] * p * p + cells[:, 1] * p + cells[:, 2]


class FeatureModel(ABC):
    """A feature transform ``F: O -> R^d`` in the sense of Definition 1.

    Implementations are stateless value objects: all parameters are fixed
    at construction so a model instance can be shared between extraction,
    indexing and query processing.
    """

    @property
    @abstractmethod
    def name(self) -> str:
        """Short identifier used in reports and experiment tables."""

    @abstractmethod
    def dimension(self, resolution: int) -> int:
        """Feature dimensionality for a given raster resolution."""

    @abstractmethod
    def extract(self, grid: VoxelGrid) -> np.ndarray:
        """Map a voxel grid to its feature vector (or vector set)."""

    def extract_many(self, grids: list[VoxelGrid]) -> list[np.ndarray]:
        """Extract features for a list of grids (overridable for batch
        optimizations; the default just loops)."""
        return [self.extract(grid) for grid in grids]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"

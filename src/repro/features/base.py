"""Shared infrastructure of the feature models.

The histogram models of Section 3.3 partition the ``r^3`` raster into
``p^3`` axis-parallel, equi-sized cells ("coarse voxels"); the paper
requires ``r / p`` to be an integer so each voxel belongs to exactly one
cell.  This module provides that partitioning plus the abstract
:class:`FeatureModel` interface every model implements.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.exceptions import FeatureError
from repro.voxel.grid import VoxelGrid


def check_partition(resolution: int, p: int) -> int:
    """Validate the cell partitioning and return the cell side ``r / p``."""
    if p < 1:
        raise FeatureError("number of partitions p must be >= 1")
    if resolution % p != 0:
        raise FeatureError(
            f"r/p must be an integer for a unique voxel-to-cell assignment "
            f"(got r={resolution}, p={p})"
        )
    return resolution // p


def cell_counts(grid: VoxelGrid, p: int) -> np.ndarray:
    """Number of object voxels per cell, flattened to ``(p^3,)``.

    Cell ``(a, b, c)`` maps to flat index ``a * p^2 + b * p + c``; this
    fixed enumeration is what makes histogram bins comparable between
    objects.
    """
    side = check_partition(grid.resolution, p)
    blocks = grid.occupancy.reshape(p, side, p, side, p, side)
    return blocks.sum(axis=(1, 3, 5)).reshape(-1)


def cell_index_of_voxels(indices: np.ndarray, resolution: int, p: int) -> np.ndarray:
    """Map ``(n, 3)`` voxel indices to their flat cell index."""
    side = check_partition(resolution, p)
    cells = indices // side
    return cells[:, 0] * p * p + cells[:, 1] * p + cells[:, 2]


class FeatureModel(ABC):
    """A feature transform ``F: O -> R^d`` in the sense of Definition 1.

    Implementations are stateless value objects: all parameters are fixed
    at construction so a model instance can be shared between extraction,
    indexing and query processing.
    """

    @property
    @abstractmethod
    def name(self) -> str:
        """Short identifier used in reports and experiment tables."""

    @abstractmethod
    def dimension(self, resolution: int) -> int:
        """Feature dimensionality for a given raster resolution."""

    @abstractmethod
    def extract(self, grid: VoxelGrid) -> np.ndarray:
        """Map a voxel grid to its feature vector (or vector set)."""

    def extract_many(
        self,
        grids: list[VoxelGrid],
        n_jobs: int | None = None,
        cache=None,
    ) -> list[np.ndarray]:
        """Extract features for a list of grids.

        Parameters
        ----------
        n_jobs:
            Worker processes (``None``/``0`` = serial, negative = all
            cores) drawn from the shared pool of :mod:`repro.parallel`.
            Results keep input order and are bit-identical to a serial
            run; the first failure (by input order) is raised.
        cache:
            Optional :class:`repro.features.cache.FeatureCache`: hits
            skip extraction entirely, misses are stored after
            extraction.
        """
        features: list[np.ndarray] = []
        for ok, value in self.extract_many_outcomes(grids, n_jobs=n_jobs, cache=cache):
            if not ok:
                raise value
            features.append(value)
        return features

    def extract_many_outcomes(
        self,
        grids: list[VoxelGrid],
        n_jobs: int | None = None,
        cache=None,
    ) -> list[tuple[bool, object]]:
        """Per-grid ``(ok, feature_or_exception)`` outcomes, input order.

        The failure-isolating variant of :meth:`extract_many`: callers
        with per-object fault policies (the ingest pipeline) inspect
        each outcome instead of losing the whole batch to one bad grid.
        Failed extractions are never cached.
        """
        from repro.parallel import pool_map, resolve_n_jobs

        jobs = resolve_n_jobs(n_jobs)
        results: list[tuple[bool, object] | None] = [None] * len(grids)
        pending: list[int] = []
        for index, grid in enumerate(grids):
            hit = cache.get(grid, self) if cache is not None else None
            if hit is not None:
                results[index] = (True, hit)
            else:
                pending.append(index)
        if pending:
            if jobs > 1 and len(pending) > 1:
                chunk = max(1, len(pending) // (4 * jobs))
                outcomes = pool_map(
                    _extract_outcome,
                    [(self, grids[i]) for i in pending],
                    jobs,
                    chunksize=chunk,
                )
            else:
                outcomes = [_extract_outcome((self, grids[i])) for i in pending]
            for index, outcome in zip(pending, outcomes):
                results[index] = outcome
                if outcome[0] and cache is not None:
                    cache.put(grids[index], self, outcome[1])
        return results  # type: ignore[return-value]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


def _extract_outcome(task) -> tuple[bool, object]:
    """Process-pool work unit: one extraction, failures as values.

    Module-level (picklable) and exception-capturing so a worker crash
    on one grid surfaces as that grid's outcome instead of poisoning
    the pool.
    """
    model, grid = task
    try:
        return True, model.extract(grid)
    except Exception as exc:
        return False, exc

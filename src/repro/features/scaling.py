"""Tunable scaling invariance (Section 3.2).

Objects are stored normalized; the original per-axis extents survive as
the :class:`~repro.normalize.pose.PoseInfo` scale factors so that
scaling invariance "can be (de)activated depending on the user's needs
at runtime".  This module implements the deactivation for the
cover-based features: :func:`denormalize_cover_vectors` maps normalized
6-d cover vectors back to world units using the stored factors, after
which distances compare true sizes — a small bracket and a scaled-up
copy of it stop being identical.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import FeatureError
from repro.normalize.pose import PoseInfo


def denormalize_cover_vectors(
    vectors: np.ndarray,
    pose: PoseInfo,
    margin_fraction: float = 0.0,
) -> np.ndarray:
    """Scale normalized cover vectors back to world units.

    The pipeline fits the object's largest extent into the raster, so
    one isotropic factor ``max(scale_factors) * (1 + margin)`` maps
    raster-relative positions and extents to world lengths.

    Parameters
    ----------
    vectors:
        ``(m, 6)`` normalized cover vectors (positions relative to the
        raster center and extents, both divided by the resolution).
    pose:
        The pose bookkeeping stored with the object.
    margin_fraction:
        The fraction of the raster kept empty by the voxelization margin
        (``2 * margin / resolution``); 0 is fine for similarity use as
        it cancels between objects voxelized with equal margins.
    """
    arr = np.asarray(vectors, dtype=float)
    if arr.ndim != 2 or arr.shape[1] != 6:
        raise FeatureError(f"expected (m, 6) cover vectors, got {arr.shape}")
    if not 0.0 <= margin_fraction < 1.0:
        raise FeatureError("margin_fraction must be in [0, 1)")
    world_per_raster = max(pose.scale_factors) / (1.0 - margin_fraction)
    return arr * world_per_raster


def scale_aware_sets(
    sets: list[np.ndarray], poses: list[PoseInfo]
) -> list[np.ndarray]:
    """Denormalize a whole collection (scaling invariance OFF)."""
    if len(sets) != len(poses):
        raise FeatureError("need one pose per vector set")
    return [denormalize_cover_vectors(s, p) for s, p in zip(sets, poses)]

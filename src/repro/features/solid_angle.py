"""The solid-angle model (Section 3.3.2, after Connolly).

For every surface voxel ``v-bar`` of an object the solid-angle value

    SA(v-bar) = |K_vbar  intersect  V^o| / |K_vbar|

counts which fraction of a voxelized ball ``K`` centered at the voxel is
filled by the object: small values mean the surface is convex there,
large values concave.  Per histogram cell the model stores

* the mean SA value of the cell's surface voxels, if it has any,
* 1.0 if the cell contains only interior voxels,
* 0.0 if the cell contains no object voxels.
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import convolve

from repro.exceptions import FeatureError
from repro.features.base import FeatureModel, cell_index_of_voxels, check_partition
from repro.voxel.grid import VoxelGrid
from repro.voxel.morphology import sphere_kernel


def solid_angle_values(grid: VoxelGrid, kernel_radius: int) -> np.ndarray:
    """SA value for every surface voxel of *grid*.

    Returns an ``(n_surface,)`` array aligned with
    ``grid.surface_indices()``.  Space outside the raster counts as empty
    (``mode="constant"``), matching the set-intersection definition.
    """
    kernel = sphere_kernel(kernel_radius)
    filled = convolve(
        grid.occupancy.astype(np.float64), kernel.astype(np.float64), mode="constant"
    )
    fractions = filled / float(kernel.sum())
    surface = grid.surface_indices()
    return fractions[surface[:, 0], surface[:, 1], surface[:, 2]]


class SolidAngleModel(FeatureModel):
    """Mean solid-angle value per histogram cell.

    Parameters
    ----------
    partitions:
        Cells per dimension ``p`` (must divide the resolution).
    kernel_radius:
        Radius of the voxelized ball ``K`` in voxels.  The paper does not
        publish its radius; a radius around ``r / 6`` makes the ball span
        roughly one histogram cell, which reproduces the described
        convex/concave discrimination.
    """

    def __init__(self, partitions: int = 3, kernel_radius: int = 3):
        if partitions < 1:
            raise ValueError("partitions must be >= 1")
        if kernel_radius < 1:
            raise ValueError("kernel_radius must be >= 1")
        self.partitions = partitions
        self.kernel_radius = kernel_radius

    @property
    def name(self) -> str:
        return f"solid-angle(p={self.partitions}, R={self.kernel_radius})"

    def dimension(self, resolution: int) -> int:
        check_partition(resolution, self.partitions)
        return self.partitions**3

    def extract(self, grid: VoxelGrid) -> np.ndarray:
        p = self.partitions
        check_partition(grid.resolution, p)
        if 2 * self.kernel_radius + 1 > grid.resolution:
            raise FeatureError(
                f"kernel radius {self.kernel_radius} too large for r={grid.resolution}"
            )
        features = np.zeros(p**3, dtype=float)

        # Rule 2/3: cells with object voxels default to 1 (all-interior),
        # cells without any stay 0.
        occupied_cells = np.unique(
            cell_index_of_voxels(grid.indices(), grid.resolution, p)
        )
        features[occupied_cells] = 1.0

        # Rule 1: cells with surface voxels get the mean SA value.
        surface_idx = grid.surface_indices()
        if len(surface_idx):
            sa = solid_angle_values(grid, self.kernel_radius)
            cells = cell_index_of_voxels(surface_idx, grid.resolution, p)
            sums = np.zeros(p**3, dtype=float)
            counts = np.zeros(p**3, dtype=float)
            np.add.at(sums, cells, sa)
            np.add.at(counts, cells, 1.0)
            with_surface = counts > 0
            features[with_surface] = sums[with_surface] / counts[with_surface]
        return features

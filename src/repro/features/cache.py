"""Content-addressed on-disk cache for extracted features.

Feature extraction is a pure function of the voxel grid and the model
parameters, so its results can be reused across runs, processes and
datasets.  Each feature array is stored in its own file named by the
SHA-256 of the packed occupancy bits plus a canonical token of the
model's class, name and constructor parameters — mutating a single
voxel, or changing any model parameter, changes the key, so stale hits
are impossible by construction and no invalidation logic is needed.

The cache lives under ``$REPRO_CACHE_DIR/features`` (default
``.repro_cache/features``); writes are atomic (unique temp file +
``os.replace``, the same pattern the object database uses), corrupt or
truncated entries read as misses and are re-extracted, and hit/miss
counters accumulate for ``repro info``.

Counter persistence is race-free under concurrent ``--jobs`` ingests:
each :meth:`FeatureCache.flush_stats` writes its counters as an
*atomic, uniquely named delta file* under ``stats.d/`` instead of
read-modify-writing a shared ``stats.json`` (which could drop
increments when two processes raced).  Readers sum the delta files plus
the compacted ``stats.json``; compaction folds deltas into
``stats.json`` under an ``O_EXCL`` lock and records the folded file
names so a reader racing the compactor never counts a delta twice.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.obs import counter
from repro.voxel.grid import VoxelGrid

#: Version tag mixed into every key; bump to invalidate all entries when
#: the feature encoding itself changes incompatibly.
CACHE_KEY_VERSION = b"repro-feature-v1\0"


def default_cache_root() -> Path:
    """Where feature cache entries live (under ``REPRO_CACHE_DIR``)."""
    return Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache")) / "features"


def model_token(model) -> str:
    """A canonical string identifying a model's class and parameters.

    Combines the class name, the model's ``name`` property and the
    sorted constructor attributes, so two instances produce the same
    token exactly when they would extract identical features.
    """
    try:
        params = sorted(vars(model).items())
    except TypeError:  # __slots__ or exotic models: fall back to repr
        params = [("repr", repr(model))]
    name = getattr(model, "name", type(model).__name__)
    return f"{type(model).__name__}|{name}|{params!r}"


def feature_cache_key(grid: VoxelGrid, model) -> str:
    """SHA-256 content key of (occupancy bits, resolution, model)."""
    digest = hashlib.sha256()
    digest.update(CACHE_KEY_VERSION)
    digest.update(int(grid.resolution).to_bytes(4, "little"))
    digest.update(np.packbits(grid.occupancy).tobytes())
    digest.update(model_token(model).encode("utf-8"))
    return digest.hexdigest()


class FeatureCache:
    """Per-object feature cache with hit/miss accounting.

    Parameters
    ----------
    root:
        Cache directory (default: :func:`default_cache_root`, resolved
        lazily so tests can repoint ``REPRO_CACHE_DIR`` per instance).
    enabled:
        A disabled cache is a no-op on both lookup and store, which lets
        callers thread one code path for ``--no-cache``.
    """

    def __init__(self, root: str | Path | None = None, enabled: bool = True):
        self.root = Path(root) if root is not None else default_cache_root()
        self.enabled = enabled
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        """Entry location (two-level fan-out keeps directories small)."""
        return self.root / key[:2] / f"{key}.npy"

    def get(self, grid: VoxelGrid, model) -> np.ndarray | None:
        """The cached feature array, or ``None`` on a miss."""
        if not self.enabled:
            return None
        path = self.path_for(feature_cache_key(grid, model))
        if path.exists():
            try:
                feature = np.load(path, allow_pickle=False)
            except (OSError, ValueError):
                # Corrupt/truncated entry (e.g. a crashed writer on a
                # filesystem without atomic replace): treat as a miss
                # and let the fresh put() below repair it.
                pass
            else:
                self.hits += 1
                counter("cache.hits").inc()
                return feature
        self.misses += 1
        counter("cache.misses").inc()
        return None

    def get_or_extract(self, grid: VoxelGrid, model) -> np.ndarray:
        """The feature array for *grid*, extracting (and caching) on miss.

        The single-object flavour of ``extract_many(cache=...)`` — the
        mutable database's ``add`` path goes through here so interactive
        ingestion shares the same content-addressed entries as batch
        runs.
        """
        feature = self.get(grid, model)
        if feature is None:
            feature = np.asarray(model.extract(grid))
            self.put(grid, model, feature)
        return feature

    def put(self, grid: VoxelGrid, model, feature: np.ndarray) -> None:
        """Store *feature* atomically (unique temp file + replace)."""
        if not self.enabled:
            return
        path = self.path_for(feature_cache_key(grid, model))
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                np.save(handle, np.asarray(feature), allow_pickle=False)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- statistics ----------------------------------------------------------

    def flush_stats(self) -> None:
        """Persist this instance's counters as an atomic delta file.

        Concurrency-safe by construction: every flush creates its own
        uniquely named file under ``stats.d/`` (temp file +
        ``os.replace``), so concurrent ``--jobs`` ingests can never lose
        each other's increments the way a shared read-modify-write of
        ``stats.json`` could.  Best-effort: a read-only or contended
        cache directory must not fail the extraction that produced the
        features.
        """
        if not self.enabled or (self.hits == 0 and self.misses == 0):
            return
        deltas_dir = self.root / STATS_DELTA_DIR
        try:
            deltas_dir.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=deltas_dir, suffix=".tmp")
            with os.fdopen(fd, "w") as handle:
                json.dump({"hits": self.hits, "misses": self.misses}, handle)
            os.replace(tmp, Path(tmp).with_suffix(".json"))
        except OSError:
            return
        self.hits = 0
        self.misses = 0


#: Delta files live here (under the cache root); each is one flush.
STATS_DELTA_DIR = "stats.d"

#: A compaction lock older than this is assumed abandoned and broken.
STATS_LOCK_TIMEOUT = 60.0


def _load_json(path: Path) -> dict | None:
    try:
        with open(path) as handle:
            data = json.load(handle)
        return data if isinstance(data, dict) else None
    except (OSError, ValueError):
        return None


def _read_stats(base: Path) -> dict:
    """Exact cumulative totals: compacted ``stats.json`` + delta files.

    Deltas are scanned *before* ``stats.json`` is read, and any delta
    named in its ``folded`` list is excluded — so a reader racing a
    compactor counts every increment exactly once regardless of
    interleaving (the delta is either still pending, or folded and
    skipped).
    """
    deltas: dict[str, dict] = {}
    for path in sorted((base / STATS_DELTA_DIR).glob("*.json")):
        data = _load_json(path)
        if data is not None:
            deltas[path.name] = data
    main = _load_json(base / "stats.json") or {}
    folded = set(main.get("folded", ()))
    totals = {"hits": 0, "misses": 0}
    for key in totals:
        try:
            totals[key] = int(main.get(key, 0))
        except (TypeError, ValueError):
            totals[key] = 0
    for name, data in deltas.items():
        if name in folded:
            continue
        for key in totals:
            try:
                totals[key] += int(data.get(key, 0))
            except (TypeError, ValueError):
                continue
    return totals


def _compact_stats(base: Path) -> None:
    """Fold delta files into ``stats.json`` (best-effort, lock-guarded).

    Holds an ``O_CREAT | O_EXCL`` lock so at most one compactor runs;
    the new ``stats.json`` lists the folded delta names *before* the
    files are deleted, preserving the exactly-once read invariant of
    :func:`_read_stats`.  Every failure mode simply leaves the deltas
    in place for the next attempt.
    """
    deltas_dir = base / STATS_DELTA_DIR
    if not deltas_dir.is_dir():
        return
    lock = base / "stats.lock"
    try:
        if lock.exists() and time.time() - lock.stat().st_mtime > STATS_LOCK_TIMEOUT:
            lock.unlink()
    except OSError:
        pass
    try:
        lock_fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except OSError:
        return  # another compactor is running
    try:
        main = _load_json(base / "stats.json") or {}
        folded = set(main.get("folded", ()))
        totals = {
            "hits": int(main.get("hits", 0) or 0),
            "misses": int(main.get("misses", 0) or 0),
        }
        consumed: list[str] = []
        for path in sorted(deltas_dir.glob("*.json")):
            if path.name in folded:
                consumed.append(path.name)  # folded earlier; just delete
                continue
            data = _load_json(path)
            if data is None:
                continue
            totals["hits"] += int(data.get("hits", 0) or 0)
            totals["misses"] += int(data.get("misses", 0) or 0)
            consumed.append(path.name)
        if not consumed:
            return
        totals["folded"] = consumed
        fd, tmp = tempfile.mkstemp(dir=base, suffix=".tmp")
        with os.fdopen(fd, "w") as handle:
            json.dump(totals, handle)
        os.replace(tmp, base / "stats.json")
        for name in consumed:
            try:
                (deltas_dir / name).unlink()
            except OSError:
                pass
    except OSError:
        return
    finally:
        os.close(lock_fd)
        try:
            lock.unlink()
        except OSError:
            pass


def cache_info(root: str | Path | None = None) -> dict:
    """Summary of the on-disk cache for ``repro info``.

    Returns entry count, total bytes and the cumulative hit/miss
    counters that :meth:`FeatureCache.flush_stats` maintains.  Reading
    also opportunistically compacts pending delta files into
    ``stats.json`` (lock-guarded, exact under races).
    """
    base = Path(root) if root is not None else default_cache_root()
    entries = 0
    size = 0
    if base.is_dir():
        for path in base.rglob("*.npy"):
            try:
                size += path.stat().st_size
            except OSError:
                continue
            entries += 1
    _compact_stats(base)
    totals = _read_stats(base)
    return {
        "root": str(base),
        "entries": entries,
        "bytes": size,
        "hits": totals["hits"],
        "misses": totals["misses"],
    }

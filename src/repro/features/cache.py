"""Content-addressed on-disk cache for extracted features.

Feature extraction is a pure function of the voxel grid and the model
parameters, so its results can be reused across runs, processes and
datasets.  Each feature array is stored in its own file named by the
SHA-256 of the packed occupancy bits plus a canonical token of the
model's class, name and constructor parameters — mutating a single
voxel, or changing any model parameter, changes the key, so stale hits
are impossible by construction and no invalidation logic is needed.

The cache lives under ``$REPRO_CACHE_DIR/features`` (default
``.repro_cache/features``); writes are atomic (unique temp file +
``os.replace``, the same pattern the object database uses), corrupt or
truncated entries read as misses and are re-extracted, and hit/miss
counters can be merged into a cumulative ``stats.json`` for ``repro
info``.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

import numpy as np

from repro.voxel.grid import VoxelGrid

#: Version tag mixed into every key; bump to invalidate all entries when
#: the feature encoding itself changes incompatibly.
CACHE_KEY_VERSION = b"repro-feature-v1\0"


def default_cache_root() -> Path:
    """Where feature cache entries live (under ``REPRO_CACHE_DIR``)."""
    return Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache")) / "features"


def model_token(model) -> str:
    """A canonical string identifying a model's class and parameters.

    Combines the class name, the model's ``name`` property and the
    sorted constructor attributes, so two instances produce the same
    token exactly when they would extract identical features.
    """
    try:
        params = sorted(vars(model).items())
    except TypeError:  # __slots__ or exotic models: fall back to repr
        params = [("repr", repr(model))]
    name = getattr(model, "name", type(model).__name__)
    return f"{type(model).__name__}|{name}|{params!r}"


def feature_cache_key(grid: VoxelGrid, model) -> str:
    """SHA-256 content key of (occupancy bits, resolution, model)."""
    digest = hashlib.sha256()
    digest.update(CACHE_KEY_VERSION)
    digest.update(int(grid.resolution).to_bytes(4, "little"))
    digest.update(np.packbits(grid.occupancy).tobytes())
    digest.update(model_token(model).encode("utf-8"))
    return digest.hexdigest()


class FeatureCache:
    """Per-object feature cache with hit/miss accounting.

    Parameters
    ----------
    root:
        Cache directory (default: :func:`default_cache_root`, resolved
        lazily so tests can repoint ``REPRO_CACHE_DIR`` per instance).
    enabled:
        A disabled cache is a no-op on both lookup and store, which lets
        callers thread one code path for ``--no-cache``.
    """

    def __init__(self, root: str | Path | None = None, enabled: bool = True):
        self.root = Path(root) if root is not None else default_cache_root()
        self.enabled = enabled
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        """Entry location (two-level fan-out keeps directories small)."""
        return self.root / key[:2] / f"{key}.npy"

    def get(self, grid: VoxelGrid, model) -> np.ndarray | None:
        """The cached feature array, or ``None`` on a miss."""
        if not self.enabled:
            return None
        path = self.path_for(feature_cache_key(grid, model))
        if path.exists():
            try:
                feature = np.load(path, allow_pickle=False)
            except (OSError, ValueError):
                # Corrupt/truncated entry (e.g. a crashed writer on a
                # filesystem without atomic replace): treat as a miss
                # and let the fresh put() below repair it.
                pass
            else:
                self.hits += 1
                return feature
        self.misses += 1
        return None

    def put(self, grid: VoxelGrid, model, feature: np.ndarray) -> None:
        """Store *feature* atomically (unique temp file + replace)."""
        if not self.enabled:
            return
        path = self.path_for(feature_cache_key(grid, model))
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                np.save(handle, np.asarray(feature), allow_pickle=False)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- statistics ----------------------------------------------------------

    def flush_stats(self) -> None:
        """Merge this instance's counters into the cumulative stats file.

        Best-effort: a read-only or contended cache directory must not
        fail the extraction that produced the features.
        """
        if not self.enabled or (self.hits == 0 and self.misses == 0):
            return
        stats_path = self.root / "stats.json"
        try:
            totals = _read_stats(stats_path)
            totals["hits"] += self.hits
            totals["misses"] += self.misses
            stats_path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=stats_path.parent, suffix=".tmp")
            with os.fdopen(fd, "w") as handle:
                json.dump(totals, handle)
            os.replace(tmp, stats_path)
        except OSError:
            return
        self.hits = 0
        self.misses = 0


def _read_stats(stats_path: Path) -> dict:
    try:
        with open(stats_path) as handle:
            data = json.load(handle)
        return {"hits": int(data["hits"]), "misses": int(data["misses"])}
    except (OSError, ValueError, KeyError, TypeError):
        return {"hits": 0, "misses": 0}


def cache_info(root: str | Path | None = None) -> dict:
    """Summary of the on-disk cache for ``repro info``.

    Returns entry count, total bytes and the cumulative hit/miss
    counters that :meth:`FeatureCache.flush_stats` maintains.
    """
    base = Path(root) if root is not None else default_cache_root()
    entries = 0
    size = 0
    if base.is_dir():
        for path in base.rglob("*.npy"):
            try:
                size += path.stat().st_size
            except OSError:
                continue
            entries += 1
    totals = _read_stats(base / "stats.json")
    return {
        "root": str(base),
        "entries": entries,
        "bytes": size,
        "hits": totals["hits"],
        "misses": totals["misses"],
    }

"""The cover sequence model (Section 3.3.3, after Jagadish & Bruckstein).

An object ``O`` is approximated by a sequence of axis-aligned rectangular
covers combined with union ("+") or difference ("-"):

    S_k = (((C_0 s_1 C_1) s_2 C_2) ... s_k C_k),   C_0 = empty

chosen to minimize the symmetric volume difference
``Err_k = |O XOR S_k|``.  Like the paper we use the *greedy* variant: in
every step the cover (and sign) with the largest error reduction is
added.  The key subroutine is finding the axis-aligned box with maximum
total weight over a signed voxel-weight grid; we solve that *exactly*
over all O(r^6) boxes with a 3-D summed-area table and vectorized
difference tables (see DESIGN.md), so the greedy step itself is optimal.

Each cover contributes six feature values (position and extent per axis,
Section 3.3.3); sequences shorter than ``k`` are padded with dummy covers
("at the zero point", i.e. the zero vector in our centered encoding) for
the one-vector model, while the vector set model simply keeps the shorter
set (Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import FeatureError
from repro.features.base import FeatureModel
from repro.voxel.grid import VoxelGrid

def _pair_indices(r: int) -> tuple[np.ndarray, np.ndarray]:
    """All (lo, hi) with 0 <= lo < hi <= r as two flat arrays."""
    lo, hi = np.meshgrid(np.arange(r + 1), np.arange(r + 1), indexing="ij")
    keep = lo < hi
    return lo[keep], hi[keep]


def _max_sum_box_cropped(weights: np.ndarray) -> tuple[float, np.ndarray, np.ndarray]:
    """Exact max-sum box over the full (already cropped) weight grid.

    All (x1, x2) x (y1, y2) interval pairs are enumerated via a 3-D
    summed-area table; the best z-interval for each pair is then found
    with a vectorized running-minimum scan over the z-prefix sums
    (the 1-D Kadane trick), which avoids materializing all O(r^6) box
    sums while still checking every box.
    """
    rx, ry, rz = weights.shape
    sat = np.zeros((rx + 1, ry + 1, rz + 1))
    sat[1:, 1:, 1:] = weights.cumsum(0).cumsum(1).cumsum(2)

    x_lo, x_hi = _pair_indices(rx)
    y_lo, y_hi = _pair_indices(ry)
    # z-prefix sums for every (x-pair, y-pair): shape (n_x, n_y, rz + 1).
    diff_x = sat[x_hi] - sat[x_lo]
    pref = diff_x[:, y_hi, :] - diff_x[:, y_lo, :]

    shape = pref.shape[:2]
    running_min = pref[..., 0].copy()
    running_arg = np.zeros(shape, dtype=np.intp)
    best = np.full(shape, -np.inf)
    best_z1 = np.zeros(shape, dtype=np.intp)
    best_z2 = np.ones(shape, dtype=np.intp)
    for z2 in range(1, rz + 1):
        column = pref[..., z2]
        candidate = column - running_min
        better = candidate > best
        best[better] = candidate[better]
        best_z1[better] = running_arg[better]
        best_z2[better] = z2
        lower_min = column < running_min
        running_min[lower_min] = column[lower_min]
        running_arg[lower_min] = z2

    flat = int(np.argmax(best))
    ix, iy = np.unravel_index(flat, shape)
    lower = np.array([x_lo[ix], y_lo[iy], best_z1[ix, iy]])
    upper = np.array([x_hi[ix] - 1, y_hi[iy] - 1, best_z2[ix, iy] - 1])
    return float(best[ix, iy]), lower, upper


def max_sum_box(weights: np.ndarray) -> tuple[float, np.ndarray, np.ndarray]:
    """Exact maximum-sum axis-aligned box of a 3-D weight grid.

    Returns ``(best_sum, lower, upper)`` with inclusive integer corner
    indices.  The search is exact over all ``O(r^6)`` boxes; as a
    sum-preserving reduction it first crops to the bounding box of the
    non-zero weights (any optimal box can be clipped to that region
    without changing its sum).
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 3:
        raise FeatureError(f"expected a 3-D weight grid, got shape {weights.shape}")
    nonzero = np.nonzero(weights)
    if not len(nonzero[0]):
        # All-zero grid: every box sums to zero; report a single voxel.
        return 0.0, np.zeros(3, dtype=int), np.zeros(3, dtype=int)
    lows = np.array([axis.min() for axis in nonzero])
    highs = np.array([axis.max() for axis in nonzero])
    cropped = weights[
        lows[0] : highs[0] + 1, lows[1] : highs[1] + 1, lows[2] : highs[2] + 1
    ]
    best, lower, upper = _max_sum_box_cropped(cropped)
    covers_whole_grid = np.all(lows == 0) and np.all(
        highs == np.asarray(weights.shape) - 1
    )
    if best < 0 and not covers_whole_grid:
        # All boxes inside the non-zero region sum negative, but a
        # zero-sum box exists outside it (cropping only preserves sums
        # of boxes that *intersect* the region).
        for axis in range(3):
            cell = list(lows)  # a cell inside the region, then step out
            if lows[axis] > 0:
                cell[axis] = 0
            elif highs[axis] < weights.shape[axis] - 1:
                cell[axis] = weights.shape[axis] - 1
            else:
                continue
            zero_cell = np.array(cell)
            return 0.0, zero_cell, zero_cell.copy()
    return best, lower + lows, upper + lows


@dataclass(frozen=True)
class Cover:
    """One unit ``(C_i, s_i)`` of a cover sequence.

    ``lower`` and ``upper`` are inclusive voxel-index corners; ``sign``
    is +1 for set union and -1 for set difference; ``gain`` is the error
    reduction the cover achieved when it was added.
    """

    sign: int
    lower: tuple[int, int, int]
    upper: tuple[int, int, int]
    gain: int

    def extent(self) -> np.ndarray:
        """Box side lengths in voxels."""
        return np.asarray(self.upper) - np.asarray(self.lower) + 1

    def volume(self) -> int:
        return int(np.prod(self.extent()))

    def center(self) -> np.ndarray:
        """Box center in voxel coordinates (may be half-integral)."""
        return (np.asarray(self.lower) + np.asarray(self.upper) + 1) / 2.0

    def mask(self, resolution: int) -> np.ndarray:
        """Boolean occupancy mask of the cover on an ``r^3`` raster."""
        result = np.zeros((resolution,) * 3, dtype=bool)
        lo, hi = self.lower, self.upper
        result[lo[0] : hi[0] + 1, lo[1] : hi[1] + 1, lo[2] : hi[2] + 1] = True
        return result


@dataclass
class CoverSequence:
    """A greedy cover sequence with its error trajectory.

    Attributes
    ----------
    covers:
        The covers in greedy order (the order of decreasing marginal
        error reduction — the "ranking according to the symmetric volume
        difference" of Section 4).
    errors:
        ``errors[i]`` is the symmetric volume difference after ``i``
        covers; ``errors[0]`` is the object's voxel count.
    resolution:
        Raster resolution the covers refer to.
    """

    covers: list[Cover]
    errors: list[int]
    resolution: int

    @property
    def final_error(self) -> int:
        return self.errors[-1]

    def approximation(self) -> np.ndarray:
        """Rebuild the boolean approximation ``S_k`` from the covers."""
        state = np.zeros((self.resolution,) * 3, dtype=bool)
        for cover in self.covers:
            if cover.sign > 0:
                state |= cover.mask(self.resolution)
            else:
                state &= ~cover.mask(self.resolution)
        return state

    def feature_vectors(self, normalize: bool = True) -> np.ndarray:
        """Covers as ``(m, 6)`` rows of (position, extent).

        Positions are measured from the raster center (the objects are
        normalized to the center of the coordinate system, Section 3.2),
        so the zero vector is exactly the paper's dummy cover ``C_0`` "at
        the zero point" with no volume.  With *normalize* (default) all
        six components are divided by the resolution, making features
        comparable across rasters.
        """
        if not self.covers:
            return np.zeros((0, 6))
        center = self.resolution / 2.0
        rows = []
        for cover in self.covers:
            position = cover.center() - center
            rows.append(np.concatenate([position, cover.extent().astype(float)]))
        result = np.asarray(rows)
        if normalize:
            result = result / float(self.resolution)
        return result

    def feature_vector(self, k: int, normalize: bool = True) -> np.ndarray:
        """The one-vector model: ``6k`` values, dummy-padded (zero rows)."""
        if k < len(self.covers):
            raise FeatureError(f"sequence has {len(self.covers)} covers > k={k}")
        rows = self.feature_vectors(normalize)
        padded = np.zeros((k, 6))
        padded[: len(rows)] = rows
        return padded.reshape(-1)


def extract_cover_sequence(
    grid: VoxelGrid, k: int = 7, allow_subtraction: bool = True
) -> CoverSequence:
    """Greedy cover sequence of *grid* with at most *k* covers.

    Each step evaluates the best "+" cover (over the weight grid that
    rewards uncovered object voxels and penalizes newly covered empty
    ones) and — unless disabled — the best "-" cover (rewarding removal
    of wrongly covered voxels), and keeps the better of the two.  The
    loop stops early when no cover improves the symmetric volume
    difference or the approximation is exact.
    """
    if k < 1:
        raise FeatureError("need k >= 1 covers")
    if grid.is_empty():
        raise FeatureError("cannot extract covers from an empty grid")
    target = grid.occupancy
    state = np.zeros_like(target)
    covers: list[Cover] = []
    errors = [int(target.sum())]

    for _ in range(k):
        uncovered = ~state
        # "+": object voxels not yet covered are gains, empty voxels
        # not yet covered would become errors.
        weight_add = np.where(target & uncovered, 1.0, 0.0) - np.where(
            ~target & uncovered, 1.0, 0.0
        )
        gain_add, lo_add, hi_add = max_sum_box(weight_add)

        gain_sub = -np.inf
        if allow_subtraction and covers:
            # "-": wrongly covered voxels are gains, correctly covered
            # object voxels would become errors.
            weight_sub = np.where(state & ~target, 1.0, 0.0) - np.where(
                state & target, 1.0, 0.0
            )
            gain_sub, lo_sub, hi_sub = max_sum_box(weight_sub)

        if max(gain_add, gain_sub) <= 0:
            break
        if gain_add >= gain_sub:
            sign, gain, lower, upper = 1, gain_add, lo_add, hi_add
        else:
            sign, gain, lower, upper = -1, gain_sub, lo_sub, hi_sub

        cover = Cover(
            sign=sign,
            lower=(int(lower[0]), int(lower[1]), int(lower[2])),
            upper=(int(upper[0]), int(upper[1]), int(upper[2])),
            gain=int(round(gain)),
        )
        covers.append(cover)
        if sign > 0:
            state |= cover.mask(grid.resolution)
        else:
            state &= ~cover.mask(grid.resolution)
        errors.append(int(np.count_nonzero(state ^ target)))
        if errors[-1] == 0:
            break

    return CoverSequence(covers=covers, errors=errors, resolution=grid.resolution)


class CoverSequenceModel(FeatureModel):
    """The one-vector cover sequence model: a ``6k``-dimensional vector.

    Parameters
    ----------
    k:
        Maximum number of covers (the paper evaluates 3, 5, 7, 9 and
    settles on 7).
    allow_subtraction:
        Permit "-" covers (both the paper's branch-and-bound and greedy
        algorithms do); disable for an ablation with union-only covers.
    normalize:
        Divide features by the resolution (see
        :meth:`CoverSequence.feature_vectors`).
    """

    def __init__(self, k: int = 7, allow_subtraction: bool = True, normalize: bool = True):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.allow_subtraction = allow_subtraction
        self.normalize = normalize

    @property
    def name(self) -> str:
        return f"cover-sequence(k={self.k})"

    def dimension(self, resolution: int) -> int:
        return 6 * self.k

    def extract(self, grid: VoxelGrid) -> np.ndarray:
        sequence = extract_cover_sequence(grid, self.k, self.allow_subtraction)
        return sequence.feature_vector(self.k, self.normalize)


def transform_cover_vectors(vectors: np.ndarray, matrix: np.ndarray) -> np.ndarray:
    """Apply a cube symmetry to 6-d cover features directly.

    A signed permutation ``M`` maps a cover with centered position ``p``
    and extent ``e`` to one with position ``M p`` and extent ``|M| e``
    (axis-aligned boxes stay axis-aligned under 90-degree symmetries).
    This lets Definition 2 be evaluated on extracted features without
    re-running the greedy extraction for each of the 48 variants.
    """
    vecs = np.asarray(vectors, dtype=float)
    squeeze = vecs.ndim == 1
    if squeeze:
        vecs = vecs[np.newaxis, :]
    if vecs.shape[1] != 6:
        raise FeatureError(f"expected (m, 6) cover vectors, got shape {vecs.shape}")
    mat = np.asarray(matrix, dtype=float)
    positions = vecs[:, :3] @ mat.T
    extents = vecs[:, 3:] @ np.abs(mat).T
    result = np.hstack([positions, extents])
    return result[0] if squeeze else result

"""The cover sequence model (Section 3.3.3, after Jagadish & Bruckstein).

An object ``O`` is approximated by a sequence of axis-aligned rectangular
covers combined with union ("+") or difference ("-"):

    S_k = (((C_0 s_1 C_1) s_2 C_2) ... s_k C_k),   C_0 = empty

chosen to minimize the symmetric volume difference
``Err_k = |O XOR S_k|``.  Like the paper we use the *greedy* variant: in
every step the cover (and sign) with the largest error reduction is
added.  The key subroutine is finding the axis-aligned box with maximum
total weight over a signed voxel-weight grid; we solve that *exactly*
over all O(r^6) boxes with a 3-D summed-area table and vectorized
difference tables (see DESIGN.md), so the greedy step itself is optimal.

Each cover contributes six feature values (position and extent per axis,
Section 3.3.3); sequences shorter than ``k`` are padded with dummy covers
("at the zero point", i.e. the zero vector in our centered encoding) for
the one-vector model, while the vector set model simply keeps the shorter
set (Section 4.1).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.exceptions import FeatureError
from repro.features.base import FeatureModel
from repro.obs import counter, histogram, span
from repro.voxel.grid import VoxelGrid

#: Approximate peak-memory budget (bytes) of one blocked max-sum-box
#: search; overridable per call or via ``REPRO_MAXBOX_BLOCK_BYTES``.
DEFAULT_BLOCK_BYTES = 32 * 1024 * 1024

#: The extraction engines ``extract_cover_sequence`` accepts.
EXTRACTION_ENGINES = ("incremental", "reference")


def default_block_bytes() -> int:
    """The effective block budget (env override, else the default)."""
    raw = os.environ.get("REPRO_MAXBOX_BLOCK_BYTES")
    if raw is None:
        return DEFAULT_BLOCK_BYTES
    try:
        value = int(raw)
    except ValueError:
        raise FeatureError(
            f"REPRO_MAXBOX_BLOCK_BYTES must be an integer, got {raw!r}"
        ) from None
    if value < 1:
        raise FeatureError("REPRO_MAXBOX_BLOCK_BYTES must be >= 1")
    return value


def _pair_indices(r: int) -> tuple[np.ndarray, np.ndarray]:
    """All (lo, hi) with 0 <= lo < hi <= r as two flat arrays."""
    lo, hi = np.meshgrid(np.arange(r + 1), np.arange(r + 1), indexing="ij")
    keep = lo < hi
    return lo[keep], hi[keep]


def _max_sum_box_cropped(weights: np.ndarray) -> tuple[float, np.ndarray, np.ndarray]:
    """Reference max-sum box over the full (already cropped) weight grid.

    All (x1, x2) x (y1, y2) interval pairs are enumerated via a 3-D
    summed-area table; the best z-interval for each pair is then found
    with a vectorized running-minimum scan over the z-prefix sums
    (the 1-D Kadane trick), which avoids materializing all O(r^6) box
    sums while still checking every box.

    This is the *oracle* implementation: it materializes the full
    ``(n_x_pairs, n_y_pairs, r_z + 1)`` z-prefix tensor (O(r^4) doubles,
    ~54 MB at r = 30 and growing with the fourth power of the
    resolution).  Production extraction goes through
    :func:`_max_sum_box_blocked`, which is bit-identical but
    memory-capped; this version is kept for cross-checking.
    """
    rx, ry, rz = weights.shape
    sat = np.zeros((rx + 1, ry + 1, rz + 1))
    sat[1:, 1:, 1:] = weights.cumsum(0).cumsum(1).cumsum(2)

    x_lo, x_hi = _pair_indices(rx)
    y_lo, y_hi = _pair_indices(ry)
    # z-prefix sums for every (x-pair, y-pair): shape (n_x, n_y, rz + 1).
    diff_x = sat[x_hi] - sat[x_lo]
    pref = diff_x[:, y_hi, :] - diff_x[:, y_lo, :]

    shape = pref.shape[:2]
    running_min = pref[..., 0].copy()
    running_arg = np.zeros(shape, dtype=np.intp)
    best = np.full(shape, -np.inf)
    best_z1 = np.zeros(shape, dtype=np.intp)
    best_z2 = np.ones(shape, dtype=np.intp)
    for z2 in range(1, rz + 1):
        column = pref[..., z2]
        candidate = column - running_min
        better = candidate > best
        best[better] = candidate[better]
        best_z1[better] = running_arg[better]
        best_z2[better] = z2
        lower_min = column < running_min
        running_min[lower_min] = column[lower_min]
        running_arg[lower_min] = z2

    flat = int(np.argmax(best))
    ix, iy = np.unravel_index(flat, shape)
    lower = np.array([x_lo[ix], y_lo[iy], best_z1[ix, iy]])
    upper = np.array([x_hi[ix] - 1, y_hi[iy] - 1, best_z2[ix, iy] - 1])
    return float(best[ix, iy]), lower, upper


def _sat_dtypes(weights: np.ndarray) -> tuple[np.dtype, np.dtype, float]:
    """(sat dtype, scan dtype, sentinel) for an exact scan of *weights*.

    Integer grids use the narrowest summed-area-table dtype whose range
    provably holds every prefix sum (bounded by the total absolute
    weight), halving memory traffic on the bandwidth-bound scan; the
    scan buffers use a wider dtype because prefix *differences* span
    twice that range (and the pruning bound four times it).  Every box
    sum stays exactly representable, so all comparisons — and hence the
    selected box — are identical to the float64 reference.
    """
    if np.issubdtype(weights.dtype, np.integer):
        spread = int(np.abs(weights.astype(np.int64, copy=False)).sum())
        if spread < 2**15:
            return np.dtype(np.int16), np.dtype(np.int32), np.iinfo(np.int32).min
        if spread < 2**29:
            return np.dtype(np.int32), np.dtype(np.int32), np.iinfo(np.int32).min
        return np.dtype(np.int64), np.dtype(np.int64), np.iinfo(np.int64).min
    return np.dtype(np.float64), np.dtype(np.float64), -np.inf


def _build_sat_z(weights: np.ndarray, sat_dtype: np.dtype) -> np.ndarray:
    """Zero-padded summed-area table of *weights* in z-major layout.

    The z-major transpose makes the Kadane scan's z-planes contiguous
    ``(x, y)`` slices instead of strided gathers.
    """
    rx, ry, rz = weights.shape
    sat = np.zeros((rx + 1, ry + 1, rz + 1), dtype=sat_dtype)
    sat[1:, 1:, 1:] = weights.cumsum(0, dtype=sat_dtype).cumsum(1).cumsum(2)
    return np.ascontiguousarray(sat.transpose(2, 0, 1))


def _kadane_best_values(
    diff: np.ndarray,
    y_lo: np.ndarray,
    y_hi: np.ndarray,
    sentinel,
    scan_dtype: np.dtype,
) -> np.ndarray:
    """Best box sum per (x-pair, y-pair) over z-major prefix sums.

    *diff* holds ``(rz + 1, b, ry + 1)`` y/z prefix differences for a
    block of ``b`` x-pairs; the classic running-minimum scan finds, for
    every (x-pair, y-pair), the maximal z-interval sum.  Only *values*
    are tracked — four dense passes per z-plane instead of the nine (and
    three 8-byte index arrays) that coordinate bookkeeping would cost.
    The z-interval of the single winning entry is recovered afterwards
    by :func:`_recover_z_interval`.  ``np.maximum`` keeps the earlier
    value on ties, matching the reference scan's first-occurrence rule.
    """
    rz_levels = diff.shape[0]
    right = diff[:, :, y_hi]  # (rz+1, b, n_y) z-prefix sums per y-pair
    left = diff[:, :, y_lo]
    shape = right.shape[1:]
    running_min = np.zeros(shape, dtype=scan_dtype)
    best = np.full(shape, sentinel, dtype=scan_dtype)
    column = np.empty(shape, dtype=scan_dtype)
    candidate = np.empty(shape, dtype=scan_dtype)
    for z2 in range(1, rz_levels):
        # dtype= forces the wide loop: with a narrow sat dtype, out=
        # alone would pick the narrow loop and wrap before widening.
        np.subtract(right[z2], left[z2], out=column, dtype=scan_dtype)
        np.subtract(column, running_min, out=candidate)
        np.maximum(best, candidate, out=best)
        np.minimum(running_min, column, out=running_min)
    return best


def _recover_z_interval(prefix: np.ndarray) -> tuple[int, int]:
    """The z-interval the reference scan selects for one prefix column.

    Replays the running-minimum scan on a single ``(rz + 1,)`` z-prefix
    column with the reference tie rules — strict improvement, first
    running minimum — so the recovered ``(z1, z2)`` matches what full
    coordinate tracking would have produced for the winning entry.
    """
    values = [int(v) for v in prefix] if prefix.dtype.kind in "iu" else list(prefix)
    best = None
    z1_best, z2_best = 0, 1
    run_min, run_arg = values[0], 0
    for z2 in range(1, len(values)):
        candidate = values[z2] - run_min
        if best is None or candidate > best:
            best, z1_best, z2_best = candidate, run_arg, z2
        if values[z2] < run_min:
            run_min, run_arg = values[z2], z2
    return z1_best, z2_best


def _max_sum_box_blocked(
    weights: np.ndarray, block_bytes: int | None = None
) -> tuple[float, np.ndarray, np.ndarray]:
    """Blocked, memory-capped max-sum box over a cropped weight grid.

    The x-pair enumeration is chunked so that the per-block working set
    (z-major prefix differences plus the Kadane scan arrays) stays under
    *block_bytes* regardless of resolution — the O(r^4) z-prefix tensor
    of the reference scan is never materialized.  Three further ideas
    keep it exact while usually doing far less work:

    **Integer summed-area tables.**  Integer weight grids (the
    extraction path uses int8) build an int32/int64 SAT instead of
    float64, halving memory traffic on the bandwidth-bound scan; every
    box sum stays exactly representable, so all comparisons — and hence
    the selected box — are identical to the float64 reference.

    **Prefix-spread pruning.**  For each x-pair the ordered spread of
    its y/z prefix sums (``max_z max-ordered-y-spread - min_z
    min-ordered-y-spread``) upper-bounds every box sum realizable with
    that x-extent.  Blocks are processed in x-pair order with a running
    incumbent; x-pairs whose bound cannot *strictly* beat the incumbent
    are dropped before the expensive scan.  Since the reference argmax
    also resolves ties to the earliest x-pair, pruning preserves
    bit-identical results.

    **Incumbent seeding.**  Before the first block, the single
    full-x-extent pair is scanned (O(r^2) work) to establish a value
    some box provably achieves.  Blocks whose bound falls *below* that
    value cannot contain the optimum at all and are pruned immediately
    — pairs that might tie it are still scanned, so first-occurrence
    tie resolution is untouched.
    """
    if block_bytes is None:
        block_bytes = default_block_bytes()
    if block_bytes < 1:
        raise FeatureError("block_bytes must be >= 1")
    rx, ry, rz = weights.shape
    sat_dtype, scan_dtype, sentinel = _sat_dtypes(weights)
    sat_z = _build_sat_z(weights, sat_dtype)
    x_lo, x_hi = _pair_indices(rx)
    y_lo, y_hi = _pair_indices(ry)
    n_x, n_y = len(x_lo), len(y_lo)
    block = _block_size(n_x, n_y, ry, rz, sat_dtype, scan_dtype, block_bytes)

    # Seed: the full-x-extent pair (index rx - 1 in lo-major order).
    seed = rx - 1
    seed_diff = np.subtract(
        sat_z[:, x_hi[seed : seed + 1], :],
        sat_z[:, x_lo[seed : seed + 1], :],
        dtype=scan_dtype,
    )
    seed_val = _kadane_best_values(seed_diff, y_lo, y_hi, sentinel, scan_dtype).max()

    best_val = sentinel
    best_lower = np.zeros(3, dtype=np.intp)
    best_upper = np.zeros(3, dtype=np.intp)
    have_best = False
    for start in range(0, n_x, block):
        stop = min(start + block, n_x)
        diff = sat_z[:, x_hi[start:stop], :] - sat_z[:, x_lo[start:stop], :]
        run_min = np.minimum.accumulate(diff, axis=2)
        # max ordered y-spread per z (wide dtype: spreads span 2x the
        # sat range, the bound 4x)
        upper_y = np.subtract(diff, run_min, dtype=scan_dtype).max(axis=2)
        run_max = np.maximum.accumulate(diff, axis=2)
        lower_y = np.subtract(diff, run_max, dtype=scan_dtype).min(axis=2)
        bound = upper_y.max(axis=0) - lower_y.min(axis=0)
        # An x-pair must be scanned only if it could still (a) tie the
        # seeded achievable value and (b) strictly beat the in-order
        # incumbent; everything else provably loses or ties later.
        survives = bound >= seed_val
        if have_best:
            survives &= bound > best_val
        keep = np.nonzero(survives)[0]
        if not keep.size:
            continue
        if keep.size < diff.shape[1]:
            diff = diff[:, keep, :]
        else:
            keep = None
        block_best = _kadane_best_values(diff, y_lo, y_hi, sentinel, scan_dtype)
        flat = int(np.argmax(block_best))
        bx, by = np.unravel_index(flat, block_best.shape)
        if not have_best or block_best[bx, by] > best_val:
            best_val = block_best[bx, by]
            z1, z2 = _recover_z_interval(
                np.subtract(diff[:, bx, y_hi[by]], diff[:, bx, y_lo[by]], dtype=scan_dtype)
            )
            gx = start + (int(keep[bx]) if keep is not None else int(bx))
            best_lower = np.array([x_lo[gx], y_lo[by], z1])
            best_upper = np.array([x_hi[gx] - 1, y_hi[by] - 1, z2 - 1])
            have_best = True
    return float(best_val), best_lower, best_upper


def _block_size(
    n_x: int,
    n_y: int,
    ry: int,
    rz: int,
    sat_dtype: np.dtype,
    scan_dtype: np.dtype,
    block_bytes: int,
) -> int:
    """x-pairs per block so the working set stays under *block_bytes*.

    Dominant per-x-pair working set: the two ``(rz+1, b, n_y)`` prefix
    gathers, ~8 scan/temporary arrays of ``(b, n_y)``, and the
    ``(rz+1, b, ry+1)`` prefix differences with their pruning
    temporaries.
    """
    sat_item = np.dtype(sat_dtype).itemsize
    scan_item = np.dtype(scan_dtype).itemsize
    per_pair = (
        n_y * (2 * (rz + 1) * sat_item + 8 * scan_item)
        + 3 * (ry + 1) * (rz + 1) * sat_item
    )
    return int(max(1, min(n_x, block_bytes // max(per_pair, 1))))


def _pair_best_values(
    sat_z: np.ndarray,
    x_lo_sel: np.ndarray,
    x_hi_sel: np.ndarray,
    y_lo: np.ndarray,
    y_hi: np.ndarray,
    scan_dtype: np.dtype,
    sentinel,
    block_bytes: int,
) -> np.ndarray:
    """Exact best box value for each selected x-pair (blocked, unpruned).

    Feeds the cross-iteration memo of :class:`_PairValueCache`: every
    selected pair gets its true value (no bound pruning — a pruned
    pair's value would go stale and could silently become the maximum
    in a later iteration).  Values are returned as float64, which holds
    every realizable integer box sum exactly.
    """
    rz1, _, ry1 = sat_z.shape
    n_sel, n_y = len(x_lo_sel), len(y_lo)
    block = _block_size(n_sel, n_y, ry1 - 1, rz1 - 1, sat_z.dtype, scan_dtype, block_bytes)
    out = np.empty(n_sel, dtype=np.float64)
    for start in range(0, n_sel, block):
        stop = min(start + block, n_sel)
        diff = sat_z[:, x_hi_sel[start:stop], :] - sat_z[:, x_lo_sel[start:stop], :]
        block_best = _kadane_best_values(diff, y_lo, y_hi, sentinel, scan_dtype)
        out[start:stop] = block_best.max(axis=1)
    return out


class _PairValueCache:
    """Cross-iteration memo of exact per-x-pair best box values.

    Greedy extraction re-searches the same weight grid after each
    accepted cover, but only voxels *inside* the cover's box changed —
    so the best box value of every x-pair whose slab does not overlap
    the box in x is provably unchanged.  The engine records each
    accepted box via :meth:`invalidate`; the next search recomputes only
    overlapping pairs and reuses the rest.  The memo is keyed to the
    crop window (crop growth/shrink renumbers pairs, forcing a full
    recompute) and stores exact values, so the reported box — including
    first-occurrence tie resolution over x-pair-major order — stays
    bit-identical to the stateless search.
    """

    __slots__ = ("crop", "values", "pending")

    def __init__(self) -> None:
        self.crop: tuple | None = None
        self.values: np.ndarray | None = None
        self.pending: list[tuple[int, int]] = []

    def invalidate(self, x_start: int, x_stop: int) -> None:
        """Record that weights changed inside ``[x_start, x_stop)``."""
        self.pending.append((x_start, x_stop))


def _max_sum_box_memo(
    cropped: np.ndarray,
    lows: np.ndarray,
    cache: _PairValueCache,
    block_bytes: int | None,
) -> tuple[float, np.ndarray, np.ndarray]:
    """Best box of *cropped* reusing cached per-x-pair values.

    Coordinates are returned in the cropped frame (the caller offsets by
    *lows*; they are only needed here to key the memo to the crop
    window).
    """
    if block_bytes is None:
        block_bytes = default_block_bytes()
    if block_bytes < 1:
        raise FeatureError("block_bytes must be >= 1")
    rx, ry, rz = cropped.shape
    sat_dtype, scan_dtype, sentinel = _sat_dtypes(cropped)
    sat_z = _build_sat_z(cropped, sat_dtype)
    x_lo, x_hi = _pair_indices(rx)
    y_lo, y_hi = _pair_indices(ry)
    n_x = len(x_lo)
    crop_key = (int(lows[0]), int(lows[1]), int(lows[2]), rx, ry, rz)
    if cache.values is None or cache.crop != crop_key:
        sel = np.arange(n_x)
        cache.values = np.empty(n_x, dtype=np.float64)
    else:
        invalid = np.zeros(n_x, dtype=bool)
        for gx0, gx1 in cache.pending:
            c0 = max(gx0 - int(lows[0]), 0)
            c1 = min(gx1 - int(lows[0]), rx)
            if c0 < c1:
                # pair (lo, hi) spans the slab [lo, hi): overlap test
                invalid |= (x_lo < c1) & (x_hi > c0)
        sel = np.nonzero(invalid)[0]
    cache.crop = crop_key
    cache.pending.clear()
    if sel.size:
        cache.values[sel] = _pair_best_values(
            sat_z, x_lo[sel], x_hi[sel], y_lo, y_hi, scan_dtype, sentinel, block_bytes
        )
    winner = int(np.argmax(cache.values))  # first occurrence == reference order
    # Recover (y, z) of the winning pair with a single-pair scan.
    pair_diff = np.subtract(
        sat_z[:, x_hi[winner] : x_hi[winner] + 1, :],
        sat_z[:, x_lo[winner] : x_lo[winner] + 1, :],
        dtype=scan_dtype,
    )
    pair_vals = _kadane_best_values(pair_diff, y_lo, y_hi, sentinel, scan_dtype)
    by = int(np.argmax(pair_vals[0]))
    z1, z2 = _recover_z_interval(pair_diff[:, 0, y_hi[by]] - pair_diff[:, 0, y_lo[by]])
    lower = np.array([x_lo[winner], y_lo[by], z1])
    upper = np.array([x_hi[winner] - 1, y_hi[by] - 1, z2 - 1])
    return float(cache.values[winner]), lower, upper


def max_sum_box(
    weights: np.ndarray,
    block_bytes: int | None = None,
    engine: str = "blocked",
    _cache: _PairValueCache | None = None,
) -> tuple[float, np.ndarray, np.ndarray]:
    """Exact maximum-sum axis-aligned box of a 3-D weight grid.

    Returns ``(best_sum, lower, upper)`` with inclusive integer corner
    indices.  The search is exact over all ``O(r^6)`` boxes; as a
    sum-preserving reduction it first crops to the bounding box of the
    non-zero weights (any optimal box can be clipped to that region
    without changing its sum).

    Parameters
    ----------
    block_bytes:
        Approximate peak-memory budget of the blocked search (default:
        :func:`default_block_bytes`); ignored by the reference engine.
    engine:
        ``"blocked"`` (default) for the memory-capped blocked scan,
        ``"reference"`` for the original full-tensor oracle.  Both
        return bit-identical results.
    _cache:
        Internal: a :class:`_PairValueCache` carrying per-x-pair values
        across repeated searches of an incrementally updated grid (used
        by the incremental extraction engine with ``engine="blocked"``).
    """
    weights = np.asarray(weights)
    if weights.dtype == bool:
        weights = weights.astype(np.int8)
    elif not (
        np.issubdtype(weights.dtype, np.integer)
        or np.issubdtype(weights.dtype, np.floating)
    ):
        weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 3:
        raise FeatureError(f"expected a 3-D weight grid, got shape {weights.shape}")
    if engine not in ("blocked", "reference"):
        raise FeatureError(
            f"unknown max_sum_box engine {engine!r}; choose 'blocked' or 'reference'"
        )
    nonzero = np.nonzero(weights)
    if not len(nonzero[0]):
        # All-zero grid: every box sums to zero; report a single voxel.
        return 0.0, np.zeros(3, dtype=int), np.zeros(3, dtype=int)
    lows = np.array([axis.min() for axis in nonzero])
    highs = np.array([axis.max() for axis in nonzero])
    cropped = weights[
        lows[0] : highs[0] + 1, lows[1] : highs[1] + 1, lows[2] : highs[2] + 1
    ]
    if engine == "reference":
        best, lower, upper = _max_sum_box_cropped(cropped.astype(np.float64))
    elif _cache is not None:
        best, lower, upper = _max_sum_box_memo(cropped, lows, _cache, block_bytes)
    else:
        best, lower, upper = _max_sum_box_blocked(cropped, block_bytes)
    covers_whole_grid = np.all(lows == 0) and np.all(
        highs == np.asarray(weights.shape) - 1
    )
    if best < 0 and not covers_whole_grid:
        # All boxes inside the non-zero region sum negative, but a
        # zero-sum box exists outside it (cropping only preserves sums
        # of boxes that *intersect* the region).
        for axis in range(3):
            cell = list(lows)  # a cell inside the region, then step out
            if lows[axis] > 0:
                cell[axis] = 0
            elif highs[axis] < weights.shape[axis] - 1:
                cell[axis] = weights.shape[axis] - 1
            else:
                continue
            zero_cell = np.array(cell)
            return 0.0, zero_cell, zero_cell.copy()
    return best, lower + lows, upper + lows


@dataclass(frozen=True)
class Cover:
    """One unit ``(C_i, s_i)`` of a cover sequence.

    ``lower`` and ``upper`` are inclusive voxel-index corners; ``sign``
    is +1 for set union and -1 for set difference; ``gain`` is the error
    reduction the cover achieved when it was added.
    """

    sign: int
    lower: tuple[int, int, int]
    upper: tuple[int, int, int]
    gain: int

    def extent(self) -> np.ndarray:
        """Box side lengths in voxels."""
        return np.asarray(self.upper) - np.asarray(self.lower) + 1

    def volume(self) -> int:
        return int(np.prod(self.extent()))

    def center(self) -> np.ndarray:
        """Box center in voxel coordinates (may be half-integral)."""
        return (np.asarray(self.lower) + np.asarray(self.upper) + 1) / 2.0

    def mask(self, resolution: int) -> np.ndarray:
        """Boolean occupancy mask of the cover on an ``r^3`` raster."""
        result = np.zeros((resolution,) * 3, dtype=bool)
        lo, hi = self.lower, self.upper
        result[lo[0] : hi[0] + 1, lo[1] : hi[1] + 1, lo[2] : hi[2] + 1] = True
        return result


@dataclass
class CoverSequence:
    """A greedy cover sequence with its error trajectory.

    Attributes
    ----------
    covers:
        The covers in greedy order (the order of decreasing marginal
        error reduction — the "ranking according to the symmetric volume
        difference" of Section 4).
    errors:
        ``errors[i]`` is the symmetric volume difference after ``i``
        covers; ``errors[0]`` is the object's voxel count.
    resolution:
        Raster resolution the covers refer to.
    """

    covers: list[Cover]
    errors: list[int]
    resolution: int

    @property
    def final_error(self) -> int:
        return self.errors[-1]

    def approximation(self) -> np.ndarray:
        """Rebuild the boolean approximation ``S_k`` from the covers."""
        state = np.zeros((self.resolution,) * 3, dtype=bool)
        for cover in self.covers:
            if cover.sign > 0:
                state |= cover.mask(self.resolution)
            else:
                state &= ~cover.mask(self.resolution)
        return state

    def feature_vectors(self, normalize: bool = True) -> np.ndarray:
        """Covers as ``(m, 6)`` rows of (position, extent).

        Positions are measured from the raster center (the objects are
        normalized to the center of the coordinate system, Section 3.2),
        so the zero vector is exactly the paper's dummy cover ``C_0`` "at
        the zero point" with no volume.  With *normalize* (default) all
        six components are divided by the resolution, making features
        comparable across rasters.
        """
        if not self.covers:
            return np.zeros((0, 6))
        center = self.resolution / 2.0
        rows = []
        for cover in self.covers:
            position = cover.center() - center
            rows.append(np.concatenate([position, cover.extent().astype(float)]))
        result = np.asarray(rows)
        if normalize:
            result = result / float(self.resolution)
        return result

    def feature_vector(self, k: int, normalize: bool = True) -> np.ndarray:
        """The one-vector model: ``6k`` values, dummy-padded (zero rows)."""
        if k < len(self.covers):
            raise FeatureError(f"sequence has {len(self.covers)} covers > k={k}")
        rows = self.feature_vectors(normalize)
        padded = np.zeros((k, 6))
        padded[: len(rows)] = rows
        return padded.reshape(-1)


def _extract_reference(
    grid: VoxelGrid, k: int, allow_subtraction: bool
) -> CoverSequence:
    """The original greedy loop: weight grids rebuilt from scratch every
    iteration, max-sum boxes found by the full-tensor reference scan.

    Kept as the oracle the incremental engine is verified against
    (property tests and ``repro bench`` require bit-identical cover
    sequences).  The weight grids are built with direct boolean
    arithmetic on int8 views — two temporaries per grid instead of the
    four float ``np.where`` passes of earlier revisions; the values
    (and hence every box choice) are unchanged.
    """
    target = grid.occupancy
    state = np.zeros_like(target)
    covers: list[Cover] = []
    errors = [int(target.sum())]

    for _ in range(k):
        counter("extract.iterations").inc()
        uncovered = ~state
        # "+": object voxels not yet covered are gains, empty voxels
        # not yet covered would become errors.
        weight_add = (target & uncovered).astype(np.int8) - (
            ~target & uncovered
        ).astype(np.int8)
        counter("extract.searches").inc()
        gain_add, lo_add, hi_add = max_sum_box(weight_add, engine="reference")

        gain_sub = -np.inf
        if allow_subtraction and covers:
            # "-": wrongly covered voxels are gains, correctly covered
            # object voxels would become errors.
            weight_sub = (state & ~target).astype(np.int8) - (state & target).astype(
                np.int8
            )
            counter("extract.searches").inc()
            gain_sub, lo_sub, hi_sub = max_sum_box(weight_sub, engine="reference")

        if max(gain_add, gain_sub) <= 0:
            break
        if gain_add >= gain_sub:
            sign, gain, lower, upper = 1, gain_add, lo_add, hi_add
        else:
            sign, gain, lower, upper = -1, gain_sub, lo_sub, hi_sub

        cover = Cover(
            sign=sign,
            lower=(int(lower[0]), int(lower[1]), int(lower[2])),
            upper=(int(upper[0]), int(upper[1]), int(upper[2])),
            gain=int(round(gain)),
        )
        covers.append(cover)
        if sign > 0:
            state |= cover.mask(grid.resolution)
        else:
            state &= ~cover.mask(grid.resolution)
        errors.append(int(np.count_nonzero(state ^ target)))
        if errors[-1] == 0:
            break

    return CoverSequence(covers=covers, errors=errors, resolution=grid.resolution)


def _extract_incremental(
    grid: VoxelGrid, k: int, allow_subtraction: bool, block_bytes: int | None
) -> CoverSequence:
    """Incremental greedy extraction: the production engine.

    Instead of rebuilding the "+"/"-" weight grids from ``target`` and
    ``state`` every iteration, both are kept as int8 arrays and patched
    in place after each accepted cover — only voxels inside the chosen
    box change weight (to fixed values determined by ``target`` alone),
    so the update is O(box volume), and the boolean ``state`` raster is
    never materialized at all.  Greedy sub-searches whose weight grid
    provably has no positive cell (no uncovered object voxel for "+",
    no wrongly covered voxel for "-") are skipped: their gain would be
    <= 0 and could never be selected, so the produced sequence is
    bit-identical to :func:`_extract_reference` — a property the test
    suite and ``repro bench`` check explicitly.
    """
    target = grid.occupancy
    # All voxels start uncovered: "+" rewards object voxels (+1) and
    # penalizes empty ones (-1); "-" has nothing to remove yet.
    weight_add = np.where(target, np.int8(1), np.int8(-1))
    weight_sub = np.zeros_like(weight_add)
    covers: list[Cover] = []
    errors = [int(target.sum())]
    uncovered_target = errors[0]  # object voxels not yet in the union
    wrongly_covered = 0  # empty voxels currently in the union
    # Per-grid memos: each accepted cover only changes weights inside
    # its box, so x-pairs not overlapping it in x keep their best values.
    add_cache = _PairValueCache()
    sub_cache = _PairValueCache()

    for _ in range(k):
        counter("extract.iterations").inc()
        gain_add = -np.inf
        if uncovered_target:
            counter("extract.searches").inc()
            gain_add, lo_add, hi_add = max_sum_box(
                weight_add, block_bytes, _cache=add_cache
            )
        else:
            counter("extract.searches_skipped").inc()
        gain_sub = -np.inf
        if allow_subtraction and covers:
            if wrongly_covered:
                counter("extract.searches").inc()
                gain_sub, lo_sub, hi_sub = max_sum_box(
                    weight_sub, block_bytes, _cache=sub_cache
                )
            else:
                counter("extract.searches_skipped").inc()

        if max(gain_add, gain_sub) <= 0:
            break
        if gain_add >= gain_sub:
            sign, gain, lower, upper = 1, gain_add, lo_add, hi_add
        else:
            sign, gain, lower, upper = -1, gain_sub, lo_sub, hi_sub

        cover = Cover(
            sign=sign,
            lower=(int(lower[0]), int(lower[1]), int(lower[2])),
            upper=(int(upper[0]), int(upper[1]), int(upper[2])),
            gain=int(round(gain)),
        )
        covers.append(cover)
        box = (
            slice(cover.lower[0], cover.upper[0] + 1),
            slice(cover.lower[1], cover.upper[1] + 1),
            slice(cover.lower[2], cover.upper[2] + 1),
        )
        in_box = target[box]
        if sign > 0:
            # Everything in the box becomes covered: it leaves the "+"
            # grid and enters the "-" grid (+1 for wrongly covered
            # empties, -1 for object voxels a later "-" would re-expose).
            added = weight_add[box]
            uncovered_target -= int(np.count_nonzero(added == 1))
            wrongly_covered += int(np.count_nonzero(added == -1))
            weight_add[box] = 0
            weight_sub[box] = np.where(in_box, np.int8(-1), np.int8(1))
        else:
            # Everything in the box becomes uncovered again: the exact
            # inverse update.
            removed = weight_sub[box]
            wrongly_covered -= int(np.count_nonzero(removed == 1))
            uncovered_target += int(np.count_nonzero(removed == -1))
            weight_sub[box] = 0
            weight_add[box] = np.where(in_box, np.int8(1), np.int8(-1))
        add_cache.invalidate(cover.lower[0], cover.upper[0] + 1)
        sub_cache.invalidate(cover.lower[0], cover.upper[0] + 1)
        # The box's weight sum IS the error reduction (that is what the
        # weight grids encode), so the error trajectory needs no raster.
        errors.append(errors[-1] - cover.gain)
        if errors[-1] == 0:
            break

    return CoverSequence(covers=covers, errors=errors, resolution=grid.resolution)


def extract_cover_sequence(
    grid: VoxelGrid,
    k: int = 7,
    allow_subtraction: bool = True,
    engine: str = "incremental",
    block_bytes: int | None = None,
) -> CoverSequence:
    """Greedy cover sequence of *grid* with at most *k* covers.

    Each step evaluates the best "+" cover (over the weight grid that
    rewards uncovered object voxels and penalizes newly covered empty
    ones) and — unless disabled — the best "-" cover (rewarding removal
    of wrongly covered voxels), and keeps the better of the two.  The
    loop stops early when no cover improves the symmetric volume
    difference or the approximation is exact.

    Parameters
    ----------
    engine:
        ``"incremental"`` (default) maintains the weight grids in place
        and uses the blocked, memory-capped max-sum-box search;
        ``"reference"`` is the original reconstruct-every-iteration
        oracle.  Both produce bit-identical sequences.
    block_bytes:
        Peak-memory budget per max-sum-box search for the incremental
        engine (default: :func:`default_block_bytes`).
    """
    if k < 1:
        raise FeatureError("need k >= 1 covers")
    if grid.is_empty():
        raise FeatureError("cannot extract covers from an empty grid")
    if engine not in EXTRACTION_ENGINES:
        raise FeatureError(
            f"unknown extraction engine {engine!r}; choose from {EXTRACTION_ENGINES}"
        )
    with span("extract", engine=engine, k=k, resolution=grid.resolution):
        if engine == "incremental":
            sequence = _extract_incremental(grid, k, allow_subtraction, block_bytes)
        else:
            sequence = _extract_reference(grid, k, allow_subtraction)
    counter("extract.objects").inc()
    histogram("extract.covers").observe(len(sequence.covers))
    return sequence


class CoverSequenceModel(FeatureModel):
    """The one-vector cover sequence model: a ``6k``-dimensional vector.

    Parameters
    ----------
    k:
        Maximum number of covers (the paper evaluates 3, 5, 7, 9 and
    settles on 7).
    allow_subtraction:
        Permit "-" covers (both the paper's branch-and-bound and greedy
        algorithms do); disable for an ablation with union-only covers.
    normalize:
        Divide features by the resolution (see
        :meth:`CoverSequence.feature_vectors`).
    """

    def __init__(
        self,
        k: int = 7,
        allow_subtraction: bool = True,
        normalize: bool = True,
        engine: str = "incremental",
    ):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.allow_subtraction = allow_subtraction
        self.normalize = normalize
        self.engine = engine

    @property
    def name(self) -> str:
        return f"cover-sequence(k={self.k})"

    def dimension(self, resolution: int) -> int:
        return 6 * self.k

    def extract(self, grid: VoxelGrid) -> np.ndarray:
        sequence = extract_cover_sequence(
            grid, self.k, self.allow_subtraction, engine=self.engine
        )
        return sequence.feature_vector(self.k, self.normalize)


def transform_cover_vectors(vectors: np.ndarray, matrix: np.ndarray) -> np.ndarray:
    """Apply a cube symmetry to 6-d cover features directly.

    A signed permutation ``M`` maps a cover with centered position ``p``
    and extent ``e`` to one with position ``M p`` and extent ``|M| e``
    (axis-aligned boxes stay axis-aligned under 90-degree symmetries).
    This lets Definition 2 be evaluated on extracted features without
    re-running the greedy extraction for each of the 48 variants.
    """
    vecs = np.asarray(vectors, dtype=float)
    squeeze = vecs.ndim == 1
    if squeeze:
        vecs = vecs[np.newaxis, :]
    if vecs.shape[1] != 6:
        raise FeatureError(f"expected (m, 6) cover vectors, got shape {vecs.shape}")
    mat = np.asarray(matrix, dtype=float)
    positions = vecs[:, :3] @ mat.T
    extents = vecs[:, 3:] @ np.abs(mat).T
    result = np.hstack([positions, extents])
    return result[0] if squeeze else result

"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``ingest``      build an object database from a synthetic dataset or a
                directory of STL/OFF meshes
``query``       k-nn search against a database (by stored name or mesh file)
``cluster``     OPTICS-cluster a database and render the reachability plot
``experiment``  run one of the paper's experiments (table1, table2, figures)
``info``        show database statistics
``bench``       time the batched minimal-matching kernels against the
                per-pair baseline on a seeded synthetic workload, or
                ``bench compare BASE.json HEAD.json`` as a regression gate
``stats``       merge metrics snapshots and validate trace files
``obs``         export a trace as Chrome trace-event JSON (``obs export``)
                or render metrics in OpenMetrics text (``obs expose``)

Observability: ``ingest``, ``query``, ``cluster``, ``experiment`` and
``bench`` accept ``--trace FILE`` (JSON-lines span/event trace) and
``--metrics FILE`` (counters/gauges/histograms snapshot); either flag
enables the :mod:`repro.obs` layer for the run.  ``repro stats`` merges
any number of such files into one report and exits non-zero when a
trace is malformed (unclosed span) or a counter is negative.

Examples
--------
::

    python -m repro ingest --dataset car --out car.npz
    python -m repro ingest --meshes parts/ --on-error retry --out parts.npz
    python -m repro info car.npz
    python -m repro query car.npz --name tire-003 -k 5
    python -m repro query car.npz --name tire-003 --trace q.jsonl --metrics q.json
    python -m repro stats --metrics q.json --trace q.jsonl
    python -m repro cluster car.npz
    python -m repro experiment table1

Exit codes
----------
``0``  success; ``1``  a :class:`~repro.exceptions.ReproError` aborted the
command; ``2``  bad invocation (unknown name, empty mesh directory,
nothing ingested); ``3``  partial success — ``ingest`` wrote a database
but some inputs failed (details on stderr).
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter
from pathlib import Path

import numpy as np

from repro.core.queries import FilterRefineEngine
from repro.exceptions import ReproError

MODEL_KEY = "vector-set(k={k})"


def _add_obs_args(sub: argparse.ArgumentParser) -> None:
    """The observability flags shared by every long-running command."""
    sub.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="FILE",
        help="write a JSON-lines trace of spans and telemetry events",
    )
    sub.add_argument(
        "--metrics",
        type=Path,
        default=None,
        metavar="FILE",
        help="write a JSON metrics snapshot (counters/gauges/histograms)",
    )
    sub.add_argument(
        "--trace-mode",
        choices=["append", "truncate", "rotate"],
        default="append",
        help="existing --trace file: 'append' (default) continues it, "
        "'truncate' starts over, 'rotate' moves it to FILE.1 first",
    )
    sub.add_argument(
        "--sample",
        type=float,
        default=1.0,
        metavar="RATE",
        help="fraction of queries logged as wide 'query' events "
        "(deterministic sampling; default 1.0 = every query)",
    )
    sub.add_argument(
        "--slow-ms",
        type=float,
        default=None,
        metavar="MS",
        help="always capture queries at least this slow (with a full "
        "explain payload), regardless of --sample",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Similarity search on voxelized CAD objects (SIGMOD 2003 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    ingest = commands.add_parser("ingest", help="build an object database")
    source = ingest.add_mutually_exclusive_group(required=True)
    source.add_argument("--dataset", choices=["car", "aircraft"])
    source.add_argument("--meshes", type=Path, help="directory of .stl/.off files")
    ingest.add_argument("--out", type=Path, required=True)
    ingest.add_argument("--resolution", type=int, default=15)
    ingest.add_argument("--covers", type=int, default=7)
    ingest.add_argument("--n", type=int, help="aircraft dataset size")
    ingest.add_argument("--seed", type=int, default=None)
    ingest.add_argument(
        "--on-error",
        choices=["raise", "skip", "retry"],
        default=None,
        help="failure policy for bad inputs "
        "(default: skip for --meshes, raise for --dataset)",
    )
    ingest.add_argument(
        "--strict",
        action="store_true",
        help="abort on the first bad input (shorthand for --on-error raise)",
    )
    ingest.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for voxelization and feature extraction "
        "(default: serial; -1 for all cores)",
    )
    ingest.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the content-addressed feature cache under REPRO_CACHE_DIR",
    )
    ingest.add_argument(
        "--assert-cache-hits",
        type=float,
        default=None,
        metavar="PCT",
        help="fail (exit 1) unless at least PCT%% of feature lookups hit "
        "the cache (CI guard for warm-cache re-ingests)",
    )
    _add_obs_args(ingest)

    query = commands.add_parser("query", help="k-nn search against a database")
    query.add_argument("database", type=Path)
    target = query.add_mutually_exclusive_group(required=True)
    target.add_argument("--name", help="query by a stored object's name")
    target.add_argument("--mesh", type=Path, help="query with an external mesh file")
    query.add_argument("-k", type=int, default=10)
    query.add_argument("--covers", type=int, default=7)
    query.add_argument("--resolution", type=int, default=15)
    query.add_argument(
        "--snapshot",
        action="store_true",
        help="treat DATABASE as a `repro db` snapshot: the saved index "
        "structure is reloaded as-is and answers the query without any "
        "rebuild work",
    )
    query.add_argument(
        "--mode",
        choices=["exact", "approx"],
        default="exact",
        help="'exact' (default): the paper's filter-refine pipeline; "
        "'approx': Hamming-rank the binary sketch tier and run the exact "
        "refine on the --shortlist best candidates only",
    )
    query.add_argument(
        "--shortlist",
        type=int,
        default=None,
        metavar="M",
        help="candidate budget for --mode approx (default: max(8k, 64))",
    )
    _add_obs_args(query)

    db = commands.add_parser(
        "db", help="mutable similarity database (incremental index maintenance)"
    )
    db_commands = db.add_subparsers(dest="db_command", required=True)

    db_init = db_commands.add_parser(
        "init", help="create an empty database snapshot"
    )
    db_init.add_argument("database", type=Path)
    db_init.add_argument("--covers", type=int, default=7)
    db_init.add_argument("--resolution", type=int, default=15)
    db_init.add_argument(
        "--backend",
        choices=["xtree", "rstar", "scan", "mtree"],
        default="xtree",
        help="access method maintained incrementally (default: xtree)",
    )
    db_init.add_argument(
        "--dense",
        action="store_true",
        help="write the flat mmap-able snapshot container instead of .npz: "
        "`load` maps node tables and features zero-copy (not with --durable)",
    )
    db_init.add_argument(
        "--durable",
        action="store_true",
        help="create a write-ahead-logged database directory instead of "
        "a snapshot file: mutations survive crashes and `load` runs the "
        "recovery ladder",
    )
    db_init.add_argument(
        "--fsync",
        default="always",
        metavar="POLICY",
        help="WAL flush policy for --durable: 'always' (default, zero "
        "acknowledged loss), 'none', or 'every-N'",
    )
    db_init.add_argument(
        "--keep-generations",
        type=int,
        default=2,
        metavar="N",
        help="snapshot generations retained for recovery fallback "
        "(default: 2)",
    )
    db_init.add_argument(
        "--source",
        type=Path,
        default=None,
        metavar="OBJECTDB",
        help="ObjectDatabase archive used as the recovery ladder's "
        "last-resort rebuild input",
    )
    db_init.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="K",
        help="create a sharded database: K independent shards behind "
        "one scatter-gather API (a directory layout; with --durable "
        "each shard gets its own WAL)",
    )
    _add_obs_args(db_init)

    db_add = db_commands.add_parser(
        "add", help="insert mesh files without rebuilding the index"
    )
    db_add.add_argument("database", type=Path)
    db_add.add_argument("meshes", type=Path, nargs="+")
    db_add.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the content-addressed feature cache",
    )
    _add_obs_args(db_add)

    db_remove = db_commands.add_parser(
        "remove", help="delete objects by id (incremental index delete)"
    )
    db_remove.add_argument("database", type=Path)
    db_remove.add_argument("ids", type=int, nargs="+")
    _add_obs_args(db_remove)

    db_compact = db_commands.add_parser(
        "compact", help="rebuild the index in place (re-pack after churn)"
    )
    db_compact.add_argument("database", type=Path)
    _add_obs_args(db_compact)

    db_verify = db_commands.add_parser(
        "verify",
        help="integrity-check a database: index invariants, snapshot "
        "CRCs, WAL segment CRCs (exit 0 ok / 1 corrupt / 3 recovered "
        "with degradation)",
    )
    db_verify.add_argument("database", type=Path)
    _add_obs_args(db_verify)

    cluster = commands.add_parser("cluster", help="OPTICS reachability plot")
    cluster.add_argument("database", type=Path)
    cluster.add_argument("--min-pts", type=int, default=5)
    cluster.add_argument("--covers", type=int, default=7)
    cluster.add_argument("--eps", type=float, help="cut level (default: auto)")
    cluster.add_argument("--height", type=int, default=10)
    cluster.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the pairwise distance matrix "
        "(default: serial; -1 for all cores)",
    )
    _add_obs_args(cluster)

    experiment = commands.add_parser("experiment", help="run a paper experiment")
    experiment.add_argument(
        "name",
        choices=["table1", "table2", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10"],
    )
    experiment.add_argument("--queries", type=int, default=10)
    experiment.add_argument("--n", type=int, help="aircraft dataset size")
    _add_obs_args(experiment)

    info = commands.add_parser("info", help="database statistics")
    info.add_argument("database", type=Path)

    obs = commands.add_parser(
        "obs", help="trace export and metrics exposition"
    )
    obs_commands = obs.add_subparsers(dest="obs_command", required=True)
    obs_export = obs_commands.add_parser(
        "export",
        help="render a --trace file as Chrome trace-event JSON "
        "(loadable in Perfetto / chrome://tracing)",
    )
    obs_export.add_argument("trace", type=Path, help="JSON-lines trace file")
    obs_export.add_argument(
        "--format",
        choices=["chrome-trace"],
        default="chrome-trace",
        help="output format (only chrome-trace today)",
    )
    obs_export.add_argument(
        "--out",
        type=Path,
        default=None,
        metavar="FILE",
        help="output file (default: <trace>.chrome.json)",
    )
    obs_expose = obs_commands.add_parser(
        "expose",
        help="merge metrics snapshots and render them in OpenMetrics "
        "(Prometheus) text format",
    )
    obs_expose.add_argument(
        "--metrics",
        type=Path,
        nargs="+",
        required=True,
        metavar="FILE",
        help="metrics snapshot files to merge",
    )
    obs_expose.add_argument(
        "--out",
        type=Path,
        default=None,
        metavar="FILE",
        help="textfile-collector output (default: stdout)",
    )
    obs_expose.add_argument(
        "--prefix", default="repro_", help="metric name prefix (default: repro_)"
    )

    stats = commands.add_parser(
        "stats", help="merge metrics snapshots and validate trace files"
    )
    stats.add_argument(
        "--metrics",
        type=Path,
        nargs="+",
        default=[],
        metavar="FILE",
        help="metrics snapshot files to merge (counters sum exactly)",
    )
    stats.add_argument(
        "--trace",
        type=Path,
        nargs="+",
        default=[],
        metavar="FILE",
        help="JSON-lines trace files to validate (every span must close)",
    )
    stats.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    bench = commands.add_parser(
        "bench", help="optimized vs baseline benchmarks (writes JSON)"
    )
    bench.add_argument(
        "suite",
        nargs="?",
        choices=[
            "kernels",
            "index_scale",
            "approx_pareto",
            "shard_scale",
            "report",
            "compare",
        ],
        default="kernels",
        help="'kernels' (default): batched matching kernels vs per-pair "
        "baselines; 'index_scale': array-native index cores vs pointer "
        "trees across database sizes, plus cold zero-copy snapshot loads; "
        "'approx_pareto': sketch-shortlisted approximate k-nn vs the "
        "exact oracle (recall/speedup Pareto curve); 'shard_scale': "
        "scatter-gather query/ingest critical path across shard counts, "
        "oracle-checked byte-identical; 'report': tabulate "
        "existing BENCH_*.json files; 'compare': regression sentinel — "
        "BASE.json HEAD.json per-op deltas, exit 1 on regression",
    )
    bench.add_argument(
        "paths",
        type=Path,
        nargs="*",
        help="compare: exactly two bench files, BASE.json then HEAD.json",
    )
    bench.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        metavar="FRAC",
        help="compare: allowed relative degradation before a metric "
        "counts as a regression (default 0.10 = 10%%)",
    )
    bench.add_argument(
        "--min-seconds",
        type=float,
        default=0.005,
        metavar="S",
        help="compare: ignore timings below this noise floor on both "
        "sides (default 0.005s)",
    )
    bench.add_argument(
        "--fields",
        default=None,
        metavar="F1,F2,...",
        help="compare: only judge these metric fields (default: every "
        "*_seconds timing plus speedup/recall/reduction)",
    )
    bench.add_argument(
        "--match",
        default=None,
        metavar="F1,F2,...",
        help="compare: record-identity fields for the join "
        "(default: op,backend,n,k,dim,budget)",
    )
    bench.add_argument(
        "--allow-missing",
        action="store_true",
        help="compare: don't fail when a base record has no head "
        "counterpart (partial head runs)",
    )
    bench.add_argument(
        "--verbose",
        action="store_true",
        help="compare: list every judged metric, not only regressions",
    )
    bench.add_argument(
        "--n",
        type=int,
        default=None,
        help="database size (default: 1000 for kernels, 5000 for "
        "approx_pareto)",
    )
    bench.add_argument("--k", type=int, default=7, help="set cardinality bound")
    bench.add_argument("--dim", type=int, default=6, help="feature dimension")
    bench.add_argument("--queries", type=int, default=10, help="k-nn query count")
    bench.add_argument(
        "--seed",
        type=int,
        default=None,
        help="corpus/sketch seed (default: $REPRO_SEED, else 20030609); "
        "all stochastic generation derives from this one value",
    )
    bench.add_argument(
        "--out",
        type=Path,
        default=None,
        help="result file (default: BENCH_PR3.json for kernels, "
        "BENCH_PR7.json for index_scale, BENCH_PR8.json for approx_pareto)",
    )
    bench.add_argument(
        "--sizes",
        default=None,
        metavar="N1,N2,...",
        help="index_scale database sizes (default: 1000,10000,100000)",
    )
    bench.add_argument(
        "--assert-speedup",
        type=float,
        default=None,
        metavar="X",
        help="index_scale: exit 1 unless the array core's batched 10-nn "
        "(knn_many) beats the pointer path by at least X on the xtree "
        "backend at the largest size",
    )
    bench.add_argument(
        "--label", default=None, help="tag recorded in every result entry"
    )
    bench.add_argument(
        "--jobs",
        type=int,
        default=4,
        help="worker processes for the parallel ingest benchmark",
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="tiny workload for CI smoke runs (overrides --n/--k)",
    )
    bench.add_argument(
        "--shard-counts",
        default=None,
        metavar="K1,K2,...",
        help="shard_scale: shard counts to sweep (default: 1,2,4; the "
        "first count is the speedup baseline)",
    )
    bench.add_argument(
        "--shortlists",
        default=None,
        metavar="M1,M2,...",
        help="approx_pareto: Hamming candidate budgets to sweep "
        "(default: 10,20,40,80,160,320 plus the full database)",
    )
    bench.add_argument(
        "--assert-recall",
        type=float,
        default=None,
        metavar="R",
        help="approx_pareto: exit 1 unless some operating point reaches "
        "recall@k >= R while also meeting --assert-reduction",
    )
    bench.add_argument(
        "--assert-reduction",
        type=float,
        default=None,
        metavar="X",
        help="approx_pareto: candidate-reduction factor the asserted "
        "operating point must reach (refined-by-exact / budget)",
    )
    bench.add_argument(
        "--files",
        type=Path,
        nargs="*",
        default=None,
        help="report: bench files to tabulate (default: ./BENCH_*.json)",
    )
    _add_obs_args(bench)
    return parser


def _load_mesh(path: Path):
    from repro.io import read_mesh

    return read_mesh(path)


def cmd_ingest(args) -> int:
    from repro.features.cache import FeatureCache
    from repro.features.vector_set_model import VectorSetModel
    from repro.io.database import ObjectDatabase, StoredObject
    from repro.pipeline import Pipeline

    pipeline = Pipeline(resolution=args.resolution)
    model = VectorSetModel(k=args.covers)
    database = ObjectDatabase()
    features = []

    policy = "raise" if args.strict else args.on_error
    if policy is None:
        # Mesh collections routinely contain a few broken exports:
        # continue past them by default.  Synthetic datasets are ours,
        # so a failure there is a bug worth surfacing immediately.
        policy = "skip" if args.meshes else "raise"

    if args.dataset:
        from repro.datasets.aircraft import make_aircraft_dataset
        from repro.datasets.car import make_car_dataset

        from repro.seeding import resolve_seed

        if args.dataset == "car":
            parts, _ = make_car_dataset(seed=resolve_seed(args.seed, default=2003))
        else:
            parts, _ = make_aircraft_dataset(
                n=args.n, seed=resolve_seed(args.seed, default=1903)
            )
        report = pipeline.process_parts(parts, on_error=policy, n_jobs=args.jobs)
    else:
        report = pipeline.process_mesh_directory(
            args.meshes, on_error=policy, n_jobs=args.jobs
        )
        if not report.records:
            print(f"no .stl/.off files in {args.meshes}", file=sys.stderr)
            return 2

    # Feature extraction runs under the same isolation policy: a grid
    # the model rejects must not abort the rest of the batch.  Cache
    # hits (content-addressed on occupancy bits + model parameters)
    # skip extraction entirely.
    cache = FeatureCache(enabled=not args.no_cache)
    survivors = list(report.objects)
    outcomes = model.extract_many_outcomes(
        [obj.grid for obj in survivors], n_jobs=args.jobs, cache=cache
    )
    for processed, (ok, value) in zip(survivors, outcomes):
        if not ok:
            if policy == "raise":
                raise value
            report.demote(processed, value)
            continue
        database.add(
            StoredObject(
                name=processed.name,
                family=processed.family,
                class_id=processed.class_id,
                grid=processed.grid,
                pose=processed.pose,
            )
        )
        features.append(value)

    lookups = cache.hits + cache.misses
    hit_pct = 100.0 * cache.hits / lookups if lookups else 0.0
    if cache.enabled:
        print(
            f"feature cache: {cache.hits} hits / {cache.misses} misses "
            f"({hit_pct:.1f}% hit rate)"
        )
        cache.flush_stats()

    if not report.all_ok():
        print(report.summary(), file=sys.stderr)
    if len(database) == 0:
        print("nothing ingested; database not written", file=sys.stderr)
        return 2
    database.set_features(MODEL_KEY.format(k=args.covers), features)
    database.save(args.out)
    print(f"ingested {len(database)} objects -> {args.out}")
    if args.assert_cache_hits is not None and hit_pct < args.assert_cache_hits:
        print(
            f"error: cache hit rate {hit_pct:.1f}% below required "
            f"{args.assert_cache_hits:.1f}%",
            file=sys.stderr,
        )
        return 1
    return 0 if report.all_ok() else 3


def _open_engine(path: Path, covers: int):
    from repro.io.database import ObjectDatabase

    database = ObjectDatabase.load(path)
    key = MODEL_KEY.format(k=covers)
    if not database.has_features(key):
        raise ReproError(
            f"database has no {key} features; re-ingest with --covers {covers}"
        )
    sets = database.get_features(key)
    return database, sets, FilterRefineEngine(sets, capacity=covers)


def _open_snapshot(path: Path):
    """Load a ``repro db`` layout ready for queries and mutations.

    Dispatches on what is on disk: a directory with a ``sharded.json``
    manifest opens as a :class:`ShardedSimilarityDatabase`, anything
    else as a single :class:`SimilarityDatabase` — callers use the
    common query/mutation surface and never care which they got.
    """
    from repro.db import open_database
    from repro.features.vector_set_model import VectorSetModel

    db = open_database(path)
    db.model = VectorSetModel(k=db.capacity)
    return db


def _voxelize_for(db, path: Path):
    """Raw-voxelize a mesh with the snapshot's pipeline settings (the
    grid is normalized later, inside ``add_grid``/``features_for_grid``)."""
    from repro.pipeline import Pipeline
    from repro.voxel.voxelize import voxelize_mesh

    pipeline = db.pipeline or Pipeline()
    if db.pipeline is None:
        db.pipeline = pipeline
    return voxelize_mesh(
        _load_mesh(path),
        pipeline.resolution,
        margin=pipeline.margin,
        keep_aspect=pipeline.keep_aspect,
    )


def _verify_database(path: Path) -> int:
    """``repro db verify``: exit 0 (ok), 1 (corrupt), 3 (degraded).

    A sharded layout is verified shard by shard with the single-shard
    walk below, plus the sharded-only invariants: a valid manifest and
    every object living on the shard the CRC routing assigns it.  The
    aggregated exit code is the worst per-shard outcome (corrupt
    dominates degraded dominates ok).
    """
    from repro.db.sharded import MANIFEST_NAME

    if path.is_dir() and (path / MANIFEST_NAME).exists():
        return _verify_sharded(path)
    return _verify_single(path)


def _verify_sharded(path: Path) -> int:
    import json as json_module

    from repro.db import ShardedSimilarityDatabase, shard_of
    from repro.db.sharded import (
        MANIFEST_NAME,
        _shard_archive_name,
        _shard_dir_name,
    )

    manifest = json_module.loads((path / MANIFEST_NAME).read_text())
    count = int(manifest["shards"])
    durable = bool(manifest.get("durable"))
    print(f"sharded layout: {count} shards ({'durable' if durable else 'snapshot'})")
    worst = 0
    for i in range(count):
        shard_path = path / (
            _shard_dir_name(i) if durable else _shard_archive_name(i)
        )
        print(f"--- shard {i}: {shard_path.name}")
        try:
            code = _verify_single(shard_path)
        except ReproError as exc:
            print(f"shard {i}: corrupt: {exc}", file=sys.stderr)
            code = 1
        if code == 1 or worst == 1:
            worst = 1
        elif code:
            worst = code
    # Routing invariant: the recovered layout must be one coherent
    # database — every oid on the shard the hash assigns it.
    db = ShardedSimilarityDatabase.load(path)
    try:
        misrouted = [
            (oid, i)
            for i, shard in enumerate(db.shards)
            for oid in shard.object_ids()
            if shard_of(oid, count) != i
        ]
    finally:
        db.close()
    if misrouted:
        for oid, i in misrouted[:5]:
            print(
                f"misrouted: oid {oid} on shard {i}, "
                f"routing says {shard_of(oid, count)}",
                file=sys.stderr,
            )
        worst = 1
    print(f"version vector: {db.version_vector()}")
    print(
        "verify: "
        + {0: "ok", 1: "corrupt", 3: "recovered with degradation"}[worst]
    )
    return worst


def _verify_single(path: Path) -> int:
    """Exit 0 (ok), 1 (corrupt), 3 (degraded) for one shard or layout.

    For a durable directory: CRC-walk every retained snapshot archive
    and WAL segment, then run the recovery ladder in memory and
    ``check_invariants()`` on the recovered index.  Anything the ladder
    had to work around (a corrupt generation, a torn or missing
    segment) is a degradation — the database *answers*, but not from
    the happy path.  For a snapshot file: CRC check + invariants only.
    Dense snapshots get a full CRC walk of every mapped array plus the
    array core's vectorized node-table invariants (child-offset bounds,
    MBR containment, covering-radius validity).
    """
    from repro import wal as wal_module
    from repro.db import DB_FORMAT, SimilarityDatabase
    from repro.index.dense import is_dense_archive, read_dense_archive
    from repro.index.snapshot import read_archive

    degradations: list[str] = []
    durable = path.is_dir()
    dense = not durable and is_dense_archive(path)
    if dense:
        # verify=True walks the stored CRC of every array against the
        # mapped bytes, so bit rot in any node table or feature block is
        # caught here rather than surfacing as wrong query results.
        read_dense_archive(path, DB_FORMAT, verify=True)
    elif durable:
        layout = wal_module.DurableLayout(path)
        layout.read_config()  # raises (-> exit 1) if this is not a durable db
        for generation in layout.generations_on_disk():
            snapshot = layout.snapshot_path(generation)
            try:
                read_archive(snapshot, DB_FORMAT)
            except ReproError as exc:
                degradations.append(str(exc))
        for generation in layout.wal_generations_on_disk():
            segment = layout.wal_path(generation)
            records, error = wal_module.verify_segment(segment)
            if error:
                degradations.append(
                    f"{segment.name}: {error} (after {records} clean records)"
                )
    else:
        read_archive(path, DB_FORMAT)

    db = SimilarityDatabase.load(path)
    try:
        if db._index is not None and hasattr(db._index, "check_invariants"):
            db._index.check_invariants()
    finally:
        db.close()
    report = db.last_recovery
    if report is not None and report.degraded:
        degradations.append(
            f"recovery used generation {report.used_generation} of "
            f"{report.requested_generation} ({report.fallbacks} fallbacks, "
            f"{report.replayed_records} records replayed)"
        )

    print(f"objects:    {len(db)}")
    print("invariants: ok")
    if durable and report is not None:
        print(f"generation: {db.generation} (replayed {report.replayed_records} records)")
    if degradations:
        for message in degradations:
            print(f"degraded: {message}", file=sys.stderr)
        print("verify: recovered with degradation")
        return 3
    print("verify: ok")
    return 0


def cmd_db(args) -> int:
    if args.db_command == "init":
        from repro.db import SimilarityDatabase
        from repro.features.vector_set_model import VectorSetModel
        from repro.pipeline import Pipeline

        if args.shards is not None:
            from repro.db import ShardedSimilarityDatabase

            if args.dense:
                raise ReproError("--dense is not supported with --shards")
            db = ShardedSimilarityDatabase(
                args.covers,
                shards=args.shards,
                backend=args.backend,
                pipeline=Pipeline(resolution=args.resolution),
                model=VectorSetModel(k=args.covers),
                durable=args.durable,
                path=args.database if args.durable else None,
                fsync=args.fsync,
                keep_generations=args.keep_generations,
            )
            if args.durable:
                db.checkpoint()
            else:
                db.save(args.database)
            db.close()
            print(
                f"created {'durable ' if args.durable else ''}sharded "
                f"{args.backend} database ({args.shards} shards) -> "
                f"{args.database}/"
            )
            return 0
        db = SimilarityDatabase(
            args.covers,
            backend=args.backend,
            pipeline=Pipeline(resolution=args.resolution),
            model=VectorSetModel(k=args.covers),
            durable=args.durable,
            path=args.database if args.durable else None,
            fsync=args.fsync,
            keep_generations=args.keep_generations,
            source=args.source,
        )
        if args.durable:
            if args.dense:
                raise ReproError("--dense applies to snapshot files, not --durable")
            db.checkpoint()
            db.close()
            print(
                f"created durable {args.backend} database "
                f"(fsync={args.fsync}) -> {args.database}/"
            )
        else:
            db.save(args.database, dense=args.dense)
            kind = "dense " if args.dense else ""
            print(f"created empty {kind}{args.backend} database -> {args.database}")
        return 0
    if args.db_command == "verify":
        try:
            return _verify_database(args.database)
        except ReproError as exc:
            print(f"verify: corrupt: {exc}", file=sys.stderr)
            return 1

    db = _open_snapshot(args.database)
    if args.db_command == "add":
        from repro.features.cache import FeatureCache

        db.cache = FeatureCache(enabled=not args.no_cache)
        next_oid = max(db.object_ids(), default=-1) + 1
        for path in args.meshes:
            db.add_grid(next_oid, _voxelize_for(db, path))
            print(f"added {path.name} as object {next_oid}")
            next_oid += 1
        db.save(args.database)
        db.close()
        db.cache.flush_stats()
        print(f"{len(db)} objects -> {args.database}")
        return 0
    if args.db_command == "remove":
        missing = [oid for oid in args.ids if not db.remove(oid)]
        for oid in missing:
            print(f"no object with id {oid}", file=sys.stderr)
        db.save(args.database)
        db.close()
        print(f"{len(db)} objects -> {args.database}")
        return 2 if missing else 0
    # compact: rebuild in place; canonical tie-breaking guarantees the
    # re-packed tree answers every query identically.
    db.compact()
    db.save(args.database)
    db.close()
    print(f"compacted {len(db)} objects -> {args.database}")
    return 0


def _query_snapshot(args) -> int:
    if args.name:
        print(
            "--name needs an object-store database; `repro db` snapshots "
            "identify objects by id (query with --mesh)",
            file=sys.stderr,
        )
        return 2
    db = _open_snapshot(args.database)
    grid = _voxelize_for(db, args.mesh)
    query_set = db.pipeline.features_for_grid(grid, db.model, cache=db.cache)
    results, stats = db.knn_query(
        query_set, args.k, mode=args.mode, shortlist=args.shortlist
    )
    print(f"{'rank':>4}  {'object':>8} distance")
    for rank, match in enumerate(results, 1):
        print(f"{rank:>4}  {match.object_id:>8} {match.distance:.4f}")
    print(f"\n{stats}")
    return 0


def cmd_query(args) -> int:
    if args.snapshot:
        return _query_snapshot(args)
    database, sets, engine = _open_engine(args.database, args.covers)
    if args.name:
        names = database.names()
        try:
            query_set = sets[names.index(args.name)]
        except ValueError:
            print(f"no object named {args.name!r} in the database", file=sys.stderr)
            return 2
    else:
        from repro.features.vector_set_model import VectorSetModel
        from repro.pipeline import Pipeline

        pipeline = Pipeline(resolution=args.resolution)
        grid, _ = pipeline.process_mesh(_load_mesh(args.mesh))
        query_set = VectorSetModel(k=args.covers).extract(grid)

    if args.mode == "approx":
        from repro.approx import ApproxFilterRefineEngine, HammingIndex, SetSketcher

        sketcher = SetSketcher(sets[0].shape[1])
        hamming = HammingIndex(sketcher.words)
        for oid, vectors in enumerate(sets):
            hamming.add(oid, sketcher.sketch(vectors))
        approx = ApproxFilterRefineEngine(engine, sketcher, hamming)
        results, stats = approx.knn_query(query_set, args.k, shortlist=args.shortlist)
    else:
        results, stats = engine.knn_query(query_set, args.k)
    print(f"{'rank':>4}  {'name':24} {'family':14} distance")
    for rank, match in enumerate(results, 1):
        obj = database[match.object_id]
        print(f"{rank:>4}  {obj.name:24} {obj.family:14} {match.distance:.4f}")
    print(f"\n{stats}")
    return 0


def cmd_cluster(args) -> int:
    from repro.clustering.optics import distance_rows_from_sets, optics
    from repro.clustering.reachability import (
        auto_cut_level,
        extract_clusters,
        render_reachability_plot,
    )

    database, sets, _ = _open_engine(args.database, args.covers)
    rows = distance_rows_from_sets(sets, capacity=args.covers, n_jobs=args.jobs)
    ordering = optics(len(sets), rows, min_pts=args.min_pts)
    print(render_reachability_plot(
        ordering, height=args.height, max_width=110,
        title=f"{args.database.name} — vector set model (k={args.covers})",
    ))

    eps = args.eps if args.eps is not None else auto_cut_level(ordering)
    clusters, noise = extract_clusters(ordering, eps)
    print(f"\ncut at eps={eps:.4f}: {len(clusters)} clusters, {len(noise)} noise")
    for index, members in enumerate(clusters):
        composition = Counter(database[m].family for m in members)
        print(f"  cluster {index}: {dict(composition)}")
    return 0


def cmd_experiment(args) -> int:
    from repro.evaluation.report import format_table

    if args.name == "table1":
        from repro.evaluation.table1 import run_table1

        rows = run_table1()
        print(format_table(
            ["covers", "permutation rate"],
            [[r.covers, f"{100 * r.permutation_rate:.1f}%"] for r in rows],
            title="Table 1 — proper permutations (Car dataset)",
        ))
    elif args.name == "table2":
        from repro.evaluation.table2 import run_table2

        rows, consistent = run_table2(n_queries=args.queries, n=args.n)
        print(format_table(
            ["method", "CPU s", "I/O s", "total s"],
            [[r.method, r.cpu_seconds, r.io_seconds, r.total_seconds] for r in rows],
            title="Table 2 — 10-nn query runtimes (Aircraft dataset)",
        ))
        print(f"filter/scan results consistent: {consistent}")
    elif args.name == "fig5":
        from repro.evaluation.figures import figure5_demo

        print(figure5_demo().render())
    elif args.name == "fig10":
        from repro.evaluation.figures import figure10_class_evaluation

        for evaluation in figure10_class_evaluation():
            print(f"\n{evaluation.model} (eps={evaluation.eps:.3f}, ARI={evaluation.ari:.3f}):")
            for index, composition in enumerate(evaluation.clusters):
                if sum(composition.values()) >= 3:
                    print(f"  cluster {index}: {composition}")
    else:
        from repro.evaluation.figures import run_figure

        for panel in run_figure(args.name, n=args.n):
            print()
            print(panel.render())
    return 0


def _aircraft_corpus(rng, n: int, dim: int, spread: float = 100.0):
    """Aircraft-style synthetic corpus for the index benchmarks.

    A dozen tight part families (Gaussian clusters, sigma = 4% of the
    coordinate spread) plus ~5% uniform one-off shapes, mirroring the
    paper's CAD datasets where most objects are variants of a few part
    types and a handful are singletons.
    """
    centers = rng.uniform(0.0, spread, size=(12, dim))
    family = rng.integers(0, len(centers), size=n)
    points = centers[family] + rng.normal(0.0, spread * 0.04, size=(n, dim))
    n_noise = max(1, n // 20)
    points[:n_noise] = rng.uniform(0.0, spread, size=(n_noise, dim))
    return points


def cmd_bench_index_scale(args) -> int:
    """``repro bench index_scale``: array cores vs pointer trees.

    Sweeps database sizes over the aircraft-style clustered corpus and,
    per backend, times 10-nn three ways: the pointer tree, the
    struct-of-arrays core walked one query at a time, and the core's
    batched ``knn_many`` wave traversal.  Every timed configuration is
    first cross-checked against the sequential scan oracle — a
    disagreement aborts the run before anything is written.  A final leg measures snapshot load-to-first-query: the
    ``.npz`` pointer reconstruction versus the cold zero-copy dense
    mmap, then a warm repeat.  One JSON record per measurement goes to
    ``--out`` (default ``BENCH_PR7.json``).
    """
    import tempfile
    import time

    from repro.bench import write_bench
    from repro.db import SimilarityDatabase
    from repro.index import MTree, RStarTree, SequentialScan, XTree
    from repro.index.arraycore import ScanArrayCore, densify
    from repro.obs import span
    from repro.seeding import resolve_seed, spawn

    out = args.out or Path("BENCH_PR7.json")
    if args.sizes:
        sizes = [int(part) for part in args.sizes.split(",")]
    elif args.quick:
        sizes = [2000]
    else:
        sizes = [1_000, 10_000, 100_000]
    # The batched path amortizes per-wave fixed costs across the query
    # batch; quick mode still uses a realistically sized batch so the
    # CI speedup gate measures the amortized regime.
    n_queries = 30 if args.quick else max(1, args.queries)
    dim = args.dim
    knn_k = 10
    #: mtree inserts/queries run the exact O(k^3) metric per comparison;
    #: unbounded sizes would dominate the whole sweep, so the backend is
    #: capped — and the cap is logged, never silent.
    mtree_cap = 10_000
    seed = resolve_seed(args.seed)
    rng = spawn(seed, "bench-index-scale")
    records: list[dict] = []
    speedups: dict[tuple[str, int], float] = {}

    def timed(name, fn, repeat=1):
        best = float("inf")
        result = None
        for _ in range(repeat):
            with span(f"bench.{name}", force=True) as timer:
                result = fn()
            best = min(best, timer.seconds)
        return result, best

    def emit_record(entry: dict) -> None:
        if args.label is not None:
            entry["label"] = args.label
        records.append(entry)

    for n in sizes:
        points = _aircraft_corpus(rng, n, dim)
        queries = rng.uniform(0.0, 100.0, size=(n_queries, dim))
        oracle = SequentialScan(dim)
        for oid, point in enumerate(points):
            oracle.insert(point, oid)
        oracle_core = densify(oracle)
        assert isinstance(oracle_core, ScanArrayCore)
        expected = [oracle_core.knn(q, knn_k) for q in queries]
        # Fan-out 16 for the point trees: a typical R*-tree node size
        # for 6-d data; pointer baseline and array core walk the same
        # tree, so the comparison is capacity-for-capacity fair.
        for backend, make in (
            ("xtree", lambda: XTree(dim, capacity=16)),
            ("rstar", lambda: RStarTree(dim, capacity=16)),
            ("scan", lambda: SequentialScan(dim)),
        ):
            tree = make()
            _, build_s = timed(f"build.{backend}", lambda: [
                tree.insert(point, oid) for oid, point in enumerate(points)
            ])
            core, densify_s = timed(f"densify.{backend}", tree.dense_core)
            core.check_invariants()
            # Oracle cross-check BEFORE timing anything: all three paths
            # must reproduce the scan results exactly, or nothing is
            # written.
            for q, want in zip(queries, expected):
                got_core = core.knn(q, knn_k)
                got_tree = tree.knn(q, knn_k)
                if got_core != want or got_tree != want:
                    raise ReproError(
                        f"{backend} n={n}: knn disagrees with the scan oracle"
                    )
            if core.knn_many(queries, knn_k) != expected:
                raise ReproError(
                    f"{backend} n={n}: knn_many disagrees with the scan oracle"
                )
            _, pointer_s = timed(
                f"knn.pointer.{backend}",
                lambda: [tree.knn(q, knn_k) for q in queries],
                repeat=3,
            )
            _, core_s = timed(
                f"knn.core.{backend}",
                lambda: [core.knn(q, knn_k) for q in queries],
                repeat=3,
            )
            _, batched_s = timed(
                f"knn.batched.{backend}",
                lambda: core.knn_many(queries, knn_k),
                repeat=5,
            )
            speedup = pointer_s / batched_s if batched_s else float("inf")
            speedups[(backend, n)] = speedup
            emit_record({
                "op": "index_knn",
                "backend": backend,
                "n": n,
                "dim": dim,
                "k": knn_k,
                "queries": n_queries,
                "capacity": 16 if backend != "scan" else None,
                "build_seconds": round(build_s, 6),
                "densify_seconds": round(densify_s, 6),
                "pointer_seconds": round(pointer_s, 6),
                "core_seconds": round(core_s, 6),
                "batched_seconds": round(batched_s, 6),
                "speedup": round(speedup, 2),
            })
            print(
                f"index_knn {backend:6} n={n:>7}  pointer {pointer_s:9.4f}s  "
                f"core {core_s:9.4f}s  batched {batched_s:9.4f}s  "
                f"speedup {speedup:6.1f}x"
            )

        # mtree: vector sets under the exact matching metric.
        if n > mtree_cap:
            print(f"index_knn mtree  n={n:>7}  skipped (capped at {mtree_cap})")
            emit_record({
                "op": "index_knn",
                "backend": "mtree",
                "n": n,
                "skipped": f"capped at {mtree_cap}",
            })
        else:
            from repro.core.min_matching import min_matching_distance

            set_k = 4
            sets = [
                rng.standard_normal((int(rng.integers(1, set_k + 1)), dim))
                for _ in range(n)
            ]
            # 50 queries minimum: the PR 7 run capped this at 3, which
            # left the mtree core's 0.93x "regression" inside the noise
            # floor of a sub-200ms measurement.
            mtree_queries = max(50, n_queries)
            query_sets = [
                rng.standard_normal((2, dim)) for _ in range(mtree_queries)
            ]
            mtree = MTree(min_matching_distance, capacity=16)
            _, build_s = timed("build.mtree", lambda: [
                mtree.insert(s, oid) for oid, s in enumerate(sets)
            ])
            mcore, densify_s = timed("densify.mtree", mtree.dense_core)
            mcore.check_invariants()
            # Batched variant: per-node metric evaluation through the
            # PR 2 matching kernel.  Its floats agree with the scalar
            # metric only to ~1e-9 (ulp-level reassociation), so the
            # oracle check below is oids-exact + distances-allclose
            # rather than literal.
            mbatched = densify(
                mtree,
                batch_params={"capacity": set_k, "omega": np.zeros(dim)},
            )
            dists = np.array(
                [[min_matching_distance(q, s) for s in sets] for q in query_sets]
            )
            m_expected = []
            for qi, q in enumerate(query_sets):
                order = np.lexsort((np.arange(n), dists[qi]))[:knn_k]
                want = [(int(o), float(dists[qi][o])) for o in order]
                m_expected.append(want)
                if mcore.knn(q, knn_k) != want or mtree.knn(q, knn_k) != want:
                    raise ReproError(
                        f"mtree n={n}: knn disagrees with the scan oracle"
                    )
                got = mbatched.knn(q, knn_k)
                if [oid for oid, _ in got] != [oid for oid, _ in want] or not (
                    np.allclose(
                        [d for _, d in got], [d for _, d in want], atol=1e-6
                    )
                ):
                    raise ReproError(
                        f"mtree n={n}: batched core disagrees with the "
                        "scan oracle"
                    )
            if mcore.knn_many(query_sets, knn_k) != m_expected:
                raise ReproError(
                    f"mtree n={n}: knn_many disagrees with the scan oracle"
                )
            _, pointer_s = timed(
                "knn.pointer.mtree",
                lambda: [mtree.knn(q, knn_k) for q in query_sets],
            )
            _, core_s = timed(
                "knn.core.mtree", lambda: [mcore.knn(q, knn_k) for q in query_sets]
            )
            _, batched_s = timed(
                "knn.batched.mtree",
                lambda: [mbatched.knn(q, knn_k) for q in query_sets],
                repeat=3,
            )
            # Primary speedup is pointer vs the scalar dense core: that
            # is the pair SimilarityDatabase chooses between.  The
            # batched-kernel ratio is reported separately — per-node
            # batches are capped at the tree capacity (16), where kernel
            # call overhead loses to 16 cheap scipy assignments, so the
            # db's query path stays on the pointer walk for mtree.
            speedup = pointer_s / core_s if core_s else float("inf")
            batched_speedup = pointer_s / batched_s if batched_s else float("inf")
            emit_record({
                "op": "index_knn",
                "backend": "mtree",
                "n": n,
                "dim": dim,
                "k": knn_k,
                "queries": len(query_sets),
                "build_seconds": round(build_s, 6),
                "densify_seconds": round(densify_s, 6),
                "pointer_seconds": round(pointer_s, 6),
                "core_seconds": round(core_s, 6),
                "batched_seconds": round(batched_s, 6),
                "speedup": round(speedup, 2),
                "batched_speedup": round(batched_speedup, 2),
            })
            print(
                f"index_knn mtree  n={n:>7}  pointer {pointer_s:9.4f}s  "
                f"core {core_s:9.4f}s  batched {batched_s:9.4f}s  "
                f"speedup {speedup:6.1f}x (batched {batched_speedup:4.1f}x)"
            )

    # Snapshot load-to-first-query: .npz pointer reconstruction vs cold
    # zero-copy dense mmap vs a warm repeat, at the largest db-scale size.
    db_n = min(max(sizes), 10_000)
    set_k = 5
    db = SimilarityDatabase(set_k, backend="xtree")
    for oid in range(db_n):
        db.add(oid, rng.standard_normal((int(rng.integers(1, set_k + 1)), dim)))
    query_set = rng.standard_normal((2, dim))
    want = db.knn_query(query_set, knn_k)[0]
    with tempfile.TemporaryDirectory(prefix="repro-bench-snap-") as tmp:
        npz_path = Path(tmp) / "snap.npz"
        dense_path = Path(tmp) / "snap.dense"
        db.save(npz_path)
        db.save(dense_path, dense=True)

        start = time.perf_counter()
        npz_db = SimilarityDatabase.load(npz_path)
        npz_load_s = time.perf_counter() - start
        npz_first = npz_db.knn_query(query_set, knn_k)[0]
        npz_s = time.perf_counter() - start

        start = time.perf_counter()
        dense_db = SimilarityDatabase.load(dense_path)
        dense_load_s = time.perf_counter() - start
        dense_first = dense_db.knn_query(query_set, knn_k)[0]
        dense_s = time.perf_counter() - start

        _, warm_s = timed(
            "snapshot.warm_query",
            lambda: dense_db.knn_query(query_set, knn_k)[0],
            repeat=3,
        )
        if npz_first != want or dense_first != want:
            raise ReproError("snapshot load changed 10-nn results")
        emit_record({
            "op": "snapshot_load_first_query",
            "backend": "xtree",
            "n": db_n,
            "dim": dim,
            "k": knn_k,
            "npz_bytes": npz_path.stat().st_size,
            "dense_bytes": dense_path.stat().st_size,
            "npz_load_seconds": round(npz_load_s, 6),
            "npz_seconds": round(npz_s, 6),
            "dense_load_seconds": round(dense_load_s, 6),
            "dense_cold_seconds": round(dense_s, 6),
            "warm_query_seconds": round(warm_s, 6),
            "load_speedup": round(npz_load_s / dense_load_s, 2)
            if dense_load_s
            else float("inf"),
            "speedup": round(npz_s / dense_s, 2) if dense_s else float("inf"),
        })
        print(
            f"snapshot  n={db_n}  npz load {npz_load_s:.4f}s "
            f"(+query {npz_s:.4f}s)  dense load {dense_load_s:.4f}s "
            f"(+query {dense_s:.4f}s)  warm query {warm_s:.4f}s"
        )

    write_bench(out, records, suite="index_scale", seed=seed, label=args.label)
    print(f"\nwrote {out}")
    if args.assert_speedup is not None:
        gate = speedups[("xtree", max(sizes))]
        if gate < args.assert_speedup:
            print(
                f"FAIL: xtree 10-nn speedup {gate:.1f}x is below the "
                f"required {args.assert_speedup:.1f}x",
                file=sys.stderr,
            )
            return 1
        print(
            f"speedup gate ok: xtree 10-nn {gate:.1f}x >= "
            f"{args.assert_speedup:.1f}x"
        )
    return 0


def _aircraft_set_corpus(rng, n: int, dim: int, set_k: int, spread: float = 100.0):
    """Aircraft-style synthetic *vector-set* corpus, centroid-degenerate.

    Each object is a set of *set_k* cover vectors drawn from one of 24
    part-family prototype sets (tight Gaussian noise, sigma = 4% of the
    coordinate spread), plus ~5% ragged uniform-noise outliers.  Every
    family's prototype set is re-centered onto the same global centroid,
    so a single aggregated vector carries no family signal — the regime
    the paper's set-of-vectors argument targets, where the centroid
    filter must refine nearly the whole database while element-wise
    structure still separates families cleanly.
    """
    n_families = 24
    prototypes = rng.uniform(0.0, spread, size=(n_families, set_k, dim))
    center = np.full(dim, spread / 2.0)
    prototypes += (center - prototypes.mean(axis=1))[:, None, :]
    families = rng.integers(0, n_families, size=n)
    sets = []
    for i in range(n):
        noise = rng.normal(0.0, spread * 0.04, size=(set_k, dim))
        sets.append(prototypes[families[i]] + noise)
    for i in range(max(1, n // 20)):
        m = int(rng.integers(1, set_k + 1))
        sets[i] = rng.uniform(0.0, spread, size=(m, dim))
    return sets


def cmd_bench_approx_pareto(args) -> int:
    """``repro bench approx_pareto``: approximate tier vs the exact oracle.

    Builds the aircraft-style vector-set corpus, runs every query
    through the exact filter-refine engine (the oracle), then sweeps
    Hamming shortlist budgets through the sketch tier and reports one
    Pareto operating point per budget: recall@k against the oracle,
    candidate reduction (exact refinements / budget) and wall-clock
    speedup.  Every approximate result set is cross-checked against the
    oracle *before* anything is written: result oids must exist, ranks
    must dominate the oracle's distances, and the full-database budget
    must reproduce the exact results identically — any violation aborts
    the run.
    """
    from repro.approx import ApproxFilterRefineEngine, HammingIndex, SetSketcher
    from repro.bench import write_bench
    from repro.core.queries import FilterRefineEngine
    from repro.obs import span
    from repro.seeding import resolve_seed, spawn

    out = args.out or Path("BENCH_PR8.json")
    seed = resolve_seed(args.seed)
    n = args.n or (2000 if args.quick else 5000)
    set_k = args.k
    dim = args.dim
    knn_k = 10
    n_queries = min(50, n) if not args.quick else min(25, n)
    rng = spawn(seed, "bench-approx-corpus", n, dim, set_k)
    sets = _aircraft_set_corpus(rng, n, dim, set_k)

    # Queries: perturbed copies of random corpus objects — the
    # near-duplicate retrieval workload the approximate tier targets.
    query_rng = spawn(seed, "bench-approx-queries", n, dim, set_k)
    query_ids = query_rng.choice(n, size=n_queries, replace=False)
    queries = [
        sets[i] + query_rng.normal(0.0, 1.0, size=sets[i].shape)
        for i in query_ids
    ]

    def timed(name, fn, repeat=1):
        best = float("inf")
        result = None
        for _ in range(repeat):
            with span(f"bench.{name}", force=True) as timer:
                result = fn()
            best = min(best, timer.seconds)
        return result, best

    engine = FilterRefineEngine(sets, capacity=set_k)
    sketcher = SetSketcher(dim, seed=seed)
    hamming = HammingIndex(sketcher.words)
    for oid, vectors in enumerate(sets):
        hamming.add(oid, sketcher.sketch(vectors))
    approx = ApproxFilterRefineEngine(engine, sketcher, hamming)

    def run_exact():
        out = []
        for q in queries:
            out.append(engine.knn_query(q, knn_k))
        return out

    exact_runs, exact_s = timed("approx.exact_oracle", run_exact)
    exact_results = [results for results, _ in exact_runs]
    mean_refined = float(
        np.mean([stats.exact_computations for _, stats in exact_runs])
    )

    records: list[dict] = []
    records.append({
        "op": "approx_exact_baseline",
        "backend": "exact",
        "n": n,
        "dim": dim,
        "k": knn_k,
        "set_k": set_k,
        "queries": n_queries,
        "exact_seconds": round(exact_s, 6),
        "mean_refined": round(mean_refined, 2),
    })
    records.append({
        "op": "approx_sketch_params",
        "backend": "approx",
        "n": n,
        "params": sketcher.params(),
    })
    print(
        f"exact oracle: n={n} queries={n_queries} k={knn_k}  "
        f"{exact_s:.4f}s  (mean {mean_refined:.0f} refinements/query)"
    )

    if args.shortlists:
        budgets = [int(part) for part in args.shortlists.split(",")]
    else:
        budgets = [b for b in (10, 20, 40, 80, 160, 320) if b < n]
    if n not in budgets:
        budgets.append(n)  # full budget: must equal exact identically

    oid_universe = set(range(n))
    print(f"{'budget':>8} {'recall@10':>10} {'reduction':>10} {'speedup':>8}")
    pareto = []
    for budget in sorted(budgets):
        def run_approx(budget=budget):
            return [
                approx.knn_query(q, knn_k, shortlist=budget)[0] for q in queries
            ]

        approx_results, approx_s = timed(f"approx.budget_{budget}", run_approx)
        overlaps = []
        for qi, (got, want) in enumerate(zip(approx_results, exact_results)):
            got_ids = [m.object_id for m in got]
            if not set(got_ids) <= oid_universe:
                raise ReproError(
                    f"approx budget={budget} query {qi}: returned an oid "
                    "absent from the database"
                )
            if len(got_ids) != len(set(got_ids)):
                raise ReproError(
                    f"approx budget={budget} query {qi}: duplicate results"
                )
            # The approximate answer refines a subset, so rank-for-rank
            # its distances can never beat the oracle's.
            for rank, (gm, wm) in enumerate(zip(got, want)):
                if gm.distance < wm.distance - 1e-12:
                    raise ReproError(
                        f"approx budget={budget} query {qi} rank {rank}: "
                        "distance beats the exact oracle (refine bug)"
                    )
            if budget >= n and got != want:
                raise ReproError(
                    f"approx budget={budget} >= n={n} must equal the "
                    f"exact results (query {qi})"
                )
            truth = {m.object_id for m in want}
            overlaps.append(len(truth & set(got_ids)) / len(truth))
        recall = float(np.mean(overlaps))
        reduction = mean_refined / budget
        speedup = exact_s / approx_s if approx_s else float("inf")
        pareto.append((budget, recall, reduction, speedup))
        records.append({
            "op": "approx_pareto_point",
            "backend": "approx",
            "n": n,
            "dim": dim,
            "k": knn_k,
            "queries": n_queries,
            "budget": budget,
            "approx_seconds": round(approx_s, 6),
            "exact_seconds": round(exact_s, 6),
            "recall": round(recall, 4),
            "reduction": round(reduction, 2),
            "speedup": round(speedup, 2),
        })
        print(
            f"{budget:>8} {recall:>10.3f} {reduction:>9.1f}x {speedup:>7.1f}x"
        )

    if args.label is not None:
        for record in records:
            record["label"] = args.label
    write_bench(out, records, suite="approx_pareto", seed=seed, label=args.label)
    print(f"\nwrote {out}")

    if args.assert_recall is not None or args.assert_reduction is not None:
        want_recall = args.assert_recall or 0.0
        want_reduction = args.assert_reduction or 0.0
        ok = [
            (b, r, red)
            for b, r, red, _ in pareto
            if r >= want_recall and red >= want_reduction
        ]
        if not ok:
            print(
                f"FAIL: no operating point reaches recall@{knn_k} >= "
                f"{want_recall:.2f} at >= {want_reduction:.1f}x candidate "
                "reduction",
                file=sys.stderr,
            )
            return 1
        budget, recall, reduction = ok[0]
        print(
            f"pareto gate ok: budget {budget} reaches recall@{knn_k} "
            f"{recall:.3f} at {reduction:.1f}x reduction"
        )
    return 0


def cmd_bench_shard_scale(args) -> int:
    """``repro bench shard_scale``: scatter-gather scaling across shard counts.

    Builds the aircraft-style vector-set corpus once, then for each
    shard count K times three legs:

    * ingest — each shard's build is timed separately (shards share no
      locks, so the parallel ingest critical path is the slowest
      shard's build; the reported ``ingest_speedup`` is serial total /
      critical);
    * query — per-shard 10-nn service time over the same query batch
      plus the (distance, oid) merge, again with the critical path
      being the slowest shard leg + merge.  The headline ``speedup`` is
      baseline critical / K-shard critical: the factor by which the
      slowest single machine's work shrank.  Pool wall-clock for the
      process-parallel batch path is recorded ungated (on a box with
      >= K cores it approaches the critical path; on fewer cores it
      degenerates to the serial total — a scheduling fact, not a
      property of the sharding);
    * persistence — parallel save/load of the sharded layout.

    Every merged K-shard answer is cross-checked byte-identical against
    the single-shard scan oracle *before* anything is written — a
    disagreement aborts the run.
    """
    import tempfile
    import time

    from repro.bench import write_bench
    from repro.db import ShardedSimilarityDatabase, SimilarityDatabase, shard_of
    from repro.obs import span
    from repro.seeding import resolve_seed, spawn

    out = args.out or Path("BENCH_PR10.json")
    if args.shard_counts:
        counts = [int(part) for part in args.shard_counts.split(",")]
    else:
        counts = [1, 2, 4]
    n = 2000 if args.quick else (args.n or 8000)
    set_k = 5
    dim = args.dim
    knn_k = 10
    n_queries = 16 if args.quick else max(30, args.queries)
    seed = resolve_seed(args.seed)
    rng = spawn(seed, "bench-shard-scale")
    sets = _aircraft_set_corpus(rng, n, dim, set_k)
    # Corpus-like queries (perturbed members): on the centroid-degenerate
    # corpus the filter must refine nearly the whole database, so query
    # cost is data-proportional — the regime where partitioning the data
    # partitions the work.  Uniform random queries would be pruned to a
    # few dozen refinements regardless of n and measure only fixed
    # per-query overhead.
    picks = rng.integers(0, n, size=n_queries)
    queries = [
        sets[int(i)] + rng.normal(0.0, 2.0, size=sets[int(i)].shape)
        for i in picks
    ]

    # The oracle: a single-shard scan-backend build.  Canonical
    # tie-breaking makes every backend and every shard count
    # byte-identical to this.
    oracle = SimilarityDatabase(set_k, backend="scan")
    for oid, arr in enumerate(sets):
        oracle.add(oid, arr)
    expected = [
        [(m.object_id, m.distance) for m in oracle.knn_query(q, knn_k)[0]]
        for q in queries
    ]

    records: list[dict] = []
    speedups: dict[int, float] = {}
    baseline_critical = None
    for shards in counts:
        db = ShardedSimilarityDatabase(set_k, shards=shards, backend="xtree")
        groups: list[list[int]] = [[] for _ in range(shards)]
        for oid in range(n):
            groups[shard_of(oid, shards)].append(oid)
        build_legs = []
        for i, group in enumerate(groups):
            with span(f"bench.shard_build.{i}", force=True) as timer:
                for oid in group:
                    db.add(oid, sets[oid])
            build_legs.append(timer.seconds)
        build_total = sum(build_legs)
        build_critical = max(build_legs)

        # Per-shard query service time under one pinned version vector,
        # then the merge — the exact decomposition scatter-gather runs.
        with db.read_views() as views:
            query_legs = []
            per_shard = []
            for view in views:
                with span("bench.shard_knn", force=True) as timer:
                    answers = [view.knn_query(q, knn_k) for q in queries]
                query_legs.append(timer.seconds)
                per_shard.append(answers)
            with span("bench.shard_merge", force=True) as timer:
                merged = [
                    db._merge_matches(
                        [per_shard[i][qi] for i in range(shards)], knn_k
                    )
                    for qi in range(n_queries)
                ]
            merge_s = timer.seconds
        for qi, want in enumerate(expected):
            got = [(m.object_id, m.distance) for m in merged[qi]]
            if got != want:
                raise ReproError(
                    f"shards={shards}: merged 10-nn disagrees with the "
                    f"scan oracle on query {qi}"
                )
        query_critical = max(query_legs) + merge_s
        query_serial = sum(query_legs) + merge_s

        # Pool wall-clock over the saved layout (recorded, not gated).
        with tempfile.TemporaryDirectory(prefix="repro-bench-shard-") as tmp:
            root = Path(tmp) / "layout"
            with span("bench.shard_save", force=True) as timer:
                db.save(root, n_jobs=min(args.jobs, max(shards, 1)))
            save_s = timer.seconds
            wall_s = None
            if shards >= 2:
                jobs = min(args.jobs, shards)
                db.knn_query_many(queries, knn_k, n_jobs=jobs)  # warm pool
                start = time.perf_counter()
                pooled = db.knn_query_many(queries, knn_k, n_jobs=jobs)
                wall_s = time.perf_counter() - start
                for qi, want in enumerate(expected):
                    got = [(m.object_id, m.distance) for m in pooled[qi][0]]
                    if got != want:
                        raise ReproError(
                            f"shards={shards}: pooled 10-nn disagrees with "
                            f"the scan oracle on query {qi}"
                        )
            with span("bench.shard_load", force=True) as timer:
                reloaded = ShardedSimilarityDatabase.load(
                    root, n_jobs=min(args.jobs, max(shards, 1))
                )
            load_s = timer.seconds
            reloaded.close()

        if baseline_critical is None:
            baseline_critical = query_critical
        speedup = (
            baseline_critical / query_critical if query_critical else float("inf")
        )
        speedups[shards] = speedup
        entry = {
            "op": "shard_scale",
            "backend": "xtree",
            "shards": shards,
            "n": n,
            "k": knn_k,
            "set_k": set_k,
            "dim": dim,
            "queries": n_queries,
            "build_seconds": round(build_total, 6),
            "build_critical_seconds": round(build_critical, 6),
            "ingest_speedup": round(build_total / build_critical, 2)
            if build_critical
            else float("inf"),
            "query_serial_seconds": round(query_serial, 6),
            "query_critical_seconds": round(query_critical, 6),
            "merge_seconds": round(merge_s, 6),
            "save_seconds": round(save_s, 6),
            "load_seconds": round(load_s, 6),
            "speedup": round(speedup, 2),
        }
        if wall_s is not None:
            entry["pool_wall_seconds"] = round(wall_s, 6)
        if args.label is not None:
            entry["label"] = args.label
        records.append(entry)
        print(
            f"shard_scale K={shards}  build crit {build_critical:8.3f}s "
            f"(total {build_total:8.3f}s)  query crit "
            f"{query_critical:8.4f}s  merge {merge_s:7.4f}s  "
            f"speedup {speedup:5.2f}x"
        )

    write_bench(out, records, suite="shard_scale", seed=seed, label=args.label)
    print(f"\nwrote {out}")
    if args.assert_speedup is not None:
        top = max(counts)
        gate = speedups[top]
        if gate < args.assert_speedup:
            print(
                f"FAIL: {top}-shard query critical-path speedup "
                f"{gate:.2f}x is below the required "
                f"{args.assert_speedup:.1f}x",
                file=sys.stderr,
            )
            return 1
        print(
            f"speedup gate ok: {top}-shard query critical path "
            f"{gate:.2f}x >= {args.assert_speedup:.1f}x"
        )
    return 0


def cmd_bench_report(args) -> int:
    """``repro bench report``: tabulate every BENCH_*.json for trajectory
    tracking (accepts both the pinned schema and legacy bare lists)."""
    from repro.bench import load_bench_files, render_report

    files = args.files if args.files else sorted(Path.cwd().glob("BENCH_*.json"))
    if not files:
        print("no BENCH_*.json files found (pass --files)", file=sys.stderr)
        return 2
    print(render_report(load_bench_files(files)))
    return 0


def cmd_bench_compare(args) -> int:
    """``repro bench compare BASE.json HEAD.json``: regression sentinel.

    Joins the two files' records on their identity fields, judges every
    comparable metric (timings lower-better, speedup/recall/reduction
    higher-better) against ``--threshold``, and exits 1 on any
    regression — the CI gate against committed baselines.
    """
    from repro.bench import compare_bench, render_comparison
    from repro.bench.compare import DEFAULT_MATCH_FIELDS

    if len(args.paths) != 2:
        print(
            "bench compare needs exactly two files: BASE.json HEAD.json",
            file=sys.stderr,
        )
        return 2
    base, head = args.paths
    fields = args.fields.split(",") if args.fields else None
    match_fields = (
        tuple(args.match.split(",")) if args.match else DEFAULT_MATCH_FIELDS
    )
    comparison = compare_bench(
        base,
        head,
        threshold=args.threshold,
        min_seconds=args.min_seconds,
        fields=fields,
        match_fields=match_fields,
    )
    print(
        render_comparison(
            comparison, threshold=args.threshold, verbose=args.verbose
        )
    )
    if comparison.missing_in_head and not args.allow_missing:
        print(
            f"FAIL: {len(comparison.missing_in_head)} base record(s) have "
            "no head counterpart (pass --allow-missing for partial runs)",
            file=sys.stderr,
        )
        return 1
    if not comparison.ok:
        regressed = comparison.regressions
        print(
            f"FAIL: {len(regressed)} metric(s) regressed beyond "
            f"{args.threshold * 100:.0f}%",
            file=sys.stderr,
        )
        return 1
    if not any(d.skipped is None for d in comparison.deltas):
        print(
            "FAIL: no comparable metrics survived the noise floor — "
            "nothing was actually compared",
            file=sys.stderr,
        )
        return 2
    print("bench compare: ok")
    return 0


def cmd_obs(args) -> int:
    """``repro obs export|expose``: trace export and metrics exposition."""
    import json

    if args.obs_command == "export":
        from repro.obs.export import assemble_tree, chrome_trace, load_trace

        records = load_trace(args.trace)
        if not records:
            print(f"{args.trace}: empty trace", file=sys.stderr)
            return 2
        document = chrome_trace(records)
        out = args.out or args.trace.with_suffix(args.trace.suffix + ".chrome.json")
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(document) + "\n")
        tree = assemble_tree(records)
        print(
            f"{len(document['traceEvents'])} trace events "
            f"({len(tree['nodes'])} spans, {len(tree['roots'])} root(s), "
            f"{len(tree['trace_ids'])} trace id(s)) -> {out}"
        )
        return 0

    # expose: merge snapshots, render OpenMetrics text.
    from repro.obs.report import load_metrics

    merged = load_metrics(args.metrics)
    text = merged.expose_prometheus(prefix=args.prefix)
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(text)
        print(f"wrote {args.out}")
    else:
        sys.stdout.write(text)
    return 0


def cmd_bench(args) -> int:
    """Time the batched kernels against the per-pair baseline.

    Runs on a seeded synthetic workload shaped like the paper's data
    (ragged sets of up to k d-dimensional vectors), verifies that both
    paths agree, and writes one JSON record per operation with wall
    times and the speedup factor.
    """
    if args.suite == "index_scale":
        return cmd_bench_index_scale(args)
    if args.suite == "approx_pareto":
        return cmd_bench_approx_pareto(args)
    if args.suite == "shard_scale":
        return cmd_bench_shard_scale(args)
    if args.suite == "report":
        return cmd_bench_report(args)
    if args.suite == "compare":
        return cmd_bench_compare(args)

    from repro.bench import write_bench
    from repro.core.batch import PackedSets, match_many, pairwise_matrix
    from repro.core.min_matching import min_matching_distance
    from repro.core.queries import FilterRefineEngine
    from repro.obs import span
    from repro.pipeline import pairwise_distance_matrix
    from repro.seeding import resolve_seed, spawn

    seed = resolve_seed(args.seed)
    n, k = (60, 5) if args.quick else (args.n or 1000, args.k)
    dim = args.dim
    rng = spawn(seed, "bench-kernels")
    sets = [
        rng.standard_normal((int(rng.integers(1, k + 1)), dim)) for _ in range(n)
    ]
    n_queries = min(args.queries, n)
    records = []

    def timed(name: str, fn):
        """One benchmark leg on the span timer.

        ``force=True`` always measures wall time; the span reaches the
        registry/trace only when ``--trace``/``--metrics`` enabled obs,
        so plain bench runs pay nothing beyond two perf_counter calls.
        """
        with span(f"bench.{name}", force=True) as timer:
            result = fn()
        return result, timer.seconds

    def record(op: str, per_pair: float, batched: float, **extra) -> None:
        entry = {
            "op": op,
            "n": n,
            "k": k,
            "dim": dim,
            "per_pair_seconds": round(per_pair, 6),
            "batched_seconds": round(batched, 6),
            "speedup": round(per_pair / batched, 2) if batched else float("inf"),
            **extra,
        }
        if args.label is not None:
            entry["label"] = args.label
        records.append(entry)
        print(
            f"{op:20} per-pair {entry['per_pair_seconds']:>10.3f}s   "
            f"batched {entry['batched_seconds']:>10.3f}s   "
            f"speedup {entry['speedup']:.1f}x"
        )

    # Full pairwise distance matrix (the OPTICS workload).
    matrix_batch, batched = timed(
        "pairwise_matrix.batched", lambda: pairwise_matrix(sets, capacity=k)
    )
    matrix_pp, per_pair = timed(
        "pairwise_matrix.per_pair",
        lambda: pairwise_distance_matrix(sets, min_matching_distance),
    )
    if not np.allclose(matrix_batch, matrix_pp, atol=1e-9):
        raise ReproError("batched pairwise matrix disagrees with per-pair baseline")
    record("pairwise_matrix", per_pair, batched, pairs=n * (n - 1) // 2)

    # Sequential-scan k-nn (the Table 2 baseline row).
    engine = FilterRefineEngine(sets, capacity=k)
    engine_pp = FilterRefineEngine(
        sets, capacity=k, exact_distance=min_matching_distance
    )
    queries = sets[:n_queries]
    results_batch, batched = timed(
        "knn_sequential.batched",
        lambda: [engine.knn_sequential(q, 10)[0] for q in queries],
    )
    results_pp, per_pair = timed(
        "knn_sequential.per_pair",
        lambda: [engine_pp.knn_sequential(q, 10)[0] for q in queries],
    )
    for got, expected in zip(results_batch, results_pp):
        if [m.object_id for m in got] != [m.object_id for m in expected]:
            raise ReproError("batched knn_sequential disagrees with per-pair baseline")
    record("knn_sequential", per_pair, batched, queries=n_queries)

    # One query against the whole database (the refinement kernel).
    packed = PackedSets.pack(sets, capacity=k)
    query = sets[0]
    dists_batch, batched = timed("match_many.batched", lambda: match_many(query, packed))
    dists_pp, per_pair = timed(
        "match_many.per_pair",
        lambda: np.array([min_matching_distance(query, s) for s in sets]),
    )
    if not np.allclose(dists_batch, dists_pp, atol=1e-9):
        raise ReproError("match_many disagrees with per-pair baseline")
    record("match_many", per_pair, batched)

    # -- extraction benchmarks ------------------------------------------
    # The "per-pair" column is the reference extractor (dense O(r^4)
    # max-sum-box per greedy step); "batched" is the incremental engine
    # (blocked scan + cross-iteration x-pair memo).  Both are verified
    # bit-identical before any timing is recorded.
    import shutil
    import tempfile

    from repro.datasets.aircraft import make_aircraft_dataset
    from repro.features.cache import FeatureCache
    from repro.features.cover_sequence import extract_cover_sequence
    from repro.features.vector_set_model import VectorSetModel
    from repro.pipeline import Pipeline

    single_res, single_k = (12, 5) if args.quick else (30, 7)
    parts, _ = make_aircraft_dataset(n=4, seed=seed)
    grid = Pipeline(resolution=single_res).process_parts(parts[:1]).objects[0].grid
    seq_ref = extract_cover_sequence(grid, single_k, engine="reference")
    seq_inc = extract_cover_sequence(grid, single_k, engine="incremental")
    if seq_ref.covers != seq_inc.covers or seq_ref.errors != seq_inc.errors:
        raise ReproError("incremental extraction disagrees with reference oracle")
    _, per_pair = timed(
        "extract_single.reference",
        lambda: extract_cover_sequence(grid, single_k, engine="reference"),
    )
    _, batched = timed(
        "extract_single.incremental",
        lambda: extract_cover_sequence(grid, single_k, engine="incremental"),
    )
    record(
        "extract_single", per_pair, batched,
        resolution=single_res, covers=single_k,
    )

    # End-to-end ingest: serial reference extraction vs parallel
    # incremental extraction with a warm content-addressed cache (the
    # steady-state of repeated `repro ingest` runs).
    n_objects, ingest_res = (12, 12) if args.quick else (200, 15)
    parts, _ = make_aircraft_dataset(n=n_objects, seed=seed)
    grids = [
        obj.grid
        for obj in Pipeline(resolution=ingest_res).process_parts(parts).objects
    ]
    reference_model = VectorSetModel(k=single_k, engine="reference")
    optimized_model = VectorSetModel(k=single_k)
    features_ref, per_pair = timed(
        "ingest.reference", lambda: [reference_model.extract(g) for g in grids]
    )
    cache_root = Path(tempfile.mkdtemp(prefix="repro-bench-cache-"))
    try:
        cache = FeatureCache(root=cache_root)
        optimized_model.extract_many(grids, n_jobs=args.jobs, cache=cache)
        features_opt, batched = timed(
            "ingest.warm_cache",
            lambda: optimized_model.extract_many(grids, n_jobs=args.jobs, cache=cache),
        )
    finally:
        shutil.rmtree(cache_root, ignore_errors=True)
    for got, expected in zip(features_opt, features_ref):
        if not np.array_equal(got, expected):
            raise ReproError("cached/parallel features disagree with reference")
    record(
        "ingest_200", per_pair, batched,
        objects=len(grids), resolution=ingest_res, jobs=args.jobs,
        cache="warm",
    )

    out = args.out or Path("BENCH_PR3.json")
    write_bench(out, records, suite="kernels", seed=seed, label=args.label)
    print(f"\nwrote {out}")
    return 0


def cmd_stats(args) -> int:
    """Merge metrics snapshots, validate traces, render one report.

    Exit code 1 when any trace is structurally broken (unparseable
    line, span never closed, negative span duration) or any merged
    counter is negative — the CI bench-smoke job relies on this.
    """
    import json

    from repro.obs.report import (
        load_metrics,
        render_report,
        validate_counters,
        validate_trace,
    )

    if not args.metrics and not args.trace:
        print("nothing to report: pass --metrics and/or --trace files", file=sys.stderr)
        return 2
    merged = load_metrics(args.metrics)
    checks = [validate_trace(path) for path in args.trace]
    counter_errors = validate_counters(merged)
    if args.json:
        payload = merged.snapshot(include_events=False)
        payload["traces"] = [
            {
                "path": check.path,
                "events": check.events,
                "spans": check.spans,
                "by_event": check.by_event,
                "errors": check.errors,
            }
            for check in checks
        ]
        payload["errors"] = counter_errors
        print(json.dumps(payload, indent=2))
    else:
        print(render_report(merged, checks))
        for message in counter_errors:
            print(f"ERROR {message}", file=sys.stderr)
    return 1 if counter_errors or any(not check.ok for check in checks) else 0


def cmd_info(args) -> int:
    from repro.io.database import ObjectDatabase

    database = ObjectDatabase.load(args.database)
    families = Counter(obj.family for obj in database)
    resolutions = Counter(obj.grid.resolution for obj in database)
    feature_models = Counter(
        model for obj in database for model in obj.features
    )
    print(f"objects:       {len(database)}")
    print(f"families:      {dict(families)}")
    print(f"resolutions:   {dict(resolutions)}")
    print(f"feature sets:  {dict(feature_models)}")
    voxels = [obj.grid.count for obj in database]
    print(f"voxels/object: min={min(voxels)} median={sorted(voxels)[len(voxels)//2]} "
          f"max={max(voxels)}")
    from repro.features.cache import cache_info

    info = cache_info()
    print(
        f"feature cache: {info['entries']} entries ({info['bytes']} bytes) "
        f"at {info['root']}; lifetime {info['hits']} hits / "
        f"{info['misses']} misses"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "ingest": cmd_ingest,
        "query": cmd_query,
        "cluster": cmd_cluster,
        "experiment": cmd_experiment,
        "info": cmd_info,
        "bench": cmd_bench,
        "stats": cmd_stats,
        "obs": cmd_obs,
        "db": cmd_db,
    }
    # `stats` and `obs` consume metrics/trace files; every other command
    # may produce them.  Either output flag switches the obs layer on
    # for exactly this invocation (reset afterwards so embedded callers
    # and tests never leak state between runs).
    consumer = args.command in ("stats", "obs")
    trace_out = getattr(args, "trace", None) if not consumer else None
    metrics_out = getattr(args, "metrics", None) if not consumer else None
    observing = trace_out is not None or metrics_out is not None
    root_span = None
    if observing:
        from repro import obs
        from repro.obs import querylog, tracectx

        obs.registry().reset()
        obs.enable()
        querylog.configure(
            sample_rate=getattr(args, "sample", 1.0),
            slow_ms=getattr(args, "slow_ms", None),
        )
        if trace_out is not None:
            obs.configure_sink(trace_out, mode=getattr(args, "trace_mode", "append"))
        # One trace id and one root span per CLI command: every span
        # and event of the run (pool workers included) carries the same
        # trace id and descends from this root, so `repro obs export`
        # reassembles the whole command into a single tree.
        tracectx.set_trace_context(tracectx.new_trace_id())
        root_span = obs.span(f"cli.{args.command}")
        root_span.__enter__()
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        if observing:
            import json

            from repro import obs
            from repro.obs import querylog, tracectx

            if root_span is not None:
                root_span.__exit__(None, None, None)
            tracectx.clear_trace_context()
            querylog.reset()
            if metrics_out is not None:
                snapshot = obs.registry().snapshot(include_events=False)
                Path(metrics_out).parent.mkdir(parents=True, exist_ok=True)
                Path(metrics_out).write_text(json.dumps(snapshot, indent=2) + "\n")
            obs.close_sink()
            obs.registry().reset()
            obs.disable()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Page manager and the paper's I/O cost model.

Section 5.4: "One page access was counted as 8 ms and for the costs of
reading one byte we counted 200 ns."  Data and access structures fit in
main memory, so the paper *simulates* I/O by counting logical page
accesses and bytes read — exactly what :class:`PageManager` does.  Every
index node and every stored object occupies one or more logical pages;
query processing reports its accounting as an :class:`IOCost`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import IndexError_
from repro.obs import counter

#: The paper's cost constants.
SECONDS_PER_PAGE_ACCESS = 8e-3
SECONDS_PER_BYTE = 200e-9

DEFAULT_PAGE_SIZE = 4096


@dataclass
class IOCost:
    """Accumulated logical I/O with the paper's cost conversion."""

    page_accesses: int = 0
    bytes_read: int = 0

    def seconds(self) -> float:
        """Simulated I/O time under the paper's constants."""
        return (
            self.page_accesses * SECONDS_PER_PAGE_ACCESS
            + self.bytes_read * SECONDS_PER_BYTE
        )

    def add(self, other: "IOCost") -> None:
        self.page_accesses += other.page_accesses
        self.bytes_read += other.bytes_read

    def __iadd__(self, other: "IOCost") -> "IOCost":
        self.add(other)
        return self

    def copy(self) -> "IOCost":
        return IOCost(self.page_accesses, self.bytes_read)

    def as_dict(self) -> dict[str, int]:
        """Flat numeric mapping (the shared stats protocol with
        :class:`repro.core.queries.QueryStats`)."""
        return {"page_accesses": self.page_accesses, "bytes_read": self.bytes_read}

    def merge(self, other: "IOCost") -> "IOCost":
        """Accumulate another cost in place (protocol alias of :meth:`add`)."""
        self.add(other)
        return self

    def __str__(self) -> str:
        return (
            f"{self.page_accesses} page accesses, {self.bytes_read} bytes "
            f"({self.seconds() * 1e3:.1f} ms simulated)"
        )


@dataclass
class PageManager:
    """Allocates logical pages and records read traffic.

    Pages carry only a byte size — payloads stay in the owning data
    structures; the manager exists purely for deterministic cost
    accounting, mirroring how the paper simulated I/O time on an
    in-memory dataset.
    """

    page_size: int = DEFAULT_PAGE_SIZE
    cost: IOCost = field(default_factory=IOCost)
    _page_bytes: dict[int, int] = field(default_factory=dict)
    _next_id: int = 0

    def allocate(self, nbytes: int | None = None) -> int:
        """Allocate a logical page (default: one full page of payload)
        and return its id."""
        if nbytes is None:
            nbytes = self.page_size
        if nbytes < 0:
            raise IndexError_("page payload must be non-negative")
        page_id = self._next_id
        self._next_id += 1
        self._page_bytes[page_id] = nbytes
        return page_id

    def resize(self, page_id: int, nbytes: int) -> None:
        """Update the payload size of a page (e.g. after a node split)."""
        if page_id not in self._page_bytes:
            raise IndexError_(f"unknown page id {page_id}")
        if nbytes < 0:
            raise IndexError_("page payload must be non-negative")
        self._page_bytes[page_id] = nbytes

    def read(self, page_id: int) -> None:
        """Record a read of the page: the number of page accesses grows
        with the payload's page span, the byte counter with the payload."""
        try:
            nbytes = self._page_bytes[page_id]
        except KeyError:
            raise IndexError_(f"unknown page id {page_id}") from None
        spans = max(1, -(-nbytes // self.page_size))
        self.cost.page_accesses += spans
        self.cost.bytes_read += nbytes
        counter("io.page_accesses").inc(spans)
        counter("io.bytes_read").inc(nbytes)

    def read_spans(self, spans: int, nbytes: int) -> None:
        """Record a batched node-table read: *spans* page accesses and
        *nbytes* payload bytes in one call.

        The array cores read whole node batches from contiguous tables
        rather than one page object at a time; this entry point keeps
        ``io.page_accesses`` identical to what per-node :meth:`read`
        calls over the same node set would have charged, so Table 2
        comparisons stay valid.
        """
        if spans < 0 or nbytes < 0:
            raise IndexError_("batched read must be non-negative")
        self.cost.page_accesses += spans
        self.cost.bytes_read += nbytes
        counter("io.page_accesses").inc(spans)
        counter("io.bytes_read").inc(nbytes)

    def read_bytes(self, nbytes: int) -> None:
        """Record a raw sequential read of *nbytes* (for scan baselines):
        pages are derived from the byte count."""
        if nbytes < 0:
            raise IndexError_("cannot read a negative number of bytes")
        spans = max(1, -(-nbytes // self.page_size)) if nbytes else 0
        self.cost.page_accesses += spans
        self.cost.bytes_read += nbytes
        counter("io.page_accesses").inc(spans)
        counter("io.bytes_read").inc(nbytes)

    def reset(self) -> IOCost:
        """Zero the counters and return the previous totals."""
        previous = self.cost
        self.cost = IOCost()
        return previous

    @property
    def allocated_pages(self) -> int:
        return len(self._page_bytes)

    def total_bytes(self) -> int:
        return sum(self._page_bytes.values())

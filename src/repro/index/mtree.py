"""M-tree: a metric access method (Ciaccia, Patella & Zezula 1997).

Because the minimal matching distance is a metric (Lemma 1), vector sets
can be indexed directly in a metric tree — the "simplest approach" to
accelerating vector-set queries mentioned in Section 4.3, against which
the paper positions its centroid filter.  This implementation supports
arbitrary payload objects with a user-supplied metric, counts both page
accesses and distance evaluations (the dominant CPU cost), and provides
range and k-nn search with the standard triangle-inequality pruning.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Sequence

import numpy as np

from repro.exceptions import IndexError_
from repro.index.pages import PageManager

Metric = Callable[[object, object], float]

#: Relative slack applied to every *internal* pruning predicate (parent
#: -distance pre-tests and covering-ball descent).  The triangle
#: inequality holds for the exact metric, but each stored distance is a
#: rounded float, so a mathematically-valid prune can overshoot by a few
#: ulps and drop a result whose distance ties the query boundary
#: exactly.  Loosening the predicates by one part in 10^9 means rounding
#: can only make the search visit *more* entries — results themselves
#: are always filtered on the exact metric value, so correctness and
#: bit-identical agreement with the sequential baseline are preserved.
PRUNE_SLACK = 1e-9


class _MEntry:
    """One entry: a routing object (internal) or a data object (leaf)."""

    __slots__ = ("obj", "oid", "dist_to_parent", "radius", "subtree")

    def __init__(self, obj, oid=None, dist_to_parent=0.0, radius=0.0, subtree=None):
        self.obj = obj
        self.oid = oid
        self.dist_to_parent = dist_to_parent
        self.radius = radius
        self.subtree = subtree


class _MNode:
    __slots__ = ("entries", "is_leaf", "page_id")

    def __init__(self, is_leaf: bool, page_id: int):
        self.entries: list[_MEntry] = []
        self.is_leaf = is_leaf
        self.page_id = page_id


class MTree:
    """Metric tree over arbitrary objects.

    Parameters
    ----------
    metric:
        The distance function; must satisfy the metric axioms for the
        pruning to be correct (the minimal matching distance with norm
        weights qualifies by Lemma 1).
    capacity:
        Maximum entries per node.
    page_manager:
        Shared page manager for I/O accounting.
    """

    def __init__(
        self,
        metric: Metric,
        capacity: int = 16,
        page_manager: PageManager | None = None,
    ):
        if capacity < 4:
            raise IndexError_("M-tree capacity must be >= 4")
        self.metric = metric
        self.capacity = capacity
        self.pages = page_manager or PageManager()
        self.root = self._new_node(is_leaf=True)
        self.size = 0
        self.distance_computations = 0
        self._dense_core = None
        self._dense_core_key = None

    def dense_core(self, **batch_params):
        """The struct-of-arrays query core mirroring this tree.

        ``batch_params`` (``capacity=``, ``omega=``, optional
        ``solver=``) enable batched metric evaluation for 2-d vector-set
        payloads; the core is cached until the next mutation (or a call
        with different parameters) and shares this tree's page manager.
        """
        key = tuple(
            (k, repr(np.asarray(v)) if isinstance(v, np.ndarray) else v)
            for k, v in sorted(batch_params.items())
        )
        if self._dense_core is None or self._dense_core_key != key:
            from repro.index.arraycore import densify

            self._dense_core = densify(
                self, batch_params=batch_params or None
            )
            self._dense_core_key = key
        return self._dense_core

    def _invalidate_core(self) -> None:
        self._dense_core = None
        self._dense_core_key = None

    def _new_node(self, is_leaf: bool) -> _MNode:
        return _MNode(is_leaf, self.pages.allocate())

    def _distance(self, a, b) -> float:
        self.distance_computations += 1
        return float(self.metric(a, b))

    # -- insertion -------------------------------------------------------

    def insert(self, obj, oid: int) -> None:
        self._invalidate_core()
        path: list[tuple[_MNode, _MEntry | None]] = []
        node, parent_entry = self.root, None
        while not node.is_leaf:
            path.append((node, parent_entry))
            best_entry, best_dist, best_enlarge = None, np.inf, np.inf
            for entry in node.entries:
                dist = self._distance(obj, entry.obj)
                enlargement = max(0.0, dist - entry.radius)
                key = (enlargement, dist)
                if (enlargement, dist) < (best_enlarge, best_dist):
                    best_entry, best_dist, best_enlarge = entry, dist, enlargement
            assert best_entry is not None
            best_entry.radius = max(best_entry.radius, best_dist)
            node, parent_entry = best_entry.subtree, best_entry
        dist_to_parent = (
            self._distance(obj, parent_entry.obj) if parent_entry is not None else 0.0
        )
        node.entries.append(_MEntry(obj, oid=oid, dist_to_parent=dist_to_parent))
        self.size += 1
        if len(node.entries) > self.capacity:
            self._split(node, path)

    def _promote(self, entries: Sequence[_MEntry]) -> tuple[int, int]:
        """Choose two promotion objects: the pair with maximum distance
        (mM_RAD-like; exact over all pairs, fine for small capacities)."""
        best = (0, 1)
        best_dist = -1.0
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                dist = self._distance(entries[i].obj, entries[j].obj)
                if dist > best_dist:
                    best_dist, best = dist, (i, j)
        return best

    def _split(self, node: _MNode, path: list[tuple[_MNode, _MEntry | None]]) -> None:
        entries = node.entries
        first, second = self._promote(entries)
        pivot_a, pivot_b = entries[first].obj, entries[second].obj

        group_a: list[_MEntry] = []
        group_b: list[_MEntry] = []
        radius_a = radius_b = 0.0
        for entry in entries:
            dist_a = self._distance(entry.obj, pivot_a)
            dist_b = self._distance(entry.obj, pivot_b)
            child_extent = entry.radius  # 0 for leaf entries
            if dist_a <= dist_b:
                entry.dist_to_parent = dist_a
                group_a.append(entry)
                radius_a = max(radius_a, dist_a + child_extent)
            else:
                entry.dist_to_parent = dist_b
                group_b.append(entry)
                radius_b = max(radius_b, dist_b + child_extent)

        sibling = self._new_node(node.is_leaf)
        node.entries = group_a
        sibling.entries = group_b
        entry_a = _MEntry(pivot_a, radius=radius_a, subtree=node)
        entry_b = _MEntry(pivot_b, radius=radius_b, subtree=sibling)

        if path:
            parent, grand_entry = path[-1]
            parent.entries = [e for e in parent.entries if e.subtree is not node]
            for entry in (entry_a, entry_b):
                entry.dist_to_parent = (
                    self._distance(entry.obj, grand_entry.obj)
                    if grand_entry is not None
                    else 0.0
                )
                parent.entries.append(entry)
            # Parent radii may need to grow to cover the new balls.
            if grand_entry is not None:
                for entry in (entry_a, entry_b):
                    grand_entry.radius = max(
                        grand_entry.radius, entry.dist_to_parent + entry.radius
                    )
            if len(parent.entries) > self.capacity:
                self._split(parent, path[:-1])
        else:
            new_root = self._new_node(is_leaf=False)
            new_root.entries = [entry_a, entry_b]
            self.root = new_root

    # -- deletion --------------------------------------------------------

    def delete(self, obj, oid: int) -> bool:
        """Remove the object stored under *oid*; returns False if absent.

        The descent is pruned with the covering radii (the object must
        lie inside every ancestor ball).  Emptied nodes are dissolved
        bottom-up by dropping their routing entries, and a single-child
        internal root collapses onto its child.  Covering radii are never
        re-tightened — like the original M-tree (which has no delete at
        all) we only guarantee they stay valid *upper* bounds, which is
        all the pruning predicates need.
        """
        path = self._locate(self.root, obj, oid, None)
        if path is None:
            return False
        self._invalidate_core()
        leaf, target = path[-1]
        leaf.entries.remove(target)
        self.size -= 1
        # Dissolve now-empty nodes bottom-up; path[i][1] is the routing
        # entry inside path[i][0] that leads to path[i+1][0].
        for depth in range(len(path) - 1, 0, -1):
            child = path[depth][0]
            if child.entries:
                break
            parent, routing = path[depth - 1]
            parent.entries.remove(routing)
        # Collapse a degenerate root.
        while not self.root.is_leaf:
            if len(self.root.entries) == 1:
                self.root = self.root.entries[0].subtree
            elif not self.root.entries:
                self.root = self._new_node(is_leaf=True)
            else:
                break
        return True

    def _locate(
        self, node: _MNode, obj, oid: int, parent_dist: float | None
    ) -> list[tuple[_MNode, _MEntry | None]] | None:
        """Path of ``(node, entry)`` pairs from *node* down to the leaf
        entry holding *oid*, or None.  The leaf pair carries the data
        entry itself; internal pairs carry the routing entry descended
        through."""
        self.pages.read(node.page_id)
        if node.is_leaf:
            for entry in node.entries:
                if entry.oid == oid:
                    return [(node, entry)]
            return None
        for entry in node.entries:
            if parent_dist is not None and abs(
                parent_dist - entry.dist_to_parent
            ) > entry.radius * (1.0 + PRUNE_SLACK):
                continue
            dist = self._distance(obj, entry.obj)
            if dist <= entry.radius * (1.0 + PRUNE_SLACK):
                found = self._locate(entry.subtree, obj, oid, dist)
                if found is not None:
                    return [(node, entry)] + found
        return None

    # -- queries -----------------------------------------------------------

    def range_search(self, query, radius: float) -> list[tuple[int, float]]:
        """All ``(oid, distance)`` with distance <= radius."""
        if radius < 0:
            raise IndexError_("radius must be non-negative")
        results: list[tuple[int, float]] = []
        # Stack holds (node, distance from query to the node's parent object).
        stack: list[tuple[_MNode, float | None]] = [(self.root, None)]
        while stack:
            node, parent_dist = stack.pop()
            self.pages.read(node.page_id)
            for entry in node.entries:
                # Cheap pre-test via the precomputed parent distance.  The
                # prune threshold is inflated by PRUNE_SLACK so float
                # rounding can only cause extra work, never a missed hit.
                if parent_dist is not None and abs(
                    parent_dist - entry.dist_to_parent
                ) > (radius + entry.radius) * (1.0 + PRUNE_SLACK):
                    continue
                dist = self._distance(query, entry.obj)
                if node.is_leaf:
                    if dist <= radius:
                        results.append((entry.oid, dist))
                elif dist <= (radius + entry.radius) * (1.0 + PRUNE_SLACK):
                    stack.append((entry.subtree, dist))
        results.sort(key=lambda pair: (pair[1], pair[0]))
        return results

    def knn(self, query, k: int) -> list[tuple[int, float]]:
        """The k nearest ``(oid, distance)`` pairs.

        Ties at the k-th distance resolve canonically by ascending oid,
        matching the sequential-scan baseline, so differential tests can
        assert literal result equality across access methods.
        """
        if k < 1:
            raise IndexError_("k must be >= 1")
        counter = itertools.count()
        # Priority queue of subtrees by (slack-guarded) optimistic distance.
        queue: list[tuple[float, int, _MNode, float | None]] = [
            (0.0, next(counter), self.root, None)
        ]
        # Max-heap over (distance, oid) via negation: best[0] is the
        # current k-th candidate, the first to be displaced.
        best: list[tuple[float, int]] = []

        def kth_key() -> tuple[float, int]:
            if len(best) < k:
                return (np.inf, 2**63)
            return (-best[0][0], -best[0][1])

        while queue:
            bound, _, node, parent_dist = heapq.heappop(queue)
            if bound > kth_key()[0]:
                break
            self.pages.read(node.page_id)
            for entry in node.entries:
                if parent_dist is not None and abs(
                    parent_dist - entry.dist_to_parent
                ) > (kth_key()[0] + entry.radius) * (1.0 + PRUNE_SLACK):
                    continue
                dist = self._distance(query, entry.obj)
                if node.is_leaf:
                    if (dist, entry.oid) < kth_key():
                        if len(best) == k:
                            heapq.heapreplace(best, (-dist, -entry.oid))
                        else:
                            heapq.heappush(best, (-dist, -entry.oid))
                else:
                    optimistic = max(0.0, dist - entry.radius) * (1.0 - PRUNE_SLACK)
                    if optimistic <= kth_key()[0]:
                        heapq.heappush(
                            queue, (optimistic, next(counter), entry.subtree, dist)
                        )
        result = [(-neg_oid, -neg_dist) for neg_dist, neg_oid in best]
        result.sort(key=lambda pair: (pair[1], pair[0]))
        return result

    # -- introspection -------------------------------------------------------

    def node_count(self) -> int:
        count, stack = 0, [self.root]
        while stack:
            node = stack.pop()
            count += 1
            if not node.is_leaf:
                stack.extend(entry.subtree for entry in node.entries)
        return count

    def check_invariants(self) -> None:
        """Verify the full set of M-tree structural invariants.

        * fanout: every node holds at most ``capacity`` entries and — the
          root aside — at least one (deletion dissolves empty nodes);
        * covering radii: every leaf object lies inside the ball of
          *every* ancestor routing entry (up to a relative float
          tolerance, since post-split radii accumulate rounded
          triangle-inequality sums).  Note the balls themselves need not
          nest — a split only re-extends the immediate grandparent — so
          object containment is the invariant, exactly what the pruning
          predicates rely on;
        * ``dist_to_parent`` caches equal the recomputed metric value;
        * all leaves sit at the same depth;
        * the leaf entry count matches ``self.size``.

        Raises :class:`IndexError_` on the first violation.  Distance
        evaluations here call the metric directly so the accounting in
        ``distance_computations`` — a measured quantity in the paper's
        experiments — is not polluted by debugging sweeps.
        """

        def tol(radius: float) -> float:
            return 1e-9 * (1.0 + radius)

        seen = 0
        leaf_depths: set[int] = set()
        # Stack of (node, depth, ancestors) with ancestors a tuple of
        # (routing_obj, radius) from the root down.
        stack: list[tuple[_MNode, int, tuple]] = [(self.root, 0, ())]
        while stack:
            node, depth, ancestors = stack.pop()
            if len(node.entries) > self.capacity:
                raise IndexError_(
                    f"node with {len(node.entries)} entries exceeds "
                    f"capacity {self.capacity}"
                )
            if not node.entries and node is not self.root:
                raise IndexError_("empty non-root node survived deletion")
            if node.is_leaf:
                leaf_depths.add(depth)
            parent = ancestors[-1] if ancestors else None
            for entry in node.entries:
                if parent is not None:
                    dist = float(self.metric(entry.obj, parent[0]))
                    if abs(dist - entry.dist_to_parent) > tol(dist):
                        raise IndexError_(
                            f"stale dist_to_parent: cached "
                            f"{entry.dist_to_parent}, metric gives {dist}"
                        )
                if node.is_leaf:
                    seen += 1
                    for anc_obj, anc_radius in ancestors:
                        dist = float(self.metric(entry.obj, anc_obj))
                        if dist > anc_radius + tol(anc_radius):
                            raise IndexError_(
                                "leaf object escapes an ancestor's "
                                f"covering radius ({dist} > {anc_radius})"
                            )
                else:
                    stack.append(
                        (
                            entry.subtree,
                            depth + 1,
                            ancestors + ((entry.obj, entry.radius),),
                        )
                    )
        if len(leaf_depths) > 1:
            raise IndexError_(f"leaves at unequal depths {sorted(leaf_depths)}")
        if seen != self.size:
            raise IndexError_(f"tree holds {seen} objects, expected {self.size}")

    def validate(self) -> None:
        """Backwards-compatible alias for :meth:`check_invariants`."""
        self.check_invariants()

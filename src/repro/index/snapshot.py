"""On-disk index snapshots: persist a built tree, reload it cold.

A restarted process should answer its first query without paying an
O(n log n) rebuild, so every access method can be serialized to a single
``.npz`` snapshot and reconstructed node-for-node:

* **R*-tree / X-tree** — nodes in BFS order with flat entry tables
  (lower/upper corners plus payload: an oid for leaf entries, the BFS
  index of the child for directory entries).  Supernode capacities and
  the X-tree's counters survive the roundtrip, page spans included.
* **M-tree** — nodes in BFS order with per-entry routing data
  (``dist_to_parent``, covering radius) and the stored objects packed
  into one ragged float table.  The metric itself is code, not data, so
  :func:`load_index` requires it as an argument for M-tree snapshots.

The file format borrows the guarantees of the format-v2 object store
(:mod:`repro.io.database`): every array is CRC32-checksummed at save
time and verified at load time, and writes go to a process-unique
temporary file that is ``os.replace``\\ d over the target, so a crash
mid-save can never destroy the previous snapshot.

:func:`structure_digest` hashes the exact serialized form of a live
tree; two trees digest equal iff a snapshot of one reconstructs the
other.  Tests use it to prove a reloaded index did *zero* rebuild work —
the loaded structure is byte-identical to the saved one, not merely
equivalent.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import zipfile
import zlib
from pathlib import Path

import numpy as np

from repro.exceptions import SnapshotIntegrityError, StorageError
from repro.index.mtree import MTree, _MEntry, _MNode
from repro.index.pages import PageManager
from repro.index.rstar import RStarTree, _Node
from repro.index.scan import SequentialScan
from repro.index.xtree import XTree
from repro.testing.faults import crash_point

SNAPSHOT_VERSION = 1

_KINDS = {"rstar": RStarTree, "xtree": XTree, "mtree": MTree, "scan": SequentialScan}


def _kind_of(tree) -> str:
    # XTree subclasses RStarTree, so test the subclass first.
    if isinstance(tree, XTree):
        return "xtree"
    if isinstance(tree, RStarTree):
        return "rstar"
    if isinstance(tree, MTree):
        return "mtree"
    if isinstance(tree, SequentialScan):
        return "scan"
    raise StorageError(f"cannot snapshot a {type(tree).__name__}")


# -- serialization ---------------------------------------------------------


def _bfs_nodes(root) -> list:
    nodes, frontier = [], [root]
    while frontier:
        node = frontier.pop(0)
        nodes.append(node)
        if isinstance(node, _Node):
            frontier.extend(node.children)
        elif not node.is_leaf:
            frontier.extend(entry.subtree for entry in node.entries)
    return nodes


def _serialize_rtree(tree: RStarTree) -> tuple[dict, dict[str, np.ndarray]]:
    nodes = _bfs_nodes(tree.root)
    index_of = {id(node): i for i, node in enumerate(nodes)}
    levels = np.array([node.level for node in nodes], dtype=np.int64)
    capacities = np.array([node.capacity for node in nodes], dtype=np.int64)
    counts = [node.size for node in nodes]
    offsets = np.zeros(len(nodes) + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    total = int(offsets[-1])
    lowers = np.empty((total, tree.dimension), dtype=np.float64)
    uppers = np.empty((total, tree.dimension), dtype=np.float64)
    payloads = np.empty(total, dtype=np.int64)
    for i, node in enumerate(nodes):
        start, stop = offsets[i], offsets[i + 1]
        lowers[start:stop] = node.lowers
        uppers[start:stop] = node.uppers
        if node.is_leaf:
            payloads[start:stop] = node.oids
        else:
            payloads[start:stop] = [index_of[id(c)] for c in node.children]
    meta = {
        "dimension": tree.dimension,
        "capacity": tree.capacity,
        "reinsert_count": tree.reinsert_count,
        "size": tree.size,
    }
    if isinstance(tree, XTree):
        meta.update(
            max_overlap=tree.max_overlap,
            max_supernode_factor=tree.max_supernode_factor,
            supernodes_created=tree.supernodes_created,
            supernodes_dissolved=tree.supernodes_dissolved,
        )
    arrays = {
        "node_level": levels,
        "node_capacity": capacities,
        "entry_offsets": offsets,
        "entry_lowers": lowers,
        "entry_uppers": uppers,
        "entry_payloads": payloads,
    }
    return meta, arrays


def _serialize_mtree(tree: MTree) -> tuple[dict, dict[str, np.ndarray]]:
    nodes = _bfs_nodes(tree.root)
    index_of = {id(node): i for i, node in enumerate(nodes)}
    is_leaf = np.array([node.is_leaf for node in nodes], dtype=np.int8)
    counts = [len(node.entries) for node in nodes]
    offsets = np.zeros(len(nodes) + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    entries = [entry for node in nodes for entry in node.entries]
    dist_to_parent = np.array([e.dist_to_parent for e in entries], dtype=np.float64)
    radii = np.array([e.radius for e in entries], dtype=np.float64)
    oids = np.array(
        [-1 if e.oid is None else e.oid for e in entries], dtype=np.int64
    )
    subtrees = np.array(
        [-1 if e.subtree is None else index_of[id(e.subtree)] for e in entries],
        dtype=np.int64,
    )
    objs = []
    ndims = np.empty(len(entries), dtype=np.int8)
    for i, entry in enumerate(entries):
        obj = np.asarray(entry.obj, dtype=np.float64)
        if obj.ndim not in (1, 2):
            raise StorageError(
                "M-tree snapshots support 1-d and 2-d ndarray objects, "
                f"got ndim={obj.ndim}"
            )
        ndims[i] = obj.ndim
        objs.append(obj if obj.ndim == 2 else obj[np.newaxis])
    widths = {obj.shape[1] for obj in objs}
    if len(widths) > 1:
        raise StorageError(f"inconsistent object dimensionality: {sorted(widths)}")
    row_counts = [obj.shape[0] for obj in objs]
    row_offsets = np.zeros(len(entries) + 1, dtype=np.int64)
    np.cumsum(row_counts, out=row_offsets[1:])
    width = widths.pop() if widths else 0
    data = (
        np.concatenate(objs, axis=0)
        if objs
        else np.empty((0, width), dtype=np.float64)
    )
    meta = {"capacity": tree.capacity, "size": tree.size}
    arrays = {
        "node_is_leaf": is_leaf,
        "entry_offsets": offsets,
        "entry_dist_to_parent": dist_to_parent,
        "entry_radius": radii,
        "entry_oid": oids,
        "entry_subtree": subtrees,
        "obj_ndim": ndims,
        "obj_row_offsets": row_offsets,
        "obj_data": data,
    }
    return meta, arrays


def _serialize_scan(tree: SequentialScan) -> tuple[dict, dict[str, np.ndarray]]:
    points = (
        np.vstack(tree._points)
        if tree._points
        else np.empty((0, tree.dimension), dtype=np.float64)
    )
    meta = {"dimension": tree.dimension, "size": tree.size}
    arrays = {
        "points": np.ascontiguousarray(points, dtype=np.float64),
        "oids": np.asarray(tree._oids, dtype=np.int64),
    }
    return meta, arrays


def _serialize(tree) -> tuple[dict, dict[str, np.ndarray]]:
    if hasattr(tree, "serialized"):  # an array core already *is* the flat form
        meta, arrays = tree.serialized()
        return dict(meta), dict(arrays)
    kind = _kind_of(tree)
    if kind == "mtree":
        meta, arrays = _serialize_mtree(tree)
    elif kind == "scan":
        meta, arrays = _serialize_scan(tree)
    else:
        meta, arrays = _serialize_rtree(tree)
    meta["format"] = "repro-index-snapshot"
    meta["version"] = SNAPSHOT_VERSION
    meta["kind"] = kind
    return meta, arrays


def _checksums(arrays: dict[str, np.ndarray]) -> dict[str, int]:
    return {
        name: zlib.crc32(np.ascontiguousarray(arr).tobytes())
        for name, arr in sorted(arrays.items())
    }


def structure_digest(tree) -> str:
    """A stable hex digest of the tree's exact serialized structure.

    Two trees share a digest iff their snapshots are interchangeable —
    same nodes, same entry order, same boxes/radii/capacities.  Queries
    never change the digest; any mutation does (modulo hash collisions).
    """
    meta, arrays = _serialize(tree)
    hasher = hashlib.sha256()
    hasher.update(json.dumps(meta, sort_keys=True).encode("utf-8"))
    for name, arr in sorted(arrays.items()):
        hasher.update(name.encode("utf-8"))
        hasher.update(str(arr.shape).encode("utf-8"))
        hasher.update(np.ascontiguousarray(arr).tobytes())
    return hasher.hexdigest()


# -- save / load -----------------------------------------------------------


def write_archive(path: str | Path, meta: dict, arrays: dict[str, np.ndarray]) -> Path:
    """Write a CRC-checked ``.npz`` archive atomically (tmp + replace).

    *meta* must carry a ``format`` marker; per-array CRC32 checksums are
    added here and verified by :func:`read_archive`.  Shared by index
    snapshots and the mutable database's own snapshot file.
    """
    path = Path(path)
    meta = dict(meta)
    meta["checksums"] = _checksums(arrays)
    payload = dict(arrays)
    payload["meta"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    try:
        with open(tmp, "wb") as handle:
            np.savez_compressed(handle, **payload)
            handle.flush()
            os.fsync(handle.fileno())
        # Crash seam: the archive bytes exist only in the temporary
        # file; dying here must leave the published snapshot untouched.
        crash_point("mid-snapshot-write")
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink(missing_ok=True)
    return path


def describe_member(name: str) -> str:
    """A human classification of an archive member, for actionable
    integrity errors: which *part* of the database the bad bytes hold.
    """
    if name == "meta":
        return "archive metadata block"
    if name.startswith("index__"):
        inner = name[len("index__") :]
        if inner.startswith("node_"):
            return f"index node-table array {inner!r}"
        if inner.startswith("entry_"):
            return f"index entry-table array {inner!r}"
        if inner.startswith("obj_"):
            return f"index stored-object array {inner!r}"
        return f"index structure array {inner!r}"
    if name.startswith(("node_", "entry_", "obj_")) or name in ("points", "oids"):
        return f"index snapshot array {name!r}"
    if name.startswith("set_") or name == "centroids":
        return f"object-store column {name!r}"
    return f"archive member {name!r}"


def read_archive(
    path: str | Path, expected_format: str
) -> tuple[dict, dict[str, np.ndarray]]:
    """Read and integrity-check an archive written by :func:`write_archive`.

    Integrity failures raise :class:`SnapshotIntegrityError` naming the
    offending member and what it holds (``index node-table array
    'entry_lowers'``, ``object-store column 'set_data'``, ...) so the
    recovery ladder's logs say *what* is damaged, not just that
    something is.
    """
    path = Path(path)
    member_errors = (
        OSError,
        ValueError,
        KeyError,
        zlib.error,
        zipfile.BadZipFile,
        io.UnsupportedOperation,
    )
    try:
        with np.load(path, allow_pickle=False) as archive:
            names = list(archive.files)
            payload = {}
            for name in names:
                try:
                    payload[name] = archive[name]
                except member_errors as exc:
                    raise SnapshotIntegrityError(
                        path, name, f"unreadable: {exc}", kind=describe_member(name)
                    ) from exc
    except SnapshotIntegrityError:
        raise
    except member_errors as exc:
        raise StorageError(f"cannot read snapshot {path}: {exc}") from exc
    if "meta" not in payload:
        raise StorageError(f"{path} is not a snapshot archive (no meta block)")
    try:
        meta = json.loads(bytes(payload.pop("meta")).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotIntegrityError(
            path, "meta", str(exc), kind=describe_member("meta")
        ) from exc
    if meta.get("format") != expected_format:
        raise StorageError(
            f"{path} holds {meta.get('format')!r}, expected {expected_format!r}"
        )
    stored = meta.get("checksums", {})
    actual = _checksums(payload)
    for name in sorted(set(stored) | set(actual)):
        if stored.get(name) != actual.get(name):
            raise SnapshotIntegrityError(
                path,
                name,
                f"checksum mismatch (stored {stored.get(name)!r}, "
                f"computed {actual.get(name)!r})",
                kind=describe_member(name),
            )
    return meta, payload


def save_index(tree, path: str | Path, *, dense: bool = False) -> Path:
    """Atomically write a CRC-checked snapshot of *tree* to *path*.

    ``dense=True`` writes the flat mmap-able container of
    :mod:`repro.index.dense` instead of an ``.npz`` archive;
    :func:`load_index` then returns a zero-copy array core whose node
    tables are views over the file.
    """
    meta, arrays = _serialize(tree)
    if dense:
        from repro.index.dense import write_dense_archive

        return write_dense_archive(path, meta, arrays)
    return write_archive(path, meta, arrays)


def _load_arrays(path: Path) -> tuple[dict, dict[str, np.ndarray]]:
    meta, payload = read_archive(path, "repro-index-snapshot")
    if meta.get("version") != SNAPSHOT_VERSION:
        raise StorageError(
            f"{path}: unsupported snapshot version {meta.get('version')!r}"
        )
    return meta, payload


def _build_rtree(
    meta: dict, arrays: dict[str, np.ndarray], page_manager: PageManager | None
) -> RStarTree:
    if meta["kind"] == "xtree":
        tree = XTree(
            dimension=meta["dimension"],
            page_manager=page_manager,
            capacity=meta["capacity"],
            reinsert_fraction=0.0,
            max_overlap=meta["max_overlap"],
            max_supernode_factor=meta["max_supernode_factor"],
        )
        tree.supernodes_created = meta["supernodes_created"]
        tree.supernodes_dissolved = meta["supernodes_dissolved"]
    else:
        tree = RStarTree(
            dimension=meta["dimension"],
            page_manager=page_manager,
            capacity=meta["capacity"],
            reinsert_fraction=0.0,
        )
    tree.reinsert_count = meta["reinsert_count"]
    levels = arrays["node_level"]
    capacities = arrays["node_capacity"]
    offsets = arrays["entry_offsets"]
    lowers = arrays["entry_lowers"]
    uppers = arrays["entry_uppers"]
    payloads = arrays["entry_payloads"]
    base_page = tree.pages.page_size
    nodes: list[_Node] = []
    for i in range(len(levels)):
        capacity = int(capacities[i])
        span = -(-capacity // meta["capacity"])
        page_id = tree.pages.allocate(span * base_page)
        nodes.append(
            _Node(int(levels[i]), meta["dimension"], capacity, page_id)
        )
    count = len(nodes)
    for i, node in enumerate(nodes):
        start, stop = int(offsets[i]), int(offsets[i + 1])
        if node.is_leaf:
            entry_payloads: list = [int(oid) for oid in payloads[start:stop]]
        else:
            entry_payloads = []
            for child_index in payloads[start:stop]:
                if not 0 <= child_index < count:
                    raise StorageError(
                        f"snapshot references node {child_index} of {count}"
                    )
                entry_payloads.append(nodes[int(child_index)])
        node.set_entries(
            lowers[start:stop].copy(), uppers[start:stop].copy(), entry_payloads
        )
    if not nodes:
        raise StorageError("snapshot holds no nodes")
    tree.root = nodes[0]
    tree.root.parent = None
    tree.size = meta["size"]
    return tree


def _build_mtree(
    meta: dict,
    arrays: dict[str, np.ndarray],
    metric,
    page_manager: PageManager | None,
) -> MTree:
    if metric is None:
        raise StorageError(
            "an M-tree snapshot stores data, not code: pass the metric "
            "to load_index(path, metric=...)"
        )
    tree = MTree(metric, capacity=meta["capacity"], page_manager=page_manager)
    is_leaf = arrays["node_is_leaf"]
    offsets = arrays["entry_offsets"]
    row_offsets = arrays["obj_row_offsets"]
    data = arrays["obj_data"]
    ndims = arrays["obj_ndim"]
    nodes = [
        _MNode(bool(is_leaf[i]), tree.pages.allocate())
        for i in range(len(is_leaf))
    ]
    count = len(nodes)
    for i, node in enumerate(nodes):
        for e in range(int(offsets[i]), int(offsets[i + 1])):
            rows = data[int(row_offsets[e]) : int(row_offsets[e + 1])].copy()
            obj = rows[0] if ndims[e] == 1 else rows
            oid = int(arrays["entry_oid"][e])
            subtree_index = int(arrays["entry_subtree"][e])
            if subtree_index >= count:
                raise StorageError(
                    f"snapshot references node {subtree_index} of {count}"
                )
            node.entries.append(
                _MEntry(
                    obj,
                    oid=None if oid < 0 else oid,
                    dist_to_parent=float(arrays["entry_dist_to_parent"][e]),
                    radius=float(arrays["entry_radius"][e]),
                    subtree=None if subtree_index < 0 else nodes[subtree_index],
                )
            )
    if not nodes:
        raise StorageError("snapshot holds no nodes")
    tree.root = nodes[0]
    tree.size = meta["size"]
    return tree


def load_index(
    path: str | Path,
    *,
    metric=None,
    page_manager: PageManager | None = None,
):
    """Reconstruct the index stored at *path* without any rebuild work.

    An ``.npz`` snapshot reconstructs the pointer tree exactly as saved
    (``structure_digest`` of the result equals the saved tree's), with
    fresh page accounting and — for M-trees — the caller-supplied
    *metric*.  A dense snapshot (:func:`save_index` with ``dense=True``)
    instead returns the matching **array core** whose node tables are
    zero-copy mmap views over the file: the process answers its first
    query without materializing a single node object, and the core's
    :meth:`inflate` produces the pointer tree on demand.
    """
    path = Path(path)
    from repro.index.dense import is_dense_archive

    if is_dense_archive(path):
        from repro.index.arraycore import core_from_serialized
        from repro.index.dense import read_dense_archive

        meta, arrays = read_dense_archive(path, "repro-index-snapshot")
        if meta.get("version") != SNAPSHOT_VERSION:
            raise StorageError(
                f"{path}: unsupported snapshot version {meta.get('version')!r}"
            )
        return core_from_serialized(
            meta, arrays, metric=metric, page_manager=page_manager
        )
    meta, arrays = _load_arrays(path)
    return reconstruct_index(
        meta, arrays, metric=metric, page_manager=page_manager
    )


def serialize_index(tree) -> tuple[dict, dict[str, np.ndarray]]:
    """The (meta, arrays) snapshot form of *tree* without writing a file.

    Embedders (the mutable database) stow these in their own archive
    and rebuild with :func:`reconstruct_index`; they are responsible
    for integrity checking the arrays themselves.
    """
    return _serialize(tree)


def reconstruct_index(
    meta: dict,
    arrays: dict[str, np.ndarray],
    *,
    metric=None,
    page_manager: PageManager | None = None,
):
    """Rebuild a tree from its :func:`serialize_index` form."""
    if meta.get("kind") not in _KINDS:
        raise StorageError(f"unknown index kind {meta.get('kind')!r}")
    try:
        if meta["kind"] == "mtree":
            return _build_mtree(meta, arrays, metric, page_manager)
        if meta["kind"] == "scan":
            scan = SequentialScan(meta["dimension"], page_manager)
            scan._points = [row.copy() for row in arrays["points"]]
            scan._oids = [int(oid) for oid in arrays["oids"]]
            return scan
        return _build_rtree(meta, arrays, page_manager)
    except KeyError as exc:
        raise StorageError(f"snapshot is missing field {exc}") from exc

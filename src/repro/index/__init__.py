"""Index substrate: spatial and metric access methods with I/O accounting.

The paper accelerates similarity queries with an X-tree over extended
centroids and compares against a sequential scan; runtimes are reported
under an explicit I/O cost model (8 ms per page access, 200 ns per byte
read, Section 5.4).  This subpackage provides all of those pieces:

* :mod:`repro.index.pages` — the page manager and cost model,
* :mod:`repro.index.rstar` — an R*-tree,
* :mod:`repro.index.xtree` — the X-tree (R*-tree with supernodes),
* :mod:`repro.index.mtree` — an M-tree for metric data such as vector
  sets under the minimal matching distance,
* :mod:`repro.index.scan` — sequential-scan baselines with the same
  query interface and accounting.
"""

from repro.index.bulkload import bulk_load
from repro.index.mtree import MTree
from repro.index.pages import IOCost, PageManager
from repro.index.rstar import RStarTree
from repro.index.scan import SequentialScan
from repro.index.snapshot import load_index, save_index, structure_digest
from repro.index.xtree import XTree

__all__ = [
    "PageManager",
    "IOCost",
    "RStarTree",
    "XTree",
    "MTree",
    "SequentialScan",
    "bulk_load",
    "save_index",
    "load_index",
    "structure_digest",
]

"""Array-native index cores: struct-of-arrays query engines.

The pointer trees (:mod:`repro.index.rstar`, :mod:`repro.index.xtree`,
:mod:`repro.index.mtree`, :mod:`repro.index.scan`) are the mutable
masters, but walking their Python object graphs node-by-node dominates
query time once the matching kernels are batched.  Each core here holds
the *same* flat layout the snapshot module serializes — BFS node tables
with entry offsets, MBR lower/upper blocks, M-tree radii and
parent-distance columns, leaf oid blocks — and runs the query hot path
over contiguous numpy arrays:

* lower-bound distances (MBR mindist, covering-ball slack) are computed
  for a whole node's entry block in one vectorized call,
* k-nn uses a flat best-first loop that buffers leaf objects in arrays
  and emits them in canonical ``(distance, oid)`` order in chunks,
* range search walks a frontier *array* of node ids per level.

The cores are read-only: any mutation goes to the pointer tree (or, for
a zero-copy loaded core, through :meth:`inflate`), and the tree marks
its cached core stale.  Because a core is built from — and serializes
back to — the exact snapshot arrays, ``structure_digest`` of a core
equals the digest of the pointer tree it mirrors.

Equivalence guarantees (asserted by the differential tests):

* **Results** are literally equal to the pointer traversals: same oids,
  same ``(distance, oid)`` order, bit-identical distances (the cores
  reuse ``_mindist_many`` / the exact metric on the same float inputs).
* **Page accounting** is identical for the R*-/X-tree and scan cores at
  every consumption point of the incremental ranking, and identical for
  all M-tree traversals (the buffered best-first loop provably expands
  the same node set as the one-at-a-time heap).  M-tree
  ``distance_computations`` may exceed the pointer count slightly: the
  parent-distance pre-test is evaluated per node batch against the
  k-th distance *at node entry*, which can only prune less, never more.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Iterator

import numpy as np

from repro.exceptions import IndexError_
from repro.index.pages import PageManager
from repro.index.rstar import _mindist_many
from repro.obs import counter, histogram


def _ranges(starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(starts[i], ends[i])`` without a Python loop."""
    counts = ends - starts
    total = int(counts.sum())
    if not total:
        return np.empty(0, dtype=np.int64)
    cum = np.cumsum(counts) - counts
    return np.repeat(starts - cum, counts) + np.arange(total, dtype=np.int64)


class _ArrayCore:
    """Shared plumbing: serialized form, digests, page accounting."""

    kind: str

    def __init__(self, meta: dict, arrays: dict, page_manager: PageManager | None):
        meta = {k: v for k, v in meta.items() if k != "checksums"}
        self.meta = meta
        self.arrays = dict(arrays)
        self.pages = page_manager or PageManager()
        self.size = int(meta["size"])

    def serialized(self) -> tuple[dict, dict[str, np.ndarray]]:
        """The exact ``(meta, arrays)`` snapshot form this core runs on."""
        return self.meta, self.arrays

    def inflate(self, *, metric=None, page_manager: PageManager | None = None):
        """Materialize the pointer tree this core mirrors (for mutation)."""
        from repro.index.snapshot import reconstruct_index

        return reconstruct_index(
            self.meta, self.arrays, metric=metric, page_manager=page_manager
        )

    def _fail(self, message: str) -> None:
        raise IndexError_(f"{self.kind} array core: {message}")


class RTreeArrayCore(_ArrayCore):
    """Struct-of-arrays query core for R*-trees and X-trees.

    Runs on the BFS node tables of :func:`repro.index.snapshot.serialize_index`:
    ``node_level``/``node_capacity`` per node, ``entry_offsets`` (N+1
    cumulative sums) slicing the flat ``entry_lowers``/``entry_uppers``/
    ``entry_payloads`` blocks.  Payloads are oids in leaf nodes and BFS
    child indices in directory nodes; node 0 is the root.
    """

    def __init__(self, meta, arrays, page_manager=None):
        super().__init__(meta, arrays, page_manager)
        self.kind = meta["kind"]
        self.dimension = int(meta["dimension"])
        self.capacity = int(meta["capacity"])
        self._levels = np.ascontiguousarray(arrays["node_level"], dtype=np.int64)
        self._caps = np.ascontiguousarray(arrays["node_capacity"], dtype=np.int64)
        self._offsets = np.ascontiguousarray(arrays["entry_offsets"], dtype=np.int64)
        self._lowers = np.ascontiguousarray(arrays["entry_lowers"], dtype=np.float64)
        self._uppers = np.ascontiguousarray(arrays["entry_uppers"], dtype=np.float64)
        self._payloads = np.ascontiguousarray(arrays["entry_payloads"], dtype=np.int64)
        # One logical page per base capacity's worth of entries, exactly
        # how the pointer trees size supernode pages.
        self._spans = np.maximum(1, -(-self._caps // self.capacity))
        self._node_bytes = self._spans * self.pages.page_size
        # Per-entry flag: does this entry's owning node sit at leaf level
        # (payload is an object id) or above (payload is a child node)?
        self._entry_is_obj = np.repeat(self._levels == 0, np.diff(self._offsets))

    # -- queries ---------------------------------------------------------

    def ranking_chunks(
        self, point: np.ndarray
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(oids, distances)`` array chunks in ascending canonical
        ``(distance, oid)`` order.

        A buffered best-first traversal: the node priority array is a
        heap of ``(mindist, node_id)``; leaf entry blocks are appended to
        flat object buffers; a chunk is emitted once every unexpanded
        node lies strictly farther than the buffered objects (so a tied
        node is always expanded before a tied object is yielded —
        canonical order is preserved).  Expansions happen exactly when
        the one-at-a-time heap would pop the node, so page accounting
        matches the pointer traversal at every consumption point.
        """
        point = np.asarray(point, dtype=np.float64)
        offsets, levels = self._offsets, self._levels
        lowers, uppers, payloads = self._lowers, self._uppers, self._payloads
        spans, node_bytes = self._spans, self._node_bytes
        pages = self.pages
        nodes_batched = counter("index.nodes_batched")
        frontier_size = histogram("index.frontier_size")
        heap: list[tuple[float, int]] = [(0.0, 0)]
        parts_d: list[np.ndarray] = []
        parts_o: list[np.ndarray] = []
        buf_min = np.inf
        while heap or parts_d:
            while heap and (not parts_d or heap[0][0] <= buf_min):
                dist, nid = heapq.heappop(heap)
                pages.read_spans(int(spans[nid]), int(node_bytes[nid]))
                nodes_batched.inc()
                frontier_size.observe(len(heap) + 1)
                start, stop = int(offsets[nid]), int(offsets[nid + 1])
                if start == stop:
                    continue
                dists = _mindist_many(point, lowers[start:stop], uppers[start:stop])
                if levels[nid] == 0:
                    parts_d.append(dists)
                    parts_o.append(payloads[start:stop])
                    near = float(dists.min())
                    if near < buf_min:
                        buf_min = near
                else:
                    block = payloads[start:stop]
                    for j in range(stop - start):
                        heapq.heappush(heap, (float(dists[j]), int(block[j])))
            if not parts_d:
                break
            buffered_d = parts_d[0] if len(parts_d) == 1 else np.concatenate(parts_d)
            buffered_o = parts_o[0] if len(parts_o) == 1 else np.concatenate(parts_o)
            if heap:
                ready = buffered_d < heap[0][0]
                emit_d, emit_o = buffered_d[ready], buffered_o[ready]
                held = ~ready
                parts_d = [buffered_d[held]] if held.any() else []
                parts_o = [buffered_o[held]] if held.any() else []
                buf_min = float(parts_d[0].min()) if parts_d else np.inf
            else:
                emit_d, emit_o = buffered_d, buffered_o
                parts_d, parts_o = [], []
                buf_min = np.inf
            order = np.lexsort((emit_o, emit_d))
            yield emit_o[order], emit_d[order]

    def incremental_nearest(self, point: np.ndarray) -> Iterator[tuple[int, float]]:
        """``(oid, distance)`` pairs in ascending ``(distance, oid)`` order."""
        for oids, dists in self.ranking_chunks(point):
            for oid, dist in zip(oids.tolist(), dists.tolist()):
                yield oid, dist

    def knn(self, point: np.ndarray, k: int) -> list[tuple[int, float]]:
        if k < 1:
            raise IndexError_("k must be >= 1")
        result: list[tuple[int, float]] = []
        for oids, dists in self.ranking_chunks(point):
            take = min(k - len(result), len(oids))
            result.extend(zip(oids[:take].tolist(), dists[:take].tolist()))
            if len(result) == k:
                break
        return result

    def _leaf_table(self):
        """Lazy leaf-grouped view of the entry tables for batched knn.

        Snapshots store nodes in BFS order, so the leaf level is the
        tail of the node array and leaf entries are one contiguous slice
        of the entry tables — the returned columns are then views, not
        copies.  (If the layout ever stops being contiguous we fall back
        to a one-time gather.)  Per-leaf bounding boxes come from exact
        elementwise min/max over each leaf's entries, so every computed
        box bound provably never exceeds the computed distance of any
        entry inside it — the monotonicity that makes wave pruning safe.
        """
        cached = getattr(self, "_leaf_table_cache", None)
        if cached is not None:
            return cached
        leaf_ids = np.nonzero(self._levels == 0)[0]
        starts, ends = self._offsets[leaf_ids], self._offsets[leaf_ids + 1]
        nonempty = ends > starts
        leaf_ids, starts, ends = leaf_ids[nonempty], starts[nonempty], ends[nonempty]
        counts = ends - starts
        if leaf_ids.size and bool(np.all(starts[1:] == ends[:-1])):
            lo = self._lowers[starts[0] : ends[-1]]
            hi = self._uppers[starts[0] : ends[-1]]
            oid = self._payloads[starts[0] : ends[-1]]
        else:
            idx = _ranges(starts, ends)
            lo, hi, oid = self._lowers[idx], self._uppers[idx], self._payloads[idx]
        # lo and -hi side by side, so one gather + one subtract yields
        # both halves of max(lo - q, q - hi) per wave.
        box = np.concatenate([lo, -hi], axis=1)
        bounds = np.concatenate([[0], np.cumsum(counts)])
        box_lo = np.minimum.reduceat(lo, bounds[:-1]) if leaf_ids.size else lo[:0]
        box_hi = np.maximum.reduceat(hi, bounds[:-1]) if leaf_ids.size else hi[:0]
        # Point-shaped leaf entries (the centroid trees) get a squared-
        # norm column for the BLAS-style candidate pretest in knn_many.
        points_only = bool(np.array_equal(lo, hi))
        psq = np.einsum("ij,ij->i", lo, lo) if points_only else None
        cached = (leaf_ids, bounds, box, oid, box_lo, box_hi, lo, psq)
        self._leaf_table_cache = cached
        return cached

    def knn_many(self, points: np.ndarray, k: int) -> list[list[tuple[int, float]]]:
        """Batched k-nn for many query points in one shared sweep.

        Instead of running one best-first descent per query, the batch
        reads the directory once: a single broadcast computes the
        mindist of every query to every leaf box, each query sorts its
        leaves by that bound, and leaves are then expanded in waves —
        the first wave takes just enough nearest leaves to hold k
        candidates, later waves take the (contiguous, because sorted)
        run of leaves whose bound still beats the query's k-th candidate
        distance.  All queries' wave work is one gather and one
        vectorized distance pass, so the per-node Python overhead of the
        sequential walk is amortized across the whole batch.

        Results are exactly :meth:`knn` of each point: leaf boxes are
        exact elementwise min/max of their entries (so a computed box
        bound never exceeds any computed entry distance), eligibility
        over-approximates ``bound <= kth`` (squared-space comparison
        with a conservative slack, so ties and near-ties always
        expand), and pool admission recomputes exact distances that
        rank by the canonical ``(distance, oid)`` lexsort.  Page accounting is
        *honest but not identical* to the sequential best-first walk:
        the whole directory is charged once per batch and each (query,
        leaf) expansion charges that leaf's span, which can differ from
        the strict walk's count in either direction — use
        :meth:`knn`/:meth:`ranking_chunks` when exact pointer-parity of
        the counters matters.
        """
        points = np.ascontiguousarray(np.atleast_2d(points), dtype=np.float64)
        if k < 1:
            raise IndexError_("k must be >= 1")
        if points.ndim != 2 or points.shape[1] != self.dimension:
            self._fail(f"expected (q, {self.dimension}) query points")
        n_queries = len(points)
        if not n_queries:
            return []
        nodes_batched = counter("index.nodes_batched")
        frontier_size = histogram("index.frontier_size")
        (
            leaf_ids,
            ent_bounds,
            ent_box,
            ent_oid,
            box_lo,
            box_hi,
            ent_pts,
            ent_psq,
        ) = self._leaf_table()
        n_leaves = leaf_ids.size
        results: list[list[tuple[int, float]]] = [[] for _ in range(n_queries)]
        dir_ids = np.nonzero(self._levels > 0)[0]
        if dir_ids.size:
            self.pages.read_spans(
                int(self._spans[dir_ids].sum()), int(self._node_bytes[dir_ids].sum())
            )
            nodes_batched.inc(dir_ids.size)
        if not n_leaves:
            return results
        # (q, L) lower bounds: *squared* mindist of every query to every
        # leaf box, accumulated one dimension at a time (2-d slabs beat
        # one (q, L, dim) tensor on cache locality, and the running sum
        # adds terms in the same order as np.sum over a length-dim axis,
        # so the values are bit-identical).  Bounds stay squared — the
        # sqrt is pure cost, since eligibility against kth happens in
        # squared space with a conservative slack (see the wave loop).
        leaf_bound = np.zeros((n_queries, n_leaves))
        for j in range(self.dimension):
            d = np.maximum(
                box_lo[:, j][None, :] - points[:, j][:, None],
                points[:, j][:, None] - box_hi[:, j][None, :],
            )
            np.maximum(d, 0.0, out=d)
            leaf_bound += d * d
        order = np.argsort(leaf_bound, axis=1)
        sorted_bound = np.take_along_axis(leaf_bound, order, axis=1)
        # First wave: enough nearest leaves to hold >= k entries (so kth
        # becomes finite immediately).  Non-root leaves hold at least
        # min_fill entries (check_invariants), so a fixed prefix works;
        # if the whole tree holds fewer than k, later waves expand the
        # rest because kth stays infinite.
        min_fill = max(1, int(0.4 * self.capacity))
        first_wave = min(n_leaves, -(-k // min_fill))
        ptr = np.full(n_queries, first_wave, dtype=np.int64)
        kth = np.full(n_queries, np.inf)
        # [q, -q] next to [lo, -hi]: one subtract per wave yields both
        # halves of max(lo - q, q - hi); (-hi) - (-q) rounds identically
        # to q - hi, keeping leaf distances bit-compatible with
        # _mindist_many.
        qcat = np.concatenate([points, -points], axis=1)
        qsq = np.einsum("ij,ij->i", points, points)
        cand_q = np.empty(0, dtype=np.int64)
        cand_d = np.empty(0, dtype=np.float64)
        cand_o = np.empty(0, dtype=np.int64)
        wave_lo = np.zeros(n_queries, dtype=np.int64)
        wave_hi = ptr
        dim = self.dimension

        def absorb(pair_q, pair_d, pair_o):
            # Fold surviving candidates into the per-query pools, then
            # refresh every touched query's k-th distance.  The k-th
            # *distance value* is tie-free of the oid key, so waves rank
            # the pool on (query, distance) only; the full
            # (distance, oid) lexsort happens once, at final assembly.
            nonlocal cand_q, cand_d, cand_o
            cand_q = np.concatenate([cand_q, pair_q])
            cand_d = np.concatenate([cand_d, pair_d])
            cand_o = np.concatenate([cand_o, pair_o])
            if not cand_q.size:
                return
            rank = np.lexsort((cand_d, cand_q))
            cand_q, cand_d = cand_q[rank], cand_d[rank]
            cand_o = cand_o[rank]
            # cand_q is now sorted: first occurrences come from a diff
            # flag, which is cheaper than np.unique's internal re-sort.
            first = np.flatnonzero(
                np.concatenate(([True], cand_q[1:] != cand_q[:-1]))
            )
            per_query = np.diff(np.append(first, cand_q.size))
            full = per_query >= k
            kth[cand_q[first[full]]] = cand_d[first[full] + k - 1]
            compact = cand_d <= kth[cand_q]
            cand_q, cand_d = cand_q[compact], cand_d[compact]
            cand_o = cand_o[compact]

        def expand(row_q, row_leaf):
            # One gather + one vectorized distance pass over every
            # (query, leaf-entry) pair of the given expansion rows.
            starts, ends = ent_bounds[row_leaf], ent_bounds[row_leaf + 1]
            idx = _ranges(starts, ends)
            pair_q = np.repeat(row_q, ends - starts)
            if ent_psq is not None:
                # Point entries: select candidates with the fused
                # ||q||^2 + ||p||^2 - 2 q.p expansion, which is cheap
                # but not bit-exact, using a slack hundreds of times
                # wider than its worst-case rounding error so no true
                # candidate is rejected; then recompute the exact direct
                # formula only for the admitted few.
                prows = ent_pts[idx]
                qrows = points[pair_q]
                scale = qsq[pair_q] + ent_psq[idx]
                approx = scale - 2.0 * np.einsum("ij,ij->i", prows, qrows)
                kth_sq = kth * kth
                admit = approx <= kth_sq[pair_q] + 1e-12 * (
                    kth_sq[pair_q] + scale
                )
                pair_q = pair_q[admit]
                delta = prows[admit] - qrows[admit]
                np.multiply(delta, delta, out=delta)
                pair_d = np.sqrt(np.sum(delta, axis=1))
                pair_o = ent_oid[idx[admit]]
                exact = pair_d <= kth[pair_q]
                absorb(pair_q[exact], pair_d[exact], pair_o[exact])
            else:
                # max(lo-q, q-hi, 0) equals max(lo-q, 0) + max(q-hi, 0)
                # exactly (at most one operand is positive since
                # lo <= hi), so leaf distances stay bit-compatible with
                # _mindist_many.
                d2 = ent_box[idx] - qcat[pair_q]
                d = np.maximum(d2[:, :dim], d2[:, dim:])
                np.maximum(d, 0.0, out=d)
                np.multiply(d, d, out=d)
                pair_d = np.sqrt(np.sum(d, axis=1))
                admit = pair_d <= kth[pair_q]
                absorb(pair_q[admit], pair_d[admit], ent_oid[idx[admit]])

        while True:
            wave_counts = wave_hi - wave_lo
            active = np.nonzero(wave_counts > 0)[0]
            if not active.size:
                break
            row_q = np.repeat(active, wave_counts[active])
            row_rank = _ranges(wave_lo[active], wave_hi[active])
            row_leaf = order[row_q, row_rank]
            self.pages.read_spans(
                int(self._spans[leaf_ids[row_leaf]].sum()),
                int(self._node_bytes[leaf_ids[row_leaf]].sum()),
            )
            nodes_batched.inc(row_leaf.size)
            frontier_size.observe(row_leaf.size)
            # Large waves split in two: the per-query nearest few leaves
            # tighten kth first, so the bulk of the wave's entries face a
            # tighter admission bar.  Same expansions either way — kth
            # only shrinks, and eligibility was fixed when the wave was
            # sized — but far fewer candidates survive into the pool.
            head = wave_lo[row_q] + 4
            if row_q.size > 6 * active.size and bool(
                (near := row_rank < head).any() and not near.all()
            ):
                expand(row_q[near], row_leaf[near])
                expand(row_q[~near], row_leaf[~near])
            else:
                expand(row_q, row_leaf)
            # Next wave: the still-unexpanded sorted run whose bound
            # beats (or ties) each query's current kth.  The run is
            # capped at a doubling of what the query already expanded,
            # so a loose early kth (e.g. an outlier query) re-tightens
            # every O(log) leaves instead of flooding one huge wave.
            # Eligibility compares squared bounds against kth^2 plus a
            # relative slack hundreds of times wider than the worst-case
            # rounding drift between sqrt-space (where kth lives) and
            # squared space, so every leaf the sequential walk would
            # visit stays eligible; the handful of extra leaves the
            # slack lets through cost time, never correctness, because
            # pool admission recomputes exact distances.
            thr = kth * kth
            thr += 1e-12 * thr
            wave_lo = wave_hi
            wave_hi = np.empty(n_queries, dtype=np.int64)
            for qi in range(n_queries):
                wave_hi[qi] = np.searchsorted(
                    sorted_bound[qi], thr[qi], side="right"
                )
            np.minimum(wave_hi, wave_lo + np.maximum(32, wave_lo), out=wave_hi)
            np.maximum(wave_hi, wave_lo, out=wave_hi)
        if not cand_q.size:
            return results
        rank = np.lexsort((cand_o, cand_d, cand_q))
        cand_q, cand_d, cand_o = cand_q[rank], cand_d[rank], cand_o[rank]
        first = np.flatnonzero(
            np.concatenate(([True], cand_q[1:] != cand_q[:-1]))
        )
        have = cand_q[first]
        first = np.append(first, cand_q.size)
        for i, query_index in enumerate(have.tolist()):
            start = int(first[i])
            stop = min(int(first[i + 1]), start + k)
            results[query_index] = list(
                zip(cand_o[start:stop].tolist(), cand_d[start:stop].tolist())
            )
        return results

    def range_search(self, center: np.ndarray, radius: float) -> list[int]:
        """Object ids intersecting the hypersphere, ascending.

        The frontier is an array of node ids per tree level; each step
        charges the whole frontier as one batched read and filters every
        frontier entry with a single vectorized mindist call.  The
        visited node set — hence ``io.page_accesses`` — is identical to
        the pointer tree's depth-first walk.
        """
        center = np.asarray(center, dtype=np.float64)
        if radius < 0:
            raise IndexError_("radius must be non-negative")
        offsets, levels, payloads = self._offsets, self._levels, self._payloads
        nodes_batched = counter("index.nodes_batched")
        frontier_size = histogram("index.frontier_size")
        hits: list[np.ndarray] = []
        frontier = np.zeros(1, dtype=np.int64)
        while frontier.size:
            self.pages.read_spans(
                int(self._spans[frontier].sum()),
                int(self._node_bytes[frontier].sum()),
            )
            nodes_batched.inc(frontier.size)
            frontier_size.observe(frontier.size)
            starts, ends = offsets[frontier], offsets[frontier + 1]
            entry_idx = _ranges(starts, ends)
            if not entry_idx.size:
                break
            dists = _mindist_many(
                center, self._lowers[entry_idx], self._uppers[entry_idx]
            )
            within = dists <= radius
            near = entry_idx[within]
            owner_is_leaf = np.repeat(levels[frontier] == 0, ends - starts)
            near_is_leaf = owner_is_leaf[within]
            hit_oids = payloads[near[near_is_leaf]]
            if hit_oids.size:
                hits.append(hit_oids)
            frontier = payloads[near[~near_is_leaf]]
        if not hits:
            return []
        return np.sort(np.concatenate(hits)).tolist()

    # -- integrity -------------------------------------------------------

    def check_invariants(self) -> None:
        """Vectorized structural validation of the dense node tables.

        Covers what the pointer-tree ``check_invariants`` covers, plus
        the flat-layout-specific hazards a corrupted snapshot can carry:
        child-offset bounds, single-reference topology, offset
        monotonicity, and exact MBR containment.
        """
        n_nodes = len(self._levels)
        offsets = self._offsets
        if len(offsets) != n_nodes + 1 or len(self._caps) != n_nodes:
            self._fail("node table lengths disagree")
        if not n_nodes:
            self._fail("no nodes")
        if offsets[0] != 0 or offsets[-1] != len(self._payloads):
            self._fail("entry offsets do not span the entry table")
        counts = np.diff(offsets)
        if np.any(counts < 0):
            self._fail("entry offsets are not monotone")
        if len(self._lowers) != len(self._payloads) or len(self._uppers) != len(
            self._payloads
        ):
            self._fail("entry table lengths disagree")
        if not (np.isfinite(self._lowers).all() and np.isfinite(self._uppers).all()):
            self._fail("non-finite box corner")
        if np.any(self._lowers > self._uppers):
            self._fail("inverted box (lower > upper)")
        if np.any(counts > self._caps):
            self._fail("node holds more entries than its capacity")
        if np.any(self._caps < self.capacity):
            self._fail("node capacity below the tree's base capacity")
        min_fill = max(2, int(0.4 * self.capacity))
        if n_nodes > 1 and np.any(counts[1:] < min_fill):
            self._fail("underfull non-root node")
        owner = np.repeat(np.arange(n_nodes, dtype=np.int64), counts)
        is_dir_entry = self._levels[owner] > 0
        children = self._payloads[is_dir_entry]
        leaf_oids = self._payloads[~is_dir_entry]
        if leaf_oids.size and leaf_oids.min() < 0:
            self._fail("negative object id in a leaf")
        if int((~is_dir_entry).sum()) != self.size:
            self._fail(
                f"leaf entry count {(~is_dir_entry).sum()} != size {self.size}"
            )
        if children.size:
            if children.min() < 1 or children.max() >= n_nodes:
                self._fail("child offset out of bounds")
            refs = np.bincount(children, minlength=n_nodes)
            if refs[0] != 0 or np.any(refs[1:] != 1):
                self._fail("node referenced other than exactly once")
            if np.any(self._levels[children] != self._levels[owner[is_dir_entry]] - 1):
                self._fail("child level mismatch")
        elif n_nodes > 1:
            self._fail("unreachable nodes (no directory entries)")
        nonempty = np.nonzero(counts > 0)[0]
        if nonempty.size:
            node_lo = np.full((n_nodes, self.dimension), np.inf)
            node_hi = np.full((n_nodes, self.dimension), -np.inf)
            node_lo[nonempty] = np.minimum.reduceat(
                self._lowers, offsets[:-1][nonempty], axis=0
            )
            node_hi[nonempty] = np.maximum.reduceat(
                self._uppers, offsets[:-1][nonempty], axis=0
            )
            if children.size:
                boxes_lo = self._lowers[is_dir_entry]
                boxes_hi = self._uppers[is_dir_entry]
                if np.any(node_lo[children] < boxes_lo) or np.any(
                    node_hi[children] > boxes_hi
                ):
                    self._fail("child MBR escapes the stored directory box")


class MTreeArrayCore(_ArrayCore):
    """Struct-of-arrays query core for the M-tree.

    Node tables: ``node_is_leaf`` plus ``entry_offsets`` slicing flat
    ``entry_dist_to_parent``/``entry_radius``/``entry_oid``/
    ``entry_subtree`` columns; stored objects live in one ragged
    ``obj_data`` block addressed by ``obj_row_offsets``.

    When every stored object is a 2-d vector set, ``batch_params``
    (capacity, omega[, solver]) lets the core evaluate a whole node's
    metric distances with the PR 2 batched matching kernel instead of a
    Python loop.  The batch kernel agrees with the scalar minimal
    matching distance to ~1e-9 (ulp-level float reassociation), not
    bit-for-bit — callers needing literal equality with the pointer
    tree (e.g. ``SimilarityDatabase``) must leave ``batch_params``
    unset so the core refines with the same scalar metric.
    """

    kind = "mtree"
    PRUNE_SLACK = 1e-9

    def __init__(self, meta, arrays, metric, page_manager=None, batch_params=None):
        super().__init__(meta, arrays, page_manager)
        self.metric = metric
        self.capacity = int(meta["capacity"])
        self.distance_computations = 0
        self._is_leaf = np.ascontiguousarray(arrays["node_is_leaf"], dtype=np.int8)
        self._offsets = np.ascontiguousarray(arrays["entry_offsets"], dtype=np.int64)
        self._dist_to_parent = np.ascontiguousarray(
            arrays["entry_dist_to_parent"], dtype=np.float64
        )
        self._radius = np.ascontiguousarray(arrays["entry_radius"], dtype=np.float64)
        self._oid = np.ascontiguousarray(arrays["entry_oid"], dtype=np.int64)
        self._subtree = np.ascontiguousarray(arrays["entry_subtree"], dtype=np.int64)
        self._ndims = np.ascontiguousarray(arrays["obj_ndim"], dtype=np.int8)
        self._row_offsets = np.ascontiguousarray(
            arrays["obj_row_offsets"], dtype=np.int64
        )
        self._obj_data = np.ascontiguousarray(arrays["obj_data"], dtype=np.float64)
        self._batch_params = batch_params
        self._packed = None

    def _entry_obj(self, e: int):
        rows = self._obj_data[self._row_offsets[e] : self._row_offsets[e + 1]]
        return rows[0] if self._ndims[e] == 1 else rows

    def _ensure_packed(self) -> bool:
        if self._batch_params is None:
            return False
        if self._packed is not None:
            return True
        if len(self._ndims) == 0 or not (self._ndims == 2).all():
            self._batch_params = None
            return False
        capacity = int(self._batch_params["capacity"])
        row_counts = np.diff(self._row_offsets)
        if row_counts.size and int(row_counts.max()) > capacity:
            self._batch_params = None
            return False
        from repro.core.batch import PackedSets

        sets = [
            self._obj_data[self._row_offsets[e] : self._row_offsets[e + 1]]
            for e in range(len(self._ndims))
        ]
        self._packed = PackedSets.pack(
            sets, capacity, np.asarray(self._batch_params["omega"], dtype=float)
        )
        return True

    def _prepare_query(self, query):
        """Pad *query* for the batch kernel, once per search call.

        Returns ``None`` on the scalar-metric path.  Padding must be
        per-call, not cached on the core: a stale pad reused across
        calls silently answers every later query with the first one's
        distances.
        """
        if self._ensure_packed():
            return self._packed.pad_query(query)
        return None

    def _distances(self, query, padded, idx: np.ndarray) -> np.ndarray:
        self.distance_computations += len(idx)
        if padded is not None:
            from repro.core.batch import match_many

            return match_many(
                padded,
                self._packed,
                indices=idx,
                backend=self._batch_params.get("solver", "lockstep"),
            )
        return np.array(
            [float(self.metric(query, self._entry_obj(int(e)))) for e in idx],
            dtype=np.float64,
        )

    def knn(self, query, k: int) -> list[tuple[int, float]]:
        """The k nearest ``(oid, distance)`` pairs, canonical order.

        Same best-first search as the pointer M-tree; the slack-guarded
        parent-distance pre-test and the metric evaluations are batched
        per node.  The pre-test uses the k-th distance at node entry
        (the pointer version re-reads it per entry), which can only
        admit extra candidates — results and page accesses are
        identical, ``distance_computations`` is an upper bound.
        """
        if k < 1:
            raise IndexError_("k must be >= 1")
        slack = 1.0 + self.PRUNE_SLACK
        tick = itertools.count()
        nodes_batched = counter("index.nodes_batched")
        frontier_size = histogram("index.frontier_size")
        queue: list[tuple[float, int, int, float | None]] = [
            (0.0, next(tick), 0, None)
        ]
        best: list[tuple[float, int]] = []

        def kth_key() -> tuple[float, int]:
            if len(best) < k:
                return (np.inf, 2**63)
            return (-best[0][0], -best[0][1])

        padded = self._prepare_query(query)
        while queue:
            bound, _, nid, parent_dist = heapq.heappop(queue)
            kth = kth_key()[0]
            if bound > kth:
                break
            self.pages.read_spans(1, self.pages.page_size)
            nodes_batched.inc()
            frontier_size.observe(len(queue) + 1)
            start, stop = int(self._offsets[nid]), int(self._offsets[nid + 1])
            if start == stop:
                continue
            idx = np.arange(start, stop, dtype=np.int64)
            if parent_dist is not None:
                keep = np.abs(parent_dist - self._dist_to_parent[idx]) <= (
                    kth + self._radius[idx]
                ) * slack
                idx = idx[keep]
            if not idx.size:
                continue
            dists = self._distances(query, padded, idx)
            if self._is_leaf[nid]:
                for e, dist in zip(idx.tolist(), dists.tolist()):
                    oid = int(self._oid[e])
                    if (dist, oid) < kth_key():
                        if len(best) == k:
                            heapq.heapreplace(best, (-dist, -oid))
                        else:
                            heapq.heappush(best, (-dist, -oid))
            else:
                optimistic = np.maximum(0.0, dists - self._radius[idx]) * (
                    1.0 - self.PRUNE_SLACK
                )
                kth = kth_key()[0]
                for e, dist, opt in zip(
                    idx.tolist(), dists.tolist(), optimistic.tolist()
                ):
                    if opt <= kth:
                        heapq.heappush(
                            queue, (opt, next(tick), int(self._subtree[e]), dist)
                        )
        result = [(-neg_oid, -neg_dist) for neg_dist, neg_oid in best]
        result.sort(key=lambda pair: (pair[1], pair[0]))
        return result

    def knn_many(self, queries, k: int) -> list[list[tuple[int, float]]]:
        """Sequential :meth:`knn` per query.  The metric dominates the
        M-tree's cost, so there is no cross-query batching to exploit —
        this exists for interface parity with the R-tree cores."""
        return [self.knn(query, k) for query in queries]

    def range_search(self, query, radius: float) -> list[tuple[int, float]]:
        """All ``(oid, distance)`` with distance <= radius, canonical order."""
        if radius < 0:
            raise IndexError_("radius must be non-negative")
        slack = 1.0 + self.PRUNE_SLACK
        nodes_batched = counter("index.nodes_batched")
        frontier_size = histogram("index.frontier_size")
        padded = self._prepare_query(query)
        results: list[tuple[int, float]] = []
        stack: list[tuple[int, float | None]] = [(0, None)]
        while stack:
            nid, parent_dist = stack.pop()
            self.pages.read_spans(1, self.pages.page_size)
            nodes_batched.inc()
            frontier_size.observe(len(stack) + 1)
            start, stop = int(self._offsets[nid]), int(self._offsets[nid + 1])
            if start == stop:
                continue
            idx = np.arange(start, stop, dtype=np.int64)
            if parent_dist is not None:
                keep = np.abs(parent_dist - self._dist_to_parent[idx]) <= (
                    radius + self._radius[idx]
                ) * slack
                idx = idx[keep]
            if not idx.size:
                continue
            dists = self._distances(query, padded, idx)
            if self._is_leaf[nid]:
                hit = dists <= radius
                results.extend(
                    zip(self._oid[idx[hit]].tolist(), dists[hit].tolist())
                )
            else:
                descend = dists <= (radius + self._radius[idx]) * slack
                stack.extend(
                    zip(
                        self._subtree[idx[descend]].tolist(),
                        dists[descend].tolist(),
                    )
                )
        results.sort(key=lambda pair: (pair[1], pair[0]))
        return results

    def check_invariants(self) -> None:
        """Vectorized validation of the dense M-tree tables: offset
        bounds, reference topology, radius/parent-distance validity and
        object-table consistency."""
        n_nodes = len(self._is_leaf)
        offsets = self._offsets
        if not n_nodes:
            self._fail("no nodes")
        if len(offsets) != n_nodes + 1:
            self._fail("node table lengths disagree")
        n_entries = len(self._oid)
        if offsets[0] != 0 or offsets[-1] != n_entries:
            self._fail("entry offsets do not span the entry table")
        counts = np.diff(offsets)
        if np.any(counts < 0):
            self._fail("entry offsets are not monotone")
        if np.any(counts > self.capacity):
            self._fail("node holds more entries than the tree capacity")
        for name, column in (
            ("dist_to_parent", self._dist_to_parent),
            ("radius", self._radius),
        ):
            if len(column) != n_entries:
                self._fail(f"{name} column length disagrees")
            if not np.isfinite(column).all() or np.any(column < 0):
                self._fail(f"invalid {name} (negative or non-finite)")
        if len(self._subtree) != n_entries or len(self._ndims) != n_entries:
            self._fail("entry table lengths disagree")
        if len(self._row_offsets) != n_entries + 1:
            self._fail("object row offsets do not match the entry count")
        if np.any(np.diff(self._row_offsets) < 0) or (
            n_entries and self._row_offsets[-1] != len(self._obj_data)
        ):
            self._fail("object row offsets do not span the object table")
        if n_entries and not np.isin(self._ndims, (1, 2)).all():
            self._fail("stored object with unsupported ndim")
        owner = np.repeat(np.arange(n_nodes, dtype=np.int64), counts)
        leaf_entry = self._is_leaf[owner] == 1
        if np.any(self._subtree[leaf_entry] != -1):
            self._fail("leaf entry with a subtree reference")
        if leaf_entry.size and np.any(self._oid[leaf_entry] < 0):
            self._fail("leaf entry without an object id")
        if int(leaf_entry.sum()) != self.size:
            self._fail(f"leaf entry count {leaf_entry.sum()} != size {self.size}")
        children = self._subtree[~leaf_entry]
        if children.size:
            if children.min() < 1 or children.max() >= n_nodes:
                self._fail("child offset out of bounds")
            refs = np.bincount(children, minlength=n_nodes)
            if refs[0] != 0 or np.any(refs[1:] != 1):
                self._fail("node referenced other than exactly once")
        elif n_nodes > 1:
            self._fail("unreachable nodes (no routing entries)")


class ScanArrayCore(_ArrayCore):
    """Contiguous-matrix core for the sequential-scan baseline: the
    vector collection is one resident (or mmapped) ``(n, d)`` block, so
    a query is a single vectorized distance pass with no per-query
    ``vstack``."""

    kind = "scan"

    def __init__(self, meta, arrays, page_manager=None):
        super().__init__(meta, arrays, page_manager)
        self.dimension = int(meta["dimension"])
        self._points = np.ascontiguousarray(arrays["points"], dtype=np.float64)
        self._oids = np.ascontiguousarray(arrays["oids"], dtype=np.int64)

    def _charge_full_read(self) -> None:
        self.pages.read_bytes(self.size * self.dimension * 8)

    def ranking_chunks(
        self, point: np.ndarray
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        if not self.size:
            return
        self._charge_full_read()
        counter("index.nodes_batched").inc()
        histogram("index.frontier_size").observe(1)
        point = np.asarray(point, dtype=np.float64)
        dists = np.linalg.norm(self._points - point, axis=1)
        order = np.lexsort((self._oids, dists))
        yield self._oids[order], dists[order]

    def incremental_nearest(self, point: np.ndarray) -> Iterator[tuple[int, float]]:
        for oids, dists in self.ranking_chunks(point):
            for oid, dist in zip(oids.tolist(), dists.tolist()):
                yield oid, dist

    def knn(self, point: np.ndarray, k: int) -> list[tuple[int, float]]:
        if k < 1:
            raise IndexError_("k must be >= 1")
        for oids, dists in self.ranking_chunks(point):
            return list(zip(oids[:k].tolist(), dists[:k].tolist()))
        return []

    def knn_many(self, points: np.ndarray, k: int) -> list[list[tuple[int, float]]]:
        """Batched k-nn: one ``(q, n)`` distance matrix, one rank pass
        per query.  Results and page charges equal ``q`` calls to
        :meth:`knn`."""
        if k < 1:
            raise IndexError_("k must be >= 1")
        points = np.ascontiguousarray(np.atleast_2d(points), dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != self.dimension:
            self._fail(f"expected (q, {self.dimension}) query points")
        if not self.size or not len(points):
            return [[] for _ in range(len(points))]
        for _ in range(len(points)):
            self._charge_full_read()
        counter("index.nodes_batched").inc(len(points))
        histogram("index.frontier_size").observe(len(points))
        dists = np.linalg.norm(self._points[None, :, :] - points[:, None, :], axis=2)
        results = []
        for row in dists:
            order = np.lexsort((self._oids, row))[:k]
            results.append(list(zip(self._oids[order].tolist(), row[order].tolist())))
        return results

    def range_search(self, center: np.ndarray, radius: float) -> list[int]:
        if radius < 0:
            raise IndexError_("radius must be non-negative")
        if not self.size:
            return []
        self._charge_full_read()
        center = np.asarray(center, dtype=np.float64)
        dists = np.linalg.norm(self._points - center, axis=1)
        return self._oids[dists <= radius].tolist()

    def check_invariants(self) -> None:
        if self._points.shape != (self.size, self.dimension):
            self._fail(
                f"point block {self._points.shape} != ({self.size}, {self.dimension})"
            )
        if len(self._oids) != self.size:
            self._fail("oid column length disagrees with size")
        if not np.isfinite(self._points).all():
            self._fail("non-finite stored point")
        if self.size and self._oids.min() < 0:
            self._fail("negative object id")


def core_from_serialized(
    meta: dict,
    arrays: dict,
    *,
    metric=None,
    page_manager: PageManager | None = None,
    batch_params: dict | None = None,
):
    """Build the matching array core from a snapshot ``(meta, arrays)``."""
    kind = meta.get("kind")
    if kind in ("rstar", "xtree"):
        return RTreeArrayCore(meta, arrays, page_manager)
    if kind == "scan":
        return ScanArrayCore(meta, arrays, page_manager)
    if kind == "mtree":
        if metric is None:
            raise IndexError_(
                "an M-tree core needs the metric: pass metric=... "
                "(the snapshot stores data, not code)"
            )
        return MTreeArrayCore(
            meta, arrays, metric, page_manager, batch_params=batch_params
        )
    raise IndexError_(f"unknown index kind {kind!r}")


def densify(tree, *, batch_params: dict | None = None):
    """Snapshot *tree* into a fresh array core sharing its page manager."""
    from repro.index.snapshot import serialize_index

    meta, arrays = serialize_index(tree)
    return core_from_serialized(
        meta,
        arrays,
        metric=getattr(tree, "metric", None),
        page_manager=tree.pages,
        batch_params=batch_params,
    )

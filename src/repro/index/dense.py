"""Flat, mmap-able snapshot container for zero-copy loads.

The ``.npz`` archives of :mod:`repro.index.snapshot` are zip files:
their members are (optionally compressed) streams that must be inflated
into fresh buffers, so a loaded index always pays one resident copy of
every node table.  This module defines a *dense* container with the
same integrity guarantees (per-array CRC32, atomic replace) but a
layout that :func:`numpy.memmap` can address directly:

``[magic][u32 header length][header JSON][padding][array 0][array 1]...``

The header records, per array: name, dtype string, shape, byte offset
and length, and CRC32.  Array blocks are aligned to 64 bytes.  Reading
with ``mmap=True`` (the default) builds numpy views over one shared
``np.memmap`` — the OS pages node tables in on first touch, nothing is
copied, and a fresh process can answer its first query with O(1)
resident copies of the tables.  CRC verification forces a full read, so
it is opt-in (``verify=True``; ``repro db verify`` uses it).

The mmap stays alive exactly as long as any returned view: each view's
``base`` chain holds a reference to the ``np.memmap`` object, so there
are no explicit lifetime rules for callers beyond "keep the arrays you
use".
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path

import numpy as np

from repro.exceptions import SnapshotIntegrityError, StorageError
from repro.index.snapshot import describe_member
from repro.testing.faults import crash_point

DENSE_MAGIC = b"REPRODNS"
DENSE_VERSION = 1
_ALIGN = 64


def is_dense_archive(path: str | Path) -> bool:
    """True if *path* starts with the dense container magic."""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(DENSE_MAGIC)) == DENSE_MAGIC
    except OSError:
        return False


def write_dense_archive(
    path: str | Path, meta: dict, arrays: dict[str, np.ndarray]
) -> Path:
    """Atomically write *arrays* in the dense mmap-able layout."""
    path = Path(path)
    blocks: list[tuple[str, np.ndarray]] = [
        (name, np.ascontiguousarray(arrays[name])) for name in sorted(arrays)
    ]
    table = []
    offset = 0  # relative to the start of the array region
    for name, arr in blocks:
        offset = -(-offset // _ALIGN) * _ALIGN
        table.append(
            {
                "name": name,
                "dtype": arr.dtype.str,
                "shape": list(arr.shape),
                "offset": offset,
                "nbytes": arr.nbytes,
                "crc32": zlib.crc32(arr.tobytes()),
            }
        )
        offset += arr.nbytes
    header = json.dumps(
        {"version": DENSE_VERSION, "meta": dict(meta), "arrays": table},
        sort_keys=True,
    ).encode("utf-8")
    prefix = len(DENSE_MAGIC) + 4 + len(header)
    data_start = -(-prefix // _ALIGN) * _ALIGN
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    try:
        with open(tmp, "wb") as handle:
            handle.write(DENSE_MAGIC)
            handle.write(np.uint32(len(header)).tobytes())
            handle.write(header)
            handle.write(b"\0" * (data_start - prefix))
            written = 0
            for record, (_, arr) in zip(table, blocks):
                pad = record["offset"] - written
                if pad:
                    handle.write(b"\0" * pad)
                handle.write(arr.tobytes())
                written = record["offset"] + record["nbytes"]
            handle.flush()
            os.fsync(handle.fileno())
        crash_point("mid-snapshot-write")
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink(missing_ok=True)
    return path


def read_dense_archive(
    path: str | Path,
    expected_format: str | None = None,
    *,
    mmap: bool = True,
    verify: bool = False,
) -> tuple[dict, dict[str, np.ndarray]]:
    """Read a dense archive; returns ``(meta, arrays)``.

    With ``mmap=True`` the arrays are read-only views over one shared
    ``np.memmap`` (zero-copy); otherwise they are materialized copies.
    ``verify=True`` CRC-checks every array (a full sequential read) and
    raises :class:`SnapshotIntegrityError` naming the damaged member.
    """
    path = Path(path)
    try:
        with open(path, "rb") as handle:
            magic = handle.read(len(DENSE_MAGIC))
            if magic != DENSE_MAGIC:
                raise StorageError(f"{path} is not a dense snapshot archive")
            raw_len = handle.read(4)
            if len(raw_len) != 4:
                raise StorageError(f"{path}: truncated dense header")
            header_len = int(np.frombuffer(raw_len, dtype=np.uint32)[0])
            header_bytes = handle.read(header_len)
            if len(header_bytes) != header_len:
                raise StorageError(f"{path}: truncated dense header")
            file_size = os.fstat(handle.fileno()).st_size
    except OSError as exc:
        raise StorageError(f"cannot read snapshot {path}: {exc}") from exc
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotIntegrityError(
            path, "meta", str(exc), kind=describe_member("meta")
        ) from exc
    if header.get("version") != DENSE_VERSION:
        raise StorageError(
            f"{path}: unsupported dense snapshot version {header.get('version')!r}"
        )
    meta = header.get("meta", {})
    if expected_format is not None and meta.get("format") != expected_format:
        raise StorageError(
            f"{path} holds {meta.get('format')!r}, expected {expected_format!r}"
        )
    prefix = len(DENSE_MAGIC) + 4 + header_len
    data_start = -(-prefix // _ALIGN) * _ALIGN
    table = header.get("arrays", [])
    end = max((r["offset"] + r["nbytes"] for r in table), default=0)
    if data_start + end > file_size:
        raise SnapshotIntegrityError(
            path,
            "arrays",
            f"file truncated ({file_size} bytes, need {data_start + end})",
            kind="dense array region",
        )
    if mmap:
        buffer = np.memmap(path, dtype=np.uint8, mode="r")
    else:
        buffer = np.fromfile(path, dtype=np.uint8)
    arrays: dict[str, np.ndarray] = {}
    for record in table:
        name = record["name"]
        start = data_start + record["offset"]
        raw = buffer[start : start + record["nbytes"]]
        if verify and zlib.crc32(raw.tobytes()) != record["crc32"]:
            raise SnapshotIntegrityError(
                path,
                name,
                "checksum mismatch",
                kind=describe_member(name),
            )
        view = raw.view(np.dtype(record["dtype"])).reshape(record["shape"])
        if mmap:
            view.flags.writeable = False
        arrays[name] = view
    return meta, arrays

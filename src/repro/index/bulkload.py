"""Sort-Tile-Recursive (STR) bulk loading for the R*-/X-tree.

Inserting one point at a time builds a good tree but costs O(n log n)
choose-subtree work and produces ~70 % fill; STR (Leutenegger et al.
1997) packs fully filled leaves by recursively tiling the data along
each dimension and is the standard way to build a static index — which
is exactly the situation of the paper's experiments (load the whole
dataset, then query).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import IndexError_
from repro.index.pages import PageManager
from repro.index.rstar import RStarTree, _Node
from repro.index.xtree import XTree


def _tile(points: np.ndarray, order: np.ndarray, capacity: int, axis: int) -> list[np.ndarray]:
    """Recursively tile *order* (indices into points) into runs of at
    most *capacity*, slicing along *axis* first."""
    if len(order) <= capacity:
        return [order]
    dimensions = points.shape[1]
    n_leaves = -(-len(order) // capacity)
    # Number of slabs along this axis: ceil(n_leaves^(1/remaining_dims)).
    remaining = dimensions - axis
    slabs = int(np.ceil(n_leaves ** (1.0 / remaining))) if remaining > 1 else n_leaves
    ranked = order[np.argsort(points[order, axis], kind="stable")]
    slab_size = -(-len(ranked) // slabs)
    groups: list[np.ndarray] = []
    for start in range(0, len(ranked), slab_size):
        slab = ranked[start : start + slab_size]
        if remaining > 1:
            groups.extend(_tile(points, slab, capacity, axis + 1))
        else:
            groups.append(slab)
    return groups


def bulk_load(
    points: np.ndarray,
    oids: list[int] | None = None,
    tree_class: type[RStarTree] = RStarTree,
    page_manager: PageManager | None = None,
    capacity: int | None = None,
    fill: float = 0.9,
) -> RStarTree:
    """Build a packed tree over *points* with STR.

    Parameters
    ----------
    points:
        ``(n, d)`` array.
    oids:
        Object ids (default ``0..n-1``).
    tree_class:
        :class:`RStarTree` or :class:`XTree`.
    page_manager, capacity:
        Passed through to the tree constructor.
    fill:
        Target leaf fill factor (packing to 100 % makes the first
        subsequent insert split every node; 0.9 is customary).
    """
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2 or not len(pts):
        raise IndexError_("bulk_load needs a non-empty (n, d) array")
    if not 0.1 <= fill <= 1.0:
        raise IndexError_("fill must be in [0.1, 1.0]")
    if oids is None:
        oids = list(range(len(pts)))
    if len(oids) != len(pts):
        raise IndexError_("need one oid per point")

    tree = tree_class(pts.shape[1], page_manager=page_manager, capacity=capacity)
    per_leaf = max(tree.min_fill, int(tree.capacity * fill))

    # Build leaves by STR tiling.
    groups = _tile(pts, np.arange(len(pts)), per_leaf, axis=0)
    nodes: list[_Node] = []
    for group in groups:
        leaf = tree._new_node(level=0)
        leaf.set_entries(
            pts[group].copy(), pts[group].copy(), [oids[g] for g in group]
        )
        nodes.append(leaf)

    # Pack upper levels the same way over the node centers.
    level = 1
    while len(nodes) > 1:
        centers = np.vstack([(node.mbr()[0] + node.mbr()[1]) / 2.0 for node in nodes])
        groups = _tile(centers, np.arange(len(nodes)), per_leaf, axis=0)
        parents: list[_Node] = []
        for group in groups:
            parent = tree._new_node(level=level)
            lowers = np.vstack([nodes[g].mbr()[0] for g in group])
            uppers = np.vstack([nodes[g].mbr()[1] for g in group])
            parent.set_entries(lowers, uppers, [nodes[g] for g in group])
            parents.append(parent)
        nodes = parents
        level += 1

    tree.root = nodes[0]
    tree.size = len(pts)
    return tree

"""Sequential-scan baselines with page accounting.

Two scan flavours back the paper's comparisons:

* :class:`SequentialScan` over plain feature vectors (the alternative
  the paper mentions for the one-vector model), and
* a raw byte-stream read used by the "Vect. Set seq. scan" row of
  Table 2, where every query reads the whole vector-set file.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.exceptions import IndexError_
from repro.index.pages import PageManager


class SequentialScan:
    """A 'no index': every query reads the full vector collection.

    Provides the same query interface as the trees so experiment drivers
    can swap access methods freely.
    """

    def __init__(self, dimension: int, page_manager: PageManager | None = None):
        if dimension < 1:
            raise IndexError_("dimension must be >= 1")
        self.dimension = dimension
        self.pages = page_manager or PageManager()
        self._points: list[np.ndarray] = []
        self._oids: list[int] = []
        self._dense_core = None

    @property
    def size(self) -> int:
        return len(self._oids)

    def dense_core(self):
        """The contiguous-matrix query core mirroring this scan (cached
        until the next mutation; shares this scan's page manager)."""
        if self._dense_core is None:
            from repro.index.arraycore import densify

            self._dense_core = densify(self)
        return self._dense_core

    def _invalidate_core(self) -> None:
        self._dense_core = None

    def insert(self, point: np.ndarray, oid: int) -> None:
        point = np.asarray(point, dtype=float)
        if point.shape != (self.dimension,):
            raise IndexError_(f"expected a {self.dimension}-d point, got {point.shape}")
        self._invalidate_core()
        self._points.append(point.copy())
        self._oids.append(oid)

    def delete(self, point: np.ndarray, oid: int) -> bool:
        """Remove the entry stored under *oid*; returns False if absent.

        The *point* argument is accepted for interface parity with the
        trees (which need it to locate the hosting leaf) but is not used
        to identify the entry.
        """
        del point
        try:
            where = self._oids.index(oid)
        except ValueError:
            return False
        self._invalidate_core()
        self._points.pop(where)
        self._oids.pop(where)
        return True

    def _charge_full_read(self) -> None:
        self.pages.read_bytes(self.size * self.dimension * 8)

    def range_search(self, center: np.ndarray, radius: float) -> list[int]:
        if radius < 0:
            raise IndexError_("radius must be non-negative")
        if not self.size:
            return []
        self._charge_full_read()
        center = np.asarray(center, dtype=float)
        matrix = np.vstack(self._points)
        dists = np.linalg.norm(matrix - center, axis=1)
        return [self._oids[i] for i in np.nonzero(dists <= radius)[0]]

    def incremental_nearest(self, point: np.ndarray) -> Iterator[tuple[int, float]]:
        if not self.size:
            return
        self._charge_full_read()
        point = np.asarray(point, dtype=float)
        matrix = np.vstack(self._points)
        dists = np.linalg.norm(matrix - point, axis=1)
        # Canonical (distance, oid) order — ties resolve by ascending oid
        # so every access method reports the same result sequence.
        oids = np.asarray(self._oids)
        for i in np.lexsort((oids, dists)):
            yield int(oids[i]), float(dists[i])

    def knn(self, point: np.ndarray, k: int) -> list[tuple[int, float]]:
        if k < 1:
            raise IndexError_("k must be >= 1")
        result = []
        for oid, dist in self.incremental_nearest(point):
            result.append((oid, dist))
            if len(result) == k:
                break
        return result

"""R*-tree: the spatial index substrate of the filter step.

A faithful in-memory R*-tree (Beckmann et al. 1990) with

* ChooseSubtree by minimum overlap enlargement at the leaf level and
  minimum area enlargement above it,
* the R* split (axis by minimum margin sum, distribution by minimum
  overlap, ties by area), computed with vectorized prefix bounding
  boxes,
* forced reinsertion of the 30 % most-distant entries on first overflow
  per level,
* best-first (Hjaltason & Samet) incremental nearest-neighbor ranking
  and hypersphere range search,
* logical page accounting through :class:`~repro.index.pages.PageManager`
  so queries can be costed with the paper's I/O model.

:class:`~repro.index.xtree.XTree` derives from this class and replaces
the overflow handling with supernode creation.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Iterator

import numpy as np

from repro.exceptions import IndexError_
from repro.index.pages import PageManager


class _Node:
    """One tree node; occupies one logical page (supernodes: several).

    Entry ``i`` is the box ``lowers[i]..uppers[i]`` with payload
    ``children[i]`` (a child node) or ``oids[i]`` (an object id).
    """

    __slots__ = ("level", "lowers", "uppers", "children", "oids", "page_id",
                 "capacity", "parent")

    def __init__(self, level: int, dimension: int, capacity: int, page_id: int):
        self.level = level  # 0 = leaf
        self.lowers = np.empty((0, dimension))
        self.uppers = np.empty((0, dimension))
        self.children: list["_Node"] = []
        self.oids: list[int] = []
        self.page_id = page_id
        self.capacity = capacity
        self.parent: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    @property
    def size(self) -> int:
        return len(self.lowers)

    def mbr(self) -> tuple[np.ndarray, np.ndarray]:
        return self.lowers.min(axis=0), self.uppers.max(axis=0)

    def add(self, lower: np.ndarray, upper: np.ndarray, payload) -> None:
        self.lowers = np.vstack([self.lowers, lower[np.newaxis]])
        self.uppers = np.vstack([self.uppers, upper[np.newaxis]])
        if self.is_leaf:
            self.oids.append(payload)
        else:
            payload.parent = self
            self.children.append(payload)

    def payloads(self) -> list:
        return self.oids if self.is_leaf else self.children

    def set_entries(self, lowers: np.ndarray, uppers: np.ndarray, payloads: list) -> None:
        self.lowers = lowers
        self.uppers = uppers
        if self.is_leaf:
            self.oids = list(payloads)
            self.children = []
        else:
            self.children = list(payloads)
            self.oids = []
            for child in self.children:
                child.parent = self


def _areas(lowers: np.ndarray, uppers: np.ndarray) -> np.ndarray:
    return np.prod(uppers - lowers, axis=-1)


def _margins(lowers: np.ndarray, uppers: np.ndarray) -> np.ndarray:
    return np.sum(uppers - lowers, axis=-1)


def _overlap(lo_a, hi_a, lo_b, hi_b) -> float:
    inter = np.minimum(hi_a, hi_b) - np.maximum(lo_a, lo_b)
    if np.any(inter <= 0):
        return 0.0
    return float(np.prod(inter))


def _mindist(point: np.ndarray, lower: np.ndarray, upper: np.ndarray) -> float:
    """Euclidean distance from a point to a box (0 inside)."""
    delta = np.maximum(lower - point, 0.0) + np.maximum(point - upper, 0.0)
    return float(np.linalg.norm(delta))


def _mindist_many(point: np.ndarray, lowers: np.ndarray, uppers: np.ndarray) -> np.ndarray:
    delta = np.maximum(lowers - point, 0.0) + np.maximum(point - uppers, 0.0)
    return np.sqrt(np.sum(delta * delta, axis=1))


class RStarTree:
    """In-memory R*-tree over d-dimensional points or boxes.

    Parameters
    ----------
    dimension:
        Dimensionality of the indexed space.
    page_manager:
        Shared :class:`PageManager` for I/O accounting (a private one is
        created if omitted).
    capacity:
        Maximum entries per node.  When omitted it is derived from the
        page size assuming 8-byte coordinates (two box corners plus a
        pointer per entry) — the mechanism by which high-dimensional
        feature vectors get the small fanouts that hurt them in Table 2.
    reinsert_fraction:
        Fraction of entries re-inserted on first overflow (R* default
        0.3); 0 disables forced reinsertion.
    """

    def __init__(
        self,
        dimension: int,
        page_manager: PageManager | None = None,
        capacity: int | None = None,
        reinsert_fraction: float = 0.3,
    ):
        if dimension < 1:
            raise IndexError_("dimension must be >= 1")
        self.dimension = dimension
        self.pages = page_manager or PageManager()
        if capacity is None:
            entry_bytes = 16 * dimension + 8
            capacity = max(4, self.pages.page_size // entry_bytes)
        if capacity < 4:
            raise IndexError_("node capacity must be >= 4")
        self.capacity = capacity
        self.min_fill = max(2, int(0.4 * capacity))
        if not 0.0 <= reinsert_fraction < 1.0:
            raise IndexError_("reinsert fraction must be in [0, 1)")
        self.reinsert_count = int(reinsert_fraction * capacity)
        self.root = self._new_node(level=0)
        self.size = 0
        self._dense_core = None

    # -- array core --------------------------------------------------------

    def dense_core(self):
        """The struct-of-arrays query core mirroring this tree.

        Built lazily from the snapshot serialization and cached until
        the next mutation; it shares this tree's page manager, so query
        I/O accounting is unified no matter which representation served
        the query.
        """
        if self._dense_core is None:
            from repro.index.arraycore import densify

            self._dense_core = densify(self)
        return self._dense_core

    def _invalidate_core(self) -> None:
        self._dense_core = None

    # -- construction ------------------------------------------------------

    def _new_node(self, level: int) -> _Node:
        page_id = self.pages.allocate(self.pages.page_size)
        return _Node(level, self.dimension, self.capacity, page_id)

    def insert(self, point: np.ndarray, oid: int) -> None:
        """Insert a point entry with object id *oid*."""
        point = np.asarray(point, dtype=float)
        if point.shape != (self.dimension,):
            raise IndexError_(f"expected a {self.dimension}-d point, got {point.shape}")
        self._invalidate_core()
        self._insert_entry(point.copy(), point.copy(), oid, level=0, overflown=set())
        self.size += 1

    def insert_box(self, lower: np.ndarray, upper: np.ndarray, oid: int) -> None:
        """Insert a box entry (used when indexing MBR-shaped payloads)."""
        lower = np.asarray(lower, dtype=float)
        upper = np.asarray(upper, dtype=float)
        if lower.shape != (self.dimension,) or upper.shape != (self.dimension,):
            raise IndexError_("box corners have wrong dimension")
        if np.any(lower > upper):
            raise IndexError_("box lower corner must not exceed upper corner")
        self._invalidate_core()
        self._insert_entry(lower.copy(), upper.copy(), oid, level=0, overflown=set())
        self.size += 1

    def _choose_subtree(self, node: _Node, lower, upper, level: int) -> _Node:
        """Pick the child of *node* to descend into."""
        enlarged_lo = np.minimum(node.lowers, lower)
        enlarged_hi = np.maximum(node.uppers, upper)
        areas = _areas(node.lowers, node.uppers)
        enlargement = _areas(enlarged_lo, enlarged_hi) - areas
        if node.level == 1 and level == 0:
            # Leaf-level children: minimize overlap enlargement.  For
            # candidate i, overlap against all siblings is vectorized.
            n = node.size
            overlap_delta = np.empty(n)
            for i in range(n):
                others = np.arange(n) != i
                inter_before = np.minimum(node.uppers[i], node.uppers[others]) - np.maximum(
                    node.lowers[i], node.lowers[others]
                )
                inter_after = np.minimum(enlarged_hi[i], node.uppers[others]) - np.maximum(
                    enlarged_lo[i], node.lowers[others]
                )
                before = np.prod(np.clip(inter_before, 0.0, None), axis=1).sum()
                after = np.prod(np.clip(inter_after, 0.0, None), axis=1).sum()
                overlap_delta[i] = after - before
            best = int(np.lexsort((areas, enlargement, overlap_delta))[0])
            return node.children[best]
        # Directory levels: minimize area enlargement, ties by area.
        return node.children[int(np.lexsort((areas, enlargement))[0])]

    def _insert_entry(self, lower, upper, payload, level: int, overflown: set[int]) -> None:
        node = self.root
        while node.level > level:
            node = self._choose_subtree(node, lower, upper, level)
        node.add(lower, upper, payload)
        self._refresh_upward(node)
        if node.size > node.capacity:
            self._overflow(node, overflown)

    def _refresh_upward(self, node: _Node) -> None:
        """Recompute the MBR stored for *node* (and ancestors) in its parent."""
        while node.parent is not None:
            parent = node.parent
            slot = parent.children.index(node)
            lo, hi = node.mbr()
            if np.array_equal(parent.lowers[slot], lo) and np.array_equal(
                parent.uppers[slot], hi
            ):
                break  # no change can propagate further
            parent.lowers[slot] = lo
            parent.uppers[slot] = hi
            node = parent

    def _overflow(self, node: _Node, overflown: set[int]) -> None:
        if self.reinsert_count and node.parent is not None and node.level not in overflown:
            overflown.add(node.level)
            self._reinsert(node, overflown)
        else:
            self._split(node, overflown)

    def _reinsert(self, node: _Node, overflown: set[int]) -> None:
        lo, hi = node.mbr()
        center = (lo + hi) / 2.0
        entry_centers = (node.lowers + node.uppers) / 2.0
        distance = np.linalg.norm(entry_centers - center, axis=1)
        order = np.argsort(distance, kind="stable")  # near entries stay
        keep = order[: node.size - self.reinsert_count]
        expel = order[node.size - self.reinsert_count :]
        lowers, uppers, payloads = node.lowers, node.uppers, node.payloads()
        expelled = [(lowers[i].copy(), uppers[i].copy(), payloads[i]) for i in expel]
        node.set_entries(lowers[keep], uppers[keep], [payloads[i] for i in keep])
        self._refresh_upward(node)
        level = node.level
        for entry_lo, entry_hi, payload in expelled:
            self._insert_entry(entry_lo, entry_hi, payload, level, overflown)

    def _choose_split(
        self, lowers: np.ndarray, uppers: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """R* split: returns (left index array, right index array).

        For each axis and sort key the prefix/suffix bounding boxes give
        every candidate distribution's margin, overlap and area in a few
        vectorized passes.
        """
        total = len(lowers)
        splits = np.arange(self.min_fill, total - self.min_fill + 1)

        def distributions(axis: int, by_upper: bool):
            key = uppers[:, axis] if by_upper else lowers[:, axis]
            order = np.argsort(key, kind="stable")
            slo, shi = lowers[order], uppers[order]
            pre_lo = np.minimum.accumulate(slo, axis=0)
            pre_hi = np.maximum.accumulate(shi, axis=0)
            suf_lo = np.minimum.accumulate(slo[::-1], axis=0)[::-1]
            suf_hi = np.maximum.accumulate(shi[::-1], axis=0)[::-1]
            left_lo, left_hi = pre_lo[splits - 1], pre_hi[splits - 1]
            right_lo, right_hi = suf_lo[splits], suf_hi[splits]
            return order, left_lo, left_hi, right_lo, right_hi

        # Phase 1: choose the split axis by minimum total margin.
        best_axis, best_margin = 0, np.inf
        for axis in range(self.dimension):
            margin = 0.0
            for by_upper in (False, True):
                _, l_lo, l_hi, r_lo, r_hi = distributions(axis, by_upper)
                margin += float(
                    (_margins(l_lo, l_hi) + _margins(r_lo, r_hi)).sum()
                )
            if margin < best_margin:
                best_margin, best_axis = margin, axis

        # Phase 2: on that axis, choose the distribution with minimum
        # overlap (ties: minimum combined area).
        best_key, best_result = None, None
        for by_upper in (False, True):
            order, l_lo, l_hi, r_lo, r_hi = distributions(best_axis, by_upper)
            inter = np.clip(np.minimum(l_hi, r_hi) - np.maximum(l_lo, r_lo), 0.0, None)
            overlaps = np.prod(inter, axis=1)
            area = _areas(l_lo, l_hi) + _areas(r_lo, r_hi)
            pick = int(np.lexsort((area, overlaps))[0])
            key = (float(overlaps[pick]), float(area[pick]))
            if best_key is None or key < best_key:
                split_at = int(splits[pick])
                best_key = key
                best_result = (order[:split_at].copy(), order[split_at:].copy())
        assert best_result is not None
        return best_result

    def _split(self, node: _Node, overflown: set[int]) -> _Node:
        """Split *node*; returns the newly created sibling (the X-tree
        uses it to right-size supernode capacities after the split)."""
        lowers, uppers = node.lowers, node.uppers
        payloads = node.payloads()
        left_idx, right_idx = self._choose_split(lowers, uppers)

        sibling = self._new_node(node.level)
        node.set_entries(lowers[left_idx], uppers[left_idx], [payloads[i] for i in left_idx])
        sibling.set_entries(
            lowers[right_idx], uppers[right_idx], [payloads[i] for i in right_idx]
        )

        parent = node.parent
        if parent is not None:
            self._refresh_upward(node)
            lo, hi = sibling.mbr()
            parent.add(lo, hi, sibling)
            self._refresh_upward(parent)
            if parent.size > parent.capacity:
                self._overflow(parent, overflown)
        else:
            new_root = self._new_node(node.level + 1)
            for child in (node, sibling):
                lo, hi = child.mbr()
                new_root.add(lo, hi, child)
            self.root = new_root
        return sibling

    # -- deletion ------------------------------------------------------------

    def delete(self, point: np.ndarray, oid: int) -> bool:
        """Remove the entry (*point*, *oid*); returns whether it existed.

        Underfull nodes along the path are dissolved and their remaining
        entries reinserted (the classic CondenseTree), and a root with a
        single directory child is shortened.
        """
        point = np.asarray(point, dtype=float)
        if point.shape != (self.dimension,):
            raise IndexError_(f"expected a {self.dimension}-d point, got {point.shape}")
        leaf, slot = self._find_leaf(self.root, point, oid)
        if leaf is None:
            return False
        self._invalidate_core()
        keep = np.arange(leaf.size) != slot
        leaf.set_entries(
            leaf.lowers[keep], leaf.uppers[keep], [leaf.oids[i] for i in range(leaf.size) if i != slot]
        )
        self.size -= 1
        self._entry_removed(leaf)
        self._condense(leaf)
        # Shrink the root while it is a directory node with one child.
        while not self.root.is_leaf and self.root.size == 1:
            self.root = self.root.children[0]
            self.root.parent = None
        return True

    def _find_leaf(self, node: _Node, point: np.ndarray, oid: int):
        if node.is_leaf:
            for i in range(node.size):
                if node.oids[i] == oid and np.array_equal(node.lowers[i], point):
                    return node, i
            return None, -1
        for i in range(node.size):
            if np.all(node.lowers[i] <= point) and np.all(point <= node.uppers[i]):
                found, slot = self._find_leaf(node.children[i], point, oid)
                if found is not None:
                    return found, slot
        return None, -1

    def _condense(self, node: _Node) -> None:
        """Dissolve underfull nodes bottom-up and reinsert their entries."""
        orphans: list[tuple[np.ndarray, np.ndarray, object, int]] = []
        while node.parent is not None:
            parent = node.parent
            if node.size < self.min_fill:
                slot = parent.children.index(node)
                keep = np.arange(parent.size) != slot
                for i in range(node.size):
                    orphans.append(
                        (
                            node.lowers[i].copy(),
                            node.uppers[i].copy(),
                            node.payloads()[i],
                            node.level,
                        )
                    )
                parent.set_entries(
                    parent.lowers[keep],
                    parent.uppers[keep],
                    [parent.children[i] for i in range(parent.size) if i != slot],
                )
                self._entry_removed(parent)
            else:
                self._refresh_upward(node)
            node = parent
        # Reinsert points at the leaf level and orphaned subtrees at the
        # level of the node that held them.
        for lower, upper, payload, level in orphans:
            self._insert_entry(lower, upper, payload, level, overflown=set())

    def _entry_removed(self, node: _Node) -> None:
        """Hook invoked whenever *node* loses an entry on the delete path
        (the X-tree overrides it to shrink supernodes back)."""

    # -- queries -------------------------------------------------------------

    def range_search(self, center: np.ndarray, radius: float) -> list[int]:
        """Object ids whose entry intersects the hypersphere
        ``||x - center|| <= radius``.  Every visited node counts as a
        page access."""
        center = np.asarray(center, dtype=float)
        if radius < 0:
            raise IndexError_("radius must be non-negative")
        hits: list[int] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            self.pages.read(node.page_id)
            if not node.size:
                continue
            near = np.nonzero(_mindist_many(center, node.lowers, node.uppers) <= radius)[0]
            if node.is_leaf:
                hits.extend(node.oids[i] for i in near)
            else:
                stack.extend(node.children[i] for i in near)
        return hits

    def incremental_nearest(self, point: np.ndarray) -> Iterator[tuple[int, float]]:
        """Yield ``(oid, distance)`` in ascending ``(distance, oid)`` order.

        Nodes are fetched (and costed) lazily as the ranking progresses,
        which is what makes the optimal multi-step k-nn of
        :mod:`repro.core.queries` touch as few pages as possible.

        Ties are broken canonically: at equal distance every node whose
        minimum distance matches is expanded before any object is
        yielded, and tied objects come out in ascending object id.  All
        access methods (R*-tree, X-tree, M-tree, sequential scan) share
        this convention, so their result sets are bit-identical even in
        the presence of duplicate points — the property the stateful
        differential tests assert.
        """
        point = np.asarray(point, dtype=float)
        counter = itertools.count()  # unique-ifies entries with equal keys
        # Heap key: (distance, is_object, oid-or-0, counter).  Nodes sort
        # before objects at the same distance, so a tied object cannot be
        # yielded while an unexpanded node might still contain a smaller
        # oid at that distance.
        heap: list[tuple[float, int, int, int, object]] = [
            (0.0, 0, 0, next(counter), self.root)
        ]
        while heap:
            dist, is_object, oid, _, payload = heapq.heappop(heap)
            if is_object:
                yield oid, dist
                continue
            node: _Node = payload
            self.pages.read(node.page_id)
            if not node.size:
                continue
            dists = _mindist_many(point, node.lowers, node.uppers)
            if node.is_leaf:
                for i in range(node.size):
                    heapq.heappush(
                        heap,
                        (float(dists[i]), 1, node.oids[i], next(counter), None),
                    )
            else:
                for i in range(node.size):
                    heapq.heappush(
                        heap,
                        (float(dists[i]), 0, 0, next(counter), node.children[i]),
                    )

    def knn(self, point: np.ndarray, k: int) -> list[tuple[int, float]]:
        """The k nearest object ids with their distances."""
        if k < 1:
            raise IndexError_("k must be >= 1")
        ranking = self.incremental_nearest(point)
        return list(itertools.islice(ranking, k))

    # -- introspection ---------------------------------------------------------

    def node_count(self) -> int:
        count, stack = 0, [self.root]
        while stack:
            node = stack.pop()
            count += 1
            if not node.is_leaf:
                stack.extend(node.children)
        return count

    def height(self) -> int:
        return self.root.level + 1

    def _check_node_capacity(self, node: _Node) -> None:
        """Per-node capacity rule; the X-tree loosens it for supernodes."""
        if node.capacity != self.capacity:
            raise IndexError_(
                f"node capacity {node.capacity} differs from tree capacity "
                f"{self.capacity}"
            )

    def check_invariants(self) -> None:
        """Raise :class:`IndexError_` on any violated structural invariant.

        Checked after every mutation by the stateful differential tests:

        * MBR containment — every entry box lies inside the box its
          parent stores for the node (exactly, no tolerance: MBRs are
          min/max aggregates of the very same floats),
        * level coherence and parent back-pointers,
        * fanout bounds — ``min_fill <= size <= capacity`` for every
          non-root node (the root may hold fewer, but a directory root
          must keep >= 2 children or it would have been collapsed),
        * per-node capacity rules (supernode rules in the X-tree),
        * the leaf entry count equals :attr:`size`.
        """
        stack = [(self.root, None, None)]
        seen = 0
        while stack:
            node, lo_bound, hi_bound = stack.pop()
            self._check_node_capacity(node)
            if node.size > node.capacity:
                raise IndexError_(
                    f"node holds {node.size} entries, capacity {node.capacity}"
                )
            if node is not self.root:
                if node.size < self.min_fill:
                    raise IndexError_(
                        f"underfull non-root node ({node.size} < {self.min_fill})"
                    )
            elif not node.is_leaf and node.size < 2:
                raise IndexError_("directory root with fewer than 2 children")
            if node.size:
                lo, hi = node.mbr()
                if lo_bound is not None and (
                    np.any(lo < lo_bound) or np.any(hi > hi_bound)
                ):
                    raise IndexError_("child MBR escapes parent MBR")
            if node.is_leaf:
                seen += node.size
            else:
                for i, child in enumerate(node.children):
                    if child.level != node.level - 1:
                        raise IndexError_("level mismatch")
                    if child.parent is not node:
                        raise IndexError_("broken parent pointer")
                    stack.append((child, node.lowers[i], node.uppers[i]))
        if seen != self.size:
            raise IndexError_(f"tree holds {seen} entries, expected {self.size}")

    def validate(self) -> None:
        """Backwards-compatible alias of :meth:`check_invariants`."""
        self.check_invariants()

"""X-tree: an R*-tree that trades splits for supernodes (Berchtold,
Keim & Kriegel 1996).

In high-dimensional spaces R*-tree directory splits produce heavily
overlapping siblings, which forces queries to descend both.  The X-tree
measures the overlap a pending split would create and, if it exceeds a
threshold, keeps the node as a *supernode* of enlarged capacity (and
correspondingly larger page span) instead of splitting.  The paper
stores its extended centroids — and the one-vector model's 6k-d features
— in an X-tree (Sections 4.3 and 5.4).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import IndexError_
from repro.index.pages import PageManager
from repro.index.rstar import RStarTree, _Node, _areas, _overlap


class XTree(RStarTree):
    """R*-tree with supernodes.

    Parameters
    ----------
    max_overlap:
        Maximum tolerated fraction of the split halves' combined area
        that may overlap; above it a directory node becomes a supernode.
        The original X-tree paper suggests 20 %.
    max_supernode_factor:
        Safety cap on supernode growth, in multiples of the base
        capacity.
    """

    def __init__(
        self,
        dimension: int,
        page_manager: PageManager | None = None,
        capacity: int | None = None,
        reinsert_fraction: float = 0.3,
        max_overlap: float = 0.2,
        max_supernode_factor: int = 64,
    ):
        super().__init__(dimension, page_manager, capacity, reinsert_fraction)
        if not 0.0 <= max_overlap <= 1.0:
            raise IndexError_("max_overlap must be in [0, 1]")
        if max_supernode_factor < 2:
            raise IndexError_("max_supernode_factor must be >= 2")
        self.max_overlap = max_overlap
        self.max_supernode_factor = max_supernode_factor
        self.supernodes_created = 0
        self.supernodes_dissolved = 0

    def _split_overlap_fraction(self, node: _Node) -> float:
        """Overlap fraction of the best available split of *node*."""
        left_idx, right_idx = self._choose_split(node.lowers, node.uppers)
        lo_l = node.lowers[left_idx].min(axis=0)
        hi_l = node.uppers[left_idx].max(axis=0)
        lo_r = node.lowers[right_idx].min(axis=0)
        hi_r = node.uppers[right_idx].max(axis=0)
        overlap = _overlap(lo_l, hi_l, lo_r, hi_r)
        union = float(_areas(lo_l, hi_l) + _areas(lo_r, hi_r)) - overlap
        if union <= 0:
            # Degenerate (zero-volume) boxes: decide by margin instead —
            # identical boxes mean a split gains nothing.
            return 1.0 if np.allclose(lo_l, lo_r) and np.allclose(hi_l, hi_r) else 0.0
        return overlap / union

    def _extend_supernode(self, node: _Node) -> None:
        node.capacity += self.capacity
        self.supernodes_created += 1
        # A supernode spans several logical pages; reading it costs more.
        pages_spanned = -(-node.capacity // self.capacity)
        self.pages.resize(node.page_id, pages_spanned * self.pages.page_size)

    def _overflow(self, node: _Node, overflown: set[int]) -> None:
        # Leaves behave exactly like in the R*-tree.
        if node.is_leaf:
            super()._overflow(node, overflown)
            return
        if node.capacity < self.capacity * self.max_supernode_factor:
            if self._split_overlap_fraction(node) > self.max_overlap:
                self._extend_supernode(node)
                return
        self._split(node, overflown)

    def _fit_capacity(self, node: _Node) -> None:
        """Right-size a (possibly super) node's capacity to its contents.

        The capacity is the smallest multiple of the base capacity that
        holds the node's entries, so ``size > capacity - base`` holds for
        every supernode — the tightness rule :meth:`check_invariants`
        asserts.  The node's logical page span shrinks (or grows)
        accordingly.
        """
        if node.is_leaf:
            return
        base = self.capacity
        fitted = max(base, base * -(-node.size // base))
        if fitted == node.capacity:
            return
        if fitted == base and node.capacity > base:
            self.supernodes_dissolved += 1
        elif fitted > base and node.capacity == base:
            self.supernodes_created += 1
        node.capacity = fitted
        pages_spanned = -(-fitted // base)
        self.pages.resize(node.page_id, pages_spanned * self.pages.page_size)

    def _split(self, node: _Node, overflown: set[int]) -> _Node:
        """R* split, then right-size both halves.

        A splitting supernode hands each half up to ``size - min_fill``
        entries — possibly still more than the base capacity — so the
        surviving node's extended capacity and the fresh sibling's base
        capacity must both be re-fitted to their actual contents (the
        sibling could otherwise be born overfull, and the survivor would
        keep paying a supernode's page span for a half-empty node).
        """
        sibling = super()._split(node, overflown)
        if not node.is_leaf:
            self._fit_capacity(node)
            self._fit_capacity(sibling)
        return sibling

    def _entry_removed(self, node: _Node) -> None:
        """Shrink supernodes whose contents fit a smaller page span again."""
        if not node.is_leaf and node.capacity > self.capacity:
            self._fit_capacity(node)

    def _check_node_capacity(self, node: _Node) -> None:
        """Supernode size rules (checked by :meth:`check_invariants`).

        Leaves always keep the base capacity.  A directory node's
        capacity is a multiple of the base capacity, bounded by
        ``max_supernode_factor``, and *tight*: a supernode spanning ``m``
        pages must hold more entries than ``m - 1`` pages could, or the
        shrink path should have reclaimed the span.
        """
        base = self.capacity
        if node.is_leaf:
            if node.capacity != base:
                raise IndexError_(f"leaf with non-base capacity {node.capacity}")
            return
        if node.capacity % base != 0 or node.capacity < base:
            raise IndexError_(
                f"directory capacity {node.capacity} is not a multiple of {base}"
            )
        if node.capacity > base * self.max_supernode_factor:
            raise IndexError_(
                f"supernode capacity {node.capacity} exceeds the "
                f"{self.max_supernode_factor}x safety cap"
            )
        if node.capacity > base and node.size <= node.capacity - base:
            raise IndexError_(
                f"loose supernode: {node.size} entries span "
                f"{node.capacity // base} pages"
            )

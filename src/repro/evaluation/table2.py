"""Table 2: runtimes of 100 sample 10-nn queries (Aircraft dataset).

Paper numbers (seconds, 100 queries, 5,000 objects, k = 7 covers):

    =====================  ========  ========  ==========
    model                  CPU time  I/O time  total time
    =====================  ========  ========  ==========
    1-Vect. (X-tree)         142.82   2632.06     2774.88
    Vect. Set w. filter      105.88    932.80     1038.68
    Vect. Set seq. scan     1025.32    806.40     1831.72
    =====================  ========  ========  ==========

I/O time is *simulated* from page/byte counts (8 ms per page, 200 ns per
byte — Section 5.4); CPU time is wall clock.  Queries honor the paper's
invariances: every query is evaluated for all 48 rotation/reflection
variants (configurable) and the per-object minimum is taken.

The expected *shape* (see DESIGN.md): the centroid filter beats the
sequential scan by roughly 10x CPU and ~2x total; the 1-vector X-tree
pays the worst I/O because the high-dimensional index degenerates and
its pages hold dummy-padded 6k-d vectors.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass

import numpy as np

from repro.core.batch import PackedSets, match_many
from repro.core.centroid import extended_centroid
from repro.core.min_matching import min_matching_distance
from repro.evaluation.experiments import extract_features, prepare_dataset
from repro.exceptions import ReproError
from repro.features.cover_sequence import transform_cover_vectors
from repro.features.vector_set_model import VectorSetModel
from repro.geometry.transform import symmetry_matrices
from repro.index.pages import PageManager
from repro.index.xtree import XTree
from repro.obs import emit, span


@dataclass
class Table2Row:
    """One access-method row of Table 2."""

    method: str
    cpu_seconds: float
    io_seconds: float
    page_accesses: int
    bytes_read: int
    exact_computations: int

    @property
    def total_seconds(self) -> float:
        return self.cpu_seconds + self.io_seconds


def _query_variants(query_set: np.ndarray, variants: int) -> list[np.ndarray]:
    """The query's vector set under the first *variants* cube symmetries
    (48 = full invariance of Definition 2; 1 = stored pose only)."""
    matrices = symmetry_matrices(include_reflections=True)
    if not 1 <= variants <= len(matrices):
        raise ReproError(f"variants must be in 1..{len(matrices)}")
    return [transform_cover_vectors(query_set, mat) for mat in matrices[:variants]]


class _TopK:
    """Exact k-nn candidate tracker keyed by object id.

    Distances for the *same* object under different query variants
    collapse to their minimum, so the pruning radius is always the true
    k-th smallest per-object distance (a duplicate-polluted heap would
    underestimate it and break correctness)."""

    def __init__(self, k_nn: int):
        self.k_nn = k_nn
        self.best: dict[int, float] = {}

    def offer(self, oid: int, dist: float) -> None:
        if oid not in self.best or dist < self.best[oid]:
            self.best[oid] = dist

    def radius(self) -> float:
        if len(self.best) < self.k_nn:
            return np.inf
        return heapq.nsmallest(self.k_nn, self.best.values())[-1]

    def results(self) -> list[tuple[int, float]]:
        return sorted(self.best.items(), key=lambda kv: (kv[1], kv[0]))[: self.k_nn]


def run_one_vector_xtree(
    padded: np.ndarray,
    queries: list[int],
    query_sets: list[np.ndarray],
    k: int,
    k_nn: int,
    variants: int,
) -> tuple[Table2Row, list[list[tuple[int, float]]]]:
    """Method 1: the one-vector cover model in a 6k-d X-tree.

    One 10-nn query = the minimum over all 48 query variants, so the
    k-nn radius is shared across variants: each variant's incremental
    ranking stops as soon as its next index distance cannot beat the
    current global k-th distance.
    """
    pages = PageManager()
    tree = XTree(padded.shape[1], page_manager=pages)
    for oid, vector in enumerate(padded):
        tree.insert(vector, oid)
    pages.reset()  # only query-time I/O counts

    results = []
    start = time.perf_counter()
    with span("table2.one_vector_xtree", queries=len(queries)):
        for qid in queries:
            before = pages.cost.copy()
            top = _TopK(k_nn)
            for variant in _query_variants(query_sets[qid], variants):
                flat = np.zeros((k, 6))
                flat[: len(variant)] = variant
                for oid, dist in tree.incremental_nearest(flat.reshape(-1)):
                    if dist >= top.radius():
                        break  # ranking ascends: variant exhausted
                    top.offer(oid, dist)
            results.append(top.results())
            emit(
                "table2_query",
                method="1-Vect. (X-tree)",
                query=int(qid),
                page_accesses=pages.cost.page_accesses - before.page_accesses,
                bytes_read=pages.cost.bytes_read - before.bytes_read,
            )
    cpu = time.perf_counter() - start
    cost = pages.reset()
    row = Table2Row(
        method="1-Vect. (X-tree)",
        cpu_seconds=cpu,
        io_seconds=cost.seconds(),
        page_accesses=cost.page_accesses,
        bytes_read=cost.bytes_read,
        exact_computations=0,
    )
    return row, results


def run_vector_set_filter(
    sets: list[np.ndarray],
    queries: list[int],
    k: int,
    k_nn: int,
    variants: int,
) -> tuple[Table2Row, list[list[tuple[int, float]]]]:
    """Method 2: centroid filter in a 6-d X-tree + matching refinement.

    Implements the optimal multi-step k-nn (Section 4.3): candidates are
    consumed from the index in ascending centroid distance; refinement
    stops when ``k * centroid_distance`` of the next candidate cannot
    beat the current k-nn radius (Lemma 2).  Every refinement loads the
    candidate's vector set (page + byte cost, no dummy padding).
    """
    pages = PageManager()
    tree = XTree(6, page_manager=pages)
    centroids = np.vstack([extended_centroid(s, k) for s in sets])
    for oid, centroid in enumerate(centroids):
        tree.insert(centroid, oid)
    # Vector sets are packed into shared 4 KiB data pages in object-id
    # order (Section 4.1: no dummy padding, so small sets pack densely).
    object_pages: list[int] = []
    current_page, used = None, 0
    for vector_set in sets:
        nbytes = len(vector_set) * 6 * 8
        if current_page is None or used + nbytes > pages.page_size:
            current_page = pages.allocate(pages.page_size)
            used = 0
        object_pages.append(current_page)
        used += nbytes
    pages.reset()

    refinements = 0
    results = []
    start = time.perf_counter()
    with span("table2.vector_set_filter", queries=len(queries)):
        for qid in queries:
            before = pages.cost.copy()
            refined_before = refinements
            top = _TopK(k_nn)
            for variant in _query_variants(sets[qid], variants):
                query_centroid = extended_centroid(variant, k)
                for oid, centroid_dist in tree.incremental_nearest(query_centroid):
                    if k * centroid_dist >= top.radius():
                        break  # Lemma 2: no later candidate can qualify
                    pages.read(object_pages[oid])
                    refinements += 1
                    top.offer(oid, min_matching_distance(variant, sets[oid]))
            results.append(top.results())
            emit(
                "table2_query",
                method="Vect. Set w. filter",
                query=int(qid),
                page_accesses=pages.cost.page_accesses - before.page_accesses,
                bytes_read=pages.cost.bytes_read - before.bytes_read,
                refinements=refinements - refined_before,
            )
    cpu = time.perf_counter() - start
    cost = pages.reset()
    row = Table2Row(
        method="Vect. Set w. filter",
        cpu_seconds=cpu,
        io_seconds=cost.seconds(),
        page_accesses=cost.page_accesses,
        bytes_read=cost.bytes_read,
        exact_computations=refinements,
    )
    return row, results


def run_vector_set_scan(
    sets: list[np.ndarray],
    queries: list[int],
    k_nn: int,
    variants: int,
) -> tuple[Table2Row, list[list[tuple[int, float]]]]:
    """Method 3: sequential scan with exact matching for every object.

    Each query reads the whole vector-set file once (the variants then
    operate in memory) and computes ``variants * n`` matching distances
    — one batched kernel call per variant against the database packed
    once up front, with the per-object minimum over variants merged via
    ``np.minimum``.
    """
    pages = PageManager()
    total_bytes = sum(len(s) * 6 * 8 for s in sets)
    packed = PackedSets.pack(sets)

    computations = 0
    results = []
    start = time.perf_counter()
    with span("table2.vector_set_scan", queries=len(queries)):
        for qid in queries:
            before = pages.cost.copy()
            pages.read_bytes(total_bytes)
            best = np.full(len(sets), np.inf)
            for variant in _query_variants(sets[qid], variants):
                computations += len(sets)
                np.minimum(best, match_many(variant, packed), out=best)
            order = np.lexsort((np.arange(len(sets)), best))[:k_nn]
            results.append([(int(oid), float(best[oid])) for oid in order])
            emit(
                "table2_query",
                method="Vect. Set seq. scan",
                query=int(qid),
                page_accesses=pages.cost.page_accesses - before.page_accesses,
                bytes_read=pages.cost.bytes_read - before.bytes_read,
            )
    cpu = time.perf_counter() - start
    cost = pages.reset()
    row = Table2Row(
        method="Vect. Set seq. scan",
        cpu_seconds=cpu,
        io_seconds=cost.seconds(),
        page_accesses=cost.page_accesses,
        bytes_read=cost.bytes_read,
        exact_computations=computations,
    )
    return row, results


def run_table2(
    n_queries: int = 10,
    k: int = 7,
    k_nn: int = 10,
    variants: int = 48,
    dataset: str = "aircraft",
    n: int | None = None,
    seed: int = 7,
    use_cache: bool = True,
) -> tuple[list[Table2Row], bool]:
    """Run the full Table 2 experiment.

    Returns the three rows plus a consistency flag: the filter method
    and the sequential scan must return identical k-nn sets (the filter
    is lossless by Lemma 2).  Defaults are scaled down from the paper's
    100 queries x 5,000 objects; pass ``n_queries=100`` and
    ``REPRO_AIRCRAFT_N=5000`` for paper scale.
    """
    bundle = prepare_dataset(dataset, resolution=15, n=n, use_cache=use_cache)
    sets = extract_features(bundle, VectorSetModel(k=k), use_cache=use_cache)
    sets = [np.asarray(s) for s in sets]
    padded = np.vstack(
        [np.vstack([s, np.zeros((k - len(s), 6))]).reshape(-1) for s in sets]
    )
    rng = np.random.default_rng(seed)
    queries = list(rng.choice(bundle.n, size=n_queries, replace=bundle.n < n_queries))

    row1, _ = run_one_vector_xtree(padded, queries, sets, k, k_nn, variants)
    row2, filter_results = run_vector_set_filter(sets, queries, k, k_nn, variants)
    row3, scan_results = run_vector_set_scan(sets, queries, k_nn, variants)

    consistent = all(
        {oid for oid, _ in a} == {oid for oid, _ in b}
        or np.isclose(max(d for _, d in a), max(d for _, d in b))
        for a, b in zip(filter_results, scan_results)
    )
    return [row1, row2, row3], consistent

"""Plain-text table rendering for experiment output."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table (floats shown with 2–4 significant
    decimals depending on magnitude)."""

    def cell(value: object) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 100:
                return f"{value:.1f}"
            if abs(value) >= 1:
                return f"{value:.2f}"
            return f"{value:.4f}"
        return str(value)

    table = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in table)) if table else len(headers[col])
        for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in table:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)

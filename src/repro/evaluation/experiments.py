"""Dataset and feature preparation with on-disk caching.

Feature extraction (greedy covers, solid-angle convolutions) and the
pairwise matching-distance matrices behind the OPTICS figures are the
expensive parts of the evaluation.  Both are deterministic functions of
(dataset, seed, resolution, model parameters), so they are cached under
``REPRO_CACHE_DIR`` (default: ``.repro_cache/`` in the working
directory) and reused across test/benchmark runs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.permutation import permutation_distance_via_matching
from repro.datasets.aircraft import default_aircraft_size, make_aircraft_dataset
from repro.datasets.car import make_car_dataset
from repro.exceptions import ReproError
from repro.features.base import FeatureModel
from repro.features.cover_sequence import CoverSequenceModel
from repro.features.solid_angle import SolidAngleModel
from repro.features.vector_set_model import VectorSetModel
from repro.features.volume import VolumeModel
from repro.pipeline import Pipeline, ProcessedObject


def cache_dir() -> Path:
    """The feature/distance cache directory (created on demand)."""
    root = Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache"))
    root.mkdir(parents=True, exist_ok=True)
    return root


@dataclass
class DatasetBundle:
    """A prepared dataset: processed objects plus ground-truth labels."""

    dataset: str
    resolution: int
    objects: list[ProcessedObject]
    labels: np.ndarray

    @property
    def n(self) -> int:
        return len(self.objects)

    def grids(self):
        return [obj.grid for obj in self.objects]


def _generate_parts(dataset: str, n: int | None, seed: int):
    if dataset == "car":
        return make_car_dataset(seed=seed)
    if dataset == "aircraft":
        return make_aircraft_dataset(n=n, seed=seed)
    raise ReproError(f"unknown dataset {dataset!r} (use 'car' or 'aircraft')")


def prepare_dataset(
    dataset: str,
    resolution: int = 15,
    n: int | None = None,
    seed: int | None = None,
    use_cache: bool = True,
) -> DatasetBundle:
    """Generate, voxelize and normalize a dataset (cached on disk)."""
    if seed is None:
        seed = 2003 if dataset == "car" else 1903
    if dataset == "aircraft" and n is None:
        n = default_aircraft_size()
    key = f"{dataset}_r{resolution}_n{n or 'std'}_s{seed}"
    path = cache_dir() / f"grids_{key}.npz"
    pipeline = Pipeline(resolution=resolution)

    if use_cache and path.exists():
        with np.load(path, allow_pickle=False) as data:
            labels = data["labels"]
            packed = data["packed"]
            names = [str(s) for s in data["names"]]
            families = [str(s) for s in data["families"]]
            scales = data["scales"]
        from repro.normalize.pose import PoseInfo
        from repro.voxel.grid import VoxelGrid

        objects = []
        n_voxels = resolution**3
        for i in range(len(labels)):
            occupancy = np.unpackbits(packed[i], count=n_voxels).astype(bool)
            objects.append(
                ProcessedObject(
                    name=names[i],
                    family=families[i],
                    class_id=int(labels[i]),
                    grid=VoxelGrid(occupancy.reshape((resolution,) * 3)),
                    pose=PoseInfo(tuple(scales[i]), (0, 0, 0)),
                )
            )
        return DatasetBundle(dataset, resolution, objects, labels)

    parts, labels = _generate_parts(dataset, n, seed)
    objects = pipeline.process_parts(parts)
    if use_cache:
        np.savez_compressed(
            path,
            labels=labels,
            packed=np.stack([np.packbits(obj.grid.occupancy) for obj in objects]),
            names=np.array([obj.name for obj in objects]),
            families=np.array([obj.family for obj in objects]),
            scales=np.array([obj.pose.scale_factors for obj in objects]),
        )
    return DatasetBundle(dataset, resolution, objects, np.asarray(labels))


# -- canonical model configurations (the paper's settings) --------------------


def paper_model(name: str, k: int = 7, partitions: int = 5) -> FeatureModel:
    """The model configurations used in Section 5.

    ``volume`` / ``solid-angle`` run on r = 30 histograms; ``cover`` and
    ``vector-set`` on r = 15 with k covers.
    """
    if name == "volume":
        return VolumeModel(partitions=partitions)
    if name == "solid-angle":
        return SolidAngleModel(partitions=partitions, kernel_radius=4)
    if name == "cover":
        return CoverSequenceModel(k=k)
    if name == "vector-set":
        return VectorSetModel(k=k)
    raise ReproError(f"unknown model {name!r}")


def model_resolution(name: str) -> int:
    """The raster resolution the paper pairs with each model."""
    return 30 if name in ("volume", "solid-angle") else 15


def extract_features(
    bundle: DatasetBundle,
    model: FeatureModel,
    use_cache: bool = True,
    n_jobs: int | None = None,
) -> list[np.ndarray]:
    """Extract one feature array per object.

    Goes through the content-addressed per-object cache of
    :mod:`repro.features.cache` (keyed on occupancy bits + model
    parameters), so features are shared between datasets, subsets and
    runs that contain the same object — not just exact repetitions of
    one aggregate (dataset, n, model) tuple as the earlier whole-bundle
    ``.npz`` cache required.  ``n_jobs`` fans extraction of cache misses
    out over the shared process pool.
    """
    from repro.features.cache import FeatureCache

    cache = FeatureCache(enabled=use_cache)
    features = model.extract_many(bundle.grids(), n_jobs=n_jobs, cache=cache)
    cache.flush_stats()
    return features


# -- pairwise distance matrices ------------------------------------------------


def distance_matrix_for(
    bundle: DatasetBundle,
    features: list[np.ndarray],
    kind: str,
    cache_tag: str | None = None,
    use_cache: bool = True,
    n_jobs: int | None = None,
) -> tuple[np.ndarray, np.ndarray | None]:
    """Pairwise distances (and permutation flags for matching kinds).

    Parameters
    ----------
    kind:
        ``"euclidean"`` — flat feature vectors, vectorized;
        ``"matching"`` — minimal matching distance on vector sets
        (Euclidean elements, norm weights), computed through the batched
        kernel of :mod:`repro.core.batch`;
        ``"permutation"`` — minimum Euclidean distance under permutation
        computed via the matching reduction.
    n_jobs:
        Worker processes for the ``"matching"`` kind (default: serial).

    Returns
    -------
    ``(matrix, proper_permutation)`` where the flag matrix marks pairs
    whose optimal matching was *not* the identity alignment (None for
    the euclidean kind) — the statistic behind Table 1.
    """
    if cache_tag and use_cache:
        path = cache_dir() / f"dist_{cache_tag}.npz"
        if path.exists():
            with np.load(path) as data:
                flags = data["flags"] if "flags" in data else None
                return data["matrix"], flags
    n = len(features)
    matrix = np.zeros((n, n))
    flags: np.ndarray | None = None

    if kind == "euclidean":
        from repro.core.min_matching import euclidean_cross

        flat = np.vstack([np.asarray(f, dtype=float).ravel() for f in features])
        matrix = euclidean_cross(flat, flat)
    elif kind == "matching":
        from repro.core.batch import pairwise_matrix

        matrix, flags = pairwise_matrix(features, n_jobs=n_jobs, return_flags=True)
    elif kind == "permutation":
        flags = np.zeros((n, n), dtype=bool)
        for i in range(n):
            for j in range(i + 1, n):
                value = permutation_distance_via_matching(features[i], features[j])
                matrix[i, j] = matrix[j, i] = value
        flags = None
    else:
        raise ReproError(f"unknown distance kind {kind!r}")

    if cache_tag and use_cache:
        payload = {"matrix": matrix}
        if flags is not None:
            payload["flags"] = flags
        np.savez_compressed(cache_dir() / f"dist_{cache_tag}.npz", **payload)
    return matrix, flags

"""Leave-one-out k-nn classification: an objective retrieval experiment.

Section 5.2 criticizes sample k-nn queries as a subjective evaluation
("dependent on the choice of the query objects") and replaces them by
clustering.  With ground-truth labels a third option exists that keeps
the k-nn setting *and* objectivity: leave-one-out family classification.
Every labeled object queries the database (excluding itself); the
majority family among its k nearest neighbors is the prediction.  The
resulting accuracy is a retrieval-quality score per similarity model
that uses every object as a query — no cherry-picking possible.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ReproError


@dataclass(frozen=True)
class KnnQualityResult:
    """Outcome of a leave-one-out k-nn classification run."""

    model: str
    accuracy: float
    n_queries: int
    k: int
    per_family: dict[str, float]


def leave_one_out_accuracy(
    distance_matrix: np.ndarray,
    labels: np.ndarray,
    families: list[str],
    k: int = 5,
    model_name: str = "",
) -> KnnQualityResult:
    """Classify every labeled object by its k nearest neighbors.

    Noise objects (negative labels) are excluded as queries — they have
    no family to predict — but remain in the database as distractors,
    exactly like the paper's unclassifiable one-off parts.
    """
    matrix = np.asarray(distance_matrix, dtype=float)
    labels = np.asarray(labels)
    n = len(labels)
    if matrix.shape != (n, n):
        raise ReproError("distance matrix and labels disagree in size")
    if not 1 <= k < n:
        raise ReproError("need 1 <= k < n")

    correct_by_family: Counter[str] = Counter()
    total_by_family: Counter[str] = Counter()
    for query in range(n):
        if labels[query] < 0:
            continue  # noise objects are distractors, not queries
        distances = matrix[query].copy()
        distances[query] = np.inf  # leave-one-out
        neighbors = np.argpartition(distances, k)[:k]
        neighbor_families = [
            families[int(i)] for i in neighbors if labels[int(i)] >= 0
        ]
        family = families[query]
        total_by_family[family] += 1
        if neighbor_families:
            predicted, _ = Counter(neighbor_families).most_common(1)[0]
            if predicted == family:
                correct_by_family[family] += 1

    total = sum(total_by_family.values())
    correct = sum(correct_by_family.values())
    per_family = {
        family: correct_by_family[family] / count
        for family, count in sorted(total_by_family.items())
    }
    return KnnQualityResult(
        model=model_name,
        accuracy=correct / total if total else 0.0,
        n_queries=total,
        k=k,
        per_family=per_family,
    )

"""Figures 5–10: reachability-plot experiments.

Each panel of Figures 6–9 is an OPTICS run of one (model, dataset)
combination; Figure 10 inspects the classes found in the Car dataset's
plots.  The paper judges the plots visually; since our synthetic data
has ground-truth labels we additionally report, per panel,

* the best adjusted Rand index over all eps cuts (can the model's plot
  be cut into the true classes at all?),
* the label-free structure contrast of the plot,

so the paper's qualitative ranking (volume < solid-angle < cover
sequence < vector set) becomes a measurable ordering.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clustering.optics import ClusterOrdering, distance_rows_from_matrix, optics
from repro.clustering.quality import best_cut_quality, structure_contrast
from repro.clustering.reachability import extract_clusters, render_reachability_plot
from repro.evaluation.experiments import (
    DatasetBundle,
    distance_matrix_for,
    extract_features,
    model_resolution,
    paper_model,
    prepare_dataset,
)
from repro.exceptions import ReproError


@dataclass
class PanelResult:
    """One reachability-plot panel with its quality scores."""

    figure: str
    dataset: str
    model: str
    ordering: ClusterOrdering
    best_ari: float
    best_eps: float
    contrast: float

    def render(self, height: int = 10, width: int = 100) -> str:
        title = (
            f"{self.figure} [{self.dataset} / {self.model}] "
            f"best-ARI={self.best_ari:.3f} contrast={self.contrast:.3f}"
        )
        return render_reachability_plot(
            self.ordering, height=height, max_width=width, title=title
        )


#: Figure -> (model name, distance kind, cover count or None).
FIGURE_PANELS: dict[str, tuple[str, str, int | None]] = {
    "fig6-volume": ("volume", "euclidean", None),
    "fig6-solid-angle": ("solid-angle", "euclidean", None),
    "fig7-cover": ("cover", "euclidean", 7),
    "fig8-cover-permutation": ("vector-set", "permutation", 7),
    "fig9-vector-set-3": ("vector-set", "matching", 3),
    "fig9-vector-set-7": ("vector-set", "matching", 7),
}


def run_panel(
    figure: str,
    dataset: str,
    n: int | None = None,
    min_pts: int = 5,
    use_cache: bool = True,
) -> PanelResult:
    """Run one (figure, dataset) reachability-plot panel."""
    try:
        model_name, kind, k = FIGURE_PANELS[figure]
    except KeyError:
        raise ReproError(
            f"unknown figure {figure!r}; choose from {sorted(FIGURE_PANELS)}"
        ) from None
    resolution = model_resolution(model_name)
    bundle = prepare_dataset(dataset, resolution=resolution, n=n, use_cache=use_cache)
    model = paper_model(model_name, k=k or 7)
    features = extract_features(bundle, model, use_cache=use_cache)
    tag = f"{figure}_{dataset}_n{bundle.n}"
    matrix, _ = distance_matrix_for(
        bundle, features, kind=kind, cache_tag=tag, use_cache=use_cache
    )
    ordering = optics(bundle.n, distance_rows_from_matrix(matrix), min_pts=min_pts)
    ari, eps = best_cut_quality(ordering, bundle.labels)
    return PanelResult(
        figure=figure,
        dataset=dataset,
        model=model.name if k is None else f"{model.name}",
        ordering=ordering,
        best_ari=ari,
        best_eps=eps,
        contrast=structure_contrast(ordering),
    )


def run_figure(
    figure_prefix: str,
    datasets: tuple[str, ...] = ("car", "aircraft"),
    n: int | None = None,
    use_cache: bool = True,
) -> list[PanelResult]:
    """All panels of one figure (e.g. ``"fig6"``) across datasets."""
    panels = [name for name in FIGURE_PANELS if name.startswith(figure_prefix)]
    if not panels:
        raise ReproError(f"no panels match prefix {figure_prefix!r}")
    return [
        run_panel(panel, dataset, n=n, use_cache=use_cache)
        for panel in sorted(panels)
        for dataset in datasets
    ]


# -- Figure 10: class evaluation ------------------------------------------------


@dataclass
class ClassEvaluation:
    """Figure 10 for one model: the clusters found at the best cut and
    their family composition."""

    model: str
    eps: float
    clusters: list[dict[str, int]]  # per cluster: family -> member count
    n_noise: int
    ari: float


def figure10_class_evaluation(
    figures: tuple[str, ...] = ("fig6-solid-angle", "fig7-cover", "fig9-vector-set-7"),
    dataset: str = "car",
    n: int | None = None,
    use_cache: bool = True,
) -> list[ClassEvaluation]:
    """Reproduce Figure 10: which part families the clusters contain,
    per model, on the Car dataset."""
    evaluations = []
    for figure in figures:
        panel = run_panel(figure, dataset, n=n, use_cache=use_cache)
        bundle = prepare_dataset(
            dataset,
            resolution=model_resolution(FIGURE_PANELS[figure][0]),
            n=n,
            use_cache=use_cache,
        )
        clusters, noise = extract_clusters(panel.ordering, panel.best_eps)
        families = [obj.family for obj in bundle.objects]
        composition = []
        for members in clusters:
            counts: dict[str, int] = {}
            for member in members:
                counts[families[member]] = counts.get(families[member], 0) + 1
            composition.append(dict(sorted(counts.items(), key=lambda kv: -kv[1])))
        evaluations.append(
            ClassEvaluation(
                model=panel.model,
                eps=panel.best_eps,
                clusters=composition,
                n_noise=len(noise),
                ari=panel.best_ari,
            )
        )
    return evaluations


def figure5_demo(seed: int = 42, min_pts: int = 5) -> PanelResult:
    """Figure 5: OPTICS on a sample 2-D dataset with nested clusters."""
    rng = np.random.default_rng(seed)
    cluster_a1 = rng.normal(loc=(0.0, 0.0), scale=0.04, size=(40, 2))
    cluster_a2 = rng.normal(loc=(0.35, 0.05), scale=0.05, size=(40, 2))
    cluster_b = rng.normal(loc=(1.2, 0.8), scale=0.10, size=(50, 2))
    noise = rng.uniform(-0.4, 1.8, size=(15, 2))
    points = np.vstack([cluster_a1, cluster_a2, cluster_b, noise])
    labels = np.array([0] * 40 + [1] * 40 + [2] * 50 + [-i - 1 for i in range(15)])
    diff = points[:, np.newaxis, :] - points[np.newaxis, :, :]
    matrix = np.sqrt(np.sum(diff * diff, axis=2))
    ordering = optics(len(points), distance_rows_from_matrix(matrix), min_pts=min_pts)
    ari, eps = best_cut_quality(ordering, labels)
    return PanelResult(
        figure="fig5-demo",
        dataset="2d-sample",
        model="euclidean",
        ordering=ordering,
        best_ari=ari,
        best_eps=eps,
        contrast=structure_contrast(ordering),
    )

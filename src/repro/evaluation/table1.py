"""Table 1: percentage of proper permutations.

"In most of all distance calculations carried out during an OPTICS run
there was at least one permutation necessary to compute the minimal
matching distance" — Table 1 reports, per cover count k, the share of
minimal-matching computations whose optimal matching is *not* the
identity alignment (i.e. not the greedy/volume-ranked cover order).

Paper values (Car dataset):  k=3: 68.2 %, k=5: 95.1 %, k=7: 99.0 %,
k=9: 99.4 %.

We count the statistic over exactly the distance computations an OPTICS
run performs (every processed object computes its full distance row, so
all ordered pairs are evaluated once), using the cached pair flags from
:func:`repro.evaluation.experiments.distance_matrix_for`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clustering.optics import distance_rows_from_matrix, optics
from repro.evaluation.experiments import (
    DatasetBundle,
    distance_matrix_for,
    extract_features,
    prepare_dataset,
)
from repro.features.vector_set_model import VectorSetModel


@dataclass(frozen=True)
class PermutationRateRow:
    """One row of Table 1."""

    covers: int
    permutation_rate: float  # fraction in [0, 1]
    pairs_counted: int
    mean_set_size: float


def permutation_rate_for_k(
    bundle: DatasetBundle, k: int, use_cache: bool = True
) -> PermutationRateRow:
    """Compute the proper-permutation rate for one cover count."""
    model = VectorSetModel(k=k)
    features = extract_features(bundle, model, use_cache=use_cache)
    tag = f"table1_{bundle.dataset}_n{bundle.n}_k{k}"
    matrix, flags = distance_matrix_for(
        bundle, features, kind="matching", cache_tag=tag, use_cache=use_cache
    )
    assert flags is not None
    # Run OPTICS so the statistic covers a real clustering run (it
    # evaluates every ordered pair once via full distance rows).
    optics(bundle.n, distance_rows_from_matrix(matrix), min_pts=5)
    upper = np.triu_indices(bundle.n, 1)
    rate = float(flags[upper].mean())
    sizes = np.array([len(f) for f in features], dtype=float)
    return PermutationRateRow(
        covers=k,
        permutation_rate=rate,
        pairs_counted=len(upper[0]),
        mean_set_size=float(sizes.mean()),
    )


def run_table1(
    ks: tuple[int, ...] = (3, 5, 7, 9),
    dataset: str = "car",
    use_cache: bool = True,
) -> list[PermutationRateRow]:
    """Reproduce Table 1 on the (synthetic) Car dataset."""
    bundle = prepare_dataset(dataset, resolution=15, use_cache=use_cache)
    return [permutation_rate_for_k(bundle, k, use_cache=use_cache) for k in ks]

"""Evaluation harness: the paper's tables and figures as runnable code.

Every experiment in Section 5 has a driver here; the ``benchmarks/``
suite calls these drivers and prints the same rows/series the paper
reports (see EXPERIMENTS.md for paper-vs-measured numbers).

* :mod:`repro.evaluation.experiments` — dataset/feature preparation with
  on-disk caching,
* :mod:`repro.evaluation.figures` — reachability-plot experiments
  (Figures 5–10),
* :mod:`repro.evaluation.table1` — permutation-rate statistics,
* :mod:`repro.evaluation.table2` — the 10-nn efficiency experiment,
* :mod:`repro.evaluation.report` — plain-text table rendering.
"""

from repro.evaluation.experiments import (
    DatasetBundle,
    distance_matrix_for,
    extract_features,
    paper_model,
    prepare_dataset,
)
from repro.evaluation.knn_quality import KnnQualityResult, leave_one_out_accuracy
from repro.evaluation.report import format_table

__all__ = [
    "prepare_dataset",
    "DatasetBundle",
    "distance_matrix_for",
    "extract_features",
    "paper_model",
    "format_table",
    "leave_one_out_accuracy",
    "KnnQualityResult",
]

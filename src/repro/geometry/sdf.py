"""Exact solid-membership predicates used for voxelizing parametric parts.

The synthetic CAD datasets describe parts as boolean combinations of
analytic solids.  Evaluating the membership predicate at voxel centers
gives an exact, sampling-noise-free voxelization (cf. DESIGN.md), which is
important because the paper's feature models are sensitive to stray
voxels.

Every solid implements

* :meth:`Solid.contains` — vectorized point membership,
* :meth:`Solid.bounds` — a conservative axis-aligned bounding box.

Solids compose with ``|`` (union), ``&`` (intersection) and ``-``
(difference), and can be positioned with :meth:`Solid.transformed`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.exceptions import GeometryError
from repro.geometry.transform import Transform


class Solid(ABC):
    """A closed subset of R^3 described by a membership predicate."""

    @abstractmethod
    def contains(self, points: np.ndarray) -> np.ndarray:
        """Return a boolean array marking which of the ``(n, 3)`` *points*
        lie inside (or on the boundary of) the solid."""

    @abstractmethod
    def bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(lower, upper)`` corners of a bounding box."""

    # -- composition ----------------------------------------------------

    def __or__(self, other: "Solid") -> "Union":
        return Union(self, other)

    def __and__(self, other: "Solid") -> "Intersection":
        return Intersection(self, other)

    def __sub__(self, other: "Solid") -> "Difference":
        return Difference(self, other)

    def transformed(self, transform: Transform) -> "Transformed":
        """Return this solid placed by *transform* (applied to the solid)."""
        return Transformed(self, transform)

    def translated(self, offset: np.ndarray) -> "Transformed":
        return self.transformed(Transform.translation(offset))

    def rotated(self, axis: str | np.ndarray, angle: float) -> "Transformed":
        return self.transformed(Transform.rotation(axis, angle))


def _as_points(points: np.ndarray) -> np.ndarray:
    pts = np.asarray(points, dtype=float)
    if pts.ndim == 1:
        pts = pts[np.newaxis, :]
    if pts.ndim != 2 or pts.shape[1] != 3:
        raise GeometryError(f"expected (n, 3) points, got shape {pts.shape}")
    return pts


@dataclass(frozen=True)
class Box(Solid):
    """Axis-aligned box centered at *center* with full side lengths *size*."""

    center: tuple[float, float, float] = (0.0, 0.0, 0.0)
    size: tuple[float, float, float] = (1.0, 1.0, 1.0)

    def __post_init__(self) -> None:
        if min(self.size) <= 0:
            raise GeometryError("box size must be positive in every dimension")

    def contains(self, points: np.ndarray) -> np.ndarray:
        pts = _as_points(points)
        half = np.asarray(self.size) / 2.0
        return np.all(np.abs(pts - np.asarray(self.center)) <= half, axis=1)

    def bounds(self) -> tuple[np.ndarray, np.ndarray]:
        center = np.asarray(self.center, dtype=float)
        half = np.asarray(self.size, dtype=float) / 2.0
        return center - half, center + half


@dataclass(frozen=True)
class Sphere(Solid):
    """Ball of given *radius* centered at *center*."""

    center: tuple[float, float, float] = (0.0, 0.0, 0.0)
    radius: float = 0.5

    def __post_init__(self) -> None:
        if self.radius <= 0:
            raise GeometryError("sphere radius must be positive")

    def contains(self, points: np.ndarray) -> np.ndarray:
        pts = _as_points(points)
        return np.sum((pts - np.asarray(self.center)) ** 2, axis=1) <= self.radius**2

    def bounds(self) -> tuple[np.ndarray, np.ndarray]:
        center = np.asarray(self.center, dtype=float)
        return center - self.radius, center + self.radius


@dataclass(frozen=True)
class Ellipsoid(Solid):
    """Axis-aligned ellipsoid with semi-axes *radii* centered at *center*."""

    center: tuple[float, float, float] = (0.0, 0.0, 0.0)
    radii: tuple[float, float, float] = (0.5, 0.5, 0.5)

    def __post_init__(self) -> None:
        if min(self.radii) <= 0:
            raise GeometryError("ellipsoid radii must be positive")

    def contains(self, points: np.ndarray) -> np.ndarray:
        pts = _as_points(points)
        scaled = (pts - np.asarray(self.center)) / np.asarray(self.radii)
        return np.sum(scaled**2, axis=1) <= 1.0

    def bounds(self) -> tuple[np.ndarray, np.ndarray]:
        center = np.asarray(self.center, dtype=float)
        radii = np.asarray(self.radii, dtype=float)
        return center - radii, center + radii


@dataclass(frozen=True)
class Cylinder(Solid):
    """Solid cylinder along *axis* (``"x" | "y" | "z"``).

    Parameters
    ----------
    center:
        Center of the cylinder (midpoint of the axis segment).
    radius:
        Cylinder radius.
    height:
        Full height along the axis.
    axis:
        Axis name; defaults to ``"z"``.
    inner_radius:
        Optional inner radius; a positive value produces a tube/annulus
        (used for tires, bushings, washers and nuts in the datasets).
    """

    center: tuple[float, float, float] = (0.0, 0.0, 0.0)
    radius: float = 0.5
    height: float = 1.0
    axis: str = "z"
    inner_radius: float = 0.0

    def __post_init__(self) -> None:
        if self.radius <= 0 or self.height <= 0:
            raise GeometryError("cylinder radius and height must be positive")
        if not 0 <= self.inner_radius < self.radius:
            raise GeometryError("inner radius must satisfy 0 <= inner < radius")
        if self.axis not in ("x", "y", "z"):
            raise GeometryError(f"unknown axis name: {self.axis!r}")

    def _axis_index(self) -> int:
        return "xyz".index(self.axis)

    def contains(self, points: np.ndarray) -> np.ndarray:
        pts = _as_points(points) - np.asarray(self.center)
        k = self._axis_index()
        axial = np.abs(pts[:, k]) <= self.height / 2.0
        radial_sq = np.sum(np.delete(pts, k, axis=1) ** 2, axis=1)
        inside = radial_sq <= self.radius**2
        if self.inner_radius > 0:
            inside &= radial_sq >= self.inner_radius**2
        return axial & inside

    def bounds(self) -> tuple[np.ndarray, np.ndarray]:
        center = np.asarray(self.center, dtype=float)
        k = self._axis_index()
        half = np.full(3, self.radius)
        half[k] = self.height / 2.0
        return center - half, center + half


@dataclass(frozen=True)
class Capsule(Solid):
    """Cylinder with hemispherical caps along *axis* — bolts and rivets."""

    center: tuple[float, float, float] = (0.0, 0.0, 0.0)
    radius: float = 0.25
    height: float = 1.0
    axis: str = "z"

    def __post_init__(self) -> None:
        if self.radius <= 0 or self.height < 0:
            raise GeometryError("capsule radius must be positive, height non-negative")
        if self.axis not in ("x", "y", "z"):
            raise GeometryError(f"unknown axis name: {self.axis!r}")

    def contains(self, points: np.ndarray) -> np.ndarray:
        pts = _as_points(points) - np.asarray(self.center)
        k = "xyz".index(self.axis)
        axial = pts[:, k]
        clamped = np.clip(axial, -self.height / 2.0, self.height / 2.0)
        pts = pts.copy()
        pts[:, k] = axial - clamped
        return np.sum(pts**2, axis=1) <= self.radius**2

    def bounds(self) -> tuple[np.ndarray, np.ndarray]:
        center = np.asarray(self.center, dtype=float)
        k = "xyz".index(self.axis)
        half = np.full(3, self.radius)
        half[k] = self.height / 2.0 + self.radius
        return center - half, center + half


@dataclass(frozen=True)
class Cone(Solid):
    """Solid cone along *axis*, apex at the +axis end."""

    center: tuple[float, float, float] = (0.0, 0.0, 0.0)
    radius: float = 0.5
    height: float = 1.0
    axis: str = "z"

    def __post_init__(self) -> None:
        if self.radius <= 0 or self.height <= 0:
            raise GeometryError("cone radius and height must be positive")
        if self.axis not in ("x", "y", "z"):
            raise GeometryError(f"unknown axis name: {self.axis!r}")

    def contains(self, points: np.ndarray) -> np.ndarray:
        pts = _as_points(points) - np.asarray(self.center)
        k = "xyz".index(self.axis)
        # Axial coordinate measured from the base (-height/2) upward.
        t = (pts[:, k] + self.height / 2.0) / self.height
        axial = (t >= 0.0) & (t <= 1.0)
        allowed = self.radius * (1.0 - np.clip(t, 0.0, 1.0))
        radial_sq = np.sum(np.delete(pts, k, axis=1) ** 2, axis=1)
        return axial & (radial_sq <= allowed**2)

    def bounds(self) -> tuple[np.ndarray, np.ndarray]:
        center = np.asarray(self.center, dtype=float)
        k = "xyz".index(self.axis)
        half = np.full(3, self.radius)
        half[k] = self.height / 2.0
        return center - half, center + half


@dataclass(frozen=True)
class Torus(Solid):
    """Solid torus in the plane normal to *axis* — tires and o-rings.

    *major_radius* is the distance from the torus center to the tube
    center, *minor_radius* the tube radius.
    """

    center: tuple[float, float, float] = (0.0, 0.0, 0.0)
    major_radius: float = 1.0
    minor_radius: float = 0.25
    axis: str = "z"

    def __post_init__(self) -> None:
        if self.minor_radius <= 0 or self.major_radius <= 0:
            raise GeometryError("torus radii must be positive")
        if self.axis not in ("x", "y", "z"):
            raise GeometryError(f"unknown axis name: {self.axis!r}")

    def contains(self, points: np.ndarray) -> np.ndarray:
        pts = _as_points(points) - np.asarray(self.center)
        k = "xyz".index(self.axis)
        axial = pts[:, k]
        planar = np.sqrt(np.sum(np.delete(pts, k, axis=1) ** 2, axis=1))
        return (planar - self.major_radius) ** 2 + axial**2 <= self.minor_radius**2

    def bounds(self) -> tuple[np.ndarray, np.ndarray]:
        center = np.asarray(self.center, dtype=float)
        k = "xyz".index(self.axis)
        half = np.full(3, self.major_radius + self.minor_radius)
        half[k] = self.minor_radius
        return center - half, center + half


@dataclass(frozen=True)
class Union(Solid):
    """Set union of two solids."""

    left: Solid
    right: Solid

    def contains(self, points: np.ndarray) -> np.ndarray:
        return self.left.contains(points) | self.right.contains(points)

    def bounds(self) -> tuple[np.ndarray, np.ndarray]:
        lo_l, hi_l = self.left.bounds()
        lo_r, hi_r = self.right.bounds()
        return np.minimum(lo_l, lo_r), np.maximum(hi_l, hi_r)


@dataclass(frozen=True)
class Intersection(Solid):
    """Set intersection of two solids."""

    left: Solid
    right: Solid

    def contains(self, points: np.ndarray) -> np.ndarray:
        return self.left.contains(points) & self.right.contains(points)

    def bounds(self) -> tuple[np.ndarray, np.ndarray]:
        lo_l, hi_l = self.left.bounds()
        lo_r, hi_r = self.right.bounds()
        return np.maximum(lo_l, lo_r), np.minimum(hi_l, hi_r)


@dataclass(frozen=True)
class Difference(Solid):
    """Set difference ``left - right``."""

    left: Solid
    right: Solid

    def contains(self, points: np.ndarray) -> np.ndarray:
        return self.left.contains(points) & ~self.right.contains(points)

    def bounds(self) -> tuple[np.ndarray, np.ndarray]:
        return self.left.bounds()


@dataclass(frozen=True)
class Transformed(Solid):
    """A solid placed by an affine transform.

    Membership is evaluated by pulling query points back through the
    inverse transform; bounds are the transformed corner hull.
    """

    solid: Solid
    transform: Transform

    def contains(self, points: np.ndarray) -> np.ndarray:
        inverse = self.transform.inverse()
        return self.solid.contains(inverse.apply(_as_points(points)))

    def bounds(self) -> tuple[np.ndarray, np.ndarray]:
        lo, hi = self.solid.bounds()
        corners = np.array(
            [[x, y, z] for x in (lo[0], hi[0]) for y in (lo[1], hi[1]) for z in (lo[2], hi[2])]
        )
        moved = self.transform.apply(corners)
        return moved.min(axis=0), moved.max(axis=0)


def union_all(solids: list[Solid]) -> Solid:
    """Union an arbitrary non-empty list of solids."""
    if not solids:
        raise GeometryError("union_all requires at least one solid")
    result = solids[0]
    for solid in solids[1:]:
        result = result | solid
    return result

"""Geometry substrate: triangle meshes, solids and affine transforms.

This subpackage provides the raw-geometry layer under the voxelization
pipeline of the paper.  CAD parts can either be described as
:class:`~repro.geometry.sdf.Solid` objects (exact point-membership
predicates, used by the synthetic datasets) or as
:class:`~repro.geometry.mesh.TriangleMesh` objects (used for OFF/STL
input).  Both can be voxelized by :mod:`repro.voxel`.
"""

from repro.geometry.mesh import TriangleMesh
from repro.geometry.sdf import (
    Box,
    Capsule,
    Cone,
    Cylinder,
    Difference,
    Ellipsoid,
    Intersection,
    Solid,
    Sphere,
    Torus,
    Transformed,
    Union,
)
from repro.geometry.transform import (
    Transform,
    reflection_matrix,
    rotation_matrix,
    rotation_matrices_90,
    symmetry_matrices,
)

__all__ = [
    "TriangleMesh",
    "Solid",
    "Box",
    "Sphere",
    "Ellipsoid",
    "Cylinder",
    "Capsule",
    "Cone",
    "Torus",
    "Union",
    "Intersection",
    "Difference",
    "Transformed",
    "Transform",
    "rotation_matrix",
    "reflection_matrix",
    "rotation_matrices_90",
    "symmetry_matrices",
]

"""Triangle meshes: the boundary representation used for OFF/STL input.

The paper's pipeline starts from CAD surfaces that have been voxelized.
When parts come in as triangle meshes (rather than as analytic solids),
:class:`TriangleMesh` carries the raw geometry through transformation and
into :func:`repro.voxel.voxelize.voxelize_mesh`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import GeometryError
from repro.geometry.transform import Transform


@dataclass
class TriangleMesh:
    """An indexed triangle mesh.

    Attributes
    ----------
    vertices:
        ``(n, 3)`` float array of vertex positions.
    faces:
        ``(m, 3)`` int array of vertex indices, counter-clockwise when
        viewed from outside.
    """

    vertices: np.ndarray
    faces: np.ndarray

    def __post_init__(self) -> None:
        self.vertices = np.asarray(self.vertices, dtype=float)
        self.faces = np.asarray(self.faces, dtype=int)
        if self.vertices.ndim != 2 or self.vertices.shape[1] != 3:
            raise GeometryError(f"vertices must be (n, 3), got {self.vertices.shape}")
        if self.faces.ndim != 2 or self.faces.shape[1] != 3:
            raise GeometryError(f"faces must be (m, 3), got {self.faces.shape}")
        if len(self.faces) and (self.faces.min() < 0 or self.faces.max() >= len(self.vertices)):
            raise GeometryError("face indices out of range")

    # -- basic queries ---------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return len(self.vertices)

    @property
    def num_faces(self) -> int:
        return len(self.faces)

    def bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """Axis-aligned bounding box as ``(lower, upper)``."""
        if not len(self.vertices):
            raise GeometryError("empty mesh has no bounds")
        return self.vertices.min(axis=0), self.vertices.max(axis=0)

    def triangles(self) -> np.ndarray:
        """Return the ``(m, 3, 3)`` array of triangle corner positions."""
        return self.vertices[self.faces]

    def triangle_areas(self) -> np.ndarray:
        """Per-face area."""
        tri = self.triangles()
        cross = np.cross(tri[:, 1] - tri[:, 0], tri[:, 2] - tri[:, 0])
        return 0.5 * np.linalg.norm(cross, axis=1)

    def surface_area(self) -> float:
        return float(self.triangle_areas().sum())

    def centroid(self) -> np.ndarray:
        """Area-weighted surface centroid."""
        tri = self.triangles()
        centers = tri.mean(axis=1)
        areas = self.triangle_areas()
        total = areas.sum()
        if total == 0:
            return self.vertices.mean(axis=0)
        return (centers * areas[:, np.newaxis]).sum(axis=0) / total

    # -- transformation --------------------------------------------------

    def transformed(self, transform: Transform) -> "TriangleMesh":
        """Return a new mesh with *transform* applied to every vertex."""
        return TriangleMesh(transform.apply(self.vertices), self.faces.copy())

    def translated(self, offset: np.ndarray) -> "TriangleMesh":
        return self.transformed(Transform.translation(offset))

    def scaled(self, factors: float | np.ndarray) -> "TriangleMesh":
        return self.transformed(Transform.scaling(factors))

    def merged(self, other: "TriangleMesh") -> "TriangleMesh":
        """Concatenate two meshes into one (no welding)."""
        vertices = np.vstack([self.vertices, other.vertices])
        faces = np.vstack([self.faces, other.faces + len(self.vertices)])
        return TriangleMesh(vertices, faces)

    # -- validation ------------------------------------------------------

    def degenerate_faces(self, tolerance: float = 1e-12) -> np.ndarray:
        """Indices of faces with (numerically) zero area."""
        return np.nonzero(self.triangle_areas() <= tolerance)[0]

    def validate(self) -> None:
        """Raise :class:`GeometryError` on structural problems."""
        if not len(self.vertices):
            raise GeometryError("mesh has no vertices")
        if not len(self.faces):
            raise GeometryError("mesh has no faces")
        if not np.all(np.isfinite(self.vertices)):
            raise GeometryError("mesh contains non-finite vertices")
        degenerate = self.degenerate_faces()
        if len(degenerate):
            raise GeometryError(f"mesh contains {len(degenerate)} degenerate faces")


# -- mesh constructors for the analytic primitives ------------------------


def box_mesh(center=(0.0, 0.0, 0.0), size=(1.0, 1.0, 1.0)) -> TriangleMesh:
    """Axis-aligned box as 12 triangles."""
    center = np.asarray(center, dtype=float)
    half = np.asarray(size, dtype=float) / 2.0
    if np.any(half <= 0):
        raise GeometryError("box size must be positive in every dimension")
    corners = np.array(
        [[x, y, z] for x in (-1, 1) for y in (-1, 1) for z in (-1, 1)], dtype=float
    )
    vertices = center + corners * half
    faces = np.array(
        [
            [0, 1, 3], [0, 3, 2],  # x = -1
            [4, 6, 7], [4, 7, 5],  # x = +1
            [0, 4, 5], [0, 5, 1],  # y = -1
            [2, 3, 7], [2, 7, 6],  # y = +1
            [0, 2, 6], [0, 6, 4],  # z = -1
            [1, 5, 7], [1, 7, 3],  # z = +1
        ]
    )
    return TriangleMesh(vertices, faces)


def uv_sphere_mesh(center=(0.0, 0.0, 0.0), radius=0.5, rings=12, segments=24) -> TriangleMesh:
    """Latitude/longitude sphere tessellation."""
    if radius <= 0:
        raise GeometryError("sphere radius must be positive")
    if rings < 2 or segments < 3:
        raise GeometryError("need rings >= 2 and segments >= 3")
    center = np.asarray(center, dtype=float)
    vertices = [center + np.array([0.0, 0.0, radius])]
    for ring in range(1, rings):
        phi = np.pi * ring / rings
        for seg in range(segments):
            theta = 2.0 * np.pi * seg / segments
            vertices.append(
                center
                + radius
                * np.array(
                    [np.sin(phi) * np.cos(theta), np.sin(phi) * np.sin(theta), np.cos(phi)]
                )
            )
    vertices.append(center + np.array([0.0, 0.0, -radius]))
    vertices = np.asarray(vertices)

    faces: list[list[int]] = []
    # Top cap.
    for seg in range(segments):
        faces.append([0, 1 + seg, 1 + (seg + 1) % segments])
    # Body quads.
    for ring in range(rings - 2):
        base_a = 1 + ring * segments
        base_b = base_a + segments
        for seg in range(segments):
            a0 = base_a + seg
            a1 = base_a + (seg + 1) % segments
            b0 = base_b + seg
            b1 = base_b + (seg + 1) % segments
            faces.append([a0, b0, b1])
            faces.append([a0, b1, a1])
    # Bottom cap.
    south = len(vertices) - 1
    base = 1 + (rings - 2) * segments
    for seg in range(segments):
        faces.append([south, base + (seg + 1) % segments, base + seg])
    return TriangleMesh(vertices, np.asarray(faces))


def cylinder_mesh(
    center=(0.0, 0.0, 0.0), radius=0.5, height=1.0, segments=24
) -> TriangleMesh:
    """Closed cylinder along z as a triangle mesh."""
    if radius <= 0 or height <= 0:
        raise GeometryError("cylinder radius and height must be positive")
    if segments < 3:
        raise GeometryError("need segments >= 3")
    center = np.asarray(center, dtype=float)
    half = height / 2.0
    ring = np.array(
        [
            [radius * np.cos(2 * np.pi * s / segments), radius * np.sin(2 * np.pi * s / segments)]
            for s in range(segments)
        ]
    )
    bottom = np.column_stack([ring, np.full(segments, -half)])
    top = np.column_stack([ring, np.full(segments, half)])
    vertices = np.vstack([bottom, top, [[0.0, 0.0, -half]], [[0.0, 0.0, half]]]) + center
    faces: list[list[int]] = []
    bottom_center = 2 * segments
    top_center = 2 * segments + 1
    for seg in range(segments):
        nxt = (seg + 1) % segments
        # Side quad.
        faces.append([seg, nxt, segments + nxt])
        faces.append([seg, segments + nxt, segments + seg])
        # Caps.
        faces.append([bottom_center, nxt, seg])
        faces.append([top_center, segments + seg, segments + nxt])
    return TriangleMesh(vertices, np.asarray(faces))


def torus_mesh(
    center=(0.0, 0.0, 0.0),
    major_radius=1.0,
    minor_radius=0.25,
    major_segments=24,
    minor_segments=12,
) -> TriangleMesh:
    """Torus in the xy-plane as a triangle mesh."""
    if major_radius <= 0 or minor_radius <= 0:
        raise GeometryError("torus radii must be positive")
    if major_segments < 3 or minor_segments < 3:
        raise GeometryError("need at least 3 segments in each direction")
    center = np.asarray(center, dtype=float)
    vertices = []
    for i in range(major_segments):
        theta = 2 * np.pi * i / major_segments
        ring_center = np.array([np.cos(theta), np.sin(theta), 0.0]) * major_radius
        for j in range(minor_segments):
            phi = 2 * np.pi * j / minor_segments
            normal = np.array([np.cos(theta) * np.cos(phi), np.sin(theta) * np.cos(phi), np.sin(phi)])
            vertices.append(center + ring_center + minor_radius * normal)
    vertices = np.asarray(vertices)
    faces = []
    for i in range(major_segments):
        for j in range(minor_segments):
            a = i * minor_segments + j
            b = i * minor_segments + (j + 1) % minor_segments
            c = ((i + 1) % major_segments) * minor_segments + j
            d = ((i + 1) % major_segments) * minor_segments + (j + 1) % minor_segments
            faces.append([a, c, d])
            faces.append([a, d, b])
    return TriangleMesh(vertices, np.asarray(faces))

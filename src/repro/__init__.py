"""repro — similarity search on voxelized CAD objects with vector sets.

A full reproduction of Kriegel, Brecheisen, Kröger, Pfeifle & Schubert:
*"Using Sets of Feature Vectors for Similarity Search on Voxelized CAD
Objects"* (SIGMOD 2003), including every substrate the paper builds on:
geometry and voxelization, the three single-vector similarity models,
the vector set model with the minimal matching distance, the extended-
centroid filter step, spatial/metric index structures with the paper's
I/O cost model, OPTICS clustering, and synthetic labeled stand-ins for
the proprietary Car and Aircraft datasets.

Quickstart::

    from repro import Pipeline, VectorSetModel, vector_set_distance
    from repro.datasets import make_car_dataset

    parts, labels = make_car_dataset()
    pipeline = Pipeline(resolution=15)
    objects = pipeline.process_parts(parts)
    model = VectorSetModel(k=7)
    sets = [model.extract(obj.grid) for obj in objects]
    print(vector_set_distance(sets[0], sets[1]))

See README.md for the architecture overview and DESIGN.md for the
paper-to-module map.
"""

from repro.core.centroid import centroid_lower_bound, extended_centroid
from repro.core.matching import hungarian
from repro.core.min_matching import (
    MatchResult,
    min_matching_distance,
    min_matching_match,
    vector_set_distance,
)
from repro.core.permutation import (
    permutation_distance_bruteforce,
    permutation_distance_via_matching,
)
from repro.core.queries import FilterRefineEngine, QueryMatch, QueryStats
from repro.core.vector_set import VectorSet
from repro.exceptions import IngestError, ReproError, StorageError
from repro.features.cover_sequence import CoverSequenceModel, extract_cover_sequence
from repro.features.solid_angle import SolidAngleModel
from repro.features.vector_set_model import VectorSetModel
from repro.features.volume import VolumeModel
from repro.pipeline import IngestRecord, IngestReport, Pipeline, ProcessedObject
from repro.voxel.grid import VoxelGrid
from repro.voxel.voxelize import voxelize_mesh, voxelize_solid

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "StorageError",
    "IngestError",
    "Pipeline",
    "ProcessedObject",
    "IngestReport",
    "IngestRecord",
    "VoxelGrid",
    "voxelize_solid",
    "voxelize_mesh",
    "VolumeModel",
    "SolidAngleModel",
    "CoverSequenceModel",
    "VectorSetModel",
    "extract_cover_sequence",
    "VectorSet",
    "hungarian",
    "MatchResult",
    "min_matching_distance",
    "min_matching_match",
    "vector_set_distance",
    "permutation_distance_bruteforce",
    "permutation_distance_via_matching",
    "extended_centroid",
    "centroid_lower_bound",
    "FilterRefineEngine",
    "QueryMatch",
    "QueryStats",
]

"""Mutable similarity database: add/remove/update without a rebuild.

The paper's architecture (Section 4.3) is static: extract features for
the whole collection, build an X-tree over the extended centroids, and
serve filter/refine queries.  :class:`SimilarityDatabase` makes the
same pipeline *mutable* — objects flow through extraction → feature
cache → centroid computation → **incremental** index maintenance
(``insert``/``delete`` on the live tree) → engine invalidation, so the
filter step never serves stale candidates and no O(n log n) rebuild is
ever required:

* **Mutations** (``add``/``add_grid``/``remove``/``update``) take the
  write side of a :class:`repro.concurrency.RWLock`, bump a version
  counter, and maintain the spatial index in place.
* **Queries** (``knn_query``/``range_query``) take the read side, so
  any number of threads can query concurrently while mutations wait;
  each query observes exactly one database version
  (:meth:`read_view` exposes that version for consistency testing).
* **The refinement engine** is version-tagged: the packed
  :class:`~repro.core.queries.FilterRefineEngine` is rebuilt lazily on
  the first query after a mutation, never serving candidates from a
  stale packing.  The spatial index itself is *not* rebuilt — it plugs
  into the engine as the ``centroid_ranker``.
* **Snapshots** (``save``/``load``) persist the object store *and* the
  exact index structure in one CRC-checked, atomically-written archive
  (the format-v2 discipline of :mod:`repro.io.database`), so a
  restarted process answers its first query with zero rebuild work —
  the reloaded tree is node-for-node identical
  (:func:`repro.index.snapshot.structure_digest` equality).

Because every access method breaks distance ties canonically by
ascending object id, a k-nn query against the incrementally maintained
index returns *byte-identical* results to a freshly rebuilt index
(:meth:`compact` rebuilds in place for exactly that comparison, and to
re-pack a tree degraded by heavy churn).

Backends: ``"xtree"`` (the paper's choice), ``"rstar"``, ``"scan"``
index the extended centroids and rank candidates for the filter step;
``"mtree"`` indexes the vector sets directly under the minimal matching
distance (the "simplest approach" the paper mentions) and answers
queries without the centroid filter.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.concurrency import RWLock
from repro.core.centroid import extended_centroid, norm_weight
from repro.core.min_matching import min_matching_distance
from repro.core.queries import (
    DEFAULT_BLOCK_SIZE,
    FilterRefineEngine,
    QueryMatch,
    QueryStats,
)
from repro.core.vector_set import VectorSet
from repro.exceptions import IndexError_, QueryError, StorageError
from repro.index import MTree, RStarTree, SequentialScan, XTree
from repro.index.snapshot import (
    read_archive,
    reconstruct_index,
    serialize_index,
    structure_digest,
    write_archive,
)
from repro.obs import emit, registry, span

DB_FORMAT = "repro-similarity-db"
DB_VERSION = 1

BACKENDS = ("xtree", "rstar", "scan", "mtree")


class DatabaseView:
    """A consistent read view: queries against one database version.

    Created by :meth:`SimilarityDatabase.read_view`; the read lock is
    held for the lifetime of the ``with`` block, so :attr:`version` and
    every query result belong to the same database state.
    """

    def __init__(self, db: "SimilarityDatabase"):
        self._db = db
        self.version = db._version
        self.size = len(db._sets)

    def knn_query(self, query, n_neighbors: int):
        return self._db._knn_locked(query, n_neighbors)

    def range_query(self, query, epsilon: float):
        return self._db._range_locked(query, epsilon)


class SimilarityDatabase:
    """A mutable collection of vector sets with incremental indexing.

    Parameters
    ----------
    capacity:
        The cardinality bound ``k`` shared by all sets (Definition 8).
    backend:
        ``"xtree"`` (default), ``"rstar"``, ``"scan"`` — centroid filter
        backed by that access method — or ``"mtree"`` for direct metric
        indexing of the sets.
    omega:
        Reference point for extended centroids and matching weights
        (default: origin).
    block_size / solver:
        Refinement block size and assignment backend, forwarded to
        :class:`FilterRefineEngine`.
    index_capacity:
        Node capacity of the spatial index (default: derived from the
        page size, as in the paper's experiments).
    model / pipeline / cache:
        Feature model (e.g. :class:`VectorSetModel`), normalization
        pipeline and feature cache used by :meth:`add_grid`.  Optional —
        :meth:`add` with pre-extracted sets needs none of them.
    """

    def __init__(
        self,
        capacity: int,
        *,
        backend: str = "xtree",
        omega: np.ndarray | None = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
        solver: str = "lockstep",
        index_capacity: int | None = None,
        model=None,
        pipeline=None,
        cache=None,
    ):
        if capacity < 1:
            raise QueryError("capacity must be >= 1")
        if backend not in BACKENDS:
            raise QueryError(f"unknown backend {backend!r}; pick from {BACKENDS}")
        self.capacity = capacity
        self.backend = backend
        self.block_size = block_size
        self.solver = solver
        self.index_capacity = index_capacity
        self.model = model
        self.pipeline = pipeline
        self.cache = cache
        self.dimension: int | None = None
        self._omega_arg = (
            None if omega is None else np.asarray(omega, dtype=float)
        )
        self.omega: np.ndarray | None = self._omega_arg
        self._sets: dict[int, np.ndarray] = {}
        self._centroids: dict[int, np.ndarray] = {}
        self._index = None
        self._version = 0
        self._engine: FilterRefineEngine | None = None
        self._engine_version = -1
        self._lock = RWLock()
        self._engine_lock = threading.Lock()

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._sets)

    def __contains__(self, oid: int) -> bool:
        return oid in self._sets

    @property
    def version(self) -> int:
        """Monotone counter, bumped once per successful mutation."""
        return self._version

    def object_ids(self) -> list[int]:
        with self._lock.read():
            return sorted(self._sets)

    def get(self, oid: int) -> np.ndarray:
        with self._lock.read():
            try:
                return self._sets[oid].copy()
            except KeyError:
                raise QueryError(f"no object with id {oid}") from None

    def index_digest(self) -> str:
        """Structure digest of the live index (see
        :func:`repro.index.snapshot.structure_digest`)."""
        with self._lock.read():
            if self._index is None:
                return "empty"
            return structure_digest(self._index)

    # -- internals ---------------------------------------------------------

    def _as_set(self, vectors) -> np.ndarray:
        arr = np.asarray(
            vectors.vectors if isinstance(vectors, VectorSet) else vectors,
            dtype=float,
        )
        if arr.ndim != 2 or not len(arr):
            raise QueryError(f"expected a non-empty (m, d) array, got {arr.shape}")
        if len(arr) > self.capacity:
            raise QueryError(
                f"set holds {len(arr)} vectors, capacity is {self.capacity}"
            )
        if not np.all(np.isfinite(arr)):
            raise QueryError("vector sets must be finite")
        if self.dimension is not None and arr.shape[1] != self.dimension:
            raise QueryError(
                f"dimension mismatch: database holds {self.dimension}-d "
                f"elements, got {arr.shape[1]}-d"
            )
        return arr.copy()

    def _metric(self):
        """The exact set distance — identical to the engine's default,
        so every backend refines with the same floats."""
        omega = self.omega
        weight = norm_weight(
            None if omega is None or np.allclose(omega, 0.0) else omega
        )
        return lambda a, b: min_matching_distance(a, b, weight=weight)

    def _make_index(self, dimension: int):
        if self.backend == "mtree":
            return MTree(self._metric(), capacity=self.index_capacity or 16)
        if self.backend == "rstar":
            return RStarTree(dimension, capacity=self.index_capacity)
        if self.backend == "scan":
            return SequentialScan(dimension)
        return XTree(dimension, capacity=self.index_capacity)

    def _ensure_dimension(self, arr: np.ndarray) -> None:
        if self.dimension is None:
            self.dimension = int(arr.shape[1])
            if self.omega is None:
                self.omega = np.zeros(self.dimension)
            elif self.omega.shape != (self.dimension,):
                raise QueryError(
                    f"omega has shape {self.omega.shape}, data is "
                    f"{self.dimension}-d"
                )
        if self._index is None:
            self._index = self._make_index(self.dimension)

    def _index_insert(self, oid: int, arr: np.ndarray, centroid: np.ndarray) -> None:
        if self.backend == "mtree":
            self._index.insert(arr, oid)
        else:
            self._index.insert(centroid, oid)

    def _index_delete(self, oid: int, arr: np.ndarray, centroid: np.ndarray) -> None:
        if self.backend == "mtree":
            removed = self._index.delete(arr, oid)
        else:
            removed = self._index.delete(centroid, oid)
        if not removed:
            raise IndexError_(
                f"index lost object {oid}: store and index disagree"
            )

    # -- mutations ---------------------------------------------------------

    def add(self, oid: int, vectors) -> None:
        """Add one vector set under external id *oid*."""
        oid = int(oid)
        arr = self._as_set(vectors)
        with self._lock.write():
            if oid in self._sets:
                raise QueryError(f"object id {oid} already present")
            self._ensure_dimension(arr)
            centroid = extended_centroid(arr, self.capacity, self.omega)
            with span("db.mutate", op="add"):
                self._index_insert(oid, arr, centroid)
            self._sets[oid] = arr
            self._centroids[oid] = centroid
            self._bump("add")

    def add_grid(self, oid: int, grid) -> np.ndarray:
        """Voxel-grid ingest: normalize, extract (through the feature
        cache), then :meth:`add`.  Returns the extracted set."""
        if self.model is None:
            raise QueryError("add_grid needs a database with a feature model")
        from repro.pipeline import Pipeline

        pipeline = self.pipeline or Pipeline()
        arr = pipeline.features_for_grid(grid, self.model, cache=self.cache)
        self.add(oid, arr)
        return arr

    def remove(self, oid: int) -> bool:
        """Remove the object stored under *oid*; False if absent."""
        oid = int(oid)
        with self._lock.write():
            arr = self._sets.get(oid)
            if arr is None:
                return False
            centroid = self._centroids[oid]
            with span("db.mutate", op="remove"):
                self._index_delete(oid, arr, centroid)
            del self._sets[oid]
            del self._centroids[oid]
            self._bump("remove")
            return True

    def update(self, oid: int, vectors) -> None:
        """Replace the set stored under *oid* in one atomic mutation."""
        oid = int(oid)
        arr = self._as_set(vectors)
        with self._lock.write():
            old = self._sets.get(oid)
            if old is None:
                raise QueryError(f"no object with id {oid}")
            centroid = extended_centroid(arr, self.capacity, self.omega)
            with span("db.mutate", op="update"):
                self._index_delete(oid, old, self._centroids[oid])
                self._index_insert(oid, arr, centroid)
            self._sets[oid] = arr
            self._centroids[oid] = centroid
            self._bump("update")

    def compact(self) -> None:
        """Rebuild the index from scratch (ascending oid insertion).

        Results are guaranteed unchanged — canonical tie-breaking makes
        query answers independent of the tree's internal structure —
        but a tree degraded by heavy churn gets re-packed, and tests
        use the rebuilt tree as the reference the incrementally
        maintained one must match byte-for-byte.
        """
        with self._lock.write():
            if self.dimension is None:
                return
            with span("db.compact", objects=len(self._sets), force=True):
                index = self._make_index(self.dimension)
                for oid in sorted(self._sets):
                    if self.backend == "mtree":
                        index.insert(self._sets[oid], oid)
                    else:
                        index.insert(self._centroids[oid], oid)
                self._index = index
            self._bump("compact")

    def _bump(self, op: str) -> None:
        self._version += 1
        reg = registry()
        if reg.enabled:
            reg.counter(f"db.mutations.{op}").inc()
            reg.gauge("db.size").set(len(self._sets))

    # -- queries -----------------------------------------------------------

    def _empty_result(self) -> tuple[list[QueryMatch], QueryStats]:
        return [], QueryStats()

    def _ranker(self):
        index = self._index

        def ranker(center: np.ndarray):
            return index.incremental_nearest(center)

        return ranker

    def _ensure_engine(self) -> FilterRefineEngine:
        """The version-tagged refinement engine (rebuilt after any
        mutation, so it can never serve stale candidates)."""
        with self._engine_lock:
            if self._engine is None or self._engine_version != self._version:
                oids = sorted(self._sets)
                self._engine = FilterRefineEngine(
                    [self._sets[oid] for oid in oids],
                    capacity=self.capacity,
                    omega=self.omega,
                    block_size=self.block_size,
                    backend=self.solver,
                    oids=oids,
                )
                self._engine_version = self._version
                registry().counter("db.engine_rebuilds").inc()
            return self._engine

    def _mtree_query(self, kind: str, query, arg):
        arr = self._as_set(query)
        before = self._index.distance_computations
        if kind == "knn":
            pairs = self._index.knn(arr, arg)
        else:
            pairs = self._index.range_search(arr, arg)
        stats = QueryStats(
            candidates_ranked=len(self._sets),
            exact_computations=self._index.distance_computations - before,
        )
        stats.pruned = max(0, len(self._sets) - stats.exact_computations)
        return [QueryMatch(oid, float(dist)) for oid, dist in pairs], stats

    def _knn_locked(self, query, n_neighbors: int):
        if not self._sets:
            return self._empty_result()
        if self.backend == "mtree":
            return self._mtree_query("knn", query, n_neighbors)
        return self._ensure_engine().knn_query(
            query, n_neighbors, centroid_ranker=self._ranker()
        )

    def _range_locked(self, query, epsilon: float):
        if not self._sets:
            return self._empty_result()
        if self.backend == "mtree":
            return self._mtree_query("range", query, epsilon)
        return self._ensure_engine().range_query(
            query, epsilon, centroid_ranker=self._ranker()
        )

    def knn_query(self, query, n_neighbors: int):
        """The *n_neighbors* nearest objects by minimal matching
        distance: ``(list[QueryMatch], QueryStats)``."""
        with self._lock.read():
            return self._knn_locked(query, n_neighbors)

    def range_query(self, query, epsilon: float):
        """All objects within matching distance *epsilon*."""
        with self._lock.read():
            return self._range_locked(query, epsilon)

    @contextmanager
    def read_view(self):
        """Hold the read lock across several queries: everything inside
        the ``with`` block sees one frozen database version."""
        with self._lock.read():
            yield DatabaseView(self)

    # -- snapshots ---------------------------------------------------------

    def save(self, path: str | Path) -> Path:
        """Write a CRC-checked snapshot (object store + exact index
        structure) atomically to *path*."""
        with span("db.snapshot.save", force=True) as sp, self._lock.read():
            oids = sorted(self._sets)
            dimension = self.dimension or 0
            row_counts = [len(self._sets[oid]) for oid in oids]
            offsets = np.zeros(len(oids) + 1, dtype=np.int64)
            np.cumsum(row_counts, out=offsets[1:])
            data = (
                np.concatenate([self._sets[oid] for oid in oids], axis=0)
                if oids
                else np.empty((0, dimension))
            )
            centroids = (
                np.vstack([self._centroids[oid] for oid in oids])
                if oids
                else np.empty((0, dimension))
            )
            arrays = {
                "set_oids": np.asarray(oids, dtype=np.int64),
                "set_row_offsets": offsets,
                "set_data": np.ascontiguousarray(data, dtype=np.float64),
                "centroids": np.ascontiguousarray(centroids, dtype=np.float64),
            }
            index_meta = None
            if self._index is not None:
                index_meta, index_arrays = serialize_index(self._index)
                arrays.update(
                    {f"index__{name}": arr for name, arr in index_arrays.items()}
                )
            meta = {
                "format": DB_FORMAT,
                "version": DB_VERSION,
                "capacity": self.capacity,
                "backend": self.backend,
                "dimension": self.dimension,
                "omega": None if self.omega is None else self.omega.tolist(),
                "block_size": self.block_size,
                "solver": self.solver,
                "index_capacity": self.index_capacity,
                "db_version": self._version,
                "resolution": getattr(self.pipeline, "resolution", None),
                "index_meta": index_meta,
            }
            result = write_archive(path, meta, arrays)
            sp.set(objects=len(oids))
        emit("db.snapshot", op="save", objects=len(oids), path=str(path))
        return result

    @classmethod
    def load(
        cls,
        path: str | Path,
        *,
        model=None,
        pipeline=None,
        cache=None,
    ) -> "SimilarityDatabase":
        """Reconstruct a database from :meth:`save` output.

        The index comes back node-for-node identical to the saved one —
        no ``insert`` is ever called, so the first query runs against
        the exact structure the previous process built (asserted by the
        snapshot tests through ``structure_digest`` equality)."""
        with span("db.snapshot.load", force=True) as sp:
            meta, arrays = read_archive(path, DB_FORMAT)
            if meta.get("version") != DB_VERSION:
                raise StorageError(
                    f"{path}: unsupported database version {meta.get('version')!r}"
                )
            if pipeline is None and meta.get("resolution"):
                from repro.pipeline import Pipeline

                pipeline = Pipeline(resolution=meta["resolution"])
            db = cls(
                meta["capacity"],
                backend=meta["backend"],
                omega=None if meta["omega"] is None else np.asarray(meta["omega"]),
                block_size=meta["block_size"],
                solver=meta["solver"],
                index_capacity=meta["index_capacity"],
                model=model,
                pipeline=pipeline,
                cache=cache,
            )
            try:
                oids = [int(oid) for oid in arrays["set_oids"]]
                offsets = arrays["set_row_offsets"]
                data = arrays["set_data"]
                centroids = arrays["centroids"]
                for pos, oid in enumerate(oids):
                    db._sets[oid] = data[
                        int(offsets[pos]) : int(offsets[pos + 1])
                    ].copy()
                    db._centroids[oid] = centroids[pos].copy()
            except (KeyError, IndexError) as exc:
                raise StorageError(f"{path}: truncated snapshot: {exc}") from exc
            db.dimension = meta["dimension"]
            if db.dimension is not None and db.omega is None:
                db.omega = np.zeros(db.dimension)
            if meta["index_meta"] is not None:
                prefix = "index__"
                index_arrays = {
                    name[len(prefix) :]: arr
                    for name, arr in arrays.items()
                    if name.startswith(prefix)
                }
                db._index = reconstruct_index(
                    meta["index_meta"],
                    index_arrays,
                    metric=db._metric() if meta["backend"] == "mtree" else None,
                )
            db._version = meta["db_version"]
            sp.set(objects=len(db._sets))
        emit("db.snapshot", op="load", objects=len(db._sets), path=str(path))
        return db

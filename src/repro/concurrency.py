"""Reader-writer locking for the mutable similarity database.

A classic write-preferring RW lock: any number of readers share the
lock, writers get exclusive access, and a *waiting* writer blocks new
readers so a steady query stream cannot starve mutations.  Both sides
are reentrant-free context managers — the database's query path takes
:meth:`RWLock.read`, its mutation path :meth:`RWLock.write`, and a
reader is guaranteed to observe one consistent database version for the
whole duration of its critical section.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager


class RWLock:
    """Write-preferring shared/exclusive lock.

    Not reentrant: a thread must not acquire the lock (either side)
    while already holding it — upgrading a read lock to a write lock
    deadlocks by design, as it would for any correct RW lock without an
    upgrade protocol.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._active_readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    @contextmanager
    def read(self):
        """Shared access: blocks while a writer is active *or waiting*."""
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._active_readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._active_readers -= 1
                if not self._active_readers:
                    self._cond.notify_all()

    @contextmanager
    def write(self):
        """Exclusive access: waits for active readers to drain, keeps
        new readers out while waiting."""
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._active_readers:
                    self._cond.wait()
                self._writer_active = True
            finally:
                self._writers_waiting -= 1
        try:
            yield
        finally:
            with self._cond:
                self._writer_active = False
                self._cond.notify_all()

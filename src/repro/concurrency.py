"""Reader-writer locking for the mutable similarity database.

A classic write-preferring RW lock: any number of readers share the
lock, writers get exclusive access, and a *waiting* writer blocks new
readers so a steady query stream cannot starve mutations.  Both sides
are reentrant-free context managers — the database's query path takes
:meth:`RWLock.read`, its mutation path :meth:`RWLock.write`, and a
reader is guaranteed to observe one consistent database version for the
whole duration of its critical section.

Both sides accept ``timeout=seconds``: an acquisition that cannot
complete within the deadline raises
:class:`~repro.exceptions.LockTimeout` instead of blocking forever, so
a wedged writer cannot hang crash recovery or a CLI command
indefinitely.  A timed-out writer cleanly withdraws its waiting claim
(readers it was blocking are released).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

from repro.exceptions import LockTimeout


class RWLock:
    """Write-preferring shared/exclusive lock.

    Not reentrant: a thread must not acquire the lock (either side)
    while already holding it — upgrading a read lock to a write lock
    deadlocks by design, as it would for any correct RW lock without an
    upgrade protocol.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._active_readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    @staticmethod
    def _remaining(deadline: float | None) -> float | None:
        """Seconds left before *deadline*; raises when it has passed."""
        if deadline is None:
            return None
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise LockTimeout("lock acquisition timed out")
        return remaining

    @contextmanager
    def read(self, timeout: float | None = None):
        """Shared access: blocks while a writer is active *or waiting*.

        With *timeout*, raises :class:`LockTimeout` if shared access
        cannot be granted within that many seconds.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while self._writer_active or self._writers_waiting:
                try:
                    self._cond.wait(self._remaining(deadline))
                except LockTimeout:
                    raise LockTimeout(
                        f"read lock not acquired within {timeout}s "
                        "(writer active or waiting)"
                    ) from None
            self._active_readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._active_readers -= 1
                if not self._active_readers:
                    self._cond.notify_all()

    @contextmanager
    def write(self, timeout: float | None = None):
        """Exclusive access: waits for active readers to drain, keeps
        new readers out while waiting.

        With *timeout*, raises :class:`LockTimeout` if exclusivity
        cannot be reached in time; the waiting claim is withdrawn so
        blocked readers proceed.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._active_readers:
                    try:
                        self._cond.wait(self._remaining(deadline))
                    except LockTimeout:
                        raise LockTimeout(
                            f"write lock not acquired within {timeout}s "
                            f"({self._active_readers} active readers, "
                            f"writer_active={self._writer_active})"
                        ) from None
                self._writer_active = True
            finally:
                self._writers_waiting -= 1
                if not self._writer_active:
                    # Withdrawn claim: wake readers we were holding back.
                    self._cond.notify_all()
        try:
            yield
        finally:
            with self._cond:
                self._writer_active = False
                self._cond.notify_all()

"""Distance functions: L_p family and set distances from related work.

Section 4.2 surveys distance measures on sets (Eiter & Mannila 1997)
before settling on the minimal matching distance: the Hausdorff
distance, the sum of minimum distances, the (fair-) surjection distance
and the link distance.  All of them are implemented here so the paper's
qualitative comparison ("Hausdorff relies too much on extreme positions",
"the others are not metrics") can be demonstrated empirically — see the
ablation benchmarks.
"""

from repro.distances.lp import euclidean, lp_distance, manhattan, maximum_distance
from repro.distances.netflow import netflow_distance
from repro.distances.set_distances import (
    fair_surjection_distance,
    hausdorff_distance,
    link_distance,
    sum_of_minimum_distances,
    surjection_distance,
)

__all__ = [
    "lp_distance",
    "euclidean",
    "manhattan",
    "maximum_distance",
    "hausdorff_distance",
    "sum_of_minimum_distances",
    "surjection_distance",
    "fair_surjection_distance",
    "link_distance",
    "netflow_distance",
]

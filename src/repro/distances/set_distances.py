"""Set distances from Eiter & Mannila (1997), surveyed in Section 4.2.

Given finite point sets ``X`` and ``Y`` and an element distance ``d``:

* **Hausdorff**: ``max( max_x min_y d, max_y min_x d )`` — a metric, but
  "relies too much on the extreme positions" (one outlier dominates),
* **sum of minimum distances**: each element is charged its nearest
  neighbor in the other set — intuitive but violates the triangle
  inequality,
* **surjection distance**: cheapest total cost of a surjective mapping
  from the larger onto the smaller set,
* **fair surjection distance**: surjection whose preimage sizes differ
  by at most one (balanced),
* **link distance**: cheapest *edge cover* — every element of either set
  linked to at least one element of the other.

The surjection variants and the link distance reduce exactly to square
assignment problems (constructions documented inline) and are solved
with the same Kuhn–Munkres code as the minimal matching distance.
"""

from __future__ import annotations

import numpy as np

from repro.core.matching import hungarian
from repro.core.min_matching import DistanceFn, as_set_array, resolve_distance
from repro.exceptions import DistanceError


def _cross(x, y, dist: str | DistanceFn) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    # Shared validation with the minimal matching distance (accepts raw
    # arrays and VectorSet alike); the Euclidean variants resolve to the
    # Gram-identity kernel of repro.core.min_matching — no (m, n, d)
    # broadcast temporaries.
    arr_x = as_set_array(x)
    arr_y = as_set_array(y)
    if arr_x.shape[1] != arr_y.shape[1]:
        raise DistanceError("dimension mismatch between sets")
    return arr_x, arr_y, resolve_distance(dist)(arr_x, arr_y)


def hausdorff_distance(x, y, dist: str | DistanceFn = "euclidean") -> float:
    """Classic (two-sided) Hausdorff distance."""
    _, _, cost = _cross(x, y, dist)
    return float(max(cost.min(axis=1).max(), cost.min(axis=0).max()))


def sum_of_minimum_distances(x, y, dist: str | DistanceFn = "euclidean") -> float:
    """Eiter–Mannila sum of minimum distances:
    ``( sum_x min_y d + sum_y min_x d ) / 2``.  Not a metric."""
    _, _, cost = _cross(x, y, dist)
    return float((cost.min(axis=1).sum() + cost.min(axis=0).sum()) / 2.0)


def surjection_distance(x, y, dist: str | DistanceFn = "euclidean") -> float:
    """Minimum-cost surjection of the larger set onto the smaller.

    Reduction: with ``m >= n``, an ``m x m`` assignment whose first
    ``n`` columns are the elements of the smaller set (their forced
    matching guarantees surjectivity) and whose remaining ``m - n``
    columns are "free copies" charging each leftover element its
    cheapest partner.
    """
    arr_x, arr_y, cost = _cross(x, y, dist)
    if len(arr_x) < len(arr_y):
        cost = cost.T
    m, n = cost.shape
    matrix = np.empty((m, m))
    matrix[:, :n] = cost
    if m > n:
        matrix[:, n:] = cost.min(axis=1)[:, np.newaxis]
    assignment = hungarian(matrix)
    return float(matrix[np.arange(m), assignment].sum())


def fair_surjection_distance(x, y, dist: str | DistanceFn = "euclidean") -> float:
    """Minimum-cost *fair* surjection: preimage sizes differ by <= 1.

    With ``m >= n``, every element of the smaller set must receive
    either ``floor(m/n)`` or ``ceil(m/n)`` elements.  Reduction: give
    each target ``floor`` mandatory copies plus one optional copy;
    dummy rows absorb the surplus optional copies but may never occupy
    a mandatory one (infinite cost there).
    """
    arr_x, arr_y, cost = _cross(x, y, dist)
    if len(arr_x) < len(arr_y):
        cost = cost.T
    m, n = cost.shape
    floor = m // n
    total_columns = n * (floor + 1)
    n_dummy = total_columns - m
    big = float(cost.sum()) + 1.0
    matrix = np.full((total_columns, total_columns), big)
    # Columns: for each target j, first `floor` mandatory copies then one
    # optional copy, laid out target-major.
    for j in range(n):
        base = j * (floor + 1)
        matrix[:m, base : base + floor + 1] = cost[:, j : j + 1]
    if n_dummy:
        # Dummy rows: free on optional copies only.
        optional_cols = [j * (floor + 1) + floor for j in range(n)]
        matrix[m:, :] = big
        matrix[np.ix_(range(m, total_columns), optional_cols)] = 0.0
    assignment = hungarian(matrix)
    value = float(matrix[np.arange(total_columns), assignment].sum())
    if value >= big:
        raise DistanceError("fair surjection reduction produced no feasible mapping")
    return value


def link_distance(x, y, dist: str | DistanceFn = "euclidean") -> float:
    """Minimum-cost linking (edge cover): every element of both sets is
    linked to at least one element of the other set.

    Reduction (standard edge-cover-to-assignment): an optimal edge cover
    is a matching plus cheapest incident edges for unmatched nodes.  The
    ``(m+n) x (m+n)`` assignment has the real cost block in the top
    left, per-node "stay single at cheapest-edge price" diagonals, and a
    free dummy block.
    """
    arr_x, arr_y, cost = _cross(x, y, dist)
    m, n = cost.shape
    cheapest_x = cost.min(axis=1)
    cheapest_y = cost.min(axis=0)
    big = float(cost.sum() + cheapest_x.sum() + cheapest_y.sum()) + 1.0
    size = m + n
    matrix = np.full((size, size), big)
    matrix[:m, :n] = cost
    # x_i unmatched: pays its cheapest edge (diagonal in the right block).
    matrix[:m, n:] = big
    matrix[np.arange(m), n + np.arange(m)] = cheapest_x if m else 0.0
    # y_j unmatched: pays its cheapest edge (diagonal in the bottom block).
    matrix[m:, :n] = big
    matrix[m + np.arange(n), np.arange(n)] = cheapest_y if n else 0.0
    # Dummy-dummy pairs are free.
    matrix[m:, n:] = 0.0
    assignment = hungarian(matrix)
    return float(matrix[np.arange(size), assignment].sum())

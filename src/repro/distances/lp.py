"""The L_p (Minkowski) distance family on feature vectors.

Definition 1 leaves the vector distance pluggable; "in the literature,
often the L_p-distance is used" and the paper's experiments use the
Euclidean distance (p = 2).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DistanceError


def lp_distance(x: np.ndarray, y: np.ndarray, p: float = 2.0) -> float:
    """L_p distance between two equal-length vectors (p >= 1, or inf)."""
    a = np.asarray(x, dtype=float).ravel()
    b = np.asarray(y, dtype=float).ravel()
    if a.shape != b.shape:
        raise DistanceError(f"shape mismatch: {a.shape} vs {b.shape}")
    if np.isinf(p):
        return float(np.max(np.abs(a - b))) if len(a) else 0.0
    if p < 1:
        raise DistanceError("p must be >= 1 for a metric")
    return float(np.sum(np.abs(a - b) ** p) ** (1.0 / p))


def euclidean(x: np.ndarray, y: np.ndarray) -> float:
    """L_2 distance — the paper's default (Section 3.1)."""
    return lp_distance(x, y, 2.0)


def manhattan(x: np.ndarray, y: np.ndarray) -> float:
    """L_1 distance."""
    return lp_distance(x, y, 1.0)


def maximum_distance(x: np.ndarray, y: np.ndarray) -> float:
    """L_inf distance."""
    return lp_distance(x, y, np.inf)

"""Netflow distance (Ramon & Bruynooghe 2001).

The paper's Lemma 1 rests on the netflow distance: a minimum-cost-flow
generalization of set matching to *weighted* (multi-)sets that is proven
to be a metric and polynomially computable; the minimal matching
distance is its specialization to unit weights (Section 4.2).

This module implements the netflow distance for integer multiplicities.
Each element ``x`` with multiplicity ``mu(x)`` ships ``mu(x)`` units;
surplus units of either side are absorbed by the weight function ``w``.
For integer multiplicities the flow polytope has integral optima, so the
computation reduces *exactly* to a minimal matching on the expanded
multisets — which keeps the whole stack on the same audited Kuhn–Munkres
core.  (Expansion is pseudo-polynomial in the multiplicities; the unit
case — the paper's — stays O(k^3).)
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.core.min_matching import DistanceFn, WeightFn, min_matching_distance
from repro.exceptions import DistanceError


def _expand(vectors: np.ndarray, multiplicities: Sequence[int] | None) -> np.ndarray:
    arr = np.asarray(vectors, dtype=float)
    if arr.ndim != 2 or not len(arr):
        raise DistanceError("netflow distance needs non-empty (m, d) arrays")
    if multiplicities is None:
        return arr
    counts = np.asarray(multiplicities)
    if counts.shape != (len(arr),):
        raise DistanceError("need one multiplicity per vector")
    if np.any(counts < 1) or not np.issubdtype(counts.dtype, np.integer):
        raise DistanceError("multiplicities must be positive integers")
    return np.repeat(arr, counts, axis=0)


def netflow_distance(
    x: np.ndarray,
    y: np.ndarray,
    multiplicities_x: Sequence[int] | None = None,
    multiplicities_y: Sequence[int] | None = None,
    dist: str | DistanceFn = "euclidean",
    weight: WeightFn | None = None,
) -> float:
    """Netflow distance between two weighted point sets.

    With all multiplicities 1 (the default) this equals the minimal
    matching distance of Definition 6, which is exactly the relationship
    the paper uses to inherit metric-ness and polynomial computability.
    """
    expanded_x = _expand(x, multiplicities_x)
    expanded_y = _expand(y, multiplicities_y)
    return min_matching_distance(expanded_x, expanded_y, dist=dist, weight=weight)

"""Voxel substrate: occupancy grids, voxelization and binary morphology.

The paper's similarity models all operate on voxelized CAD parts stored on
an ``r x r x r`` grid (Section 3).  :class:`~repro.voxel.grid.VoxelGrid`
is the central data type of this layer; it distinguishes surface voxels
from interior voxels exactly as Section 3.3 requires.
"""

from repro.voxel.grid import VoxelGrid
from repro.voxel.morphology import (
    dilate,
    erode,
    flood_fill_outside,
    sphere_kernel,
    surface_mask,
)
from repro.voxel.metrics import (
    dice_coefficient,
    intersection_over_union,
    symmetric_volume_difference,
    volume_difference_distance,
)
from repro.voxel.voxelize import voxelize_mesh, voxelize_points, voxelize_solid

__all__ = [
    "VoxelGrid",
    "voxelize_solid",
    "voxelize_mesh",
    "voxelize_points",
    "sphere_kernel",
    "flood_fill_outside",
    "surface_mask",
    "dilate",
    "erode",
    "symmetric_volume_difference",
    "intersection_over_union",
    "dice_coefficient",
    "volume_difference_distance",
]

"""The central voxel data type: a cubic occupancy grid.

A :class:`VoxelGrid` stores the voxel approximation ``V^o`` of an object
on an ``r x r x r`` raster (the paper uses r = 15 for the cover-based
models and r = 30 for the histogram models).  It tracks the mapping back
to world coordinates (origin + voxel edge length) so that features can be
reported in either index or world units, and it exposes the
surface/interior split required by Section 3.3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import VoxelizationError
from repro.voxel.morphology import surface_mask


@dataclass
class VoxelGrid:
    """A cubic boolean occupancy grid.

    Attributes
    ----------
    occupancy:
        ``(r, r, r)`` boolean array; ``True`` marks object voxels.
    origin:
        World-space position of the corner of voxel ``(0, 0, 0)``.
    voxel_size:
        Edge length of one voxel in world units.
    """

    occupancy: np.ndarray
    origin: np.ndarray = field(default_factory=lambda: np.zeros(3))
    voxel_size: float = 1.0

    def __post_init__(self) -> None:
        self.occupancy = np.asarray(self.occupancy, dtype=bool)
        self.origin = np.asarray(self.origin, dtype=float)
        if self.occupancy.ndim != 3:
            raise VoxelizationError(
                f"occupancy must be 3-D, got shape {self.occupancy.shape}"
            )
        if len(set(self.occupancy.shape)) != 1:
            raise VoxelizationError(
                f"grid must be cubic, got shape {self.occupancy.shape}"
            )
        if self.voxel_size <= 0:
            raise VoxelizationError("voxel size must be positive")

    # -- basic queries ---------------------------------------------------

    @property
    def resolution(self) -> int:
        """The raster resolution r (voxels per dimension)."""
        return self.occupancy.shape[0]

    @property
    def count(self) -> int:
        """Number of object voxels ``|V^o|``."""
        return int(self.occupancy.sum())

    def is_empty(self) -> bool:
        return not self.occupancy.any()

    def indices(self) -> np.ndarray:
        """``(n, 3)`` integer indices of all object voxels."""
        return np.transpose(np.nonzero(self.occupancy))

    def centers(self) -> np.ndarray:
        """World-space centers of all object voxels."""
        return self.origin + (self.indices() + 0.5) * self.voxel_size

    # -- surface / interior split (Section 3.3) ---------------------------

    def surface(self) -> np.ndarray:
        """Boolean mask of surface voxels ``V-bar`` (empty 6-neighbor)."""
        return surface_mask(self.occupancy)

    def interior(self) -> np.ndarray:
        """Boolean mask of interior voxels ``V-dot``."""
        return self.occupancy & ~self.surface()

    def surface_indices(self) -> np.ndarray:
        return np.transpose(np.nonzero(self.surface()))

    # -- geometric summaries ----------------------------------------------

    def bounding_box(self) -> tuple[np.ndarray, np.ndarray]:
        """Tight index-space bounding box ``(lower, upper)`` (inclusive)."""
        if self.is_empty():
            raise VoxelizationError("empty grid has no bounding box")
        idx = self.indices()
        return idx.min(axis=0), idx.max(axis=0)

    def center_of_mass(self) -> np.ndarray:
        """Index-space center of mass of the object voxels."""
        if self.is_empty():
            raise VoxelizationError("empty grid has no center of mass")
        return self.indices().mean(axis=0)

    def volume(self) -> float:
        """Object volume in world units."""
        return self.count * self.voxel_size**3

    # -- transformation ---------------------------------------------------

    def transformed(self, matrix: np.ndarray) -> "VoxelGrid":
        """Apply a signed-permutation matrix (90-degree rotation and/or
        reflection) to the grid.

        Voxel indices are mapped through *matrix* about the grid center;
        the matrix must have integer entries and be orthogonal (all 48
        cube symmetries qualify).  Used to realize the invariances of
        Definition 2 at the voxel level.
        """
        mat = np.rint(np.asarray(matrix, dtype=float)).astype(int)
        if mat.shape != (3, 3) or not np.allclose(mat @ mat.T, np.eye(3)):
            raise VoxelizationError("grid transforms must be signed permutations")
        r = self.resolution
        result = np.zeros_like(self.occupancy)
        idx = self.indices()
        if len(idx):
            # Rotate doubled, centered coordinates so everything stays integral.
            centered = 2 * idx - (r - 1)
            moved = centered @ mat.T
            new_idx = (moved + (r - 1)) // 2
            if new_idx.min() < 0 or new_idx.max() >= r:  # pragma: no cover
                raise VoxelizationError("transform moved voxels out of the grid")
            result[new_idx[:, 0], new_idx[:, 1], new_idx[:, 2]] = True
        return VoxelGrid(result, self.origin.copy(), self.voxel_size)

    def all_symmetries(self, include_reflections: bool = True) -> list["VoxelGrid"]:
        """All 24 (or 48) symmetric variants of this grid (Section 3.2)."""
        from repro.geometry.transform import symmetry_matrices

        return [self.transformed(mat) for mat in symmetry_matrices(include_reflections)]

    # -- equality / serialization helpers -----------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VoxelGrid):
            return NotImplemented
        return (
            np.array_equal(self.occupancy, other.occupancy)
            and np.allclose(self.origin, other.origin)
            and np.isclose(self.voxel_size, other.voxel_size)
        )

    def copy(self) -> "VoxelGrid":
        return VoxelGrid(self.occupancy.copy(), self.origin.copy(), self.voxel_size)

    def nbytes(self) -> int:
        """Size of the raw occupancy payload in bytes (for the I/O cost
        model: one byte per voxel, as a bit-packed page layout would be
        dominated by metadata at these resolutions)."""
        return int(self.occupancy.size)

    @classmethod
    def empty(cls, resolution: int) -> "VoxelGrid":
        if resolution < 1:
            raise VoxelizationError("resolution must be >= 1")
        return cls(np.zeros((resolution,) * 3, dtype=bool))

    @classmethod
    def full(cls, resolution: int) -> "VoxelGrid":
        if resolution < 1:
            raise VoxelizationError("resolution must be >= 1")
        return cls(np.ones((resolution,) * 3, dtype=bool))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"VoxelGrid(r={self.resolution}, occupied={self.count}, "
            f"voxel_size={self.voxel_size:g})"
        )

"""Binary morphology on 3-D occupancy arrays.

Small, dependency-free building blocks used by voxelization (solid fill),
the solid-angle model (sphere kernels) and the grid's surface/interior
classification.  All functions treat space outside the array as empty.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import VoxelizationError

# The 6 face-neighbor offsets of a voxel.
FACE_NEIGHBORS: tuple[tuple[int, int, int], ...] = (
    (1, 0, 0),
    (-1, 0, 0),
    (0, 1, 0),
    (0, -1, 0),
    (0, 0, 1),
    (0, 0, -1),
)


def _require_3d(occupancy: np.ndarray) -> np.ndarray:
    arr = np.asarray(occupancy, dtype=bool)
    if arr.ndim != 3:
        raise VoxelizationError(f"expected a 3-D boolean array, got shape {arr.shape}")
    return arr


def _shifted(arr: np.ndarray, offset: tuple[int, int, int]) -> np.ndarray:
    """Shift a boolean array by *offset*, padding with ``False``."""
    result = np.zeros_like(arr)
    src = [slice(None)] * 3
    dst = [slice(None)] * 3
    for axis, delta in enumerate(offset):
        if delta > 0:
            src[axis] = slice(0, arr.shape[axis] - delta)
            dst[axis] = slice(delta, arr.shape[axis])
        elif delta < 0:
            src[axis] = slice(-delta, arr.shape[axis])
            dst[axis] = slice(0, arr.shape[axis] + delta)
    result[tuple(dst)] = arr[tuple(src)]
    return result


def dilate(occupancy: np.ndarray, iterations: int = 1) -> np.ndarray:
    """6-connected binary dilation."""
    arr = _require_3d(occupancy)
    for _ in range(iterations):
        grown = arr.copy()
        for offset in FACE_NEIGHBORS:
            grown |= _shifted(arr, offset)
        arr = grown
    return arr


def erode(occupancy: np.ndarray, iterations: int = 1) -> np.ndarray:
    """6-connected binary erosion (complement of dilating the complement)."""
    arr = _require_3d(occupancy)
    for _ in range(iterations):
        shrunk = arr.copy()
        for offset in FACE_NEIGHBORS:
            shrunk &= _shifted(arr, offset)
        # Voxels on the array border lose their out-of-grid neighbor and
        # therefore erode away, consistent with "outside is empty".
        border = np.zeros_like(arr)
        border[1:-1, 1:-1, 1:-1] = True
        arr = shrunk & border
    return arr


def surface_mask(occupancy: np.ndarray) -> np.ndarray:
    """Mark occupied voxels with at least one empty 6-neighbor.

    This realizes the paper's split of an object's voxels ``V`` into
    surface voxels ``V-bar`` and interior voxels ``V-dot`` (Section 3.3).
    Voxels on the grid border count as surface because the grid outside
    is empty.
    """
    arr = _require_3d(occupancy)
    interior = erode(arr)
    return arr & ~interior


def flood_fill_outside(occupancy: np.ndarray) -> np.ndarray:
    """Return the mask of empty voxels reachable from the grid border.

    Used for solid-filling a voxelized closed surface: everything that is
    neither *outside* nor *surface* is interior.  Implemented as an
    iterated 6-connected propagation, which converges in at most
    ``sum(shape)`` rounds.
    """
    empty = ~_require_3d(occupancy)
    outside = np.zeros_like(empty)
    # Seed with all empty border voxels.
    for axis in range(3):
        index = [slice(None)] * 3
        for side in (0, -1):
            index[axis] = side
            outside[tuple(index)] |= empty[tuple(index)]
    while True:
        grown = outside.copy()
        for offset in FACE_NEIGHBORS:
            grown |= _shifted(outside, offset)
        grown &= empty
        if np.array_equal(grown, outside):
            return outside
        outside = grown


def fill_solid(surface: np.ndarray) -> np.ndarray:
    """Solid-fill a (closed) voxel surface: surface plus enclosed voids."""
    arr = _require_3d(surface)
    outside = flood_fill_outside(arr)
    return arr | ~(arr | outside)


def sphere_kernel(radius: int) -> np.ndarray:
    """Voxelized ball of integer *radius*: the set ``K_c`` of the
    solid-angle model (Section 3.3.2), centered in a cube of side
    ``2 * radius + 1``.
    """
    if radius < 1:
        raise VoxelizationError("sphere kernel radius must be >= 1")
    side = 2 * radius + 1
    coords = np.arange(side) - radius
    xs, ys, zs = np.meshgrid(coords, coords, coords, indexing="ij")
    return xs**2 + ys**2 + zs**2 <= radius**2


def connected_components(occupancy: np.ndarray) -> np.ndarray:
    """Label 6-connected components of occupied voxels.

    Returns an integer array where 0 is empty space and components are
    numbered from 1.  Small and simple BFS labelling — adequate for the
    grid resolutions used in the paper (r <= 30).
    """
    arr = _require_3d(occupancy)
    labels = np.zeros(arr.shape, dtype=int)
    next_label = 0
    remaining = arr.copy()
    while remaining.any():
        next_label += 1
        seed_index = np.transpose(np.nonzero(remaining))[0]
        component = np.zeros_like(arr)
        component[tuple(seed_index)] = True
        while True:
            grown = component.copy()
            for offset in FACE_NEIGHBORS:
                grown |= _shifted(component, offset)
            grown &= arr
            if np.array_equal(grown, component):
                break
            component = grown
        labels[component] = next_label
        remaining &= ~component
    return labels

"""Turning geometry into voxel grids.

Three entry points:

* :func:`voxelize_solid` — exact voxelization of an analytic
  :class:`~repro.geometry.sdf.Solid` by evaluating its membership
  predicate at voxel centers (used by the synthetic datasets),
* :func:`voxelize_mesh` — surface rasterization of a triangle mesh with
  optional solid fill (used for OFF/STL input),
* :func:`voxelize_points` — wrap a point cloud into a grid (used by the
  2-D/3-D clustering demos).

All of them fit the object into the cubic raster with a configurable
margin, optionally preserving the aspect ratio, and report the world
scale factors so scaling invariance can be toggled later (Section 3.2 of
the paper stores these factors alongside the normalized object).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import VoxelizationError
from repro.geometry.mesh import TriangleMesh
from repro.geometry.sdf import Solid
from repro.voxel.grid import VoxelGrid
from repro.voxel.morphology import fill_solid


def _fit_frame(
    lower: np.ndarray,
    upper: np.ndarray,
    resolution: int,
    margin: int,
    keep_aspect: bool,
) -> tuple[np.ndarray, np.ndarray]:
    """Compute world-space origin and per-axis voxel size for a bounding
    box mapped into ``resolution^3`` voxels with *margin* empty voxels on
    every side."""
    if resolution < 1:
        raise VoxelizationError("resolution must be >= 1")
    if margin < 0 or 2 * margin >= resolution:
        raise VoxelizationError("margin must satisfy 0 <= 2*margin < resolution")
    extent = np.maximum(upper - lower, 1e-12)
    usable = resolution - 2 * margin
    if keep_aspect:
        voxel = np.full(3, extent.max() / usable)
    else:
        voxel = extent / usable
    # Center the object inside the usable region.
    center = (lower + upper) / 2.0
    origin = center - voxel * resolution / 2.0
    return origin, voxel


def voxelize_solid(
    solid: Solid,
    resolution: int = 15,
    margin: int = 1,
    keep_aspect: bool = True,
    supersample: int = 1,
) -> VoxelGrid:
    """Voxelize an analytic solid by point membership.

    Parameters
    ----------
    solid:
        The solid to voxelize.
    resolution:
        Raster resolution ``r`` (the paper uses 15 and 30).
    margin:
        Number of guaranteed-empty voxels on each side of the raster
        (keeps surface voxels off the grid boundary).
    keep_aspect:
        If true (default), one isotropic scale is used so the object's
        proportions survive; otherwise each axis is stretched to fill the
        raster (the "scaling factors" the paper stores per axis).
    supersample:
        Sub-samples per voxel edge; a voxel is marked when *any*
        sub-sample lies inside the solid.  The default of 1 is pure
        center sampling — unbiased, so two near-identical parts at
        slightly different lattice alignments voxelize near-identically
        (important for similarity quality).  Values > 1 approximate the
        intersection-based, *conservative* marking of industrial
        voxelizers: nothing thinner than ``voxel / supersample`` can
        vanish, at the cost of alignment-dependent fattening of all
        surfaces.  Model features thinner than one voxel at your raster
        resolution, or voxelize them conservatively — not both.
    """
    if supersample < 1:
        raise VoxelizationError("supersample must be >= 1")
    lower, upper = solid.bounds()
    origin, voxel = _fit_frame(
        np.asarray(lower, dtype=float), np.asarray(upper, dtype=float),
        resolution, margin, keep_aspect,
    )
    fine = resolution * supersample
    coords = (np.arange(fine) + 0.5) / supersample
    xs = origin[0] + coords * voxel[0]
    ys = origin[1] + coords * voxel[1]
    zs = origin[2] + coords * voxel[2]
    gx, gy, gz = np.meshgrid(xs, ys, zs, indexing="ij")
    points = np.column_stack([gx.ravel(), gy.ravel(), gz.ravel()])
    inside = solid.contains(points).reshape((fine,) * 3)
    if supersample > 1:
        blocks = inside.reshape(
            resolution, supersample, resolution, supersample, resolution, supersample
        )
        inside = blocks.any(axis=(1, 3, 5))
    return VoxelGrid(inside, origin, float(voxel.max()))


def voxelize_mesh(
    mesh: TriangleMesh,
    resolution: int = 15,
    margin: int = 1,
    keep_aspect: bool = True,
    fill: bool = True,
) -> VoxelGrid:
    """Voxelize a triangle mesh.

    The surface is rasterized by adaptively supersampling every triangle
    at a density finer than half a voxel, which guarantees a gap-free
    26-connected surface; if *fill* is true the enclosed volume is then
    solid-filled by an outside flood fill.
    """
    mesh.validate()
    lower, upper = mesh.bounds()
    origin, voxel = _fit_frame(lower, upper, resolution, margin, keep_aspect)
    occupancy = np.zeros((resolution,) * 3, dtype=bool)
    step = voxel.min() / 2.0

    for tri in mesh.triangles():
        a, b, c = tri
        edge_len = max(
            np.linalg.norm(b - a), np.linalg.norm(c - a), np.linalg.norm(c - b)
        )
        n = max(1, int(np.ceil(edge_len / step)))
        # Barycentric lattice with (n + 1)(n + 2) / 2 samples.
        ii, jj = np.meshgrid(np.arange(n + 1), np.arange(n + 1), indexing="ij")
        keep = ii + jj <= n
        u = ii[keep] / n
        v = jj[keep] / n
        samples = (
            a[np.newaxis, :] * (1.0 - u - v)[:, np.newaxis]
            + b[np.newaxis, :] * u[:, np.newaxis]
            + c[np.newaxis, :] * v[:, np.newaxis]
        )
        idx = np.floor((samples - origin) / voxel).astype(int)
        idx = np.clip(idx, 0, resolution - 1)
        occupancy[idx[:, 0], idx[:, 1], idx[:, 2]] = True

    if fill:
        occupancy = fill_solid(occupancy)
    return VoxelGrid(occupancy, origin, float(voxel.max()))


def voxelize_points(
    points: np.ndarray,
    resolution: int = 15,
    margin: int = 1,
    keep_aspect: bool = True,
) -> VoxelGrid:
    """Mark the voxels hit by a point cloud."""
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2 or pts.shape[1] != 3:
        raise VoxelizationError(f"expected (n, 3) points, got shape {pts.shape}")
    if not len(pts):
        raise VoxelizationError("cannot voxelize an empty point cloud")
    origin, voxel = _fit_frame(pts.min(axis=0), pts.max(axis=0), resolution, margin, keep_aspect)
    occupancy = np.zeros((resolution,) * 3, dtype=bool)
    idx = np.floor((pts - origin) / voxel).astype(int)
    idx = np.clip(idx, 0, resolution - 1)
    occupancy[idx[:, 0], idx[:, 1], idx[:, 2]] = True
    return VoxelGrid(occupancy, origin, float(voxel.max()))

"""Volume-overlap metrics on voxel grids.

The cover sequence model is driven by the *symmetric volume difference*
(Section 3.3.3); these helpers expose it — and the usual normalized
overlap scores — as a public API for validating approximations and for
geometry-based similarity baselines (the "difference volume approach" of
the related work, Section 2.2).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import VoxelizationError
from repro.voxel.grid import VoxelGrid


def _occupancies(a: VoxelGrid | np.ndarray, b: VoxelGrid | np.ndarray):
    occ_a = a.occupancy if isinstance(a, VoxelGrid) else np.asarray(a, dtype=bool)
    occ_b = b.occupancy if isinstance(b, VoxelGrid) else np.asarray(b, dtype=bool)
    if occ_a.shape != occ_b.shape:
        raise VoxelizationError(
            f"grid shapes differ: {occ_a.shape} vs {occ_b.shape}"
        )
    return occ_a, occ_b


def symmetric_volume_difference(a, b) -> int:
    """``|A XOR B|`` in voxels — the paper's Err measure."""
    occ_a, occ_b = _occupancies(a, b)
    return int(np.count_nonzero(occ_a ^ occ_b))


def intersection_over_union(a, b) -> float:
    """Jaccard overlap; 1 for identical non-empty grids."""
    occ_a, occ_b = _occupancies(a, b)
    union = np.count_nonzero(occ_a | occ_b)
    if union == 0:
        return 1.0
    return float(np.count_nonzero(occ_a & occ_b) / union)


def dice_coefficient(a, b) -> float:
    """Sørensen–Dice overlap; 1 for identical non-empty grids."""
    occ_a, occ_b = _occupancies(a, b)
    total = np.count_nonzero(occ_a) + np.count_nonzero(occ_b)
    if total == 0:
        return 1.0
    return float(2.0 * np.count_nonzero(occ_a & occ_b) / total)


def volume_difference_distance(a, b, normalize: bool = True) -> float:
    """The geometry-based baseline distance of the related work: the
    symmetric volume difference, optionally normalized by the union so
    it lies in [0, 1]."""
    value = symmetric_volume_difference(a, b)
    if not normalize:
        return float(value)
    occ_a, occ_b = _occupancies(a, b)
    union = np.count_nonzero(occ_a | occ_b)
    return float(value / union) if union else 0.0

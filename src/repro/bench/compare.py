"""Regression sentinel: compare two ``repro-bench/1`` files.

``repro bench compare BASE.json HEAD.json`` joins the two files'
records on a key (by default ``op``/``backend``/``n``/``k``/``dim``/
``budget`` — every identity-ish field that appears in a record) and
computes per-field deltas for the comparable metrics:

* ``*_seconds`` timings are **lower-better**: head regresses when it is
  more than ``threshold`` slower than base.  Timings below the
  ``min_seconds`` noise floor on both sides are skipped — a 0.4 ms
  measurement regressing by 30% is measurement jitter, not a signal.
* ``speedup``/``recall``/``reduction`` ratios — bare or suffixed, e.g.
  ``batched_speedup``, ``ingest_speedup`` — are **higher-better**: head
  regresses when it loses more than ``threshold`` of base's value.

The result says, per compared pair, whether head improved, held, or
regressed; :func:`render_comparison` prints the table and the CLI exits
1 on any regression — the CI gate against the committed BENCH_PR7/PR8
baselines runs exactly this.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.bench.schema import load_bench_files
from repro.exceptions import ReproError

__all__ = [
    "BenchComparison",
    "FieldDelta",
    "compare_bench",
    "render_comparison",
]

#: Record fields that identify *what* was measured (used for the join
#: key when present); everything else is a measurement or annotation.
DEFAULT_MATCH_FIELDS = ("op", "backend", "n", "k", "dim", "budget")

#: Higher-better ratio fields ("the bigger the healthier"); matched
#: bare or as a suffix (``batched_speedup``, ``ingest_speedup``, ...).
HIGHER_BETTER = ("speedup", "recall", "reduction")


def _higher_better(key: str) -> bool:
    return key in HIGHER_BETTER or key.endswith(
        tuple(f"_{name}" for name in HIGHER_BETTER)
    )

#: Timings below this (seconds) on both sides are noise, not signal.
DEFAULT_MIN_SECONDS = 0.005

#: Allowed relative degradation before a delta counts as a regression.
DEFAULT_THRESHOLD = 0.10


@dataclass
class FieldDelta:
    """One compared metric of one record pair."""

    key: tuple
    metric: str
    base: float
    head: float
    #: Relative change in the *bad* direction: positive means worse
    #: (slower timing / lower ratio), negative means better.
    change: float
    lower_better: bool
    regressed: bool
    skipped: str | None = None  # reason this delta was not judged

    def describe(self) -> str:
        direction = "slower" if self.lower_better else "lower"
        if self.change < 0:
            direction = "faster" if self.lower_better else "higher"
        return f"{abs(self.change) * 100:.1f}% {direction}"


@dataclass
class BenchComparison:
    """The full result of one base-vs-head comparison."""

    deltas: list[FieldDelta] = field(default_factory=list)
    missing_in_head: list[tuple] = field(default_factory=list)
    missing_in_base: list[tuple] = field(default_factory=list)

    @property
    def regressions(self) -> list[FieldDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions


def _record_key(record: dict, match_fields) -> tuple:
    return tuple(
        (name, record.get(name)) for name in match_fields if name in record
    )


def _numeric(value) -> float | None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    value = float(value)
    return value if math.isfinite(value) else None


def _comparable_metrics(record: dict, fields: list[str] | None) -> list[str]:
    metrics = []
    for key, value in record.items():
        if _numeric(value) is None:
            continue
        if key == "seconds" or key.endswith("_seconds") or _higher_better(key):
            if fields is None or key in fields:
                metrics.append(key)
    return metrics


def _index_records(path, records, match_fields) -> dict[tuple, dict]:
    indexed: dict[tuple, dict] = {}
    for record in records:
        key = _record_key(record, match_fields)
        if key in indexed:
            raise ReproError(
                f"{path}: duplicate bench key {dict(key)} — pass --match "
                "with more fields to disambiguate"
            )
        indexed[key] = record
    return indexed


def compare_bench(
    base_path,
    head_path,
    *,
    threshold: float = DEFAULT_THRESHOLD,
    min_seconds: float = DEFAULT_MIN_SECONDS,
    fields: list[str] | None = None,
    match_fields=DEFAULT_MATCH_FIELDS,
) -> BenchComparison:
    """Join two bench files on *match_fields* and judge every metric.

    *fields* restricts which metrics are compared (``None`` = every
    timing and every higher-better ratio present in both records).
    """
    if threshold < 0:
        raise ReproError("threshold must be non-negative")
    (_, _, base_records), (_, _, head_records) = load_bench_files(
        [base_path, head_path]
    )
    base_index = _index_records(base_path, base_records, match_fields)
    head_index = _index_records(head_path, head_records, match_fields)

    comparison = BenchComparison()
    comparison.missing_in_head = [k for k in base_index if k not in head_index]
    comparison.missing_in_base = [k for k in head_index if k not in base_index]

    for key, base_record in base_index.items():
        head_record = head_index.get(key)
        if head_record is None:
            continue
        for metric in _comparable_metrics(base_record, fields):
            base_value = _numeric(base_record.get(metric))
            head_value = _numeric(head_record.get(metric))
            if base_value is None or head_value is None:
                continue
            lower_better = not _higher_better(metric)
            skipped = None
            if lower_better:
                if base_value < min_seconds and head_value < min_seconds:
                    skipped = f"both below the {min_seconds}s noise floor"
                    change = 0.0
                elif base_value == 0.0:
                    skipped = "base timing is zero"
                    change = 0.0
                else:
                    change = (head_value - base_value) / base_value
            else:
                if base_value == 0.0:
                    skipped = "base ratio is zero"
                    change = 0.0
                else:
                    change = (base_value - head_value) / base_value
            comparison.deltas.append(
                FieldDelta(
                    key=key,
                    metric=metric,
                    base=base_value,
                    head=head_value,
                    change=change,
                    lower_better=lower_better,
                    regressed=skipped is None and change > threshold,
                    skipped=skipped,
                )
            )
    return comparison


def _key_text(key: tuple) -> str:
    return " ".join(f"{name}={value}" for name, value in key)


def render_comparison(
    comparison: BenchComparison,
    *,
    threshold: float = DEFAULT_THRESHOLD,
    verbose: bool = False,
) -> str:
    """Human-readable comparison table; regressions always listed."""
    lines: list[str] = []
    judged = [d for d in comparison.deltas if d.skipped is None]
    skipped = [d for d in comparison.deltas if d.skipped is not None]
    for delta in comparison.deltas:
        if delta.skipped is not None and not verbose:
            continue
        if not (verbose or delta.regressed):
            continue
        status = "REGRESSION" if delta.regressed else (
            f"skipped ({delta.skipped})" if delta.skipped else "ok"
        )
        lines.append(
            f"{status:>26}  {_key_text(delta.key)}  {delta.metric}: "
            f"{delta.base:g} -> {delta.head:g} ({delta.describe()})"
        )
    for key in comparison.missing_in_head:
        lines.append(f"{'missing in head':>26}  {_key_text(key)}")
    for key in comparison.missing_in_base:
        lines.append(f"{'new in head':>26}  {_key_text(key)}")
    lines.append(
        f"compared {len(judged)} metric(s) across "
        f"{len({d.key for d in comparison.deltas})} record pair(s) "
        f"(threshold {threshold * 100:.0f}%, {len(skipped)} below noise "
        f"floor): {len(comparison.regressions)} regression(s)"
    )
    return "\n".join(lines)

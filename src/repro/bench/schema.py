"""One schema for every ``BENCH_*.json`` file.

BENCH_PR2/PR3/PR7 drifted in field names and shape (bare record lists,
per-suite timing keys).  This module pins the output down:

* a bench file is ``{"schema": "repro-bench/1", "suite": ..., "seed":
  ..., "label": ..., "records": [...]}``,
* every record is a flat JSON object with a non-empty ``op``, optional
  ``backend``/``n``/``params``, any number of ``*_seconds`` timings
  (finite, non-negative) and optional ``speedup``-style ratios (finite,
  positive),
* :func:`validate_records` is run by the bench CLI *before* anything is
  written, so a malformed record aborts the run instead of landing in
  the repository,
* :func:`load_bench_files` reads both the pinned format and the legacy
  bare-list files of earlier PRs, and :func:`render_report` tabulates
  any number of them (``repro bench report``) for trajectory tracking.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from repro.exceptions import ReproError

__all__ = [
    "SCHEMA_ID",
    "validate_records",
    "write_bench",
    "load_bench_files",
    "render_report",
]

SCHEMA_ID = "repro-bench/1"

_SCALARS = (str, int, float, bool, type(None))


def _check_scalar(errors: list[str], where: str, key: str, value) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        if not isinstance(value, _SCALARS):
            errors.append(f"{where}: field {key!r} is not a JSON scalar")
        return
    if isinstance(value, float) and not math.isfinite(value):
        errors.append(f"{where}: field {key!r} is not finite ({value!r})")


def validate_records(records) -> list[str]:
    """All schema violations in *records* (empty list == valid)."""
    errors: list[str] = []
    if not isinstance(records, list):
        return [f"records must be a list, got {type(records).__name__}"]
    for i, record in enumerate(records):
        where = f"record {i}"
        if not isinstance(record, dict):
            errors.append(f"{where}: not an object")
            continue
        op = record.get("op")
        if not isinstance(op, str) or not op:
            errors.append(f"{where}: missing or empty 'op'")
        else:
            where = f"record {i} ({op})"
        backend = record.get("backend")
        if backend is not None and not isinstance(backend, str):
            errors.append(f"{where}: 'backend' must be a string")
        n = record.get("n")
        if n is not None and (isinstance(n, bool) or not isinstance(n, int) or n < 0):
            errors.append(f"{where}: 'n' must be a non-negative integer")
        for key, value in record.items():
            if key == "params" and isinstance(value, dict):
                for pk, pv in value.items():
                    _check_scalar(errors, where, f"params.{pk}", pv)
                continue
            _check_scalar(errors, where, key, value)
            if key == "seconds" or key.endswith("_seconds"):
                if (
                    isinstance(value, bool)
                    or not isinstance(value, (int, float))
                    or not math.isfinite(float(value))
                    or value < 0
                ):
                    errors.append(
                        f"{where}: timing {key!r} must be a finite "
                        f"non-negative number, got {value!r}"
                    )
            if key == "speedup" or key.endswith("_speedup"):
                if (
                    isinstance(value, bool)
                    or not isinstance(value, (int, float))
                    or not math.isfinite(float(value))
                    or value <= 0
                ):
                    errors.append(
                        f"{where}: ratio {key!r} must be a finite "
                        f"positive number, got {value!r}"
                    )
    return errors


def write_bench(
    path: str | Path,
    records: list[dict],
    *,
    suite: str,
    seed: int | None = None,
    label: str | None = None,
) -> Path:
    """Validate *records* and write one schema-pinned bench file.

    Raises :class:`ReproError` (nothing is written) when any record
    violates the schema — the CLI runs every suite through here.
    """
    errors = validate_records(records)
    if errors:
        detail = "; ".join(errors[:5])
        more = f" (+{len(errors) - 5} more)" if len(errors) > 5 else ""
        raise ReproError(f"bench output failed schema validation: {detail}{more}")
    payload = {
        "schema": SCHEMA_ID,
        "suite": suite,
        "seed": seed,
        "label": label,
        "records": records,
    }
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def load_bench_files(paths) -> list[tuple[Path, dict, list[dict]]]:
    """Read bench files as ``(path, meta, records)`` triples.

    Accepts both the pinned format and the legacy bare-list files of
    PR 2/3/7 (``meta`` then carries ``{"schema": "legacy"}``).  A file
    that parses as neither raises :class:`ReproError`.
    """
    out: list[tuple[Path, dict, list[dict]]] = []
    for path in paths:
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            raise ReproError(f"{path}: unreadable bench file: {exc}") from exc
        if isinstance(payload, dict) and "records" in payload:
            meta = {k: v for k, v in payload.items() if k != "records"}
            records = payload["records"]
        elif isinstance(payload, list):
            meta = {"schema": "legacy", "suite": None, "seed": None, "label": None}
            records = payload
        else:
            raise ReproError(f"{path}: not a bench file (expected list or object)")
        if not isinstance(records, list) or not all(
            isinstance(r, dict) for r in records
        ):
            raise ReproError(f"{path}: bench records must be a list of objects")
        out.append((path, meta, records))
    return out


def _primary_timing(record: dict) -> tuple[str, float] | None:
    """The most representative timing column for the report row."""
    preferred = (
        "batched_seconds",
        "core_seconds",
        "approx_seconds",
        "seconds",
    )
    for key in preferred:
        value = record.get(key)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return key, float(value)
    for key in sorted(record):
        if key == "seconds" or key.endswith("_seconds"):
            value = record[key]
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                return key, float(value)
    return None


def render_report(entries) -> str:
    """Tabulate ``load_bench_files`` output: one line per record."""
    lines: list[str] = []
    header = (
        f"{'file':28} {'op':24} {'backend':8} {'n':>8} "
        f"{'timing':>24} {'speedup':>8}  extra"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for path, meta, records in entries:
        suite = meta.get("suite") or meta.get("schema") or "?"
        lines.append(f"{path.name}  [{suite}, seed={meta.get('seed')}]")
        for record in records:
            op = str(record.get("op", "?"))
            backend = str(record.get("backend") or "-")
            n = record.get("n")
            timing = _primary_timing(record)
            timing_text = f"{timing[1]:.4f}s ({timing[0]})" if timing else "-"
            speedup = record.get("speedup")
            speedup_text = (
                f"{speedup:.2f}x"
                if isinstance(speedup, (int, float))
                and not isinstance(speedup, bool)
                else "-"
            )
            extras = []
            for key in ("recall", "reduction", "budget", "queries", "skipped"):
                if key in record:
                    extras.append(f"{key}={record[key]}")
            lines.append(
                f"{'':28} {op:24} {backend:8} "
                f"{n if n is not None else '-':>8} "
                f"{timing_text:>24} {speedup_text:>8}  {' '.join(extras)}"
            )
    return "\n".join(lines)

"""Benchmark output schema and reporting (see :mod:`repro.bench.schema`)."""

from repro.bench.schema import (
    SCHEMA_ID,
    load_bench_files,
    render_report,
    validate_records,
    write_bench,
)

__all__ = [
    "SCHEMA_ID",
    "load_bench_files",
    "render_report",
    "validate_records",
    "write_bench",
]

"""Benchmark output schema, reporting and regression comparison
(see :mod:`repro.bench.schema` and :mod:`repro.bench.compare`)."""

from repro.bench.compare import (
    BenchComparison,
    FieldDelta,
    compare_bench,
    render_comparison,
)
from repro.bench.schema import (
    SCHEMA_ID,
    load_bench_files,
    render_report,
    validate_records,
    write_bench,
)

__all__ = [
    "BenchComparison",
    "FieldDelta",
    "SCHEMA_ID",
    "compare_bench",
    "load_bench_files",
    "render_comparison",
    "render_report",
    "validate_records",
    "write_bench",
]

"""Wide-event query log: one structured record per similarity query.

Aggregate counters answer "how is the system doing"; this module
answers "why was *this* query slow".  Every query through
:class:`~repro.core.queries.FilterRefineEngine` (and the approximate
tier, and the M-tree path of :class:`~repro.db.SimilarityDatabase`)
funnels through :func:`record_query`, which

* always folds the query's :class:`~repro.core.queries.QueryStats`
  into the registry counters (exactly the pre-PR-9 behaviour), and
* emits one *wide event* — a single ``query`` record joining phase
  timings (filter / Hamming shortlist / exact refine), engine stats
  (candidates ranked, pruned, exact computations, overshoot,
  shortlist size), IO deltas, backend, mode, and k — subject to
  sampling.

Sampling is deterministic (a fractional accumulator, no randomness —
the repo's seeding discipline extends to telemetry): at rate *r*,
exactly ``floor(m * r)``-ish of every ``m`` queries are logged, in a
reproducible pattern.  A query whose total latency reaches the
``slow_ms`` threshold is *always* captured, regardless of the sampling
rate, and carries a full ``explain`` payload (per-phase breakdown,
pruning power, engine configuration) so the one query that mattered is
never the one that was sampled away.

Context fields (backend, mode, database version, IO baselines) are
contributed by outer layers through the thread-local
:func:`query_context` stack; the innermost emission point never needs
to know who is calling it.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass

from repro.obs import metrics
from repro.obs.events import emit

__all__ = [
    "QueryLogConfig",
    "config",
    "configure",
    "current_context",
    "io_baseline",
    "query_context",
    "record_query",
    "reset",
]


@dataclass
class QueryLogConfig:
    """Sampling policy for wide query events.

    ``sample_rate`` is the fraction of queries logged (1.0 = every
    query; 0.0 = none).  ``slow_ms`` is the always-capture latency
    threshold in milliseconds (``None`` disables slow capture);
    ``slow_ms=0`` therefore captures everything, which is how tests
    fire the slow path deterministically.
    """

    sample_rate: float = 1.0
    slow_ms: float | None = None


_config = QueryLogConfig()
_lock = threading.Lock()
_sample_acc = 0.0
_ctx = threading.local()


def configure(sample_rate: float = 1.0, slow_ms: float | None = None) -> QueryLogConfig:
    """Install a sampling policy (CLI: ``--sample`` / ``--slow-ms``)."""
    global _config, _sample_acc
    if not 0.0 <= sample_rate <= 1.0:
        raise ValueError(f"sample_rate must be in [0, 1], got {sample_rate}")
    if slow_ms is not None and slow_ms < 0:
        raise ValueError(f"slow_ms must be non-negative, got {slow_ms}")
    with _lock:
        _config = QueryLogConfig(sample_rate=sample_rate, slow_ms=slow_ms)
        _sample_acc = 0.0
    return _config


def config() -> QueryLogConfig:
    return _config


def reset() -> None:
    """Restore defaults (tests; the CLI's end-of-run cleanup)."""
    global _config, _sample_acc
    with _lock:
        _config = QueryLogConfig()
        _sample_acc = 0.0
    _ctx.stack = []


def _should_sample() -> bool:
    """Deterministic rate limiter: at rate r, the accumulator crosses
    1.0 on a fixed, reproducible subsequence of queries."""
    global _sample_acc
    rate = _config.sample_rate
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    with _lock:
        _sample_acc += rate
        if _sample_acc >= 1.0:
            _sample_acc -= 1.0
            return True
        return False


# -- context ------------------------------------------------------------------


def _stack() -> list:
    try:
        return _ctx.stack
    except AttributeError:
        _ctx.stack = []
        return _ctx.stack


@contextmanager
def query_context(**fields):
    """Contribute fields to every wide record emitted inside the block.

    Frames nest (inner frames win key conflicts); the database layer
    uses this to stamp backend/mode/version and IO baselines without
    threading them through every engine signature.
    """
    stack = _stack()
    stack.append(fields)
    try:
        yield
    finally:
        stack.pop()


def current_context() -> dict:
    merged: dict = {}
    for frame in _stack():
        merged.update(frame)
    return merged


def io_baseline() -> tuple[float, float]:
    """Current IO counter totals, to be passed as the ``io_baseline``
    context field; :func:`record_query` turns them into per-query
    ``io_pages`` / ``io_bytes`` deltas at emission time."""
    reg = metrics.registry()
    return (
        getattr(reg.counter("io.page_accesses"), "value", 0),
        getattr(reg.counter("io.bytes_read"), "value", 0),
    )


# -- emission -----------------------------------------------------------------


def record_query(
    kind: str,
    stats: dict,
    n: int,
    *,
    seconds: float = 0.0,
    refine_seconds: float = 0.0,
    blocks: int = 0,
    **extra,
) -> None:
    """Account one query and (subject to sampling) emit its wide event.

    Parameters
    ----------
    kind:
        Query kind (``knn``, ``range``, ``scan``, ``knn_subset``,
        ``mtree_knn``, ``mtree_range``).
    stats:
        The flat ``QueryStats.as_dict()`` mapping — copied into the
        record verbatim, so the event agrees field-for-field with what
        the caller got back.
    n:
        Database size at query time (denominator of selectivity).
    seconds / refine_seconds / blocks:
        Total measured wall time, the part spent in exact refinement,
        and the number of refine blocks.  The filter phase is the
        remainder — except in approx mode, where the shortlist phase is
        measured by the approx engine and contributed as the
        ``filter_seconds`` context field (the engine-side ``seconds``
        then covers only the refine subset and the total is their sum).
    extra:
        Per-kind fields (k, epsilon, result count, ...).
    """
    reg = metrics.registry()
    if not reg.enabled:
        return
    selectivity = stats.get("exact_computations", 0) / n if n else 0.0
    reg.counter("query.count").inc()
    reg.count_many("query.", stats)
    reg.histogram("query.selectivity").observe(selectivity)

    fields = current_context()
    fields.update(extra)

    filter_override = fields.pop("filter_seconds", None)
    if filter_override is not None:
        filter_seconds = float(filter_override)
        total_seconds = seconds + filter_seconds
    else:
        total_seconds = seconds
        filter_seconds = max(total_seconds - refine_seconds, 0.0)
    reg.histogram("query.seconds").observe(total_seconds)

    base = fields.pop("io_baseline", None)
    if base is not None:
        pages, read = io_baseline()
        fields["io_pages"] = pages - base[0]
        fields["io_bytes"] = read - base[1]

    slow = (
        _config.slow_ms is not None and total_seconds * 1000.0 >= _config.slow_ms
    )
    sampled = _should_sample()
    if not (sampled or slow):
        reg.counter("querylog.dropped").inc()
        return
    reg.counter("querylog.sampled").inc()

    record = {
        "kind": kind,
        "n": n,
        **stats,
        "selectivity": selectivity,
        "seconds": total_seconds,
        "filter_seconds": filter_seconds,
        "refine_seconds": refine_seconds,
        "blocks": blocks,
        **fields,
    }
    if slow:
        reg.counter("querylog.slow").inc()
        record["slow"] = True
        record["explain"] = _explain(record, stats, n)
    emit("query", **record)


def _explain(record: dict, stats: dict, n: int) -> dict:
    """The full payload attached to slow-query captures: where the time
    went, how well the filter worked, and under what policy."""
    total = record["seconds"] or 0.0
    phases = {
        "filter_seconds": record["filter_seconds"],
        "refine_seconds": record["refine_seconds"],
    }
    refined = stats.get("exact_computations", 0)
    return {
        "slow_ms_threshold": _config.slow_ms,
        "sample_rate": _config.sample_rate,
        "phases": phases,
        "phase_fractions": {
            name.replace("_seconds", ""): (value / total if total else 0.0)
            for name, value in phases.items()
        },
        "pruning_power": stats.get("pruned", 0) / n if n else 0.0,
        "refined_per_block": (refined / record["blocks"]) if record["blocks"] else 0.0,
        "overshoot": stats.get("extra_refinements", 0),
    }

"""``repro.obs`` — the unified observability layer.

The paper's entire efficiency argument (§5.2, Table 2) rests on measured
counters: page accesses, candidate counts, filter selectivity under the
extended-centroid lower bound.  This package turns that evaluation
methodology into a first-class capability:

* :mod:`repro.obs.metrics` — a process-wide registry of counters,
  gauges and bounded-reservoir histograms with exact cross-process
  merging,
* :mod:`repro.obs.spans` — nestable wall-time spans
  (``with span("refine", k=7): ...``) feeding latency histograms and a
  causal trace,
* :mod:`repro.obs.events` — a structured JSON-lines sink for per-query
  and per-ingest telemetry (``--trace FILE``),
* :mod:`repro.obs.report` — merging/validation/rendering behind
  ``repro stats``.

Everything is a cheap no-op until :func:`enable` is called (the CLI
does so for ``--trace``/``--metrics``).  Worker processes record into
their own registry under :func:`capture_deltas`; the parent folds the
returned snapshots back with :func:`merge_worker_snapshot`, so
``--jobs`` runs aggregate exactly like serial ones.
"""

from __future__ import annotations

from repro.obs.events import (
    close_sink,
    configure_sink,
    dispatch,
    emit,
    sink,
)
from repro.obs.metrics import (
    MetricsRegistry,
    capture_deltas,
    counter,
    disable,
    enable,
    enabled,
    gauge,
    histogram,
    registry,
)
from repro.obs.spans import NULL_SPAN, Span, reset_stack, span
from repro.obs.tracectx import (
    clear_trace_context,
    current_trace_id,
    new_trace_id,
    set_trace_context,
    trace_context,
)

__all__ = [
    "MetricsRegistry",
    "NULL_SPAN",
    "Span",
    "capture_deltas",
    "clear_trace_context",
    "close_sink",
    "configure_sink",
    "counter",
    "current_trace_id",
    "disable",
    "dispatch",
    "emit",
    "enable",
    "enabled",
    "gauge",
    "histogram",
    "merge_worker_snapshot",
    "new_trace_id",
    "registry",
    "reset_stack",
    "set_trace_context",
    "sink",
    "span",
    "trace_context",
]


def merge_worker_snapshot(snap: dict | None) -> None:
    """Fold a worker's :func:`capture_deltas` snapshot into this process.

    Instruments merge into the registry (counters and histogram totals
    sum exactly); events the worker buffered are re-dispatched here, so
    they land in the parent's trace sink in worker-completion order.
    """
    if not snap:
        return
    registry().merge(snap)
    for record in snap.get("events", ()):
        dispatch(record)

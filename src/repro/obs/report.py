"""Merging, validation and rendering of observability output.

``repro stats`` is a thin CLI wrapper around this module: metrics
snapshots (the ``--metrics FILE`` JSON documents) merge exactly for
counters and approximately for histogram quantiles; traces (the
``--trace FILE`` JSON-lines files) are validated structurally — every
``span_start`` must have a matching ``span_end``, counters must be
non-negative — which is also what the CI bench-smoke job asserts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.exceptions import ReproError
from repro.obs.metrics import Histogram, MetricsRegistry


def load_metrics(paths: list[str | Path]) -> MetricsRegistry:
    """Merge any number of metrics-snapshot files into one registry."""
    merged = MetricsRegistry(enabled=True)
    for path in paths:
        try:
            snap = json.loads(Path(path).read_text())
        except (OSError, ValueError) as exc:
            raise ReproError(f"cannot read metrics file {path}: {exc}") from exc
        if not isinstance(snap, dict):
            raise ReproError(f"metrics file {path} is not a JSON object")
        merged.merge(snap)
    return merged


@dataclass
class TraceCheck:
    """Structural validation result for one trace file."""

    path: str
    events: int = 0
    spans: int = 0
    by_event: dict = field(default_factory=dict)
    errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors


def validate_trace(path: str | Path) -> TraceCheck:
    """Check a JSON-lines trace: parseable lines, every span closed."""
    check = TraceCheck(path=str(path))
    open_spans: dict[str, str] = {}
    try:
        lines = Path(path).read_text().splitlines()
    except OSError as exc:
        check.errors.append(f"cannot read trace: {exc}")
        return check
    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError:
            check.errors.append(f"line {lineno}: not valid JSON")
            continue
        if not isinstance(record, dict) or "event" not in record:
            check.errors.append(f"line {lineno}: record has no 'event' field")
            continue
        check.events += 1
        kind = record["event"]
        check.by_event[kind] = check.by_event.get(kind, 0) + 1
        if kind == "span_start":
            open_spans[record.get("id", f"?{lineno}")] = record.get("name", "?")
        elif kind == "span_end":
            span_id = record.get("id")
            if span_id in open_spans:
                del open_spans[span_id]
                check.spans += 1
            else:
                check.errors.append(
                    f"line {lineno}: span_end {record.get('name')!r} "
                    f"(id={span_id}) without a matching span_start"
                )
            if not isinstance(record.get("seconds"), (int, float)) or record["seconds"] < 0:
                check.errors.append(
                    f"line {lineno}: span_end without a non-negative 'seconds'"
                )
    for span_id, name in open_spans.items():
        check.errors.append(f"span {name!r} (id={span_id}) never closed")
    return check


def validate_counters(registry: MetricsRegistry) -> list[str]:
    """Every merged counter must be non-negative."""
    return [
        f"counter {name!r} is negative ({counter.value})"
        for name, counter in sorted(registry._counters.items())
        if counter.value < 0
    ]


def max_reservoir(registry: MetricsRegistry) -> int:
    """Largest reservoir bound across the registry's histograms (for
    the estimate caveat in the report header)."""
    sizes = [h.max_samples for h in registry._histograms.values()]
    return max(sizes) if sizes else 0


def render_report(
    registry: MetricsRegistry, checks: list[TraceCheck] | None = None
) -> str:
    """Human-readable merged report (the text mode of ``repro stats``)."""
    lines: list[str] = []
    snap = registry.snapshot(include_events=False)
    if snap["counters"]:
        lines.append("counters:")
        width = max(len(name) for name in snap["counters"])
        for name, value in snap["counters"].items():
            shown = f"{value:g}" if isinstance(value, float) else str(value)
            lines.append(f"  {name:<{width}}  {shown}")
    if snap["gauges"]:
        lines.append("gauges:")
        width = max(len(name) for name in snap["gauges"])
        for name, value in snap["gauges"].items():
            lines.append(f"  {name:<{width}}  {value:g}")
    if snap["histograms"]:
        lines.append(
            "histograms (quantiles are reservoir estimates over at most "
            f"{max_reservoir(registry)} samples/histogram):"
        )
        width = max(len(name) for name in snap["histograms"])
        for name in snap["histograms"]:
            histogram = registry.histogram(name)
            assert isinstance(histogram, Histogram)
            if not histogram.count:
                lines.append(f"  {name:<{width}}  count=0")
                continue
            lines.append(
                f"  {name:<{width}}  count={histogram.count} "
                f"samples={len(histogram.samples)} "
                f"mean={histogram.mean:.6g} p50={histogram.quantile(0.5):.6g} "
                f"p90={histogram.quantile(0.9):.6g} "
                f"p95={histogram.quantile(0.95):.6g} "
                f"p99={histogram.quantile(0.99):.6g} max={histogram.max:.6g}"
            )
    for check in checks or []:
        status = "OK" if check.ok else f"{len(check.errors)} error(s)"
        by_event = ", ".join(f"{k}={v}" for k, v in sorted(check.by_event.items()))
        lines.append(
            f"trace {check.path}: {status} "
            f"({check.events} events, {check.spans} spans closed"
            + (f"; {by_event}" if by_event else "")
            + ")"
        )
        lines.extend(f"  ERROR {message}" for message in check.errors)
    if not lines:
        lines.append("(no metrics recorded)")
    return "\n".join(lines)

"""Trace-file post-processing: causal trees and Chrome trace export.

A ``--trace FILE`` run leaves a JSON-lines file of ``span_start`` /
``span_end`` / ``query`` / ... records, possibly produced by several
processes (pool workers buffer events; the parent re-dispatches them
into its sink).  This module reassembles those flat records:

* :func:`assemble_tree` rebuilds the causal span tree from the
  ``id``/``parent`` edges.  Because the CLI opens one root span per
  command and :mod:`repro.parallel` propagates the submitting span into
  every worker, a whole scatter-gather run — parent and workers —
  reassembles into a *single* rooted tree.
* :func:`chrome_trace` renders the records as Chrome trace-event JSON
  (the ``about:tracing`` / Perfetto format): each completed span
  becomes a ``ph:"X"`` complete event on its originating process's
  track, every other record an instant event.  ``repro obs export``
  is the CLI entry point.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["assemble_tree", "chrome_trace", "load_trace", "query_records"]


def load_trace(path: str | Path) -> list[dict]:
    """Parse a JSON-lines trace file (blank lines skipped)."""
    records = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def _span_pid(record: dict) -> int:
    """Originating process of a span: span ids are ``<pid>-<serial>``."""
    span_id = record.get("id", "")
    try:
        return int(str(span_id).split("-", 1)[0])
    except ValueError:
        return int(record.get("pid", 0))


def query_records(records: list[dict]) -> list[dict]:
    """The wide query-log records of a trace."""
    return [r for r in records if r.get("event") == "query"]


def assemble_tree(records: list[dict]) -> dict:
    """Rebuild the span tree: ``{"roots": [ids], "nodes": {id: node}}``.

    Each node is the ``span_end`` record plus a ``children`` list (in
    record order).  A span whose parent never completed in this trace
    (or has ``parent: null``) is a root.  ``trace_ids`` collects the
    distinct trace ids seen, so callers can assert a run produced one
    coherent trace.
    """
    nodes: dict[str, dict] = {}
    order: list[str] = []
    for record in records:
        if record.get("event") != "span_end":
            continue
        node = dict(record)
        node["children"] = []
        nodes[record["id"]] = node
        order.append(record["id"])
    roots: list[str] = []
    for span_id in order:
        parent = nodes[span_id].get("parent")
        if parent is not None and parent in nodes:
            nodes[parent]["children"].append(span_id)
        else:
            roots.append(span_id)
    trace_ids = sorted(
        {r["trace"] for r in records if "trace" in r and r["trace"] is not None}
    )
    return {"roots": roots, "nodes": nodes, "trace_ids": trace_ids}


def chrome_trace(records: list[dict]) -> dict:
    """Render trace records as Chrome trace-event JSON.

    ``span_end`` records (which carry both the end wall-clock ``ts``
    and the measured ``seconds``) become complete events: ``ts`` is the
    start in microseconds, ``dur`` the duration.  Every non-span record
    becomes a process-scoped instant event, so queries and ingests show
    up as markers on the same timeline.
    """
    events = []
    for record in records:
        event = record.get("event")
        if event == "span_start":
            continue  # the span_end carries the full interval
        if event == "span_end":
            seconds = float(record.get("seconds", 0.0))
            end_ts = float(record.get("ts", 0.0))
            args = dict(record.get("attrs") or {})
            for key in ("id", "parent", "trace"):
                if record.get(key) is not None:
                    args[key] = record[key]
            pid = _span_pid(record)
            events.append(
                {
                    "ph": "X",
                    "name": record.get("name", "span"),
                    "cat": "span",
                    "ts": (end_ts - seconds) * 1e6,
                    "dur": seconds * 1e6,
                    "pid": pid,
                    "tid": pid,
                    "args": args,
                }
            )
        else:
            pid = int(record.get("pid", 0))
            args = {
                k: v for k, v in record.items() if k not in ("event", "ts", "pid")
            }
            events.append(
                {
                    "ph": "i",
                    "name": event or "event",
                    "cat": "event",
                    "s": "p",
                    "ts": float(record.get("ts", 0.0)) * 1e6,
                    "pid": pid,
                    "tid": pid,
                    "args": args,
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}

"""Nestable wall-time spans: ``with span("refine", k=7): ...``.

A span measures the wall time of a code region, knows its parent (spans
nest through a thread-local stack), feeds a ``span.<name>.seconds``
histogram in the metrics registry, and emits paired
``span_start``/``span_end`` trace events — so one construct yields
latency histograms for ``repro stats`` *and* a causally nested trace for
``--trace FILE``.

While observability is disabled, ``span()`` yields a shared null span
and does nothing else; pass ``force=True`` to always measure time (used
by ``repro bench``, whose whole purpose is timing) without touching the
registry or the trace unless observability is enabled.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager

from repro.obs import metrics, tracectx
from repro.obs.events import dispatch

_local = threading.local()
_id_lock = threading.Lock()
_next_id = 0


def _stack() -> list:
    try:
        return _local.stack
    except AttributeError:
        _local.stack = []
        return _local.stack


def reset_stack() -> None:
    """Drop any open spans inherited by a forked worker process.

    A pool worker forked mid-span inherits the parent's (thread-local)
    span stack; parenting worker spans to those stale entries would be
    wrong once the pool is reused for a later batch.  Workers call this
    before installing their propagated trace context, so their spans
    parent to the *propagated* submitting span instead.
    """
    _local.stack = []


def _new_span_id() -> str:
    """Unique across threads and (fork-spawned) worker processes."""
    global _next_id
    with _id_lock:
        _next_id += 1
        serial = _next_id
    return f"{os.getpid()}-{serial}"


class Span:
    """One timed region; ``seconds`` is valid after the ``with`` block."""

    __slots__ = ("name", "attrs", "span_id", "parent_id", "start", "seconds")

    def __init__(self, name: str, attrs: dict, span_id: str, parent_id: str | None):
        self.name = name
        self.attrs = attrs
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = 0.0
        self.seconds = 0.0

    def set(self, **attrs) -> None:
        """Attach attributes after entry (e.g. result counts)."""
        self.attrs.update(attrs)


class _NullSpan:
    __slots__ = ()
    seconds = 0.0

    def set(self, **attrs) -> None:
        pass


NULL_SPAN = _NullSpan()


@contextmanager
def span(name: str, /, force: bool = False, **attrs):
    """Time a region; record histogram + trace events when enabled.

    Parameters
    ----------
    name:
        Span name (positional-only, so ``name=...`` is a free attribute
        key); the latency histogram is ``span.<name>.seconds``.
    force:
        Measure wall time even while observability is disabled (the
        span is still invisible to registry and trace).
    attrs:
        Arbitrary JSON-able attributes stored on the ``span_end`` event.
    """
    recording = metrics.enabled()
    if not (recording or force):
        yield NULL_SPAN
        return
    stack = _stack()
    parent_id = None
    if recording:
        # Nesting is thread-local; a span opening on an empty stack
        # parents to the cross-process span propagated by pool_map (if
        # any), which is what stitches worker traces into one tree.
        parent_id = stack[-1].span_id if stack else tracectx.propagated_parent()
    record = Span(name, dict(attrs), _new_span_id() if recording else "", parent_id)
    if recording:
        stack.append(record)
        start_event = {
            "event": "span_start",
            "ts": time.time(),
            "id": record.span_id,
            "name": name,
            "parent": parent_id,
        }
        trace_id = tracectx.current_trace_id()
        if trace_id is not None:
            start_event["trace"] = trace_id
        dispatch(start_event)
    record.start = time.perf_counter()
    try:
        yield record
    finally:
        record.seconds = time.perf_counter() - record.start
        if recording:
            stack.pop()
            metrics.histogram(f"span.{name}.seconds").observe(record.seconds)
            end_event = {
                "event": "span_end",
                "ts": time.time(),
                "id": record.span_id,
                "name": name,
                "parent": parent_id,
                "seconds": record.seconds,
                "attrs": record.attrs,
            }
            trace_id = tracectx.current_trace_id()
            if trace_id is not None:
                end_event["trace"] = trace_id
            dispatch(end_event)

"""Propagated trace contexts: one causal tree per CLI command.

A *trace context* is the pair ``(trace_id, parent_span_id)``.  The CLI
opens one root context per command (every span and event of the run
carries the same ``trace`` field); :func:`repro.parallel.pool_map`
captures the caller's context — including the currently open span — and
re-installs it inside each worker, so spans recorded in a pool worker
parent to the span that submitted the work.  A scattered parallel
ingest or query batch therefore reassembles into a single rooted tree
(``repro obs export`` renders it as Chrome trace-event JSON).

The context is deliberately process-global, not thread-local: the unit
of tracing is one CLI command / one query batch, and worker processes
install exactly one context for the task they are running.  Span
*nesting* stays thread-local (see :mod:`repro.obs.spans`); the context
only supplies the trace id and the cross-process parent for spans that
open on an empty stack.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager

__all__ = [
    "clear_trace_context",
    "current_trace_id",
    "new_trace_id",
    "propagated_parent",
    "propagation",
    "set_trace_context",
    "trace_context",
]

_trace_id: str | None = None
_parent_span_id: str | None = None


def new_trace_id() -> str:
    """A trace id unique across processes and time (not a secret)."""
    return f"{os.getpid():x}-{time.time_ns():x}"


def current_trace_id() -> str | None:
    return _trace_id


def propagated_parent() -> str | None:
    """The cross-process parent span id for spans opening on an empty
    stack (installed by a pool worker from its propagated context)."""
    return _parent_span_id


def set_trace_context(trace_id: str | None, parent_span_id: str | None = None) -> None:
    global _trace_id, _parent_span_id
    _trace_id = trace_id
    _parent_span_id = parent_span_id


def clear_trace_context() -> None:
    set_trace_context(None, None)


def propagation() -> tuple[str | None, str | None]:
    """The ``(trace_id, parent_span_id)`` pair to ship to a worker.

    The parent is the caller's innermost open span when there is one
    (so worker spans nest under the submitting span), falling back to
    the already-propagated parent (nested fan-out).
    """
    from repro.obs import spans

    stack = spans._stack()
    parent = stack[-1].span_id if stack else _parent_span_id
    return _trace_id, parent


@contextmanager
def trace_context(trace_id: str | None = None, parent_span_id: str | None = None):
    """Install a trace context for the duration of the block.

    ``trace_id=None`` mints a fresh id.  Restores the previous context
    on exit, so nested batches (or tests) never leak state.
    """
    previous = (_trace_id, _parent_span_id)
    set_trace_context(trace_id or new_trace_id(), parent_span_id)
    try:
        yield _trace_id
    finally:
        set_trace_context(*previous)

"""Process-wide metrics registry: counters, gauges, bounded histograms.

The registry is the accumulation point of the observability layer
(:mod:`repro.obs`): hot paths increment named counters, set gauges and
observe histogram samples; the CLI serializes one :meth:`snapshot` per
run and ``repro stats`` merges any number of snapshots back into a
report.  Everything is designed around two invariants:

* **Disabled means free.**  While the registry is disabled (the
  default), ``counter()``/``gauge()``/``histogram()`` return shared
  null instruments whose mutators are empty methods — instrumented hot
  paths pay an attribute check and a no-op call, nothing else, and the
  registry itself stays empty.
* **Merging is exact for counters.**  Snapshots are plain JSON-able
  dicts; merging sums counters and histogram counts/sums, so totals
  aggregated across worker processes (see :func:`capture_deltas` and
  :func:`repro.parallel.pool_map`) equal the serial run exactly.
  Histogram *quantiles* are estimates over a deterministic
  stride-sampled reservoir and merge approximately.
"""

from __future__ import annotations

import math
import threading
from contextlib import contextmanager

#: Reservoir size per histogram; quantiles are estimated over at most
#: this many stride-sampled observations.
DEFAULT_RESERVOIR = 256

#: Events buffered in the registry when no trace sink is configured
#: (worker processes); older events are kept, overflow is counted.
MAX_BUFFERED_EVENTS = 10_000


class Counter:
    """A monotonically growing named total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount


class Gauge:
    """A last-write-wins instantaneous value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Exact count/sum/min/max plus a bounded, deterministic reservoir.

    The reservoir keeps every ``stride``-th observation; when it
    overflows, every other sample is dropped and the stride doubles —
    no randomness, so repeated runs produce identical snapshots.
    """

    __slots__ = ("count", "total", "min", "max", "samples", "max_samples", "_stride")

    def __init__(self, max_samples: int = DEFAULT_RESERVOIR) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.samples: list[float] = []
        self.max_samples = max_samples
        self._stride = 1

    def observe(self, value: float) -> None:
        value = float(value)
        if self.count % self._stride == 0:
            self.samples.append(value)
            if len(self.samples) > self.max_samples:
                self.samples = self.samples[::2]
                self._stride *= 2
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated q-quantile from the reservoir (0 for empty)."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
        return ordered[index]

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "samples": list(self.samples),
        }

    def merge_dict(self, data: dict) -> None:
        count = int(data.get("count", 0))
        if not count:
            return
        self.count += count
        self.total += float(data.get("sum", 0.0))
        low, high = data.get("min"), data.get("max")
        if low is not None and low < self.min:
            self.min = float(low)
        if high is not None and high > self.max:
            self.max = float(high)
        merged = self.samples + [float(s) for s in data.get("samples", ())]
        if len(merged) > self.max_samples:
            step = -(-len(merged) // self.max_samples)
            merged = merged[::step]
        self.samples = merged


class _NullCounter:
    __slots__ = ()

    def inc(self, amount: int | float = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Named instruments plus an event buffer for sink-less processes.

    A process normally has exactly one registry (module-level
    ``_registry``, reached through :func:`registry` and the module-level
    convenience functions); constructing private instances is useful for
    merging snapshots offline (``repro stats``).
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self.events: list[dict] = []
        self.dropped_events = 0

    # -- instruments ---------------------------------------------------------

    def counter(self, name: str) -> Counter | _NullCounter:
        if not self.enabled:
            return NULL_COUNTER
        try:
            return self._counters[name]
        except KeyError:
            with self._lock:
                return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge | _NullGauge:
        if not self.enabled:
            return NULL_GAUGE
        try:
            return self._gauges[name]
        except KeyError:
            with self._lock:
                return self._gauges.setdefault(name, Gauge())

    def histogram(self, name: str) -> Histogram | _NullHistogram:
        if not self.enabled:
            return NULL_HISTOGRAM
        try:
            return self._histograms[name]
        except KeyError:
            with self._lock:
                return self._histograms.setdefault(name, Histogram())

    def count_many(self, prefix: str, values: dict) -> None:
        """Fold a flat numeric mapping into prefixed counters.

        The bridge from the ``as_dict()`` protocol of
        :class:`~repro.core.queries.QueryStats` and
        :class:`~repro.index.pages.IOCost` into the registry.
        """
        if not self.enabled:
            return
        for key, value in values.items():
            if isinstance(value, (int, float)):
                self.counter(f"{prefix}{key}").inc(value)

    # -- events --------------------------------------------------------------

    def buffer_event(self, record: dict) -> None:
        """Hold an event until a sink-owning process collects it."""
        if len(self.events) >= MAX_BUFFERED_EVENTS:
            self.dropped_events += 1
            return
        self.events.append(record)

    # -- snapshots -----------------------------------------------------------

    def snapshot(self, include_events: bool = True) -> dict:
        """A JSON-able copy of every instrument (and buffered events)."""
        return {
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
            "histograms": {
                k: h.as_dict() for k, h in sorted(self._histograms.items())
            },
            "events": list(self.events) if include_events else [],
        }

    def merge(self, snap: dict) -> None:
        """Fold a snapshot's instruments in (counters/histograms sum,
        gauges last-write-wins).  Events are *not* merged here — the
        caller routes them to the trace sink (see
        :func:`repro.obs.merge_worker_snapshot`)."""
        for name, value in snap.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snap.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, data in snap.get("histograms", {}).items():
            histogram = self.histogram(name)
            if isinstance(histogram, Histogram):
                histogram.merge_dict(data)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self.events.clear()
            self.dropped_events = 0


_registry = MetricsRegistry()


def registry() -> MetricsRegistry:
    return _registry


def enabled() -> bool:
    return _registry.enabled


def enable() -> None:
    _registry.enabled = True


def disable() -> None:
    _registry.enabled = False


def counter(name: str):
    return _registry.counter(name)


def gauge(name: str):
    return _registry.gauge(name)


def histogram(name: str):
    return _registry.histogram(name)


class _Capture:
    """Holder filled by :func:`capture_deltas` at context exit."""

    __slots__ = ("snapshot",)

    def __init__(self) -> None:
        self.snapshot: dict | None = None


@contextmanager
def capture_deltas():
    """Worker-side metric capture around one unit of work.

    Resets the (worker's) process registry, enables it, runs the body,
    and stores a snapshot of everything the body recorded in the yielded
    holder.  The registry is reset again afterwards so state never leaks
    between pool tasks (or from a forked parent).
    """
    holder = _Capture()
    _registry.reset()
    previous = _registry.enabled
    _registry.enabled = True
    try:
        yield holder
    finally:
        holder.snapshot = _registry.snapshot()
        _registry.reset()
        _registry.enabled = previous

"""Process-wide metrics registry: counters, gauges, bounded histograms.

The registry is the accumulation point of the observability layer
(:mod:`repro.obs`): hot paths increment named counters, set gauges and
observe histogram samples; the CLI serializes one :meth:`snapshot` per
run and ``repro stats`` merges any number of snapshots back into a
report.  Everything is designed around two invariants:

* **Disabled means free.**  While the registry is disabled (the
  default), ``counter()``/``gauge()``/``histogram()`` return shared
  null instruments whose mutators are empty methods — instrumented hot
  paths pay an attribute check and a no-op call, nothing else, and the
  registry itself stays empty.
* **Merging is exact for counters.**  Snapshots are plain JSON-able
  dicts; merging sums counters and histogram counts/sums, so totals
  aggregated across worker processes (see :func:`capture_deltas` and
  :func:`repro.parallel.pool_map`) equal the serial run exactly.
  Histogram *quantiles* are estimates over a deterministic
  stride-sampled reservoir and merge approximately.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from contextlib import contextmanager

#: Reservoir size per histogram; quantiles are estimated over at most
#: this many stride-sampled observations.
DEFAULT_RESERVOIR = 256

#: Fixed histogram bucket upper bounds (seconds-oriented, but generic):
#: a geometric 1/2.5/10 ladder from a quarter millisecond to ~17 minutes.
#: Unlike the reservoir, bucket counts merge *exactly* across processes,
#: which is what makes them the right shape for Prometheus exposition.
DEFAULT_BUCKETS = (
    0.00025,
    0.001,
    0.0025,
    0.01,
    0.025,
    0.1,
    0.25,
    1.0,
    2.5,
    10.0,
    25.0,
    100.0,
    250.0,
    1000.0,
)

#: Events buffered in the registry when no trace sink is configured
#: (worker processes); older events are kept, overflow is counted.
MAX_BUFFERED_EVENTS = 10_000


class Counter:
    """A monotonically growing named total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount


class Gauge:
    """A last-write-wins instantaneous value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Exact count/sum/min/max plus a bounded, deterministic reservoir.

    The reservoir keeps every ``stride``-th observation; when it
    overflows, every other sample is dropped and the stride doubles —
    no randomness, so repeated runs produce identical snapshots.

    Alongside the reservoir, every observation lands in one of the
    fixed cumulative-style buckets (``bounds[i]`` is the inclusive
    upper edge; values above the last bound only count toward the
    implicit ``+Inf`` bucket, i.e. ``count``).  Bucket counts are exact
    and merge exactly, so :meth:`MetricsRegistry.expose_prometheus` can
    render true OpenMetrics histograms while ``repro stats`` keeps its
    reservoir-estimated quantiles.
    """

    __slots__ = (
        "count",
        "total",
        "min",
        "max",
        "samples",
        "max_samples",
        "_stride",
        "bounds",
        "bucket_counts",
    )

    def __init__(
        self,
        max_samples: int = DEFAULT_RESERVOIR,
        bounds: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.samples: list[float] = []
        self.max_samples = max_samples
        self._stride = 1
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * len(self.bounds)

    def observe(self, value: float) -> None:
        value = float(value)
        if self.count % self._stride == 0:
            self.samples.append(value)
            if len(self.samples) > self.max_samples:
                self.samples = self.samples[::2]
                self._stride *= 2
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        slot = bisect_left(self.bounds, value)
        if slot < len(self.bucket_counts):
            self.bucket_counts[slot] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated q-quantile from the reservoir (0 for empty)."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
        return ordered[index]

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "samples": list(self.samples),
            "bounds": list(self.bounds),
            "buckets": list(self.bucket_counts),
        }

    def merge_dict(self, data: dict) -> None:
        count = int(data.get("count", 0))
        if not count:
            return
        self.count += count
        self.total += float(data.get("sum", 0.0))
        low, high = data.get("min"), data.get("max")
        if low is not None and low < self.min:
            self.min = float(low)
        if high is not None and high > self.max:
            self.max = float(high)
        merged = self.samples + [float(s) for s in data.get("samples", ())]
        if len(merged) > self.max_samples:
            step = -(-len(merged) // self.max_samples)
            merged = merged[::step]
        self.samples = merged
        # Bucket counts merge exactly, but only between identical
        # ladders; pre-PR-9 snapshots (no "bounds") or custom ladders
        # fall back to reservoir-only merging for this histogram.
        bounds = data.get("bounds")
        if bounds is not None and tuple(float(b) for b in bounds) == self.bounds:
            for i, n in enumerate(data.get("buckets", ())):
                self.bucket_counts[i] += int(n)


class _NullCounter:
    __slots__ = ()

    def inc(self, amount: int | float = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(prefix: str, name: str) -> str:
    """Registry names are dotted (``query.knn.count``); Prometheus
    metric names allow only ``[a-zA-Z0-9_:]``."""
    return _NAME_SANITIZER.sub("_", prefix + name)


def _format_value(value: float) -> str:
    """Integers render without a trailing ``.0`` (OpenMetrics allows
    either; the bare form keeps bucket ``le`` labels readable)."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class MetricsRegistry:
    """Named instruments plus an event buffer for sink-less processes.

    A process normally has exactly one registry (module-level
    ``_registry``, reached through :func:`registry` and the module-level
    convenience functions); constructing private instances is useful for
    merging snapshots offline (``repro stats``).
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self.events: list[dict] = []
        self.dropped_events = 0

    # -- instruments ---------------------------------------------------------

    def counter(self, name: str) -> Counter | _NullCounter:
        if not self.enabled:
            return NULL_COUNTER
        try:
            return self._counters[name]
        except KeyError:
            with self._lock:
                return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge | _NullGauge:
        if not self.enabled:
            return NULL_GAUGE
        try:
            return self._gauges[name]
        except KeyError:
            with self._lock:
                return self._gauges.setdefault(name, Gauge())

    def histogram(self, name: str) -> Histogram | _NullHistogram:
        if not self.enabled:
            return NULL_HISTOGRAM
        try:
            return self._histograms[name]
        except KeyError:
            with self._lock:
                return self._histograms.setdefault(name, Histogram())

    def count_many(self, prefix: str, values: dict) -> None:
        """Fold a flat numeric mapping into prefixed counters.

        The bridge from the ``as_dict()`` protocol of
        :class:`~repro.core.queries.QueryStats` and
        :class:`~repro.index.pages.IOCost` into the registry.
        """
        if not self.enabled:
            return
        for key, value in values.items():
            if isinstance(value, (int, float)):
                self.counter(f"{prefix}{key}").inc(value)

    # -- events --------------------------------------------------------------

    def buffer_event(self, record: dict) -> None:
        """Hold an event until a sink-owning process collects it."""
        if len(self.events) >= MAX_BUFFERED_EVENTS:
            self.dropped_events += 1
            return
        self.events.append(record)

    # -- snapshots -----------------------------------------------------------

    def snapshot(self, include_events: bool = True) -> dict:
        """A JSON-able copy of every instrument (and buffered events)."""
        return {
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
            "histograms": {
                k: h.as_dict() for k, h in sorted(self._histograms.items())
            },
            "events": list(self.events) if include_events else [],
        }

    def merge(self, snap: dict) -> None:
        """Fold a snapshot's instruments in (counters/histograms sum,
        gauges last-write-wins).  Events are *not* merged here — the
        caller routes them to the trace sink (see
        :func:`repro.obs.merge_worker_snapshot`)."""
        for name, value in snap.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snap.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, data in snap.get("histograms", {}).items():
            histogram = self.histogram(name)
            if isinstance(histogram, Histogram):
                histogram.merge_dict(data)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self.events.clear()
            self.dropped_events = 0

    # -- exposition ------------------------------------------------------------

    def expose_prometheus(self, prefix: str = "repro_") -> str:
        """Render every instrument in OpenMetrics text format.

        Counters become ``<prefix><name>_total``, gauges plain samples,
        histograms the canonical ``_bucket{le=...}`` / ``_sum`` /
        ``_count`` triple using the exact fixed-bucket counts (the
        reservoir never leaks into exposition).  This string is what
        ``repro obs expose`` writes and what a future HTTP ``/metrics``
        endpoint will serve verbatim.
        """
        lines: list[str] = []
        for name, c in sorted(self._counters.items()):
            metric = _metric_name(prefix, name) + "_total"
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {_format_value(c.value)}")
        for name, g in sorted(self._gauges.items()):
            metric = _metric_name(prefix, name)
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_format_value(g.value)}")
        for name, h in sorted(self._histograms.items()):
            metric = _metric_name(prefix, name)
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0
            for bound, n in zip(h.bounds, h.bucket_counts):
                cumulative += n
                lines.append(
                    f'{metric}_bucket{{le="{_format_value(bound)}"}} {cumulative}'
                )
            lines.append(f'{metric}_bucket{{le="+Inf"}} {h.count}')
            lines.append(f"{metric}_sum {_format_value(h.total)}")
            lines.append(f"{metric}_count {h.count}")
        lines.append("# EOF")
        return "\n".join(lines) + "\n"


_registry = MetricsRegistry()


def registry() -> MetricsRegistry:
    return _registry


def enabled() -> bool:
    return _registry.enabled


def enable() -> None:
    _registry.enabled = True


def disable() -> None:
    _registry.enabled = False


def counter(name: str):
    return _registry.counter(name)


def gauge(name: str):
    return _registry.gauge(name)


def histogram(name: str):
    return _registry.histogram(name)


class _Capture:
    """Holder filled by :func:`capture_deltas` at context exit."""

    __slots__ = ("snapshot",)

    def __init__(self) -> None:
        self.snapshot: dict | None = None


@contextmanager
def capture_deltas():
    """Worker-side metric capture around one unit of work.

    Resets the (worker's) process registry, enables it, runs the body,
    and stores a snapshot of everything the body recorded in the yielded
    holder.  The registry is reset again afterwards so state never leaks
    between pool tasks (or from a forked parent).
    """
    holder = _Capture()
    _registry.reset()
    previous = _registry.enabled
    _registry.enabled = True
    try:
        yield holder
    finally:
        holder.snapshot = _registry.snapshot()
        _registry.reset()
        _registry.enabled = previous

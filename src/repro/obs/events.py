"""Structured JSON-lines event sink for traces and telemetry.

Every record is one JSON object per line with at least an ``event``
field (``span_start``, ``span_end``, ``query``, ``ingest``, ...) and a
wall-clock ``ts``.  A process either owns a sink (the CLI configures one
for ``--trace FILE``) and writes records straight to it, or buffers
records in the metrics registry; worker-process buffers travel back to
the parent inside registry snapshots and are flushed through the
parent's sink (see :func:`repro.obs.merge_worker_snapshot`).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.obs import metrics, tracectx

#: How :class:`EventSink` treats an existing file at its path.
SINK_MODES = ("append", "truncate", "rotate")


class EventSink:
    """An append-only JSON-lines file of observability events.

    Owned by exactly one process: forked pool workers inherit the
    object but :func:`dispatch` routes their records into the worker's
    registry buffer instead (writing through an inherited shared file
    descriptor would interleave/clobber records).  Line-buffered, so a
    fork never duplicates half-flushed parent output into children.

    *mode* governs an existing file at *path*: ``"append"`` (default)
    continues after its last record — two CLI invocations sharing one
    ``--trace FILE`` both survive; ``"truncate"`` starts the file over
    (the pre-PR-9 behaviour); ``"rotate"`` moves the old file to
    ``<path>.1`` (replacing any previous ``.1``) and starts fresh.
    """

    def __init__(self, path: str | Path, mode: str = "append"):
        if mode not in SINK_MODES:
            raise ValueError(f"sink mode must be one of {SINK_MODES}, got {mode!r}")
        self.path = Path(path)
        self.mode = mode
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if mode == "rotate" and self.path.exists():
            self.path.replace(self.path.with_name(self.path.name + ".1"))
        self._handle = open(
            self.path,
            "a" if mode == "append" else "w",
            encoding="utf-8",
            buffering=1,
        )
        self.owner_pid = os.getpid()
        self.written = 0

    def write(self, record: dict) -> None:
        self._handle.write(json.dumps(record, default=str) + "\n")
        self.written += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


_sink: EventSink | None = None


def configure_sink(path: str | Path, mode: str = "append") -> EventSink:
    """Open (replacing any previous) trace sink at *path*."""
    global _sink
    if _sink is not None:
        _sink.close()
    _sink = EventSink(path, mode=mode)
    return _sink


def sink() -> EventSink | None:
    return _sink


def close_sink() -> None:
    global _sink
    if _sink is not None:
        _sink.close()
        _sink = None


def dispatch(record: dict) -> None:
    """Route a ready-made record to the sink, or buffer it.

    Only the process that configured the sink writes to it; a forked
    worker that inherited the module state buffers into its own
    registry, from which :func:`repro.obs.merge_worker_snapshot`
    re-dispatches in the parent.
    """
    if _sink is not None and _sink.owner_pid == os.getpid():
        _sink.write(record)
    else:
        metrics.registry().buffer_event(record)


def emit(event: str, **fields) -> None:
    """Emit a structured telemetry event (no-op while obs is disabled).

    Records are stamped with the current trace id (when a trace context
    is installed) and the emitting pid, so traces merged across worker
    processes keep their provenance.
    """
    if not metrics.enabled():
        return
    record = {"event": event, "ts": time.time(), "pid": os.getpid(), **fields}
    trace_id = tracectx.current_trace_id()
    if trace_id is not None and "trace" not in record:
        record["trace"] = trace_id
    dispatch(record)

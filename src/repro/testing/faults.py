"""Deterministic fault injection for robustness tests.

Three context managers monkeypatch well-defined seams of the library —
voxelization, file reads, and ``np.savez_compressed`` — and make them
fail according to a counter-based :class:`FaultSchedule`.  Nothing here
uses randomness or wall-clock time, so every injected failure is exactly
reproducible.

Typical use::

    from repro.testing import fail_once, voxelization_faults

    with voxelization_faults(fail_once(at=2)) as schedule:
        report = pipeline.process_parts(parts, on_error="skip")
    assert schedule.fired == 1

The injected exceptions mimic what the real seam would raise
(:class:`~repro.exceptions.VoxelizationError` for voxelization,
:class:`OSError` for I/O), so production code cannot tell an injected
fault from a real one — which is the point.
"""

from __future__ import annotations

import contextlib
import os
import pathlib
from pathlib import Path
from typing import Callable

import numpy as np

from repro.exceptions import VoxelizationError


class FaultSchedule:
    """Counter-based schedule deciding, per call, whether a fault fires.

    Attributes
    ----------
    calls:
        Total times the instrumented seam was entered.
    fired:
        How many of those calls were made to fail.
    """

    def __init__(self, predicate: Callable[[int], bool], description: str):
        self._predicate = predicate
        self.description = description
        self.calls = 0
        self.fired = 0

    def fire(self) -> bool:
        """Advance the call counter and report whether this call fails."""
        self.calls += 1
        hit = bool(self._predicate(self.calls))
        if hit:
            self.fired += 1
        return hit

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultSchedule({self.description!r}, calls={self.calls}, "
            f"fired={self.fired})"
        )


def fail_once(at: int = 1) -> FaultSchedule:
    """Fail exactly the *at*-th call (1-based), succeed otherwise."""
    return FaultSchedule(lambda n: n == at, f"fail call #{at}")


def fail_first(n: int) -> FaultSchedule:
    """Fail the first *n* calls, then succeed forever."""
    return FaultSchedule(lambda c: c <= n, f"fail first {n} calls")


def fail_every(n: int) -> FaultSchedule:
    """Fail every *n*-th call (the n-th, 2n-th, ...)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return FaultSchedule(lambda c: c % n == 0, f"fail every {n}th call")


def fail_always() -> FaultSchedule:
    """Fail every call."""
    return FaultSchedule(lambda c: True, "fail always")


def never_fail() -> FaultSchedule:
    """Count calls without ever failing (for instrumentation-only runs)."""
    return FaultSchedule(lambda c: False, "never fail")


# -- context managers ---------------------------------------------------------


@contextlib.contextmanager
def voxelization_faults(schedule: FaultSchedule, exc_factory=None):
    """Make :func:`voxelize_solid`/:func:`voxelize_mesh` fail on *schedule*.

    Patches both :mod:`repro.voxel.voxelize` and the names
    :mod:`repro.pipeline` imported from it, so faults hit regardless of
    which entry point the caller uses.
    """
    import repro.pipeline as pipeline_module
    import repro.voxel.voxelize as voxelize_module

    if exc_factory is None:
        exc_factory = lambda: VoxelizationError("injected voxelization fault")

    real_solid = voxelize_module.voxelize_solid
    real_mesh = voxelize_module.voxelize_mesh

    def _wrap(real):
        def instrumented(*args, **kwargs):
            if schedule.fire():
                raise exc_factory()
            return real(*args, **kwargs)

        return instrumented

    patched_solid, patched_mesh = _wrap(real_solid), _wrap(real_mesh)
    voxelize_module.voxelize_solid = patched_solid
    voxelize_module.voxelize_mesh = patched_mesh
    pipeline_module.voxelize_solid = patched_solid
    pipeline_module.voxelize_mesh = patched_mesh
    try:
        yield schedule
    finally:
        voxelize_module.voxelize_solid = real_solid
        voxelize_module.voxelize_mesh = real_mesh
        pipeline_module.voxelize_solid = real_solid
        pipeline_module.voxelize_mesh = real_mesh


@contextlib.contextmanager
def read_faults(schedule: FaultSchedule, exc_factory=None):
    """Make ``Path.read_bytes``/``Path.read_text`` fail on *schedule*.

    Both readers share one schedule, matching how the STL/OFF parsers
    and the mesh-directory ingest path consume files.
    """
    if exc_factory is None:
        exc_factory = lambda path: OSError(f"injected read fault: {path}")

    real_read_bytes = pathlib.Path.read_bytes
    real_read_text = pathlib.Path.read_text

    def read_bytes(self, *args, **kwargs):
        if schedule.fire():
            raise exc_factory(self)
        return real_read_bytes(self, *args, **kwargs)

    def read_text(self, *args, **kwargs):
        if schedule.fire():
            raise exc_factory(self)
        return real_read_text(self, *args, **kwargs)

    pathlib.Path.read_bytes = read_bytes
    pathlib.Path.read_text = read_text
    try:
        yield schedule
    finally:
        pathlib.Path.read_bytes = real_read_bytes
        pathlib.Path.read_text = real_read_text


#: Partial bytes the savez fault leaves behind: a plausible-looking but
#: truncated zip header, simulating a process killed mid-write.
PARTIAL_WRITE = b"PK\x03\x04" + b"\x00" * 28


@contextlib.contextmanager
def savez_faults(schedule: FaultSchedule, partial: bytes = PARTIAL_WRITE):
    """Make ``np.savez_compressed`` fail on *schedule*.

    A firing call first emits *partial* bytes to its destination — the
    on-disk state a process killed mid-save would leave — and then
    raises :class:`OSError`.  The atomic-save machinery must contain the
    damage to its temporary file.
    """
    real = np.savez_compressed

    def instrumented(file, *args, **kwargs):
        if schedule.fire():
            if hasattr(file, "write"):
                file.write(partial)
                with contextlib.suppress(OSError):
                    file.flush()
            else:
                Path(file).write_bytes(partial)
            raise OSError("injected write fault (killed mid-save)")
        return real(file, *args, **kwargs)

    np.savez_compressed = instrumented
    try:
        yield schedule
    finally:
        np.savez_compressed = real


# -- crash-point injection -----------------------------------------------------
#
# Named seams in the durability code path (WAL append, snapshot write,
# checkpoint publication, compaction) call :func:`crash_point`.  In
# production the call is a single dict lookup and returns immediately.
# Two trigger mechanisms exist:
#
# * ``REPRO_CRASH_POINT=<name>[:<n>]`` in the environment kills the
#   process with ``os._exit`` at the *n*-th (default first) hit of the
#   named point — no cleanup, no flushing, no ``atexit``: the closest a
#   test can get to ``kill -9`` while still choosing *where* it lands.
#   The subprocess recovery suite drives this.
# * :func:`armed_crash_point` arms the point in-process and raises
#   :class:`InjectedCrash` (a ``BaseException``, so production
#   ``except Exception`` clauses cannot swallow it).  Property tests use
#   this to simulate hundreds of crashes without paying a process spawn
#   per example; the "crashed" database object is simply abandoned and
#   recovery runs from disk.

#: Every named crash seam wired into the durability path.  Recovery
#: tests iterate this tuple, so adding a seam automatically adds it to
#: the kill/recover matrix.
CRASH_POINTS = (
    "after-wal-append",
    "mid-snapshot-write",
    "mid-checkpoint-swap",
    "mid-compaction",
    "between-shard-checkpoints",
)

#: Environment variable consulted by :func:`crash_point`.
CRASH_ENV = "REPRO_CRASH_POINT"

#: Exit status of a process killed at a crash point (mirrors SIGKILL's
#: conventional 128+9 so harnesses can tell an injected crash from an
#: ordinary failure).
CRASH_EXIT_CODE = 137


class InjectedCrash(BaseException):
    """Raised by an in-process armed crash point (never by the env
    trigger, which ``os._exit``\\ s).  Derives from ``BaseException`` so
    that no production error handling can absorb it."""

    def __init__(self, name: str):
        self.name = name
        super().__init__(f"injected crash at point {name!r}")


_hit_counts: dict[str, int] = {}
_armed: dict[str, int] | None = None


def crash_point(name: str) -> None:
    """Production seam: die here if this crash point is triggered.

    Looks up the in-process armed table first, then the
    ``REPRO_CRASH_POINT`` environment spec (``name`` or ``name:n``).
    Unknown names are a programming error — the seam must be listed in
    :data:`CRASH_POINTS` so the recovery matrix covers it.
    """
    if name not in CRASH_POINTS:
        raise ValueError(f"unregistered crash point {name!r}")
    if _armed is not None and name in _armed:
        _hit_counts[name] = _hit_counts.get(name, 0) + 1
        if _hit_counts[name] == _armed[name]:
            raise InjectedCrash(name)
        return
    spec = os.environ.get(CRASH_ENV)
    if not spec:
        return
    target, _, at = spec.partition(":")
    if target != name:
        return
    _hit_counts[name] = _hit_counts.get(name, 0) + 1
    if _hit_counts[name] == int(at or 1):
        # A real crash: no stack unwinding, no finally blocks, no
        # buffered-write flushing.  Whatever reached the kernel is all
        # that survives — exactly the contract the WAL must honor.
        os._exit(CRASH_EXIT_CODE)


@contextlib.contextmanager
def armed_crash_point(name: str, at: int = 1):
    """Arm *name* in-process: its *at*-th hit raises :class:`InjectedCrash`.

    Hit counters reset on entry and the table is restored on exit, so
    nested/sequential arming in one test is deterministic.
    """
    global _armed
    if name not in CRASH_POINTS:
        raise ValueError(f"unregistered crash point {name!r}")
    previous, previous_hits = _armed, dict(_hit_counts)
    _armed = {name: at}
    _hit_counts.clear()
    try:
        yield
    finally:
        _armed = previous
        _hit_counts.clear()
        _hit_counts.update(previous_hits)


def reset_crash_counters() -> None:
    """Forget all hit counts (used between subprocess-free test cases)."""
    _hit_counts.clear()


# -- on-disk corruption helpers -----------------------------------------------


def corrupt_bytes(path: str | Path, offset: int, count: int = 8, xor: int = 0xFF) -> None:
    """XOR-flip *count* bytes of *path* starting at *offset*, in place.

    Negative offsets count from the end of the file.  Deterministic:
    the same call always produces the same corruption.
    """
    path = Path(path)
    data = bytearray(path.read_bytes())
    if offset < 0:
        offset += len(data)
    for i in range(max(offset, 0), min(offset + count, len(data))):
        data[i] ^= xor
    path.write_bytes(bytes(data))


def tamper_npz_array(path: str | Path, key: str, xor: int = 0x01) -> None:
    """Rewrite one array inside an ``.npz`` with its payload bytes flipped.

    The container stays a valid zip (so tolerant loaders can still walk
    it), but the named record's data no longer matches its stored
    checksum — the record-level corruption the database's
    ``strict=False`` mode must survive.
    """
    path = Path(path)
    with np.load(path) as data:
        arrays = {name: np.asarray(data[name]) for name in data.files}
    original = arrays[key]
    raw = bytearray(original.tobytes())
    for i in range(len(raw)):
        raw[i] ^= xor
    arrays[key] = np.frombuffer(bytes(raw), dtype=original.dtype).reshape(
        original.shape
    )
    with open(path, "wb") as handle:
        np.savez_compressed(handle, **arrays)

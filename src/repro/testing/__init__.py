"""Test support for the :mod:`repro` library.

:mod:`repro.testing.faults` is a deterministic fault-injection harness:
counter-based schedules plus context managers that make voxelization,
file reads and ``np.savez`` fail on cue, and helpers that corrupt bytes
on disk.  Used by ``tests/test_fault_injection.py`` to prove every
degradation path of the ingestion and persistence layers.
"""

from repro.testing.faults import (
    FaultSchedule,
    corrupt_bytes,
    fail_always,
    fail_every,
    fail_first,
    fail_once,
    never_fail,
    read_faults,
    savez_faults,
    tamper_npz_array,
    voxelization_faults,
)

__all__ = [
    "FaultSchedule",
    "fail_once",
    "fail_first",
    "fail_every",
    "fail_always",
    "never_fail",
    "voxelization_faults",
    "read_faults",
    "savez_faults",
    "corrupt_bytes",
    "tamper_npz_array",
]

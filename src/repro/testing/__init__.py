"""Test support for the :mod:`repro` library.

:mod:`repro.testing.faults` is a deterministic fault-injection harness:
counter-based schedules plus context managers that make voxelization,
file reads and ``np.savez`` fail on cue, helpers that corrupt bytes on
disk, and the named crash-point seams
(:data:`~repro.testing.faults.CRASH_POINTS`) the durability layer's
kill/recover suite is built on.  Used by ``tests/test_fault_injection.py``
and ``tests/test_crash_recovery.py`` to prove every degradation path of
the ingestion, persistence and recovery layers.
"""

from repro.testing.faults import (
    CRASH_ENV,
    CRASH_EXIT_CODE,
    CRASH_POINTS,
    FaultSchedule,
    InjectedCrash,
    armed_crash_point,
    corrupt_bytes,
    crash_point,
    fail_always,
    fail_every,
    fail_first,
    fail_once,
    never_fail,
    read_faults,
    reset_crash_counters,
    savez_faults,
    tamper_npz_array,
    voxelization_faults,
)

__all__ = [
    "CRASH_ENV",
    "CRASH_EXIT_CODE",
    "CRASH_POINTS",
    "FaultSchedule",
    "InjectedCrash",
    "armed_crash_point",
    "crash_point",
    "fail_once",
    "fail_first",
    "fail_every",
    "fail_always",
    "never_fail",
    "reset_crash_counters",
    "voxelization_faults",
    "read_faults",
    "savez_faults",
    "corrupt_bytes",
    "tamper_npz_array",
]

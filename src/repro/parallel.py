"""Shared process-pool infrastructure for object-level parallelism.

Feature extraction and voxelization parallelize over *objects* (each
object is independent), so every fan-out site — ``extract_many``,
``Pipeline.process_parts``/``process_mesh_directory`` and the CLI —
shares one lazily created :class:`~concurrent.futures.ProcessPoolExecutor`
instead of paying worker start-up per call.  The pool is recreated only
when a caller asks for more workers than it currently has, and shut down
at interpreter exit.

All helpers keep results in submission order, so parallel runs are
deterministic and bit-identical to serial ones.  :func:`pool_map` is the
observability-aware fan-out: while :mod:`repro.obs` is enabled, each
worker call runs under a fresh metric capture whose snapshot travels
back with the result and is merged into the parent registry — counter
totals of a ``--jobs`` run therefore equal the serial run exactly.
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import ProcessPoolExecutor

from repro.exceptions import ReproError

_pool: ProcessPoolExecutor | None = None
_pool_size = 0


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Normalize an ``n_jobs`` argument to a concrete worker count.

    ``None`` and ``0`` mean serial (1); negative values mean "all
    cores" (``os.cpu_count()``), mirroring the convention of
    :func:`repro.core.batch.pairwise_matrix`.
    """
    if n_jobs is None or n_jobs == 0:
        return 1
    if n_jobs < 0:
        return os.cpu_count() or 1
    return int(n_jobs)


def shared_pool(n_jobs: int) -> ProcessPoolExecutor:
    """The shared executor, grown to at least *n_jobs* workers."""
    global _pool, _pool_size
    if n_jobs < 2:
        raise ReproError("shared_pool needs n_jobs >= 2; serial paths skip the pool")
    if _pool is None or _pool_size < n_jobs:
        if _pool is not None:
            _pool.shutdown(wait=True)
        _pool = ProcessPoolExecutor(max_workers=n_jobs)
        _pool_size = n_jobs
    return _pool


def _captured_task(payload):
    """Pool work unit: run one task, optionally under metric capture.

    Module-level so it pickles; returns ``(result, snapshot_or_None)``.
    Exceptions propagate unchanged (their capture snapshot is discarded
    — the batch is aborting anyway).

    The payload carries the submitting process's trace context
    ``(trace_id, parent_span_id)``: the worker clears any span stack it
    inherited via fork and installs that context for the duration of
    the task, so every span it records carries the batch's trace id and
    parents (across the process boundary) to the span that submitted
    the work — the whole fan-out reassembles into one tree.
    """
    capture, trace_ctx, task_fn, task = payload
    if not capture:
        return task_fn(task), None
    from repro.obs import capture_deltas, reset_stack
    from repro.obs.tracectx import clear_trace_context, set_trace_context

    with capture_deltas() as holder:
        reset_stack()
        set_trace_context(*trace_ctx)
        try:
            result = task_fn(task)
        finally:
            # Pool workers are reused: never leak one batch's context
            # into the next.
            clear_trace_context()
    return result, holder.snapshot


def pool_map(task_fn, tasks: list, n_jobs: int, chunksize: int = 1) -> list:
    """Ordered map over the shared pool with worker-metrics merging.

    Drop-in replacement for ``shared_pool(...).map(task_fn, tasks)``:
    results come back in submission order; while observability is
    enabled, each worker call's metric/event snapshot is folded into
    this process's registry as results are consumed.
    """
    from repro.obs import enabled as obs_enabled
    from repro.obs import merge_worker_snapshot
    from repro.obs.tracectx import propagation

    pool = shared_pool(min(n_jobs, len(tasks)))
    capture = obs_enabled()
    trace_ctx = propagation() if capture else (None, None)
    payloads = [(capture, trace_ctx, task_fn, task) for task in tasks]
    results = []
    for result, snapshot in pool.map(_captured_task, payloads, chunksize=chunksize):
        if snapshot is not None:
            merge_worker_snapshot(snapshot)
        results.append(result)
    return results


def _shutdown() -> None:
    global _pool, _pool_size
    if _pool is not None:
        _pool.shutdown(wait=False, cancel_futures=True)
        _pool = None
        _pool_size = 0


atexit.register(_shutdown)

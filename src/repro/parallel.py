"""Shared process-pool infrastructure for object-level parallelism.

Feature extraction and voxelization parallelize over *objects* (each
object is independent), so every fan-out site — ``extract_many``,
``Pipeline.process_parts``/``process_mesh_directory`` and the CLI —
shares one lazily created :class:`~concurrent.futures.ProcessPoolExecutor`
instead of paying worker start-up per call.  The pool is recreated only
when a caller asks for more workers than it currently has, and shut down
at interpreter exit.

All helpers keep results in submission order, so parallel runs are
deterministic and bit-identical to serial ones.
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import ProcessPoolExecutor

from repro.exceptions import ReproError

_pool: ProcessPoolExecutor | None = None
_pool_size = 0


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Normalize an ``n_jobs`` argument to a concrete worker count.

    ``None`` and ``0`` mean serial (1); negative values mean "all
    cores" (``os.cpu_count()``), mirroring the convention of
    :func:`repro.core.batch.pairwise_matrix`.
    """
    if n_jobs is None or n_jobs == 0:
        return 1
    if n_jobs < 0:
        return os.cpu_count() or 1
    return int(n_jobs)


def shared_pool(n_jobs: int) -> ProcessPoolExecutor:
    """The shared executor, grown to at least *n_jobs* workers."""
    global _pool, _pool_size
    if n_jobs < 2:
        raise ReproError("shared_pool needs n_jobs >= 2; serial paths skip the pool")
    if _pool is None or _pool_size < n_jobs:
        if _pool is not None:
            _pool.shutdown(wait=True)
        _pool = ProcessPoolExecutor(max_workers=n_jobs)
        _pool_size = n_jobs
    return _pool


def _shutdown() -> None:
    global _pool, _pool_size
    if _pool is not None:
        _pool.shutdown(wait=False, cancel_futures=True)
        _pool = None
        _pool_size = 0


atexit.register(_shutdown)

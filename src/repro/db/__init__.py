"""Mutable similarity databases: single-process and sharded.

:mod:`repro.db.core` holds :class:`SimilarityDatabase` — one RWLock,
one index, one WAL.  :mod:`repro.db.sharded` partitions objects across
K independent cores and answers queries by scatter-gather merge on the
canonical (distance, oid) order, byte-identical to a single-shard
build.  :func:`open_database` dispatches a saved layout (archive file,
durable directory, or sharded directory) to the class that wrote it.
"""

from repro.db.core import (
    BACKENDS,
    DB_FORMAT,
    DB_VERSION,
    DEFAULT_KEEP_GENERATIONS,
    DatabaseView,
    RecoveryReport,
    SimilarityDatabase,
)
from repro.db.sharded import (
    SHARDED_FORMAT,
    ShardedSimilarityDatabase,
    open_database,
    shard_of,
)

__all__ = [
    "BACKENDS",
    "DB_FORMAT",
    "DB_VERSION",
    "DEFAULT_KEEP_GENERATIONS",
    "DatabaseView",
    "RecoveryReport",
    "SimilarityDatabase",
    "SHARDED_FORMAT",
    "ShardedSimilarityDatabase",
    "open_database",
    "shard_of",
]

"""Sharded similarity database: scatter-gather over K independent cores.

Horizontal scale-out for :class:`repro.db.core.SimilarityDatabase`.
Objects are partitioned across K *shards* — each a complete
``SimilarityDatabase`` with its own RWLock, spatial index, sketch tier,
and (when durable) WAL + snapshot generations — by a stable hash of the
object id (:func:`shard_of`).  Mutations route to exactly one shard;
queries scatter to every shard and merge the per-shard answers.

The merge is not approximate.  Every access method in this codebase
breaks distance ties canonically by ascending object id, so the global
k-nn of the union is exactly the (distance, oid)-merge of the per-shard
k-nns, truncated to k — a sharded database returns *byte-identical*
results to a single-shard build holding the same objects (the
differential machine in ``tests/test_sharded_differential.py`` holds
this equality through arbitrary mutation/reshard sequences, for all
four backends, exact and approx modes).

Approximate mode needs one extra step for that equality: the Hamming
shortlist of a single-shard build is the global top-``budget`` by
(hamming, oid), which is *not* the union of per-shard top-``budget``
shortlists restricted per shard.  The sharded path therefore merges the
per-shard ``(hamming, oid)`` rankings into the exact global shortlist
first, then hands each shard only the candidates it owns for the exact
subset refine.  Merged ``QueryStats`` equal the single-shard build's
field for field.

Observability: every scatter leg runs under a ``shard=i`` querylog
context frame (the shard's own wide events — ``knn``, ``mtree_knn``,
``knn_subset`` — carry it), and the sharded layer records one merged
wide event per query (``sharded_knn`` / ``sharded_range`` /
``sharded_approx_knn``) whose stats are the per-shard merge and whose
phase arithmetic keeps the PR 9 invariant: total == filter + refine,
with the scatter across shards as the filter phase and the merge as the
refine phase.

Consistency: a scatter-gather query pins *all* shard read locks (in
ascending shard order) for its duration, so every answer is exact with
respect to one consistent version vector — the tuple of per-shard
version counters (:meth:`ShardedSimilarityDatabase.version_vector`).
A ``LockTimeout`` on any shard releases the already-pinned shards and
propagates (counted under ``db.sharded.lock_timeouts``).

Persistence: ``save()`` writes a directory — a ``sharded.json``
manifest plus one snapshot archive per shard — fanning the per-shard
archive writes out over the shared process pool
(:func:`repro.parallel.pool_map`); ``load()`` reads them back the same
way.  ``durable=True`` gives every shard its own WAL-managed directory
under one root; ``checkpoint()`` walks the shards in order (the
``between-shard-checkpoints`` crash point sits in each gap — the crash
harness proves recovery restores a consistent version vector from any
interleaving of shard generations).
"""

from __future__ import annotations

import json
import os
import struct
import time
import zlib
from contextlib import ExitStack, contextmanager, nullcontext
from pathlib import Path

import numpy as np

from repro.approx.engine import default_shortlist
from repro.core.queries import QueryMatch, QueryStats
from repro.db.core import DEFAULT_KEEP_GENERATIONS, SimilarityDatabase
from repro.exceptions import LockTimeout, QueryError, StorageError
from repro.obs import emit, querylog, registry, span
from repro.parallel import pool_map, resolve_n_jobs
from repro.testing.faults import crash_point

__all__ = [
    "SHARDED_FORMAT",
    "SHARDED_VERSION",
    "MANIFEST_NAME",
    "ShardedSimilarityDatabase",
    "open_database",
    "shard_of",
]

SHARDED_FORMAT = "repro-sharded-db"
SHARDED_VERSION = 1
MANIFEST_NAME = "sharded.json"


def shard_of(oid: int, shards: int) -> int:
    """The shard owning *oid*: CRC32 of the little-endian int64 id.

    Process- and platform-stable (unlike ``hash()``), uniform enough
    for dense and sparse id spaces, and independent of insertion order
    — the routing half of the byte-identity contract.
    """
    if shards < 1:
        raise QueryError("shards must be >= 1")
    return zlib.crc32(struct.pack("<q", int(oid))) % shards


def _shard_archive_name(position: int) -> str:
    return f"shard-{position:05d}.npz"


def _shard_dir_name(position: int) -> str:
    return f"shard-{position:05d}"


def _sort_key(match: QueryMatch):
    return (match.distance, match.object_id)


# -- process-pool tasks (module level so they pickle) ----------------------

_WORKER_DBS: dict[tuple, SimilarityDatabase] = {}


def _write_shard_task(payload):
    path, meta, arrays, dense = payload
    if dense:
        from repro.index.dense import write_dense_archive

        return str(write_dense_archive(path, meta, arrays))
    from repro.index.snapshot import write_archive

    return str(write_archive(path, meta, arrays))


def _read_shard_task(path):
    from repro.db.core import DB_FORMAT
    from repro.index.dense import is_dense_archive

    if is_dense_archive(path):
        from repro.index.dense import read_dense_archive

        return read_dense_archive(path, DB_FORMAT)
    from repro.index.snapshot import read_archive

    return read_archive(path, DB_FORMAT)


def _worker_db(path: str) -> SimilarityDatabase:
    """Per-worker shard cache: pool workers persist across batches, so
    each worker pays the snapshot load once per (path, mtime)."""
    key = (path, os.stat(path).st_mtime_ns)
    db = _WORKER_DBS.get(key)
    if db is None:
        db = SimilarityDatabase.load(path)
        _WORKER_DBS[key] = db
    return db


def _shard_knn_task(task):
    """One shard's leg of a parallel batch: answer every query against
    the shard snapshot at *path*, reporting worker-side service time."""
    path, queries, k = task
    db = _worker_db(path)
    pairs, stats = [], []
    start = time.perf_counter()
    with db.read_view() as view:
        for query in queries:
            results, st = view.knn_query(query, k)
            pairs.append([(int(m.object_id), float(m.distance)) for m in results])
            stats.append(st.as_dict())
    return pairs, stats, time.perf_counter() - start


class ShardedSimilarityDatabase:
    """K independent :class:`SimilarityDatabase` shards behind one API.

    Parameters mirror ``SimilarityDatabase`` (every ``**shard_kwargs``
    entry — ``omega``, ``block_size``, ``solver``, ``index_capacity``,
    ``use_array_core``, ``sketch``, ``sketch_params`` — is forwarded to
    each shard verbatim), plus:

    shards:
        Number of partitions K (>= 1).
    durable / path / fsync / keep_generations:
        ``durable=True`` creates a sharded WAL-managed layout under the
        directory *path*: a ``sharded.json`` manifest and one durable
        shard directory per partition.  Recover an existing layout with
        :meth:`load`.
    model / pipeline / cache:
        Feature extraction state lives at this layer — :meth:`add_grid`
        extracts once, then routes the feature set; shards never see
        voxel grids.
    """

    def __init__(
        self,
        capacity: int,
        *,
        shards: int = 4,
        backend: str = "xtree",
        durable: bool = False,
        path: str | Path | None = None,
        model=None,
        pipeline=None,
        cache=None,
        lock_timeout: float | None = None,
        fsync="always",
        keep_generations: int = DEFAULT_KEEP_GENERATIONS,
        **shard_kwargs,
    ):
        if shards < 1:
            raise QueryError("shards must be >= 1")
        self.capacity = capacity
        self.backend = backend
        self.n_shards = int(shards)
        self.model = model
        self.pipeline = pipeline
        self.cache = cache
        self.lock_timeout = lock_timeout
        self.durable = bool(durable)
        self.fsync = fsync
        self.keep_generations = int(keep_generations)
        self._shard_kwargs = dict(shard_kwargs)
        self._root: Path | None = None
        self._shard_paths: list[Path] | None = None
        self._saved_versions: list[int] | None = None
        self.last_recovery = None
        self.last_parallel_legs: list[float] | None = None
        if self.durable:
            if path is None:
                raise QueryError("durable=True needs a directory path")
            root = Path(path)
            if (root / MANIFEST_NAME).exists():
                raise StorageError(
                    f"{root} already holds a sharded database; recover it "
                    "with ShardedSimilarityDatabase.load()"
                )
            root.mkdir(parents=True, exist_ok=True)
            self._root = root
            self._write_manifest(root)
            self.shards = [
                SimilarityDatabase(
                    capacity,
                    backend=backend,
                    durable=True,
                    path=root / _shard_dir_name(i),
                    fsync=fsync,
                    keep_generations=keep_generations,
                    lock_timeout=lock_timeout,
                    **shard_kwargs,
                )
                for i in range(self.n_shards)
            ]
        else:
            if path is not None:
                raise QueryError("path is only meaningful with durable=True")
            self.shards = [
                SimilarityDatabase(
                    capacity,
                    backend=backend,
                    lock_timeout=lock_timeout,
                    **shard_kwargs,
                )
                for i in range(self.n_shards)
            ]

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    def __contains__(self, oid: int) -> bool:
        return oid in self._shard_for(oid)

    @property
    def version(self) -> int:
        """Total mutation count — the sum of the version vector."""
        return sum(shard.version for shard in self.shards)

    def version_vector(self) -> tuple[int, ...]:
        """Per-shard version counters; a scatter-gather query is exact
        with respect to exactly one value of this tuple.  Resharding
        replaces the vector (fresh shards start at their add counts)."""
        return tuple(shard.version for shard in self.shards)

    @property
    def dimension(self) -> int | None:
        for shard in self.shards:
            if shard.dimension is not None:
                return shard.dimension
        return None

    def object_ids(self) -> list[int]:
        out: list[int] = []
        for shard in self.shards:
            out.extend(shard.object_ids())
        return sorted(out)

    def get(self, oid: int) -> np.ndarray:
        return self._shard_for(oid).get(oid)

    def index_digests(self) -> list[str]:
        return [shard.index_digest() for shard in self.shards]

    def sketch_digests(self) -> list[str]:
        return [shard.sketch_digest() for shard in self.shards]

    def close(self) -> None:
        for shard in self.shards:
            shard.close()

    def __enter__(self) -> "ShardedSimilarityDatabase":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- routing and mutations ---------------------------------------------

    def _shard_for(self, oid: int) -> SimilarityDatabase:
        return self.shards[shard_of(oid, self.n_shards)]

    def add(self, oid: int, vectors) -> None:
        self._shard_for(oid).add(oid, vectors)

    def add_grid(self, oid: int, grid) -> np.ndarray:
        if self.model is None:
            raise QueryError("add_grid needs a database with a feature model")
        from repro.pipeline import Pipeline

        pipeline = self.pipeline or Pipeline()
        arr = pipeline.features_for_grid(grid, self.model, cache=self.cache)
        self._shard_for(oid).add(oid, arr)
        return arr

    def remove(self, oid: int) -> bool:
        return self._shard_for(oid).remove(oid)

    def update(self, oid: int, vectors) -> None:
        self._shard_for(oid).update(oid, vectors)

    def compact(self, *, shards: int | None = None) -> None:
        """Rebuild every shard index; ``shards=K'`` rebalances first.

        Compaction is the natural rebalance point: the indexes are
        being rebuilt anyway, so redistributing to a new shard count
        costs one extra pass over the objects.
        """
        if shards is not None and int(shards) != self.n_shards:
            self.reshard(int(shards))
        for shard in self.shards:
            shard.compact()

    def reshard(self, new_shards: int) -> None:
        """Redistribute every object across *new_shards* fresh shards.

        Takes every current shard's write lock (ascending order) for a
        consistent cut, builds K' fresh shards by ascending-oid
        insertion — each new shard is literally a fresh build — and
        swaps the shard list atomically.  Pinned readers keep querying
        the old shards they hold; new queries see the new layout.
        Durable layouts cannot reshard in place (the manifest pins K).
        """
        new_shards = int(new_shards)
        if new_shards < 1:
            raise QueryError("shards must be >= 1")
        if self.durable:
            raise QueryError(
                "reshard() is not available on a durable sharded database; "
                "load into a non-durable one, reshard, and re-init"
            )
        if new_shards == self.n_shards:
            return
        with ExitStack() as stack:
            for shard in self.shards:
                stack.enter_context(shard._lock.write(timeout=self.lock_timeout))
            items: dict[int, np.ndarray] = {}
            for shard in self.shards:
                items.update(shard._sets)
            fresh = [
                SimilarityDatabase(
                    self.capacity,
                    backend=self.backend,
                    lock_timeout=self.lock_timeout,
                    **self._shard_kwargs,
                )
                for _ in range(new_shards)
            ]
            for oid in sorted(items):
                fresh[shard_of(oid, new_shards)].add(oid, items[oid])
            self.shards = fresh
            self.n_shards = new_shards
            self._shard_paths = None
            self._saved_versions = None
        if registry().enabled:
            registry().counter("db.sharded.reshards").inc()
        emit("db.reshard", shards=new_shards, objects=len(items))

    # -- scatter-gather queries ---------------------------------------------

    @contextmanager
    def read_views(self):
        """All shard read locks, ascending order: one consistent cut.

        The sharded counterpart of
        :meth:`~repro.db.core.SimilarityDatabase.read_view`: yields the
        list of per-shard :class:`~repro.db.core.DatabaseView` objects,
        whose versions form the consistent vector every query inside
        the ``with`` block is exact against.

        Ascending acquisition order is the lock-ordering discipline —
        every multi-shard locker (queries, save, reshard) walks shards
        the same way, so two of them can never deadlock.  A timeout on
        any shard releases the already-pinned prefix and propagates.
        """
        try:
            with ExitStack() as stack:
                yield [stack.enter_context(s.read_view()) for s in self.shards]
        except LockTimeout:
            if registry().enabled:
                registry().counter("db.sharded.lock_timeouts").inc()
            raise

    def _shard_ctx(self, position: int):
        if not registry().enabled:
            return nullcontext()
        return querylog.query_context(shard=position)

    def _outer_ctx(self, mode: str, views):
        if not registry().enabled:
            return nullcontext()
        return querylog.query_context(
            backend=self.backend,
            mode=mode,
            db_version=sum(view.version for view in views),
            shards=self.n_shards,
            io_baseline=querylog.io_baseline(),
        )

    @staticmethod
    def _merge_matches(per_shard, limit: int | None = None):
        merged = sorted(
            (m for results, _ in per_shard for m in results), key=_sort_key
        )
        return merged if limit is None else merged[:limit]

    @staticmethod
    def _merge_stats(per_shard) -> QueryStats:
        out = QueryStats()
        for _, stats in per_shard:
            out.merge(stats)
        return out

    def _record(self, kind, stats, total, *, filter_seconds, refine_seconds, **extra):
        """One merged wide event with the PR 9 phase invariant intact:
        total == filter + refine, where filter is the scatter across
        shards and refine is the gather/merge."""
        if not registry().enabled:
            return
        with querylog.query_context(filter_seconds=filter_seconds):
            querylog.record_query(
                kind,
                stats.as_dict(),
                total,
                seconds=refine_seconds,
                refine_seconds=refine_seconds,
                **extra,
            )

    def knn_query(
        self,
        query,
        n_neighbors: int,
        *,
        mode: str = "exact",
        shortlist: int | None = None,
    ):
        """Scatter-gather k-nn, byte-identical to a single-shard build.

        Exact mode merges the per-shard k-nns on (distance, oid) and
        truncates — every member of the global top-k is in its owning
        shard's top-k, so the merge loses nothing.  Approx mode first
        reconstructs the *global* Hamming shortlist (see module notes),
        then scatters the subset refine.
        """
        if mode not in ("exact", "approx"):
            raise QueryError(f"unknown query mode {mode!r}")
        if mode == "exact" and shortlist is not None:
            raise QueryError("shortlist is only meaningful with mode='approx'")
        with self.read_views() as views:
            return self._scatter_knn(views, query, n_neighbors, mode, shortlist)

    def range_query(self, query, epsilon: float):
        """All objects within *epsilon*: the sorted union of per-shard
        range answers (each already in canonical order)."""
        with self.read_views() as views:
            total = sum(view.size for view in views)
            if total == 0:
                return [], QueryStats()
            with self._outer_ctx("exact", views):
                with span(
                    "query.sharded_scatter", force=True, shards=self.n_shards
                ) as scatter_sp:
                    per_shard = []
                    for i, view in enumerate(views):
                        with self._shard_ctx(i):
                            per_shard.append(view.range_query(query, epsilon))
                with span("query.sharded_merge", force=True) as merge_sp:
                    results = self._merge_matches(per_shard)
                    stats = self._merge_stats(per_shard)
                self._record(
                    "sharded_range",
                    stats,
                    total,
                    filter_seconds=scatter_sp.seconds,
                    refine_seconds=merge_sp.seconds,
                    epsilon=epsilon,
                    results=len(results),
                )
        return results, stats

    def _scatter_knn(self, views, query, n_neighbors, mode, shortlist, batch=None):
        total = sum(view.size for view in views)
        if total == 0:
            return [], QueryStats()
        with self._outer_ctx(mode, views):
            if mode == "approx":
                return self._scatter_approx(
                    views, query, n_neighbors, shortlist, batch
                )
            with span(
                "query.sharded_scatter", force=True, shards=self.n_shards
            ) as scatter_sp:
                per_shard = []
                for i, view in enumerate(views):
                    with self._shard_ctx(i):
                        per_shard.append(view.knn_query(query, n_neighbors))
            with span("query.sharded_merge", force=True) as merge_sp:
                results = self._merge_matches(per_shard, n_neighbors)
                stats = self._merge_stats(per_shard)
            extra = {"k": n_neighbors, "results": len(results)}
            if batch is not None:
                extra["batch"] = batch
            self._record(
                "sharded_knn",
                stats,
                total,
                filter_seconds=scatter_sp.seconds,
                refine_seconds=merge_sp.seconds,
                **extra,
            )
        return results, stats

    def _scatter_approx(self, views, query, n_neighbors, shortlist, batch=None):
        """Approx scatter-gather over the *global* Hamming shortlist.

        Phase one (the filter, timed as such): sketch the query once —
        every shard's sketcher carries the identical seeded projection,
        content-addressed by digest — rank each shard's codes, and merge
        the per-shard (hamming, oid) rankings into the exact shortlist a
        single-shard build would produce.  Phase two: each shard refines
        only the candidates it owns; the (distance, oid) merge of those
        partial top-ks is the single-shard answer, and the merged stats
        are its stats (Σ owned == budget, Σ (n_i - owned_i) == n -
        budget).
        """
        if n_neighbors < 1:
            raise QueryError("n_neighbors must be >= 1")
        budget = (
            default_shortlist(n_neighbors) if shortlist is None else int(shortlist)
        )
        if budget < 1:
            raise QueryError("shortlist budget must be >= 1")
        budget = max(budget, n_neighbors)
        total = sum(view.size for view in views)
        active = [i for i, view in enumerate(views) if view.size]
        for i in active:
            if self.shards[i]._hamming is None:
                raise QueryError(
                    "approx queries need the sketch tier; this database "
                    "was built with sketch=False"
                )
        with span("query.sharded_shortlist", force=True, budget=budget) as ssp:
            first = self.shards[active[0]]
            arr = first._as_set(query)
            code = first._sketcher.sketch(arr)
            hams, oids, owners = [], [], []
            for i in active:
                hamming = self.shards[i]._hamming
                hams.append(hamming.distances(code[None, :])[0])
                oids.append(hamming.oids)
                owners.append(np.full(len(hamming), i, dtype=np.int64))
            ham = np.concatenate(hams)
            oid = np.concatenate(oids)
            owner = np.concatenate(owners)
            order = np.lexsort((oid, ham))[: min(budget, len(oid))]
            chosen_oids = oid[order]
            chosen_owner = owner[order]
        with span("query.sharded_refine", force=True) as rsp:
            per_shard = []
            skipped = 0
            for i in active:
                owned = chosen_oids[chosen_owner == i]
                if not len(owned):
                    # No shortlist member lives here: the whole shard is
                    # pruned, exactly as a single-shard build would have
                    # pruned those objects.
                    skipped += views[i].size
                    continue
                with self._shard_ctx(i):
                    per_shard.append(
                        self.shards[i]._ensure_engine().knn_refine_subset(
                            arr, n_neighbors, owned
                        )
                    )
            results = self._merge_matches(per_shard, n_neighbors)
            stats = self._merge_stats(per_shard)
            stats.pruned += skipped
        extra = {
            "k": n_neighbors,
            "results": len(results),
            "budget": budget,
            "shortlist_size": len(chosen_oids),
        }
        if batch is not None:
            extra["batch"] = batch
        self._record(
            "sharded_approx_knn",
            stats,
            total,
            filter_seconds=ssp.seconds,
            refine_seconds=rsp.seconds,
            **extra,
        )
        return results, stats

    # -- batch queries -------------------------------------------------------

    def knn_query_many(
        self,
        queries,
        n_neighbors: int,
        *,
        mode: str = "exact",
        shortlist: int | None = None,
        n_jobs: int | None = None,
    ):
        """Batch k-nn under one pinned version vector.

        Results equal ``[knn_query(q, k) for q in queries]`` with no
        writer interleaving.  ``n_jobs >= 2`` fans the batch out one
        worker process per shard over the last saved snapshot (exact
        mode only; the snapshot must not be stale) — the path the
        ``shard_scale`` bench drives.
        """
        if mode not in ("exact", "approx"):
            raise QueryError(f"unknown query mode {mode!r}")
        if mode == "exact" and shortlist is not None:
            raise QueryError("shortlist is only meaningful with mode='approx'")
        queries = list(queries)
        jobs = resolve_n_jobs(n_jobs)
        if jobs >= 2 and self.n_shards >= 2 and len(queries):
            return self._parallel_knn_many(queries, n_neighbors, mode, jobs)
        with self.read_views() as views:
            return [
                self._scatter_knn(
                    views, q, n_neighbors, mode, shortlist, batch=len(queries)
                )
                for q in queries
            ]

    def _parallel_knn_many(self, queries, n_neighbors, mode, jobs):
        if mode != "exact":
            raise QueryError(
                "parallel batch queries support mode='exact' only; "
                "approx scatter-gather runs in-process"
            )
        if self._shard_paths is None or self._saved_versions is None:
            raise QueryError(
                "parallel batch queries serve the saved sharded snapshot; "
                "call save() (or load a saved layout) first"
            )
        if list(self.version_vector()) != list(self._saved_versions):
            raise QueryError(
                "sharded snapshot is stale (mutations since the last "
                "save()); save() again before parallel batch queries"
            )
        arrs = [self.shards[0]._as_set(q) for q in queries]
        tasks = [
            (str(path), arrs, n_neighbors) for path in self._shard_paths
        ]
        with span(
            "query.sharded_scatter",
            force=True,
            shards=self.n_shards,
            jobs=jobs,
        ) as scatter_sp:
            legs = pool_map(_shard_knn_task, tasks, min(jobs, len(tasks)))
        self.last_parallel_legs = [seconds for _, _, seconds in legs]
        with span("query.sharded_merge", force=True) as merge_sp:
            out = []
            for qi in range(len(queries)):
                matches = sorted(
                    (
                        QueryMatch(oid, dist)
                        for pairs, _, _ in legs
                        for oid, dist in pairs[qi]
                    ),
                    key=_sort_key,
                )[:n_neighbors]
                stats = QueryStats()
                for _, stat_dicts, _ in legs:
                    stats.merge(QueryStats(**stat_dicts[qi]))
                out.append((matches, stats))
        if registry().enabled:
            share = 1.0 / len(queries)
            total = len(self)
            with querylog.query_context(
                backend=self.backend,
                mode="exact",
                db_version=sum(self._saved_versions),
                shards=self.n_shards,
            ):
                for matches, stats in out:
                    self._record(
                        "sharded_knn",
                        stats,
                        total,
                        filter_seconds=scatter_sp.seconds * share,
                        refine_seconds=merge_sp.seconds * share,
                        k=n_neighbors,
                        results=len(matches),
                        batch=len(queries),
                        jobs=jobs,
                    )
        return out

    # -- persistence ---------------------------------------------------------

    def _write_manifest(self, root: Path) -> None:
        payload = {
            "format": SHARDED_FORMAT,
            "version": SHARDED_VERSION,
            "shards": self.n_shards,
            "routing": "crc32-mod",
            "durable": self.durable,
            "capacity": self.capacity,
            "backend": self.backend,
        }
        tmp = root / (MANIFEST_NAME + ".tmp")
        tmp.write_text(json.dumps(payload, indent=2) + "\n")
        os.replace(tmp, root / MANIFEST_NAME)

    def save(
        self,
        path: str | Path | None = None,
        *,
        dense: bool = False,
        n_jobs: int | None = None,
    ) -> Path:
        """Persist the sharded database to a directory.

        Non-durable: one atomically-written snapshot archive per shard
        plus the ``sharded.json`` manifest, the per-shard writes fanned
        out over the process pool when ``n_jobs >= 2``.  Durable:
        ``save()`` with no path (or the layout root) runs
        :meth:`checkpoint`.
        """
        if self.durable and (
            path is None or Path(path).resolve() == self._root.resolve()
        ):
            return self.checkpoint()
        if path is None:
            raise QueryError(
                "save() needs a directory for a non-durable sharded database"
            )
        root = Path(path)
        root.mkdir(parents=True, exist_ok=True)
        jobs = resolve_n_jobs(n_jobs)
        with span(
            "db.sharded.save", force=True, shards=self.n_shards
        ) as sp, ExitStack() as stack:
            for shard in self.shards:
                stack.enter_context(shard._lock.read(timeout=self.lock_timeout))
            payloads, shard_paths = [], []
            for i, shard in enumerate(self.shards):
                meta, arrays = shard._snapshot_state()
                shard_path = root / _shard_archive_name(i)
                payloads.append((str(shard_path), meta, arrays, bool(dense)))
                shard_paths.append(shard_path)
            if jobs >= 2 and len(payloads) >= 2:
                pool_map(_write_shard_task, payloads, min(jobs, len(payloads)))
            else:
                for payload in payloads:
                    _write_shard_task(payload)
            versions = [shard.version for shard in self.shards]
            objects = sum(len(shard._sets) for shard in self.shards)
            self._write_manifest(root)
            # A layout saved with more shards before a reshard would
            # otherwise leave orphan archives past the manifest's K.
            for stale in root.glob("shard-*.npz"):
                if stale not in shard_paths:
                    stale.unlink()
            sp.set(objects=objects)
        self._shard_paths = shard_paths
        self._saved_versions = versions
        emit(
            "db.snapshot",
            op="save",
            objects=objects,
            path=str(root),
            shards=self.n_shards,
        )
        return root

    def checkpoint(self) -> Path:
        """Checkpoint every shard, ascending order.

        Each shard's checkpoint is individually atomic (snapshot, WAL
        seal/rotate, CURRENT republish), so a crash in any gap — the
        ``between-shard-checkpoints`` crash point fires in each one —
        leaves a *mixed* but fully recoverable layout: already-advanced
        shards recover from their new generation, the rest from their
        old generation plus WAL tail.  Either way every acknowledged
        mutation survives, which is all "consistent version vector"
        means here: recovery equals a fresh build of the acknowledged
        prefix, shard by shard.
        """
        if not self.durable:
            raise QueryError("checkpoint() is only available with durable=True")
        for i, shard in enumerate(self.shards):
            if i:
                crash_point("between-shard-checkpoints")
            shard.checkpoint()
        emit(
            "db.checkpoint",
            shards=self.n_shards,
            objects=len(self),
            path=str(self._root),
        )
        return self._root

    @classmethod
    def load(
        cls,
        path: str | Path,
        *,
        model=None,
        pipeline=None,
        cache=None,
        lock_timeout: float | None = None,
        n_jobs: int | None = None,
    ) -> "ShardedSimilarityDatabase":
        """Reconstruct a sharded database from :meth:`save` output.

        Durable layouts run the per-shard recovery ladder;
        :attr:`last_recovery` is then the list of per-shard
        :class:`~repro.db.core.RecoveryReport` objects.  Non-durable
        layouts read the shard archives (fanned out over the process
        pool when ``n_jobs >= 2``) and reassemble each index
        node-for-node.
        """
        root = Path(path)
        manifest_path = root / MANIFEST_NAME
        if not manifest_path.exists():
            raise StorageError(
                f"{root} is not a sharded database (missing {MANIFEST_NAME})"
            )
        manifest = json.loads(manifest_path.read_text())
        if manifest.get("format") != SHARDED_FORMAT:
            raise StorageError(f"{root}: not a {SHARDED_FORMAT} layout")
        if manifest.get("version") != SHARDED_VERSION:
            raise StorageError(
                f"{root}: unsupported sharded version {manifest.get('version')!r}"
            )
        count = int(manifest["shards"])
        durable = bool(manifest.get("durable"))
        jobs = resolve_n_jobs(n_jobs)
        with span("db.sharded.load", force=True, shards=count):
            if durable:
                shards = [
                    SimilarityDatabase.load(
                        root / _shard_dir_name(i), lock_timeout=lock_timeout
                    )
                    for i in range(count)
                ]
                shard_paths = None
            else:
                shard_paths = [root / _shard_archive_name(i) for i in range(count)]
                for shard_path in shard_paths:
                    if not shard_path.exists():
                        raise StorageError(f"{root}: missing {shard_path.name}")
                if jobs >= 2 and count >= 2:
                    archives = pool_map(
                        _read_shard_task,
                        [str(p) for p in shard_paths],
                        min(jobs, count),
                    )
                    shards = [
                        SimilarityDatabase._from_archive(
                            shard_paths[i],
                            meta,
                            arrays,
                            model=None,
                            pipeline=None,
                            cache=None,
                        )
                        for i, (meta, arrays) in enumerate(archives)
                    ]
                    for shard in shards:
                        shard.lock_timeout = lock_timeout
                else:
                    shards = [
                        SimilarityDatabase.load(p, lock_timeout=lock_timeout)
                        for p in shard_paths
                    ]
        db = cls.__new__(cls)
        db.capacity = manifest.get("capacity", shards[0].capacity)
        db.backend = manifest.get("backend", shards[0].backend)
        db.n_shards = count
        db.shards = shards
        db.model = model
        db.pipeline = pipeline
        db.cache = cache
        db.lock_timeout = lock_timeout
        db.durable = durable
        db.fsync = shards[0].fsync
        db.keep_generations = shards[0].keep_generations
        db._shard_kwargs = {}
        db._root = root if durable else None
        db._shard_paths = None if durable else shard_paths
        db._saved_versions = (
            None if durable else [shard.version for shard in shards]
        )
        db.last_recovery = (
            [shard.last_recovery for shard in shards] if durable else None
        )
        db.last_parallel_legs = None
        emit(
            "db.snapshot",
            op="load",
            objects=len(db),
            path=str(root),
            shards=count,
        )
        return db


def open_database(
    path: str | Path,
    *,
    model=None,
    pipeline=None,
    cache=None,
    lock_timeout: float | None = None,
):
    """Open any saved layout with the class that wrote it.

    A directory carrying a ``sharded.json`` manifest loads as a
    :class:`ShardedSimilarityDatabase`; anything else (snapshot archive
    file or single durable directory) loads as a
    :class:`SimilarityDatabase`.
    """
    p = Path(path)
    if p.is_dir() and (p / MANIFEST_NAME).exists():
        return ShardedSimilarityDatabase.load(
            p,
            model=model,
            pipeline=pipeline,
            cache=cache,
            lock_timeout=lock_timeout,
        )
    return SimilarityDatabase.load(
        p, model=model, pipeline=pipeline, cache=cache, lock_timeout=lock_timeout
    )

"""Mutable similarity database: add/remove/update without a rebuild.

The paper's architecture (Section 4.3) is static: extract features for
the whole collection, build an X-tree over the extended centroids, and
serve filter/refine queries.  :class:`SimilarityDatabase` makes the
same pipeline *mutable* — objects flow through extraction → feature
cache → centroid computation → **incremental** index maintenance
(``insert``/``delete`` on the live tree) → engine invalidation, so the
filter step never serves stale candidates and no O(n log n) rebuild is
ever required:

* **Mutations** (``add``/``add_grid``/``remove``/``update``) take the
  write side of a :class:`repro.concurrency.RWLock`, bump a version
  counter, and maintain the spatial index in place.
* **Queries** (``knn_query``/``range_query``) take the read side, so
  any number of threads can query concurrently while mutations wait;
  each query observes exactly one database version
  (:meth:`read_view` exposes that version for consistency testing).
* **The refinement engine** is version-tagged: the packed
  :class:`~repro.core.queries.FilterRefineEngine` is rebuilt lazily on
  the first query after a mutation, never serving candidates from a
  stale packing.  The spatial index itself is *not* rebuilt — it plugs
  into the engine as the ``centroid_ranker``.
* **Snapshots** (``save``/``load``) persist the object store *and* the
  exact index structure in one CRC-checked, atomically-written archive
  (the format-v2 discipline of :mod:`repro.io.database`), so a
  restarted process answers its first query with zero rebuild work —
  the reloaded tree is node-for-node identical
  (:func:`repro.index.snapshot.structure_digest` equality).
* **Durability** (``durable=True``): the database lives in a directory
  managed by :mod:`repro.wal` — every mutation is appended to a
  CRC32-per-record write-ahead log *before* it is applied (under the
  write lock), ``save()`` becomes a checkpoint that atomically
  publishes a new snapshot generation and rotates the WAL segment, and
  ``load()`` becomes a recovery ladder: newest snapshot + WAL-tail
  replay; on snapshot corruption, the previous generation with a longer
  replay; with no usable snapshot, a full WAL replay from empty; and as
  a last resort a rebuild from a configured
  :class:`~repro.io.database.ObjectDatabase` source.  Every rung emits
  ``repro.obs`` counters (``db.recovery.fallbacks``, ...) so degraded
  recoveries are visible, and :attr:`last_recovery` reports exactly
  which rung served.

Because every access method breaks distance ties canonically by
ascending object id, a k-nn query against the incrementally maintained
index returns *byte-identical* results to a freshly rebuilt index
(:meth:`compact` rebuilds in place for exactly that comparison, and to
re-pack a tree degraded by heavy churn).

Backends: ``"xtree"`` (the paper's choice), ``"rstar"``, ``"scan"``
index the extended centroids and rank candidates for the filter step;
``"mtree"`` indexes the vector sets directly under the minimal matching
distance (the "simplest approach" the paper mentions) and answers
queries without the centroid filter.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.approx import ApproxFilterRefineEngine, HammingIndex, SetSketcher
from repro.concurrency import RWLock
from repro.core.centroid import extended_centroid, norm_weight
from repro.core.min_matching import min_matching_distance
from repro.core.queries import (
    DEFAULT_BLOCK_SIZE,
    FilterRefineEngine,
    QueryMatch,
    QueryStats,
)
from repro.core.vector_set import VectorSet
from repro.exceptions import IndexError_, QueryError, StorageError
from repro.index import MTree, RStarTree, SequentialScan, XTree
from repro.index.snapshot import (
    read_archive,
    reconstruct_index,
    serialize_index,
    structure_digest,
    write_archive,
)
from repro.obs import emit, registry, span
from repro.obs import querylog
from repro.testing.faults import crash_point
from repro.wal import DurableLayout, WriteAheadLog, scan_segment

DB_FORMAT = "repro-similarity-db"
DB_VERSION = 1

BACKENDS = ("xtree", "rstar", "scan", "mtree")

#: Default number of snapshot generations (and their WAL segments) a
#: durable database keeps on disk for the recovery ladder's fallback.
DEFAULT_KEEP_GENERATIONS = 2


@dataclass
class RecoveryReport:
    """What the recovery ladder actually did for one ``load()``.

    ``fallbacks`` counts snapshot generations that failed integrity and
    were skipped; ``degraded`` is True whenever recovery used anything
    but the happy path (newest snapshot + clean tail replay).
    """

    requested_generation: int
    used_generation: int = -1
    fallbacks: int = 0
    replayed_records: int = 0
    torn_segments: list[str] = field(default_factory=list)
    missing_segments: list[str] = field(default_factory=list)
    failures: list[str] = field(default_factory=list)
    source_rebuild: bool = False

    @property
    def degraded(self) -> bool:
        return bool(
            self.fallbacks
            or self.source_rebuild
            or self.torn_segments
            or self.missing_segments
        )


class DatabaseView:
    """A consistent read view: queries against one database version.

    Created by :meth:`SimilarityDatabase.read_view`; the read lock is
    held for the lifetime of the ``with`` block, so :attr:`version` and
    every query result belong to the same database state.
    """

    def __init__(self, db: "SimilarityDatabase"):
        self._db = db
        self.version = db._version
        self.size = len(db._sets)

    def knn_query(
        self,
        query,
        n_neighbors: int,
        *,
        mode: str = "exact",
        shortlist: int | None = None,
    ):
        if mode == "approx":
            return self._db._approx_knn_locked(query, n_neighbors, shortlist)
        return self._db._knn_locked(query, n_neighbors)

    def range_query(self, query, epsilon: float):
        return self._db._range_locked(query, epsilon)


class _ChunkedRanker:
    """Centroid ranker over an array core.

    Callable like any :data:`~repro.core.queries.CentroidRanker`, but
    also exposes :meth:`chunks` — the engine's vectorized filter loop
    consumes whole ``(oids, distances)`` arrays instead of one pair per
    generator step when a ranker provides it.
    """

    def __init__(self, core):
        self._core = core

    def __call__(self, center: np.ndarray):
        return self._core.incremental_nearest(center)

    def chunks(self, center: np.ndarray):
        return self._core.ranking_chunks(center)


class SimilarityDatabase:
    """A mutable collection of vector sets with incremental indexing.

    Parameters
    ----------
    capacity:
        The cardinality bound ``k`` shared by all sets (Definition 8).
    backend:
        ``"xtree"`` (default), ``"rstar"``, ``"scan"`` — centroid filter
        backed by that access method — or ``"mtree"`` for direct metric
        indexing of the sets.
    omega:
        Reference point for extended centroids and matching weights
        (default: origin).
    block_size / solver:
        Refinement block size and assignment backend, forwarded to
        :class:`FilterRefineEngine`.
    index_capacity:
        Node capacity of the spatial index (default: derived from the
        page size, as in the paper's experiments).
    model / pipeline / cache:
        Feature model (e.g. :class:`VectorSetModel`), normalization
        pipeline and feature cache used by :meth:`add_grid`.  Optional —
        :meth:`add` with pre-extracted sets needs none of them.
    durable / path / fsync / keep_generations / source:
        ``durable=True`` creates a write-ahead-logged database in the
        directory *path* (which must not already hold one — recover an
        existing one with :meth:`load`).  *fsync* is the WAL flush
        policy (``"always"``, ``"none"``, ``"every-N"`` or an int);
        *keep_generations* controls how many snapshot generations stay
        on disk for the recovery ladder; *source* optionally names an
        :class:`~repro.io.database.ObjectDatabase` archive used as the
        ladder's last-resort rebuild input.
    lock_timeout:
        When set, every lock acquisition (both sides) raises
        :class:`~repro.exceptions.LockTimeout` after this many seconds
        instead of blocking forever.
    use_array_core:
        Serve queries from the struct-of-arrays index cores
        (:mod:`repro.index.arraycore`) instead of walking the pointer
        trees (default True).  Results are literally identical; the
        cores are densified lazily from the live tree and invalidated
        by any mutation.  ``False`` forces the pointer hot path (the
        pre-array baseline, kept for benchmarking and differential
        testing).  The ``"mtree"`` backend is the exception: its live
        tree always queries through the pointer walk (the core's
        scalar per-node metric evaluation is *slower* — see
        BENCH_PR7); mtree cores serve only zero-copy dense loads.
    sketch / sketch_params:
        ``sketch=True`` (default) maintains the approximate candidate
        tier of :mod:`repro.approx` alongside the spatial index: every
        object gets a packed binary sketch in an incrementally
        maintained :class:`~repro.approx.hamming.HammingIndex`, and
        ``knn_query(..., mode="approx", shortlist=m)`` answers from an
        exact refine over the Hamming shortlist.  *sketch_params*
        overrides :class:`~repro.approx.sketch.SetSketcher` parameters
        (``width``/``nnz``/``wta``/``seed``/``pool``).
    """

    def __init__(
        self,
        capacity: int,
        *,
        backend: str = "xtree",
        omega: np.ndarray | None = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
        solver: str = "lockstep",
        index_capacity: int | None = None,
        model=None,
        pipeline=None,
        cache=None,
        durable: bool = False,
        path: str | Path | None = None,
        fsync="always",
        keep_generations: int = DEFAULT_KEEP_GENERATIONS,
        source: str | Path | None = None,
        lock_timeout: float | None = None,
        use_array_core: bool = True,
        sketch: bool = True,
        sketch_params: dict | None = None,
    ):
        if capacity < 1:
            raise QueryError("capacity must be >= 1")
        if backend not in BACKENDS:
            raise QueryError(f"unknown backend {backend!r}; pick from {BACKENDS}")
        self.capacity = capacity
        self.backend = backend
        self.block_size = block_size
        self.solver = solver
        self.index_capacity = index_capacity
        self.model = model
        self.pipeline = pipeline
        self.cache = cache
        self.dimension: int | None = None
        self._omega_arg = (
            None if omega is None else np.asarray(omega, dtype=float)
        )
        self.omega: np.ndarray | None = self._omega_arg
        self._sets: dict[int, np.ndarray] = {}
        self._centroids: dict[int, np.ndarray] = {}
        self._index = None
        self._version = 0
        self._engine: FilterRefineEngine | None = None
        self._engine_version = -1
        self._lock = RWLock()
        self._engine_lock = threading.Lock()
        self.lock_timeout = lock_timeout
        self.use_array_core = bool(use_array_core)
        self.sketch_enabled = bool(sketch)
        self._sketch_params = dict(sketch_params or {})
        if not self.sketch_enabled and sketch_params:
            raise QueryError("sketch_params is only meaningful with sketch=True")
        self._sketcher: SetSketcher | None = None
        self._hamming: HammingIndex | None = None
        self._snapshot_dense = False
        # -- durability state ---------------------------------------------
        self.durable = bool(durable)
        self.fsync = fsync
        self.keep_generations = int(keep_generations)
        self.source = None if source is None else str(source)
        self._layout: DurableLayout | None = None
        self._wal: WriteAheadLog | None = None
        self._generation = 0
        self._replaying = False
        self.last_recovery: RecoveryReport | None = None
        if self.durable:
            if path is None:
                raise QueryError("durable=True needs a directory path")
            if self.keep_generations < 1:
                raise QueryError("keep_generations must be >= 1")
            layout = DurableLayout(path)
            if layout.exists():
                raise StorageError(
                    f"{layout.root} already holds a durable database; "
                    "recover it with SimilarityDatabase.load()"
                )
            layout.write_config(self._durable_config())
            layout.publish(0)
            self._layout = layout
            self._wal = WriteAheadLog(
                layout.wal_path(0), generation=0, fsync=fsync, fresh=True
            )
        elif path is not None:
            raise QueryError("path is only meaningful with durable=True")

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._sets)

    def __contains__(self, oid: int) -> bool:
        return oid in self._sets

    @property
    def version(self) -> int:
        """Monotone counter, bumped once per successful mutation."""
        return self._version

    @property
    def generation(self) -> int:
        """The published snapshot generation (0 until the first
        checkpoint; always 0 for non-durable databases)."""
        return self._generation

    def object_ids(self) -> list[int]:
        with self._lock.read(timeout=self.lock_timeout):
            return sorted(self._sets)

    def get(self, oid: int) -> np.ndarray:
        with self._lock.read(timeout=self.lock_timeout):
            try:
                return self._sets[oid].copy()
            except KeyError:
                raise QueryError(f"no object with id {oid}") from None

    def index_digest(self) -> str:
        """Structure digest of the live index (see
        :func:`repro.index.snapshot.structure_digest`)."""
        with self._lock.read(timeout=self.lock_timeout):
            if self._index is None:
                return "empty"
            return structure_digest(self._index)

    def sketch_digest(self) -> str:
        """SHA-256 over the sketch tier's ``(oids, codes)`` rows.

        ``"disabled"`` when sketching is off, ``"empty"`` before the
        first add.  The differential harness compares this against a
        from-scratch rebuild to prove incremental maintenance exact.
        """
        with self._lock.read(timeout=self.lock_timeout):
            if not self.sketch_enabled:
                return "disabled"
            if self._hamming is None:
                return "empty"
            return self._hamming.digest()

    def close(self) -> None:
        """Flush and close the WAL segment (durable databases only).

        Safe to call twice; a closed database must not be mutated
        further.
        """
        if self._wal is not None:
            self._wal.close()

    def __enter__(self) -> "SimilarityDatabase":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- internals ---------------------------------------------------------

    def _durable_config(self) -> dict:
        return {
            "capacity": self.capacity,
            "backend": self.backend,
            "omega": None if self._omega_arg is None else self._omega_arg.tolist(),
            "block_size": self.block_size,
            "solver": self.solver,
            "index_capacity": self.index_capacity,
            "fsync": self.fsync if isinstance(self.fsync, (str, int)) else "always",
            "keep_generations": self.keep_generations,
            "source": self.source,
            "resolution": getattr(self.pipeline, "resolution", None),
            "sketch": self.sketch_enabled,
            "sketch_params": self._sketch_params or None,
        }

    def _as_set(self, vectors) -> np.ndarray:
        arr = np.asarray(
            vectors.vectors if isinstance(vectors, VectorSet) else vectors,
            dtype=float,
        )
        if arr.ndim != 2 or not len(arr):
            raise QueryError(f"expected a non-empty (m, d) array, got {arr.shape}")
        if len(arr) > self.capacity:
            raise QueryError(
                f"set holds {len(arr)} vectors, capacity is {self.capacity}"
            )
        if not np.all(np.isfinite(arr)):
            raise QueryError("vector sets must be finite")
        if self.dimension is not None and arr.shape[1] != self.dimension:
            raise QueryError(
                f"dimension mismatch: database holds {self.dimension}-d "
                f"elements, got {arr.shape[1]}-d"
            )
        return arr.copy()

    def _metric(self):
        """The exact set distance — identical to the engine's default,
        so every backend refines with the same floats."""
        omega = self.omega
        weight = norm_weight(
            None if omega is None or np.allclose(omega, 0.0) else omega
        )
        return lambda a, b: min_matching_distance(a, b, weight=weight)

    def _make_index(self, dimension: int):
        if self.backend == "mtree":
            return MTree(self._metric(), capacity=self.index_capacity or 16)
        if self.backend == "rstar":
            return RStarTree(dimension, capacity=self.index_capacity)
        if self.backend == "scan":
            return SequentialScan(dimension)
        return XTree(dimension, capacity=self.index_capacity)

    def _ensure_dimension(self, arr: np.ndarray) -> None:
        if self.dimension is None:
            self.dimension = int(arr.shape[1])
            if self.omega is None:
                self.omega = np.zeros(self.dimension)
            elif self.omega.shape != (self.dimension,):
                raise QueryError(
                    f"omega has shape {self.omega.shape}, data is "
                    f"{self.dimension}-d"
                )
        if self._index is None:
            self._index = self._make_index(self.dimension)
        else:
            self._ensure_mutable_index()
        self._ensure_sketcher()

    def _ensure_sketcher(self) -> None:
        """Materialize the sketch tier once the dimension is known."""
        if not self.sketch_enabled or self.dimension is None:
            return
        if self._sketcher is None:
            self._sketcher = SetSketcher(self.dimension, **self._sketch_params)
        if self._hamming is None:
            self._hamming = HammingIndex(self._sketcher.words)

    def _ensure_mutable_index(self) -> None:
        """Inflate a zero-copy loaded array core into the pointer tree.

        Mutations need the pointer structures; a database whose index
        came straight off an mmapped dense snapshot materializes them
        here, on the first mutation, never earlier.
        """
        if self._index is not None and hasattr(self._index, "inflate"):
            self._index = self._index.inflate(
                metric=self._metric() if self.backend == "mtree" else None
            )

    def _query_index(self):
        """The object queries rank with: the array core mirroring the
        live tree (densified lazily, invalidated by mutations), the
        zero-copy loaded core itself, or — with ``use_array_core=False``
        — the pointer tree."""
        index = self._index
        if index is None or not self.use_array_core:
            if index is not None and hasattr(index, "inflate"):
                # Pointer path requested but the index was loaded as a
                # zero-copy core: materialize the tree once.
                self._ensure_mutable_index()
                return self._index
            return index
        if hasattr(index, "serialized"):  # already an array core
            return index
        if self.backend == "mtree":
            # The mtree core deliberately keeps the scalar metric (no
            # batch_params — the batch kernel's floats can differ from
            # the scalar metric by ulps, and pointer==core equality must
            # be literal), which makes its chunked ranking *slower* than
            # the pointer walk (BENCH_PR7: 0.93x).  Serve the live tree
            # directly; cores answer only for zero-copy dense loads,
            # where no pointer tree exists to fall back to.
            return index
        return index.dense_core()

    def _index_insert(self, oid: int, arr: np.ndarray, centroid: np.ndarray) -> None:
        self._ensure_mutable_index()
        if self.backend == "mtree":
            self._index.insert(arr, oid)
        else:
            self._index.insert(centroid, oid)

    def _index_delete(self, oid: int, arr: np.ndarray, centroid: np.ndarray) -> None:
        self._ensure_mutable_index()
        if self.backend == "mtree":
            removed = self._index.delete(arr, oid)
        else:
            removed = self._index.delete(centroid, oid)
        if not removed:
            raise IndexError_(
                f"index lost object {oid}: store and index disagree"
            )

    def _wal_log(self, op: str, *, oid: int | None = None, array=None) -> None:
        """Append one mutation record *before* it is applied.

        No-op for non-durable databases and during recovery replay.
        The record is on stable storage (per the fsync policy) when
        this returns, so the mutation it precedes is recoverable the
        instant the caller's method returns — the acknowledged-write
        contract of ``fsync='always'``.
        """
        if self._wal is None or self._replaying:
            return
        self._wal.append(op, oid=oid, array=array)

    # -- mutations ---------------------------------------------------------

    def add(self, oid: int, vectors) -> None:
        """Add one vector set under external id *oid*."""
        self._add(oid, vectors, op="add")

    def _add(self, oid: int, vectors, *, op: str) -> None:
        oid = int(oid)
        arr = self._as_set(vectors)
        with self._lock.write(timeout=self.lock_timeout):
            if oid in self._sets:
                raise QueryError(f"object id {oid} already present")
            self._ensure_dimension(arr)
            centroid = extended_centroid(arr, self.capacity, self.omega)
            self._wal_log(op, oid=oid, array=arr)
            with span("db.mutate", op=op):
                self._index_insert(oid, arr, centroid)
            self._sets[oid] = arr
            self._centroids[oid] = centroid
            if self._hamming is not None:
                self._hamming.add(oid, self._sketcher.sketch(arr))
            self._bump("add")

    def add_grid(self, oid: int, grid) -> np.ndarray:
        """Voxel-grid ingest: normalize, extract (through the feature
        cache), then :meth:`add`.  Returns the extracted set.

        Durable databases log the *extracted* set (an ``add_grid``
        record), so replay never needs the voxel grid or the feature
        model."""
        if self.model is None:
            raise QueryError("add_grid needs a database with a feature model")
        from repro.pipeline import Pipeline

        pipeline = self.pipeline or Pipeline()
        arr = pipeline.features_for_grid(grid, self.model, cache=self.cache)
        self._add(oid, arr, op="add_grid")
        return arr

    def remove(self, oid: int) -> bool:
        """Remove the object stored under *oid*; False if absent."""
        oid = int(oid)
        with self._lock.write(timeout=self.lock_timeout):
            arr = self._sets.get(oid)
            if arr is None:
                return False
            centroid = self._centroids[oid]
            self._wal_log("remove", oid=oid)
            with span("db.mutate", op="remove"):
                self._index_delete(oid, arr, centroid)
            del self._sets[oid]
            del self._centroids[oid]
            if self._hamming is not None:
                self._hamming.remove(oid)
            self._bump("remove")
            return True

    def update(self, oid: int, vectors) -> None:
        """Replace the set stored under *oid* in one atomic mutation."""
        oid = int(oid)
        arr = self._as_set(vectors)
        with self._lock.write(timeout=self.lock_timeout):
            old = self._sets.get(oid)
            if old is None:
                raise QueryError(f"no object with id {oid}")
            centroid = extended_centroid(arr, self.capacity, self.omega)
            self._wal_log("update", oid=oid, array=arr)
            with span("db.mutate", op="update"):
                self._index_delete(oid, old, self._centroids[oid])
                self._index_insert(oid, arr, centroid)
            self._sets[oid] = arr
            self._centroids[oid] = centroid
            if self._hamming is not None:
                self._hamming.update(oid, self._sketcher.sketch(arr))
            self._bump("update")

    def compact(self) -> None:
        """Rebuild the index from scratch (ascending oid insertion).

        Results are guaranteed unchanged — canonical tie-breaking makes
        query answers independent of the tree's internal structure —
        but a tree degraded by heavy churn gets re-packed, and tests
        use the rebuilt tree as the reference the incrementally
        maintained one must match byte-for-byte.
        """
        with self._lock.write(timeout=self.lock_timeout):
            if self.dimension is None:
                return
            self._wal_log("compact")
            crash_point("mid-compaction")
            self._compact_locked()
            self._bump("compact")

    def _compact_locked(self) -> None:
        with span("db.compact", objects=len(self._sets), force=True):
            index = self._make_index(self.dimension)
            for oid in sorted(self._sets):
                if self.backend == "mtree":
                    index.insert(self._sets[oid], oid)
                else:
                    index.insert(self._centroids[oid], oid)
            self._index = index
            if self._sketcher is not None:
                # Rebuild the sketch tier the same way — the result must
                # be byte-identical to the incrementally maintained one
                # (the differential harness compares digests).
                hamming = HammingIndex(self._sketcher.words)
                for oid in sorted(self._sets):
                    hamming.add(oid, self._sketcher.sketch(self._sets[oid]))
                self._hamming = hamming

    def _bump(self, op: str) -> None:
        self._version += 1
        reg = registry()
        if reg.enabled:
            reg.counter(f"db.mutations.{op}").inc()
            reg.gauge("db.size").set(len(self._sets))

    # -- queries -----------------------------------------------------------

    def _empty_result(self) -> tuple[list[QueryMatch], QueryStats]:
        return [], QueryStats()

    def _ranker(self):
        index = self._query_index()
        if hasattr(index, "ranking_chunks"):
            return _ChunkedRanker(index)

        def ranker(center: np.ndarray):
            return index.incremental_nearest(center)

        return ranker

    def _ensure_engine(self) -> FilterRefineEngine:
        """The version-tagged refinement engine (rebuilt after any
        mutation, so it can never serve stale candidates)."""
        with self._engine_lock:
            if self._engine is None or self._engine_version != self._version:
                oids = sorted(self._sets)
                self._engine = FilterRefineEngine(
                    [self._sets[oid] for oid in oids],
                    capacity=self.capacity,
                    omega=self.omega,
                    block_size=self.block_size,
                    backend=self.solver,
                    oids=oids,
                )
                self._engine_version = self._version
                registry().counter("db.engine_rebuilds").inc()
            return self._engine

    def _query_context(self, mode: str):
        """Wide-event context for one query: backend, mode, database
        version, and the IO counter baselines that become per-query
        page/byte deltas.  A plain ``nullcontext`` while observability
        is disabled, so the disabled query path stays free."""
        if not registry().enabled:
            return nullcontext()
        return querylog.query_context(
            backend=self.backend,
            mode=mode,
            db_version=self._version,
            io_baseline=querylog.io_baseline(),
        )

    def _mtree_query(self, kind: str, query, arg):
        arr = self._as_set(query)
        index = self._query_index()
        before = index.distance_computations
        with span(f"query.mtree_{kind}") as sp:
            if kind == "knn":
                pairs = index.knn(arr, arg)
            else:
                pairs = index.range_search(arr, arg)
        stats = QueryStats(
            candidates_ranked=len(self._sets),
            exact_computations=index.distance_computations - before,
        )
        stats.pruned = max(0, len(self._sets) - stats.exact_computations)
        # The M-tree bypasses FilterRefineEngine, so it records its own
        # wide event; metric-tree traversal has no separable filter
        # phase — the whole search is exact distance work.
        querylog.record_query(
            f"mtree_{kind}",
            stats.as_dict(),
            len(self._sets),
            seconds=sp.seconds,
            refine_seconds=sp.seconds,
            results=len(pairs),
            **({"k": arg} if kind == "knn" else {"epsilon": arg}),
        )
        return [QueryMatch(oid, float(dist)) for oid, dist in pairs], stats

    def _knn_locked(self, query, n_neighbors: int):
        if not self._sets:
            return self._empty_result()
        with self._query_context("exact"):
            if self.backend == "mtree":
                return self._mtree_query("knn", query, n_neighbors)
            return self._ensure_engine().knn_query(
                query, n_neighbors, centroid_ranker=self._ranker()
            )

    def _range_locked(self, query, epsilon: float):
        if not self._sets:
            return self._empty_result()
        with self._query_context("exact"):
            if self.backend == "mtree":
                return self._mtree_query("range", query, epsilon)
            return self._ensure_engine().range_query(
                query, epsilon, centroid_ranker=self._ranker()
            )

    def _approx_knn_locked(self, query, n_neighbors: int, shortlist: int | None):
        if not self._sets:
            return self._empty_result()
        if self._hamming is None:
            raise QueryError(
                "approx queries need the sketch tier; this database was "
                "built with sketch=False"
            )
        engine = ApproxFilterRefineEngine(
            self._ensure_engine(), self._sketcher, self._hamming
        )
        with self._query_context("approx"):
            return engine.knn_query(
                self._as_set(query), n_neighbors, shortlist=shortlist
            )

    def knn_query(
        self,
        query,
        n_neighbors: int,
        *,
        mode: str = "exact",
        shortlist: int | None = None,
    ):
        """The *n_neighbors* nearest objects by minimal matching
        distance: ``(list[QueryMatch], QueryStats)``.

        ``mode="exact"`` (default) is the paper's filter-refine pipeline.
        ``mode="approx"`` Hamming-ranks the sketch tier and refines only
        the *shortlist* best candidates with the exact distance — the
        returned distances are still exact, but objects outside the
        shortlist are never considered, so recall is traded for
        throughput (with ``shortlist >= len(db)`` results equal exact).
        """
        if mode not in ("exact", "approx"):
            raise QueryError(f"unknown query mode {mode!r}")
        if mode == "exact" and shortlist is not None:
            raise QueryError("shortlist is only meaningful with mode='approx'")
        with self._lock.read(timeout=self.lock_timeout):
            if mode == "approx":
                return self._approx_knn_locked(query, n_neighbors, shortlist)
            return self._knn_locked(query, n_neighbors)

    def range_query(self, query, epsilon: float):
        """All objects within matching distance *epsilon*."""
        with self._lock.read(timeout=self.lock_timeout):
            return self._range_locked(query, epsilon)

    def knn_query_many(
        self,
        queries,
        n_neighbors: int,
        *,
        mode: str = "exact",
        shortlist: int | None = None,
    ):
        """Batch k-nn under one read-lock acquisition.

        Returns ``[(results, stats), ...]`` in query order, identical
        to calling :meth:`knn_query` per query — but the whole batch
        observes a single database version (no writer can interleave).
        """
        if mode not in ("exact", "approx"):
            raise QueryError(f"unknown query mode {mode!r}")
        if mode == "exact" and shortlist is not None:
            raise QueryError("shortlist is only meaningful with mode='approx'")
        with self._lock.read(timeout=self.lock_timeout):
            if mode == "approx":
                return [
                    self._approx_knn_locked(query, n_neighbors, shortlist)
                    for query in queries
                ]
            return [self._knn_locked(query, n_neighbors) for query in queries]

    @contextmanager
    def read_view(self):
        """Hold the read lock across several queries: everything inside
        the ``with`` block sees one frozen database version."""
        with self._lock.read(timeout=self.lock_timeout):
            yield DatabaseView(self)

    # -- snapshots ---------------------------------------------------------

    def _snapshot_state(self) -> tuple[dict, dict[str, np.ndarray]]:
        """The (meta, arrays) archive form of the current state.

        Caller must hold either lock side.
        """
        oids = sorted(self._sets)
        dimension = self.dimension or 0
        row_counts = [len(self._sets[oid]) for oid in oids]
        offsets = np.zeros(len(oids) + 1, dtype=np.int64)
        np.cumsum(row_counts, out=offsets[1:])
        data = (
            np.concatenate([self._sets[oid] for oid in oids], axis=0)
            if oids
            else np.empty((0, dimension))
        )
        centroids = (
            np.vstack([self._centroids[oid] for oid in oids])
            if oids
            else np.empty((0, dimension))
        )
        arrays = {
            "set_oids": np.asarray(oids, dtype=np.int64),
            "set_row_offsets": offsets,
            "set_data": np.ascontiguousarray(data, dtype=np.float64),
            "centroids": np.ascontiguousarray(centroids, dtype=np.float64),
        }
        index_meta = None
        if self._index is not None:
            index_meta, index_arrays = serialize_index(self._index)
            arrays.update(
                {f"index__{name}": arr for name, arr in index_arrays.items()}
            )
        sketch_meta = None
        if self.sketch_enabled and self._sketcher is not None:
            # The projection matrix travels with the data, content-
            # addressed by its digest, so sketches stay bit-reproducible
            # in every process that loads this snapshot.
            sketch_meta = {
                **self._sketcher.params(),
                "digest": self._sketcher.digest(),
            }
            hamming = self._hamming.serialized()
            arrays["sketch__proj"] = np.ascontiguousarray(
                self._sketcher.projection, dtype=np.float64
            )
            arrays["sketch__oids"] = hamming["oids"]
            arrays["sketch__codes"] = hamming["codes"]
        meta = {
            "format": DB_FORMAT,
            "version": DB_VERSION,
            "capacity": self.capacity,
            "backend": self.backend,
            "dimension": self.dimension,
            "omega": None if self.omega is None else self.omega.tolist(),
            "block_size": self.block_size,
            "solver": self.solver,
            "index_capacity": self.index_capacity,
            "db_version": self._version,
            "resolution": getattr(self.pipeline, "resolution", None),
            "index_meta": index_meta,
            "sketch_enabled": self.sketch_enabled,
            "sketch_meta": sketch_meta,
        }
        return meta, arrays

    def save(self, path: str | Path | None = None, *, dense: bool | None = None) -> Path:
        """Persist the database.

        Non-durable: write a CRC-checked snapshot archive atomically to
        *path* (required).  Durable: run a :meth:`checkpoint` (*path*,
        if given, must be the database directory; any other path writes
        a plain archive export instead).

        ``dense=True`` writes the flat mmap-able container of
        :mod:`repro.index.dense` instead of an ``.npz`` archive, so
        :meth:`load` maps the node tables and feature store zero-copy.
        Default: whatever format this database was loaded from (``.npz``
        for a fresh database).  Durable checkpoints always use ``.npz``.
        """
        if self.durable and (
            path is None or Path(path).resolve() == self._layout.root.resolve()
        ):
            return self.checkpoint()
        if path is None:
            raise QueryError("save() needs a path for a non-durable database")
        if dense is None:
            dense = self._snapshot_dense
        with span("db.snapshot.save", force=True) as sp, self._lock.read(
            timeout=self.lock_timeout
        ):
            meta, arrays = self._snapshot_state()
            if dense:
                from repro.index.dense import write_dense_archive

                result = write_dense_archive(path, meta, arrays)
            else:
                result = write_archive(path, meta, arrays)
            sp.set(objects=len(self._sets))
        emit("db.snapshot", op="save", objects=len(self._sets), path=str(path))
        return result

    def checkpoint(self) -> Path:
        """Publish a new snapshot generation and rotate the WAL.

        Under the write lock: write ``snapshot-(G+1)`` atomically, seal
        ``wal-G`` with a checkpoint record, open ``wal-(G+1)``, then
        atomically republish ``CURRENT``.  A crash at *any* point in
        that sequence leaves either generation G fully recoverable
        (snapshot + sealed-or-live WAL) or generation G+1 published;
        old generations are retired only after publication succeeds.
        """
        if not self.durable:
            raise QueryError("checkpoint() is only available with durable=True")
        with span("db.checkpoint", force=True) as sp, self._lock.write(
            timeout=self.lock_timeout
        ):
            next_generation = self._generation + 1
            snapshot_path = self._layout.snapshot_path(next_generation)
            meta, arrays = self._snapshot_state()
            write_archive(snapshot_path, meta, arrays)
            self._wal.append("checkpoint", next_generation=next_generation)
            self._wal.sync()
            self._wal.close()
            new_wal = WriteAheadLog(
                self._layout.wal_path(next_generation),
                generation=next_generation,
                fsync=self.fsync,
                fresh=True,
            )
            crash_point("mid-checkpoint-swap")
            self._layout.publish(next_generation)
            self._wal = new_wal
            self._generation = next_generation
            retired = self._layout.retire(
                published=next_generation,
                keep_generations=self.keep_generations,
            )
            registry().counter("db.checkpoints").inc()
            sp.set(objects=len(self._sets), generation=next_generation)
        emit(
            "db.checkpoint",
            generation=next_generation,
            objects=len(self._sets),
            retired=len(retired),
            path=str(snapshot_path),
        )
        return snapshot_path

    @classmethod
    def load(
        cls,
        path: str | Path,
        *,
        model=None,
        pipeline=None,
        cache=None,
        lock_timeout: float | None = None,
    ) -> "SimilarityDatabase":
        """Reconstruct a database from :meth:`save` output.

        A snapshot *file* loads directly; the index comes back
        node-for-node identical to the saved one — no ``insert`` is
        ever called, so the first query runs against the exact
        structure the previous process built (asserted by the snapshot
        tests through ``structure_digest`` equality).

        A *dense* snapshot file (:meth:`save` with ``dense=True``) loads
        zero-copy: sets, centroids and the index node tables stay mmap
        views over the file, the index is served by an array core with
        no pointer tree materialized at all, and the first mutation
        inflates the tree lazily.

        A durable *directory* runs the recovery ladder (see the module
        docstring); the result's :attr:`last_recovery` reports which
        rung served and how degraded the recovery was.
        """
        path = Path(path)
        if path.is_dir():
            return cls._load_durable(
                path,
                model=model,
                pipeline=pipeline,
                cache=cache,
                lock_timeout=lock_timeout,
            )
        from repro.index.dense import is_dense_archive

        dense = is_dense_archive(path)
        with span("db.snapshot.load", force=True) as sp:
            if dense:
                from repro.index.dense import read_dense_archive

                meta, arrays = read_dense_archive(path, DB_FORMAT)
            else:
                meta, arrays = read_archive(path, DB_FORMAT)
            db = cls._from_archive(
                path,
                meta,
                arrays,
                model=model,
                pipeline=pipeline,
                cache=cache,
                zero_copy=dense,
            )
            db.lock_timeout = lock_timeout
            sp.set(objects=len(db._sets))
        emit("db.snapshot", op="load", objects=len(db._sets), path=str(path))
        return db

    @classmethod
    def _from_archive(
        cls, path, meta, arrays, *, model, pipeline, cache, zero_copy=False
    ) -> "SimilarityDatabase":
        """Build a database from one (meta, arrays) archive payload.

        With ``zero_copy=True`` (dense snapshots) the sets, centroids
        and index arrays are stored as read-only views over the caller's
        buffers — for an mmapped file nothing is copied, and the index
        becomes an array core instead of a reconstructed pointer tree.
        """
        if meta.get("version") != DB_VERSION:
            raise StorageError(
                f"{path}: unsupported database version {meta.get('version')!r}"
            )
        if pipeline is None and meta.get("resolution"):
            from repro.pipeline import Pipeline

            pipeline = Pipeline(resolution=meta["resolution"])
        db = cls(
            meta["capacity"],
            backend=meta["backend"],
            omega=None if meta["omega"] is None else np.asarray(meta["omega"]),
            block_size=meta["block_size"],
            solver=meta["solver"],
            index_capacity=meta["index_capacity"],
            model=model,
            pipeline=pipeline,
            cache=cache,
            sketch=bool(meta.get("sketch_enabled", True)),
        )
        try:
            oids = [int(oid) for oid in arrays["set_oids"]]
            offsets = arrays["set_row_offsets"]
            # Plain-ndarray views over the same buffers: slicing an
            # np.memmap subclass pays __array_finalize__ per slice, and
            # every downstream kernel would inherit the subclass.  The
            # .base chain still pins the mmap, so this stays zero-copy.
            data = arrays["set_data"].view(np.ndarray)
            centroids = arrays["centroids"].view(np.ndarray)
            for pos, oid in enumerate(oids):
                block = data[int(offsets[pos]) : int(offsets[pos + 1])]
                db._sets[oid] = block if zero_copy else block.copy()
                db._centroids[oid] = (
                    centroids[pos] if zero_copy else centroids[pos].copy()
                )
        except (KeyError, IndexError) as exc:
            raise StorageError(f"{path}: truncated snapshot: {exc}") from exc
        db.dimension = meta["dimension"]
        if db.dimension is not None and db.omega is None:
            db.omega = np.zeros(db.dimension)
        if meta["index_meta"] is not None:
            prefix = "index__"
            index_arrays = {
                name[len(prefix) :]: arr
                for name, arr in arrays.items()
                if name.startswith(prefix)
            }
            if zero_copy:
                from repro.index.arraycore import core_from_serialized

                is_mtree = meta["backend"] == "mtree"
                db._index = core_from_serialized(
                    meta["index_meta"],
                    index_arrays,
                    metric=db._metric() if is_mtree else None,
                )
            else:
                db._index = reconstruct_index(
                    meta["index_meta"],
                    index_arrays,
                    metric=db._metric() if meta["backend"] == "mtree" else None,
                )
        db._restore_sketches(meta, arrays, zero_copy=zero_copy)
        db._version = meta["db_version"]
        db._snapshot_dense = bool(zero_copy)
        return db

    def _restore_sketches(self, meta: dict, arrays: dict, *, zero_copy: bool) -> None:
        """Rehydrate the sketch tier from snapshot arrays.

        Snapshots written before the approx tier existed carry no
        ``sketch__*`` arrays; sketching is then rebuilt from the stored
        sets (same seed → same bits, so the rebuilt tier is identical to
        what the writing process *would* have persisted).  Zero-copy
        loads keep the code matrix as a read-only view: every Hamming
        mutation path reallocates, so mmapped buffers are never written.
        """
        if not self.sketch_enabled:
            return
        sketch_meta = meta.get("sketch_meta")
        if sketch_meta is not None and "sketch__codes" in arrays:
            self._sketcher = SetSketcher.from_snapshot(
                sketch_meta, np.ascontiguousarray(arrays["sketch__proj"])
            )
            self._hamming = HammingIndex.from_arrays(
                np.asarray(arrays["sketch__oids"], dtype=np.int64),
                arrays["sketch__codes"].view(np.ndarray),
                copy=not zero_copy,
            )
            stored = set(self._hamming.oids.tolist())
            if stored != set(self._sets):
                raise StorageError(
                    "snapshot sketch tier does not cover the stored objects"
                )
            return
        if self.dimension is None:
            return
        self._ensure_sketcher()
        for oid in sorted(self._sets):
            self._hamming.add(oid, self._sketcher.sketch(self._sets[oid]))

    # -- durable recovery --------------------------------------------------

    @classmethod
    def _bare_durable(
        cls, config: dict, *, model, pipeline, cache, lock_timeout
    ) -> "SimilarityDatabase":
        """An empty database matching a durable config, with no disk
        side effects (the recovery ladder attaches layout/WAL itself)."""
        if pipeline is None and config.get("resolution"):
            from repro.pipeline import Pipeline

            pipeline = Pipeline(resolution=config["resolution"])
        return cls(
            config["capacity"],
            backend=config["backend"],
            omega=None if config["omega"] is None else np.asarray(config["omega"]),
            block_size=config["block_size"],
            solver=config["solver"],
            index_capacity=config["index_capacity"],
            model=model,
            pipeline=pipeline,
            cache=cache,
            lock_timeout=lock_timeout,
            sketch=bool(config.get("sketch", True)),
            sketch_params=config.get("sketch_params"),
        )

    def _apply_replay(self, record: dict) -> None:
        """Apply one WAL record idempotently (recovery only).

        Idempotency makes chained/partial replays safe: re-adding an
        identical set is a no-op, an ``add`` over a different survivor
        degrades to ``update``, removing an absent oid is a no-op.
        """
        op = record["op"]
        if op == "checkpoint":
            return
        if op == "compact":
            if self.dimension is not None:
                with self._lock.write(timeout=self.lock_timeout):
                    self._compact_locked()
                    self._bump("compact")
            return
        oid = int(record["oid"])
        if op == "remove":
            self.remove(oid)
            return
        arr = record["array"]
        if oid in self._sets:
            if np.array_equal(self._sets[oid], arr):
                return
            self.update(oid, arr)
        elif op == "update":
            self.add(oid, arr)
        else:
            self.add(oid, arr)

    @classmethod
    def _load_durable(
        cls, root: Path, *, model, pipeline, cache, lock_timeout
    ) -> "SimilarityDatabase":
        """The recovery ladder.

        Rung 1: newest published snapshot + its WAL tail.
        Rung 2..: previous generations, each with a longer chained
        replay (``wal-g`` holds exactly the mutations between snapshot
        *g* and snapshot *g+1*).
        Rung 0: an empty database + the full retained WAL chain.
        Last resort: rebuild from the configured ObjectDatabase source.
        """
        layout = DurableLayout(root)
        config = layout.read_config()
        try:
            published = layout.current_generation()
        except StorageError:
            on_disk = layout.generations_on_disk()
            published = max(on_disk) if on_disk else 0
        report = RecoveryReport(requested_generation=published)
        reg = registry()
        with span("db.recover", force=True) as sp:
            db: SimilarityDatabase | None = None
            wal_floor = min(layout.wal_generations_on_disk(), default=0)
            for generation in range(published, -1, -1):
                candidate = cls._bare_durable(
                    config,
                    model=model,
                    pipeline=pipeline,
                    cache=cache,
                    lock_timeout=lock_timeout,
                )
                if generation > 0:
                    snapshot_path = layout.snapshot_path(generation)
                    try:
                        meta, arrays = read_archive(snapshot_path, DB_FORMAT)
                        candidate = cls._from_archive(
                            snapshot_path,
                            meta,
                            arrays,
                            model=model,
                            pipeline=pipeline,
                            cache=cache,
                        )
                        candidate.lock_timeout = lock_timeout
                    except StorageError as exc:
                        report.fallbacks += 1
                        report.failures.append(str(exc))
                        reg.counter("db.recovery.fallbacks").inc()
                        emit(
                            "db.recovery.fallback",
                            generation=generation,
                            error=str(exc),
                        )
                        continue
                elif wal_floor > 0:
                    # The empty-base rung needs the full WAL chain;
                    # segment 0 was retired, so only the source rung
                    # remains.
                    report.failures.append(
                        f"wal floor is generation {wal_floor}: cannot "
                        "replay from empty"
                    )
                    break
                cls._replay_chain(
                    candidate, layout, generation, published, report
                )
                db = candidate
                report.used_generation = generation
                break
            if db is None:
                db = cls._rebuild_from_source(
                    config, layout, published, report,
                    model=model, pipeline=pipeline, cache=cache,
                    lock_timeout=lock_timeout,
                )
            db.durable = True
            db.fsync = config.get("fsync", "always")
            db.keep_generations = int(
                config.get("keep_generations", DEFAULT_KEEP_GENERATIONS)
            )
            db.source = config.get("source")
            db._layout = layout
            db._generation = published
            if db._wal is None:
                # Opening the live segment for append truncates any torn
                # tail left by the crash we are recovering from.
                db._wal = WriteAheadLog(
                    layout.wal_path(published),
                    generation=published,
                    fsync=db.fsync,
                )
            db.last_recovery = report
            if report.degraded:
                reg.counter("db.recovery.degraded").inc()
            reg.counter("db.recovery.replayed_records").inc(
                report.replayed_records
            )
            sp.set(
                objects=len(db._sets),
                generation=report.used_generation,
                fallbacks=report.fallbacks,
            )
        emit(
            "db.recovery",
            path=str(root),
            requested_generation=report.requested_generation,
            used_generation=report.used_generation,
            fallbacks=report.fallbacks,
            replayed_records=report.replayed_records,
            torn_segments=list(report.torn_segments),
            source_rebuild=report.source_rebuild,
            degraded=report.degraded,
        )
        return db

    @classmethod
    def _replay_chain(
        cls, db, layout, start: int, published: int, report: RecoveryReport
    ) -> None:
        """Replay WAL segments ``start..published`` onto *db* in order."""
        db._replaying = True
        try:
            for generation in range(start, published + 1):
                wal_path = layout.wal_path(generation)
                if not wal_path.exists():
                    report.missing_segments.append(wal_path.name)
                    continue
                scan = scan_segment(wal_path)
                if scan.torn:
                    report.torn_segments.append(wal_path.name)
                for record in scan.records:
                    db._apply_replay(record)
                    if record["op"] != "checkpoint":
                        report.replayed_records += 1
        finally:
            db._replaying = False

    @classmethod
    def _rebuild_from_source(
        cls, config, layout, published, report,
        *, model, pipeline, cache, lock_timeout,
    ) -> "SimilarityDatabase":
        """Last rung: every snapshot failed and the WAL chain is
        incomplete — rebuild from the configured ObjectDatabase.

        Acknowledged mutations made after the source ingest are lost
        (this rung exists so the service comes back *at all*); the
        rebuilt state is logged to a fresh live segment so the next
        checkpoint re-establishes a clean generation.
        """
        source = config.get("source")
        if not source:
            failures = "; ".join(report.failures) or "no usable snapshot"
            raise StorageError(
                f"{layout.root}: recovery impossible ({failures}) and no "
                "ObjectDatabase source is configured for a full rebuild"
            )
        source_path = Path(source)
        if not source_path.is_absolute():
            source_path = layout.root / source_path
        from repro.io.database import ObjectDatabase

        odb = ObjectDatabase.load(source_path)
        key = f"vector-set(k={config['capacity']})"
        if not odb.has_features(key):
            raise StorageError(
                f"{source_path}: source database has no {key} features; "
                "cannot rebuild"
            )
        db = cls._bare_durable(
            config, model=model, pipeline=pipeline, cache=cache,
            lock_timeout=lock_timeout,
        )
        # The rebuilt state must itself be durable: start a fresh live
        # segment and log every re-added object into it.
        db._wal = WriteAheadLog(
            layout.wal_path(published),
            generation=published,
            fsync=config.get("fsync", "always"),
            fresh=True,
        )
        for oid, vectors in enumerate(odb.get_features(key)):
            db.add(oid, vectors)
        report.source_rebuild = True
        report.used_generation = -1
        report.replayed_records += len(db)
        registry().counter("db.recovery.source_rebuilds").inc()
        emit(
            "db.recovery.source_rebuild",
            source=str(source_path),
            objects=len(db),
        )
        return db

"""Deterministic seed plumbing for every stochastic code path.

All corpus and sketch randomness in the project flows through this
module so that one ``--seed`` flag (or the ``REPRO_SEED`` environment
variable) pins the entire run.  Two processes given the same seed must
produce byte-identical corpora and sketches; the tests assert exactly
that by spawning subprocesses.

The module deliberately avoids module-level ``np.random`` state: every
consumer derives its own :class:`numpy.random.Generator` from the
resolved seed plus a stream label via :func:`spawn`, which keys a
``SeedSequence`` off the ``(root, seed, *tokens)`` entropy tuple.  That
construction is stable across processes, platforms and numpy releases
(documented behaviour of ``SeedSequence``), unlike ``Generator.spawn``
chains whose identity depends on call order.
"""

from __future__ import annotations

import os
import zlib

import numpy as np

from repro.exceptions import ReproError

__all__ = ["DEFAULT_SEED", "ENV_VAR", "resolve_seed", "spawn", "stream_entropy"]

#: Project-wide default seed (the paper's publication date).
DEFAULT_SEED = 20030609

#: Environment variable consulted when no explicit seed is given.
ENV_VAR = "REPRO_SEED"

#: Root entropy constant namespacing this project's seed sequences.
_ROOT = 0x5E7F1D0


def resolve_seed(explicit: int | None = None, default: int = DEFAULT_SEED) -> int:
    """Resolve the effective seed: explicit flag > ``REPRO_SEED`` > default."""
    if explicit is not None:
        return int(explicit)
    env = os.environ.get(ENV_VAR)
    if env is not None and env.strip():
        try:
            return int(env.strip())
        except ValueError as exc:
            raise ReproError(f"{ENV_VAR} must be an integer, got {env!r}") from exc
    return int(default)


def stream_entropy(seed: int, *tokens: int | str) -> list[int]:
    """Entropy tuple for a named stream: ``[root, seed, *hashed tokens]``.

    String tokens are crc32-hashed so call sites can use readable stream
    names (``spawn(seed, "corpus", n)``) without worrying about integer
    encoding; crc32 is stable across processes unlike ``hash()``.
    """
    entropy: list[int] = [_ROOT, int(seed) & 0xFFFFFFFFFFFFFFFF]
    for token in tokens:
        if isinstance(token, str):
            entropy.append(zlib.crc32(token.encode("utf-8")))
        else:
            entropy.append(int(token) & 0xFFFFFFFFFFFFFFFF)
    return entropy


def spawn(seed: int, *tokens: int | str) -> np.random.Generator:
    """A process-independent :class:`~numpy.random.Generator` for a stream.

    ``spawn(seed, "corpus")`` and ``spawn(seed, "sketch", dims, width)``
    are independent streams of the same run; re-creating either in
    another process yields the identical bit stream.
    """
    return np.random.default_rng(np.random.SeedSequence(stream_entropy(seed, *tokens)))

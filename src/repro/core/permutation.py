"""Minimum Euclidean distance under permutation (Definitions 3 and 4).

The one-vector cover sequence model concatenates ``k`` 6-d cover vectors
in a fixed order; Definition 4 removes the order dependence by minimizing
the Euclidean distance over all ``k!`` block permutations.  Two
implementations are provided:

* :func:`permutation_distance_bruteforce` — literally enumerates the
  ``k!`` permutations (exponential; usable for small ``k`` and as the
  oracle in tests),
* :func:`permutation_distance_via_matching` — the paper's O(k^3)
  reduction (Section 4.2): run the minimal matching distance with the
  *squared* Euclidean element distance and the *squared* norm as weight
  function, then take the square root.

Both accept either padded ``6k`` vectors or ``(m, d)`` vector sets; sets
are padded with zero rows (dummy covers) to the common capacity first.
"""

from __future__ import annotations

from itertools import permutations

import numpy as np

from repro.core.min_matching import min_matching_distance
from repro.core.vector_set import VectorSet
from repro.exceptions import DistanceError


def _to_rows(obj: np.ndarray | VectorSet, d: int | None, k: int | None) -> np.ndarray:
    """Normalize input into an ``(m, d)`` row array."""
    if isinstance(obj, VectorSet):
        return np.asarray(obj.vectors)
    arr = np.asarray(obj, dtype=float)
    if arr.ndim == 2:
        return arr
    if arr.ndim == 1:
        if d is None:
            raise DistanceError("flat vectors need the block dimension d")
        if len(arr) % d != 0:
            raise DistanceError(f"flat vector of length {len(arr)} is not divisible by d={d}")
        return arr.reshape(-1, d)
    raise DistanceError(f"expected flat vector or (m, d) rows, got shape {arr.shape}")


def _pad(rows: np.ndarray, k: int) -> np.ndarray:
    if len(rows) > k:
        raise DistanceError(f"{len(rows)} blocks exceed capacity k={k}")
    padded = np.zeros((k, rows.shape[1]))
    padded[: len(rows)] = rows
    return padded


def permutation_distance_bruteforce(
    x: np.ndarray | VectorSet,
    y: np.ndarray | VectorSet,
    d: int = 6,
    k: int | None = None,
) -> float:
    """Definition 4 by exhaustive enumeration of all ``k!`` permutations.

    Runtime grows with the factorial of ``k`` — the very cost the paper's
    matching reduction avoids; kept for validation and for the
    crossover ablation benchmark.
    """
    rows_x = _to_rows(x, d, k)
    rows_y = _to_rows(y, d, k)
    if rows_x.shape[1] != rows_y.shape[1]:
        raise DistanceError("block dimension mismatch")
    capacity = k or max(len(rows_x), len(rows_y))
    rows_x = _pad(rows_x, capacity)
    rows_y = _pad(rows_y, capacity)
    best = np.inf
    for order in permutations(range(capacity)):
        value = float(np.linalg.norm(rows_x - rows_y[list(order)]))
        if value < best:
            best = value
    return best


def permutation_distance_via_matching(
    x: np.ndarray | VectorSet,
    y: np.ndarray | VectorSet,
    d: int = 6,
    k: int | None = None,
    backend: str = "own",
) -> float:
    """Definition 4 in O(k^3) via the minimal matching distance.

    Using the squared Euclidean distance between elements and the squared
    Euclidean norm as weight function, the minimal matching distance
    equals the *squared* minimum Euclidean distance under permutation
    (Section 4.2); the square root restores the metric.
    """
    rows_x = _to_rows(x, d, k)
    rows_y = _to_rows(y, d, k)
    if rows_x.shape[1] != rows_y.shape[1]:
        raise DistanceError("block dimension mismatch")
    squared = min_matching_distance(
        rows_x,
        rows_y,
        dist="sqeuclidean",
        weight=lambda arr: np.sum(arr * arr, axis=1),
        backend=backend,
    )
    return float(np.sqrt(squared))

"""Incremental similarity ranking over vector sets.

The paper's future work names "fast and flexible algorithms for
processing similarity queries on vector set representations"; the
classic flexible primitive is the *incremental ranking*: a lazy stream
of objects in ascending exact distance, refined on demand.  Built on the
Lemma 2 bound it is optimal in the same sense as the multi-step k-nn —
an object's exact distance is computed only when its lower bound has
risen to the front of the queue — and it subsumes both k-nn (take k) and
ε-range (take while distance <= ε) without fixing k or ε in advance.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Iterator

import numpy as np

from repro.core.centroid import extended_centroid
from repro.core.queries import FilterRefineEngine


def incremental_ranking(
    engine: FilterRefineEngine, query: np.ndarray
) -> Iterator[tuple[int, float]]:
    """Yield ``(object_id, exact_distance)`` in ascending distance.

    Works on any :class:`FilterRefineEngine`; the number of exact
    distance computations after ``n`` results is exactly the number of
    candidates whose lower bound is below the ``n``-th exact distance.
    """
    query_arr = np.asarray(
        query.vectors if hasattr(query, "vectors") else query, dtype=float
    )
    center = extended_centroid(query_arr, engine.capacity, engine.omega)
    bounds = engine.capacity * np.linalg.norm(engine.centroids - center, axis=1)

    counter = itertools.count()
    # Heap entries: (key, tiebreak, is_exact, oid).
    heap: list[tuple[float, int, bool, int]] = [
        (float(bounds[oid]), next(counter), False, oid)
        for oid in range(len(bounds))
    ]
    heapq.heapify(heap)
    while heap:
        key, _, is_exact, oid = heapq.heappop(heap)
        if is_exact:
            yield oid, key
        else:
            exact = engine._exact(query_arr, engine._sets[oid])
            heapq.heappush(heap, (float(exact), next(counter), True, oid))

"""Batched minimal-matching kernels: the packed-tensor distance layer.

Every experiment bottoms out in the O(k^3) minimal matching distance
(Definition 6): the filter-refine engine calls it once per surviving
candidate and OPTICS needs all O(n^2) pairs.  Evaluating it one pair at
a time pays Python-level cost-matrix assembly and solver dispatch per
call; this module amortizes that work over whole batches.

Three ideas make the batch formulation exact, not approximate:

**Omega padding.**  Under the paper's weight family ``w(x) = ||x - ω||``
(Definition 7) with the Euclidean element distance, pad every set to the
shared capacity ``K`` with copies of the reference point ``ω``.  Then
the minimal matching distance of two sets equals the optimal assignment
value on the plain ``K x K`` cross-distance matrix of the padded sets:
matching a real element to a virtual one costs ``||x - ω|| = w(x)``
(the unmatched penalty), virtual-virtual pairs are free, and the Lemma 1
condition ``w(x) + w(y) >= dist(x, y)`` (here: the triangle inequality)
guarantees an optimum of the padded problem realizes Definition 6.
One tensor layout therefore serves ragged cardinalities, ``m < n``
swaps, and dummy columns without any per-pair case analysis.

**Gram-identity cost tensors.**  All candidate cost matrices of a batch
are built in a single vectorized pass as
``sqrt(clip(||x||^2 + ||y||^2 - 2 x.y, 0))`` — no ``(m, n, d)``
broadcast temporaries.  Dot products go through ``np.einsum`` whose
fixed summation order is independent of batch shape, so identical
vectors cancel to exactly zero (self-queries keep their exact-zero
distances) and batched results match the per-pair path to the last
ulp of the cost entries.

**Lockstep batched Hungarian.**  The stacked ``(B, K, K)`` assignment
problems are solved together: all problems run the same
shortest-augmenting-path phase in lockstep over ``(B, K)`` arrays, with
finished problems masked out.  The per-step numpy overhead is shared by
the whole batch, turning the ~40 µs scalar solve into ~1 µs per pair.
A zero-allocation scalar backend (``backend="scalar"``, reusing the
:class:`~repro.core.matching.ScalarHungarianSolver` buffers across the
batch) and a scipy oracle (``backend="scipy"``) are kept for
cross-checking.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.matching import ScalarHungarianSolver
from repro.core.vector_set import VectorSet
from repro.exceptions import DistanceError

#: Pairs per kernel invocation when chunking large workloads; bounds the
#: (chunk, K, K) cost tensor to a few MB at the paper's k <= 9 (measured
#: fastest among 1024..16384 on the n=300 pairwise workload).
DEFAULT_CHUNK_SIZE = 4096


# -- packed databases ---------------------------------------------------------


@dataclass(frozen=True)
class PaddedQuery:
    """One query set padded to a :class:`PackedSets` layout."""

    data: np.ndarray      # (K, d), rows beyond `size` hold omega
    sq_norms: np.ndarray  # (K,)
    size: int


@dataclass(frozen=True)
class PackedSets:
    """A database of <=K-cardinality vector sets in one padded tensor.

    Attributes
    ----------
    data:
        ``(n, K, d)`` tensor; rows beyond ``sizes[i]`` hold ``omega``
        (the virtual elements of the omega-padding formulation).
    sizes:
        ``(n,)`` true cardinalities.
    sq_norms:
        ``(n, K)`` squared Euclidean norms of the padded rows,
        precomputed for the Gram-identity cost assembly.
    omega:
        The ``(d,)`` reference point (Definition 7); the weight of an
        unmatched element is its distance to ``omega``.
    """

    data: np.ndarray
    sizes: np.ndarray
    sq_norms: np.ndarray
    omega: np.ndarray

    @property
    def n(self) -> int:
        return self.data.shape[0]

    @property
    def capacity(self) -> int:
        return self.data.shape[1]

    @property
    def dimension(self) -> int:
        return self.data.shape[2]

    @classmethod
    def pack(
        cls,
        sets: Sequence[np.ndarray | VectorSet],
        capacity: int | None = None,
        omega: np.ndarray | None = None,
    ) -> "PackedSets":
        """Pack a sequence of ``(m_i, d)`` arrays / :class:`VectorSet`."""
        arrays = [
            np.asarray(s.vectors if isinstance(s, VectorSet) else s, dtype=float)
            for s in sets
        ]
        if not arrays:
            raise DistanceError("cannot pack an empty collection of sets")
        dimension = arrays[0].shape[1] if arrays[0].ndim == 2 else -1
        for i, arr in enumerate(arrays):
            if arr.ndim != 2 or not len(arr) or arr.shape[1] != dimension:
                raise DistanceError(
                    f"set {i} is not a non-empty (m, {dimension}) array: {arr.shape}"
                )
        sizes = np.array([len(arr) for arr in arrays], dtype=np.intp)
        max_size = int(sizes.max())
        if capacity is None:
            capacity = max_size
        elif capacity < max_size:
            raise DistanceError(f"capacity {capacity} below largest set ({max_size})")
        if omega is None:
            omega = np.zeros(dimension)
        omega = np.asarray(omega, dtype=float)
        if omega.shape != (dimension,):
            raise DistanceError("omega has wrong dimension")
        data = np.empty((len(arrays), capacity, dimension))
        data[:] = omega
        for i, arr in enumerate(arrays):
            data[i, : len(arr)] = arr
        sq_norms = np.einsum("nkd,nkd->nk", data, data)
        return cls(data=data, sizes=sizes, sq_norms=sq_norms, omega=omega)

    def pad_query(self, query: np.ndarray | VectorSet) -> PaddedQuery:
        """Pad one query set to this layout (reusable across batches)."""
        arr = np.asarray(
            query.vectors if isinstance(query, VectorSet) else query, dtype=float
        )
        if arr.ndim != 2 or not len(arr) or arr.shape[1] != self.dimension:
            raise DistanceError(
                f"query is not a non-empty (m, {self.dimension}) array: {arr.shape}"
            )
        if len(arr) > self.capacity:
            raise DistanceError(
                f"query of size {len(arr)} exceeds packed capacity {self.capacity}"
            )
        data = np.empty((self.capacity, self.dimension))
        data[:] = self.omega
        data[: len(arr)] = arr
        return PaddedQuery(
            data=data, sq_norms=np.einsum("kd,kd->k", data, data), size=len(arr)
        )


# -- batched assignment -------------------------------------------------------


def _hungarian_lockstep(costs: np.ndarray) -> np.ndarray:
    """Solve a stack of square assignment problems in lockstep.

    Vectorized shortest-augmenting-path Kuhn–Munkres: every problem of
    the batch runs the same phase simultaneously on ``(B, K)`` arrays;
    problems whose augmenting path has completed are masked out of the
    remaining iterations.  Produces the exact assignment the scalar
    solver would (ties resolve to the first minimum in both).
    """
    batch, n, _ = costs.shape
    infinity = np.inf
    # Slot n+1 of `u` absorbs scatter updates for unused columns.
    u = np.zeros((batch, n + 2))
    v = np.zeros((batch, n + 1))
    match_row = np.zeros((batch, n + 1), dtype=np.intp)
    way = np.zeros((batch, n + 1), dtype=np.intp)
    min_reduced = np.empty((batch, n + 1))
    used = np.empty((batch, n + 1), dtype=bool)
    j0 = np.zeros(batch, dtype=np.intp)

    for row in range(1, n + 1):
        match_row[:, 0] = row
        j0[:] = 0
        min_reduced[:] = infinity
        used[:] = False
        active = np.arange(batch)
        while active.size:
            a = active
            ja = j0[a]
            used[a, ja] = True
            i0 = match_row[a, ja]
            # Relax all unused columns from row i0, batch-wide.
            reduced = costs[a, i0 - 1, :] - u[a, i0][:, None] - v[a, 1:]
            unused = ~used[a, 1:]
            reduced = np.where(unused, reduced, infinity)
            current = min_reduced[a, 1:]
            improved = reduced < current
            current = np.where(improved, reduced, current)
            min_reduced[a, 1:] = current
            way[a, 1:] = np.where(improved, ja[:, None], way[a, 1:])
            slack = np.where(unused, current, infinity)
            pick = slack.argmin(axis=1)
            delta = slack[np.arange(a.size), pick]
            j1 = pick + 1
            # Used columns shift potentials, unused keep their slack.
            used_a = used[a]
            targets = np.where(used_a, match_row[a], n + 1)
            bump = np.zeros((a.size, n + 2))
            np.put_along_axis(
                bump, targets, np.broadcast_to(delta[:, None], targets.shape), axis=1
            )
            u[a] += bump
            v[a] -= np.where(used_a, delta[:, None], 0.0)
            min_reduced[a] -= np.where(used_a, 0.0, delta[:, None])
            j0[a] = j1
            arrived = match_row[a, j1] == 0
            if arrived.any():
                # Unroll the completed augmenting paths (variable length).
                f = a[arrived]
                jj = j1[arrived]
                while f.size:
                    j_prev = way[f, jj]
                    match_row[f, jj] = match_row[f, j_prev]
                    jj = j_prev
                    alive = jj != 0
                    f = f[alive]
                    jj = jj[alive]
                active = a[~arrived]

    assignment = np.empty((batch, n), dtype=np.intp)
    np.put_along_axis(
        assignment,
        match_row[:, 1:] - 1,
        np.broadcast_to(np.arange(n), (batch, n)),
        axis=1,
    )
    return assignment


def hungarian_batch(costs: np.ndarray, backend: str = "lockstep") -> np.ndarray:
    """Solve a ``(B, n, n)`` stack of square assignment problems.

    Parameters
    ----------
    costs:
        Stacked finite cost matrices.
    backend:
        ``"lockstep"`` (default) for the vectorized batch solver,
        ``"scalar"`` for the zero-allocation loop over
        :class:`~repro.core.matching.ScalarHungarianSolver`, ``"scipy"``
        for a :func:`scipy.optimize.linear_sum_assignment` oracle loop.

    Returns
    -------
    ``(B, n)`` integer array; ``result[b, i]`` is the column assigned to
    row ``i`` of problem ``b``.
    """
    stack = np.asarray(costs, dtype=float)
    if stack.ndim != 3 or stack.shape[1] != stack.shape[2]:
        raise DistanceError(f"expected (B, n, n) cost stack, got {stack.shape}")
    if not stack.shape[0]:
        return np.empty((0, stack.shape[1]), dtype=np.intp)
    if not np.all(np.isfinite(stack)):
        raise DistanceError("cost matrices must be finite")
    if backend == "lockstep":
        return _hungarian_lockstep(stack)
    if backend == "scalar":
        n = stack.shape[1]
        solver = ScalarHungarianSolver(n)
        assignment = np.empty((stack.shape[0], n), dtype=np.intp)
        for b, rows in enumerate(stack.tolist()):
            solver.solve_rows(rows, assignment[b])
        return assignment
    if backend == "scipy":
        from scipy.optimize import linear_sum_assignment

        assignment = np.empty(stack.shape[:2], dtype=np.intp)
        for b in range(stack.shape[0]):
            rows, cols = linear_sum_assignment(stack[b])
            assignment[b, rows] = cols
        return assignment
    raise DistanceError(f"unknown batch backend: {backend!r}")


# -- batched minimal matching -------------------------------------------------


def _cost_tensor(
    x_data: np.ndarray, x_sq: np.ndarray, y_data: np.ndarray, y_sq: np.ndarray
) -> np.ndarray:
    """Stacked cross-distance matrices of omega-padded sets.

    ``x_data`` is ``(K, d)`` (one query, broadcast over the batch) or
    ``(C, K, d)``; ``y_data`` is ``(C, K, d)``.  Returns ``(C, K, K)``.
    """
    if x_data.ndim == 2:
        dots = np.einsum("kd,cld->ckl", x_data, y_data)
        sq = x_sq[None, :, None] + y_sq[:, None, :] - 2.0 * dots
    else:
        dots = np.einsum("ckd,cld->ckl", x_data, y_data)
        sq = x_sq[:, :, None] + y_sq[:, None, :] - 2.0 * dots
    np.maximum(sq, 0.0, out=sq)
    return np.sqrt(sq, out=sq)


def _finish(
    cost: np.ndarray,
    x_sizes: np.ndarray,
    y_sizes: np.ndarray,
    backend: str,
    return_flags: bool,
):
    """Solve a cost stack and extract distances (and identity flags)."""
    batch, capacity, _ = cost.shape
    assignment = hungarian_batch(cost, backend=backend)
    b_idx = np.arange(batch)[:, None]
    rows = np.arange(capacity)[None, :]
    distances = cost[b_idx, rows, assignment].sum(axis=1)
    if not return_flags:
        return distances
    # A pair is "real" when both endpoints are non-virtual; the matching
    # is the identity alignment when every real pair matches x_i to y_i.
    matched = (rows < x_sizes[:, None]) & (assignment < y_sizes[:, None])
    identity = matched.any(axis=1) & np.all(~matched | (assignment == rows), axis=1)
    return distances, identity


def match_many(
    query: np.ndarray | VectorSet | PaddedQuery,
    packed: PackedSets,
    indices: np.ndarray | None = None,
    backend: str = "lockstep",
    return_flags: bool = False,
):
    """Minimal matching distances from one query to many packed sets.

    Parameters
    ----------
    query:
        ``(m, d)`` array, :class:`VectorSet`, or a
        :class:`PaddedQuery` from :meth:`PackedSets.pad_query` (reuse it
        to amortize padding across repeated calls for the same query).
    packed:
        The database, packed once via :meth:`PackedSets.pack`.
    indices:
        Optional subset of database indices (default: all sets).
    return_flags:
        Also return per-pair identity-alignment flags (Table 1).

    Returns
    -------
    ``(len(indices),)`` distances, or ``(distances, is_identity)``.
    """
    prepared = query if isinstance(query, PaddedQuery) else packed.pad_query(query)
    if indices is None:
        y_data, y_sq, y_sizes = packed.data, packed.sq_norms, packed.sizes
    else:
        indices = np.asarray(indices, dtype=np.intp)
        y_data = packed.data[indices]
        y_sq = packed.sq_norms[indices]
        y_sizes = packed.sizes[indices]
    cost = _cost_tensor(prepared.data, prepared.sq_norms, y_data, y_sq)
    x_sizes = np.full(len(y_data), prepared.size, dtype=np.intp)
    return _finish(cost, x_sizes, y_sizes, backend, return_flags)


def match_pairs(
    packed: PackedSets,
    i_idx: np.ndarray,
    j_idx: np.ndarray,
    right: PackedSets | None = None,
    backend: str = "lockstep",
    return_flags: bool = False,
):
    """Minimal matching distances for explicit index pairs.

    ``right`` selects the ``j`` side from a second packed database (it
    must share capacity, dimension and omega); by default both indices
    address *packed*.  Used for pairwise matrices (``right=None``) and
    for many-queries-vs-database workloads.
    """
    if right is None:
        right = packed
    elif (
        right.capacity != packed.capacity
        or right.dimension != packed.dimension
        or not np.array_equal(right.omega, packed.omega)
    ):
        raise DistanceError("packed databases have incompatible layouts")
    i_idx = np.asarray(i_idx, dtype=np.intp)
    j_idx = np.asarray(j_idx, dtype=np.intp)
    if i_idx.shape != j_idx.shape or i_idx.ndim != 1:
        raise DistanceError("index arrays must be equal-length 1-D")
    cost = _cost_tensor(
        packed.data[i_idx], packed.sq_norms[i_idx], right.data[j_idx], right.sq_norms[j_idx]
    )
    return _finish(cost, packed.sizes[i_idx], right.sizes[j_idx], backend, return_flags)


# -- full pairwise matrices ---------------------------------------------------

_WORKER_PACKED: PackedSets | None = None
_WORKER_BACKEND: str = "lockstep"


def _pairwise_worker_init(data, sizes, sq_norms, omega, backend) -> None:
    global _WORKER_PACKED, _WORKER_BACKEND
    _WORKER_PACKED = PackedSets(data=data, sizes=sizes, sq_norms=sq_norms, omega=omega)
    _WORKER_BACKEND = backend


def _pairwise_worker(i_idx: np.ndarray, j_idx: np.ndarray, return_flags: bool):
    return match_pairs(
        _WORKER_PACKED, i_idx, j_idx, backend=_WORKER_BACKEND, return_flags=return_flags
    )


def pairwise_matrix(
    sets: Sequence[np.ndarray | VectorSet],
    capacity: int | None = None,
    omega: np.ndarray | None = None,
    backend: str = "lockstep",
    n_jobs: int | None = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    return_flags: bool = False,
):
    """Full symmetric minimal-matching distance matrix.

    Only the ``i < j`` half is computed (symmetric halving), in chunks
    of *chunk_size* pairs per kernel call.  With ``n_jobs`` greater
    than one (or ``-1`` for all cores) the chunks fan out over a
    :class:`~concurrent.futures.ProcessPoolExecutor`; the packed tensor
    ships to each worker once via the pool initializer.

    Returns the ``(n, n)`` matrix, or ``(matrix, flags)`` with the
    boolean proper-permutation flags (*not* identity-aligned — the
    Table 1 statistic) when ``return_flags`` is set.
    """
    packed = PackedSets.pack(sets, capacity=capacity, omega=omega)
    n = packed.n
    matrix = np.zeros((n, n))
    flags = np.zeros((n, n), dtype=bool) if return_flags else None
    i_all, j_all = np.triu_indices(n, k=1)
    if chunk_size < 1:
        raise DistanceError("chunk_size must be >= 1")
    chunks = [
        slice(start, min(start + chunk_size, len(i_all)))
        for start in range(0, len(i_all), chunk_size)
    ]

    if n_jobs is not None and n_jobs < 0:
        n_jobs = os.cpu_count() or 1
    if n_jobs is None or n_jobs <= 1 or len(chunks) <= 1:
        outputs = [
            match_pairs(
                packed, i_all[sl], j_all[sl], backend=backend, return_flags=return_flags
            )
            for sl in chunks
        ]
    else:
        with ProcessPoolExecutor(
            max_workers=min(n_jobs, len(chunks)),
            initializer=_pairwise_worker_init,
            initargs=(packed.data, packed.sizes, packed.sq_norms, packed.omega, backend),
        ) as pool:
            futures = [
                pool.submit(_pairwise_worker, i_all[sl], j_all[sl], return_flags)
                for sl in chunks
            ]
            outputs = [future.result() for future in futures]

    for sl, output in zip(chunks, outputs):
        distances, pair_flags = output if return_flags else (output, None)
        i_chunk, j_chunk = i_all[sl], j_all[sl]
        matrix[i_chunk, j_chunk] = distances
        matrix[j_chunk, i_chunk] = distances
        if return_flags:
            proper = ~pair_flags  # flag = optimal matching is NOT the identity
            flags[i_chunk, j_chunk] = proper
            flags[j_chunk, i_chunk] = proper
    if return_flags:
        return matrix, flags
    return matrix

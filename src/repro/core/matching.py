"""Kuhn–Munkres (Hungarian) algorithm, from scratch.

The paper computes the minimal matching distance with "the method
proposed by Kuhn and Munkres", i.e. a minimum-weight perfect matching in
a complete bipartite graph, at O(k^3) worst-case cost (Section 4.2).
:func:`hungarian` implements the classic shortest-augmenting-path
formulation with row/column potentials: each of the ``n`` phases grows
one alternating path in O(n^2), giving O(n^3) overall.

``scipy.optimize.linear_sum_assignment`` is kept available as an
optional backend (``backend="scipy"``) and serves as the correctness
oracle in the test suite; the default backend is this implementation.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DistanceError


#: Below this size the scalar implementation beats the vectorized one
#: (numpy call overhead dominates O(n^3) work for tiny n).
_SCALAR_CUTOFF = 16


class ScalarHungarianSolver:
    """Buffer-reusing scalar Kuhn–Munkres for repeated same-size problems.

    The batched kernels (:mod:`repro.core.batch`) solve thousands of
    ``k x k`` assignments back to back; allocating the six working lists
    per problem would dominate the O(k^3) arithmetic at the paper's
    k <= 9.  This solver allocates them once and re-initializes in place
    on every :meth:`solve_rows` call.
    """

    def __init__(self, n: int):
        self.n = n
        self._u = [0.0] * (n + 1)
        self._v = [0.0] * (n + 1)
        self._match_row = [0] * (n + 1)
        self._way = [0] * (n + 1)
        self._min_reduced = [0.0] * (n + 1)
        self._used = [False] * (n + 1)

    def solve_rows(self, rows: list, assignment: np.ndarray) -> None:
        """Solve one problem given as a list of row lists; the column
        assigned to each row is written into *assignment* in place."""
        n = self.n
        infinity = float("inf")
        u, v = self._u, self._v
        match_row, way = self._match_row, self._way
        min_reduced, used = self._min_reduced, self._used
        for j in range(n + 1):
            u[j] = 0.0
            v[j] = 0.0
            match_row[j] = 0
        for row_index in range(1, n + 1):
            match_row[0] = row_index
            j0 = 0
            for j in range(n + 1):
                min_reduced[j] = infinity
                used[j] = False
            while True:
                used[j0] = True
                i0 = match_row[j0]
                row = rows[i0 - 1]
                u_i0 = u[i0]
                delta = infinity
                j1 = -1
                for j in range(1, n + 1):
                    if not used[j]:
                        current = row[j - 1] - u_i0 - v[j]
                        if current < min_reduced[j]:
                            min_reduced[j] = current
                            way[j] = j0
                        if min_reduced[j] < delta:
                            delta = min_reduced[j]
                            j1 = j
                for j in range(n + 1):
                    if used[j]:
                        u[match_row[j]] += delta
                        v[j] -= delta
                    else:
                        min_reduced[j] -= delta
                j0 = j1
                if match_row[j0] == 0:
                    break
            while j0:
                j1 = way[j0]
                match_row[j0] = match_row[j1]
                j0 = j1
        for j in range(1, n + 1):
            assignment[match_row[j] - 1] = j - 1


def _hungarian_scalar(cost: np.ndarray) -> np.ndarray:
    """Scalar Kuhn–Munkres for small matrices (same algorithm as
    :func:`_hungarian_own`, plain Python floats instead of numpy rows —
    roughly 10x faster for the paper's k <= 9 cover sets)."""
    n = len(cost)
    assignment = np.empty(n, dtype=int)
    ScalarHungarianSolver(n).solve_rows(cost.tolist(), assignment)
    return assignment


def _hungarian_own(cost: np.ndarray) -> np.ndarray:
    """Column assigned to each row for a square cost matrix.

    Shortest-augmenting-path Hungarian with potentials.  Indices are
    1-based internally (index 0 is the virtual start column), following
    the classic formulation, and translated on return.
    """
    n = cost.shape[0]
    infinity = np.inf
    u = np.zeros(n + 1)
    v = np.zeros(n + 1)
    # match_row[j] = row currently assigned to column j (0 = unassigned).
    match_row = np.zeros(n + 1, dtype=int)
    way = np.zeros(n + 1, dtype=int)

    for row in range(1, n + 1):
        match_row[0] = row
        j0 = 0
        min_reduced = np.full(n + 1, infinity)
        used = np.zeros(n + 1, dtype=bool)
        while True:
            used[j0] = True
            i0 = match_row[j0]
            # Vectorized relaxation of all unused columns from row i0.
            free = ~used
            free[0] = False
            columns = np.nonzero(free)[0]
            reduced = cost[i0 - 1, columns - 1] - u[i0] - v[columns]
            improves = reduced < min_reduced[columns]
            improved_cols = columns[improves]
            min_reduced[improved_cols] = reduced[improves]
            way[improved_cols] = j0
            # Pick the unused column with the smallest reduced cost.
            j1 = columns[np.argmin(min_reduced[columns])]
            delta = min_reduced[j1]
            # Update potentials; unreached columns keep their slack.
            u[match_row[used]] += delta
            v[used] -= delta
            min_reduced[~used] -= delta
            j0 = j1
            if match_row[j0] == 0:
                break
        # Unroll the augmenting path.
        while j0:
            j1 = way[j0]
            match_row[j0] = match_row[j1]
            j0 = j1

    assignment = np.empty(n, dtype=int)
    assignment[match_row[1:] - 1] = np.arange(n)
    return assignment


def hungarian(cost: np.ndarray, backend: str = "own") -> np.ndarray:
    """Solve the square assignment problem.

    Parameters
    ----------
    cost:
        ``(n, n)`` cost matrix with finite entries.
    backend:
        ``"own"`` (default) for the from-scratch Kuhn–Munkres
        implementation, ``"scipy"`` for
        :func:`scipy.optimize.linear_sum_assignment`.

    Returns
    -------
    ``(n,)`` integer array: ``result[i]`` is the column assigned to
    row ``i`` in a minimum-cost perfect matching.
    """
    matrix = np.asarray(cost, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise DistanceError(f"cost matrix must be square, got shape {matrix.shape}")
    if not matrix.size:
        return np.empty(0, dtype=int)
    if not np.all(np.isfinite(matrix)):
        raise DistanceError("cost matrix must be finite")
    if backend == "own":
        if matrix.shape[0] <= _SCALAR_CUTOFF:
            return _hungarian_scalar(matrix)
        return _hungarian_own(matrix)
    if backend == "scipy":
        from scipy.optimize import linear_sum_assignment

        rows, cols = linear_sum_assignment(matrix)
        assignment = np.empty(matrix.shape[0], dtype=int)
        assignment[rows] = cols
        return assignment
    raise DistanceError(f"unknown backend: {backend!r}")


def assignment_cost(cost: np.ndarray, assignment: np.ndarray) -> float:
    """Total cost of an assignment returned by :func:`hungarian`."""
    matrix = np.asarray(cost, dtype=float)
    return float(matrix[np.arange(len(assignment)), assignment].sum())

"""Filter-and-refine query processing on vector set data (Section 4.3).

The engine stores one extended centroid per database object.  Queries
first rank/filter on the centroids — whose Euclidean distance, scaled by
``k``, lower-bounds the minimal matching distance (Lemma 2) — and only
refine surviving candidates with the exact O(k^3) matching distance:

* ε-range queries prune every object whose centroid is farther than
  ``ε / k`` from the query centroid (the paper's filter step),
* k-nn queries use the optimal multi-step algorithm of Seidl & Kriegel:
  candidates are consumed in ascending lower-bound order and the search
  stops as soon as the next lower bound exceeds the current k-th exact
  distance, which provably refines the minimum number of candidates.

Refinement goes through the batched kernel of :mod:`repro.core.batch`
whenever the engine uses the default minimal matching distance: the
database is packed once into an omega-padded ``(n, k, d)`` tensor at
construction, and candidates are refined in blocks of *block_size* so
the cost-tensor assembly and the Hungarian solves amortize across the
block.  k-nn queries stay *optimal multi-step up to one block*: the
stop condition is evaluated against the radius as of the last completed
block, which is conservative (it can only stop where the sequential
algorithm would have stopped), and any candidates refined past the
sequential stopping point are counted in
:attr:`QueryStats.extra_refinements` — at most ``block_size - 1`` of
them, and exactly zero for ``block_size=1``.  Results are provably
identical to the strictly sequential order: an overshoot candidate's
exact distance is bounded below by its lower bound, which already
exceeded the pruning radius, so it can never displace a heap entry.

With a custom ``exact_distance`` the engine falls back to per-pair
refinement (the batch formulation is exact only for the Euclidean /
omega-norm-weight configuration of the paper).

The centroid ranking itself can be delegated to a spatial index (the
paper uses an X-tree, see :mod:`repro.index.xtree`) through the
``centroid_ranker`` hook; the default is an in-memory scan, which keeps
this module free of index dependencies.  A ranker that additionally
exposes ``.chunks(center)`` — yielding ``(oids, dists)`` array pairs in
the same ascending order — is consumed through a vectorized fast path
(the array-native index cores of :mod:`repro.index.arraycore` do);
results and stats are identical to the per-item protocol.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

import numpy as np

from repro.core.batch import DEFAULT_CHUNK_SIZE, PackedSets, match_pairs
from repro.core.centroid import extended_centroid
from repro.core.vector_set import VectorSet
from repro.exceptions import QueryError
from repro.obs import registry, span
from repro.obs import querylog

#: A ranker yields (object id, centroid distance) in ascending centroid
#: distance; spatial indexes plug in here.
CentroidRanker = Callable[[np.ndarray], Iterator[tuple[int, float]]]
ExactDistance = Callable[[np.ndarray, np.ndarray], float]

#: Candidates refined per batched kernel call in blocked k-nn; see
#: FilterRefineEngine(block_size=...).
DEFAULT_BLOCK_SIZE = 16


@dataclass
class QueryStats:
    """Work accounting for one similarity query.

    Attributes
    ----------
    candidates_ranked:
        Candidates produced by the filter step (centroid comparisons).
    exact_computations:
        Minimal-matching distances actually evaluated (the expensive
        O(k^3) refinements).
    pruned:
        Objects never refined thanks to the lower bound.
    extra_refinements:
        Refinements performed at or past the point where the strictly
        sequential optimal multi-step algorithm would have stopped —
        the price of blocked refinement (bounded by ``block_size - 1``).
    """

    candidates_ranked: int = 0
    exact_computations: int = 0
    pruned: int = 0
    extra_refinements: int = 0

    def as_dict(self) -> dict[str, int]:
        """Flat numeric mapping (the shared stats protocol with
        :class:`repro.index.pages.IOCost`): feeds the metrics registry
        via ``registry().count_many(prefix, stats.as_dict())``."""
        return {
            "candidates_ranked": self.candidates_ranked,
            "exact_computations": self.exact_computations,
            "pruned": self.pruned,
            "extra_refinements": self.extra_refinements,
        }

    def merge(self, other: "QueryStats") -> "QueryStats":
        """Accumulate another query's accounting in place."""
        self.candidates_ranked += other.candidates_ranked
        self.exact_computations += other.exact_computations
        self.pruned += other.pruned
        self.extra_refinements += other.extra_refinements
        return self

    def __str__(self) -> str:
        total = self.exact_computations + self.pruned
        return (
            f"ranked {self.candidates_ranked}, refined "
            f"{self.exact_computations}/{total} ({self.pruned} pruned, "
            f"{self.extra_refinements} overshoot)"
        )


@dataclass(frozen=True)
class QueryMatch:
    """One result of a similarity query."""

    object_id: int
    distance: float


class FilterRefineEngine:
    """Answer ε-range and k-nn queries over a collection of vector sets.

    Parameters
    ----------
    sets:
        The database: a sequence of ``(m_i, d)`` arrays or
        :class:`VectorSet` objects.
    capacity:
        The cardinality bound ``k`` shared by all sets.
    omega:
        Reference point of the extended centroids (default: origin).
    exact_distance:
        Exact set distance to refine with; defaults to the minimal
        matching distance with Euclidean element distance and the weight
        function ``w(x) = ||x - omega||`` — i.e. the *same* omega as the
        centroids, which is exactly the precondition of Lemma 2.  If you
        substitute another distance you must ensure the centroid bound
        still lower-bounds it; refinement then runs per pair instead of
        through the batched kernel.
    block_size:
        Candidates refined per batched kernel call in k-nn queries.
        Larger blocks amortize better but may refine up to
        ``block_size - 1`` candidates beyond the sequential optimum.
    backend:
        Batched assignment backend (``"lockstep"``, ``"scalar"``,
        ``"scipy"``), see :func:`repro.core.batch.hungarian_batch`.
    oids:
        External object ids, one per set (default: positions
        ``0..n-1``).  Rankers yield these ids and results carry them, so
        a mutable database with sparse ids after deletions can plug its
        spatial index in as *centroid_ranker* without renumbering.  Ties
        in k-nn results resolve canonically by ascending oid, matching
        the index layer's convention.
    """

    def __init__(
        self,
        sets: Sequence[np.ndarray | VectorSet],
        capacity: int,
        omega: np.ndarray | None = None,
        exact_distance: ExactDistance | None = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
        backend: str = "lockstep",
        oids: Sequence[int] | None = None,
    ):
        if capacity < 1:
            raise QueryError("capacity must be >= 1")
        if not len(sets):
            raise QueryError("database must not be empty")
        if block_size < 1:
            raise QueryError("block_size must be >= 1")
        self.capacity = capacity
        self.block_size = block_size
        self.backend = backend
        self._sets = [
            np.asarray(s.vectors if isinstance(s, VectorSet) else s, dtype=float)
            for s in sets
        ]
        self.dimension = self._sets[0].shape[1]
        for i, arr in enumerate(self._sets):
            if arr.ndim != 2 or arr.shape[1] != self.dimension:
                raise QueryError(f"set {i} has incompatible shape {arr.shape}")
            if len(arr) > capacity:
                raise QueryError(f"set {i} exceeds capacity {capacity}")
        if oids is None:
            self.oids = list(range(len(self._sets)))
        else:
            self.oids = [int(oid) for oid in oids]
            if len(self.oids) != len(self._sets):
                raise QueryError(
                    f"{len(self.oids)} oids for {len(self._sets)} sets"
                )
            if len(set(self.oids)) != len(self.oids):
                raise QueryError("object ids must be unique")
        self._position = {oid: pos for pos, oid in enumerate(self.oids)}
        self._oid_arr = np.asarray(self.oids, dtype=np.int64)
        self._oids_sorted = bool(
            len(self._oid_arr) < 2 or np.all(self._oid_arr[:-1] < self._oid_arr[1:])
        )
        self.omega = (
            np.zeros(self.dimension) if omega is None else np.asarray(omega, dtype=float)
        )
        self.centroids = np.vstack(
            [extended_centroid(arr, capacity, self.omega) for arr in self._sets]
        )
        # The omega-padded batch formulation realizes exactly the default
        # distance (Euclidean elements, w(x) = ||x - omega||); any custom
        # exact_distance falls back to the per-pair loop.
        self._batch_refine = exact_distance is None
        if self._batch_refine:
            from repro.core.centroid import norm_weight
            from repro.core.min_matching import min_matching_distance

            self._packed = PackedSets.pack(
                self._sets, capacity=capacity, omega=self.omega
            )
            weight = norm_weight(None if np.allclose(self.omega, 0.0) else self.omega)
            exact_distance = lambda a, b: min_matching_distance(  # noqa: E731
                a, b, weight=weight
            )
        else:
            self._packed = None
        self._exact = exact_distance

    # -- filter step -------------------------------------------------------

    def _scan_ranking(self, query_centroid: np.ndarray) -> Iterator[tuple[int, float]]:
        """Default centroid ranker: full scan, sorted ascending."""
        dists = np.linalg.norm(self.centroids - query_centroid, axis=1)
        for idx in np.argsort(dists, kind="stable"):
            yield self.oids[int(idx)], float(dists[idx])

    def _scan_chunks(self, query_centroid: np.ndarray):
        """Chunked form of the default ranker: a single ``(oids, dists)``
        chunk in exactly the order :meth:`_scan_ranking` yields."""
        dists = np.linalg.norm(self.centroids - query_centroid, axis=1)
        order = np.argsort(dists, kind="stable")
        yield self._oid_arr[order], dists[order]

    def _chunk_source(self, centroid_ranker: CentroidRanker | None):
        """The ``.chunks`` callable to use for this query, or None when
        the ranker only speaks the per-item protocol."""
        if centroid_ranker is None:
            return self._scan_chunks
        return getattr(centroid_ranker, "chunks", None)

    def _require_position(self, oid: int) -> int:
        try:
            return self._position[oid]
        except KeyError:
            raise QueryError(f"ranker yielded unknown object id {oid}") from None

    def _positions_for(self, oids: np.ndarray) -> list[int]:
        """Vectorized oid → internal-position lookup for chunked rankers."""
        arr = np.asarray(oids)
        if not len(arr):
            return []
        if self._oids_sorted:
            pos = np.searchsorted(self._oid_arr, arr)
            clipped = np.minimum(pos, len(self._oid_arr) - 1)
            bad = (pos >= len(self._oid_arr)) | (self._oid_arr[clipped] != arr)
            if bad.any():
                oid = int(arr[int(np.argmax(bad))])
                raise QueryError(f"ranker yielded unknown object id {oid}")
            return pos.tolist()
        return [self._require_position(int(o)) for o in arr]

    def _query_centroid(self, query: np.ndarray | VectorSet) -> np.ndarray:
        arr = np.asarray(
            query.vectors if isinstance(query, VectorSet) else query, dtype=float
        )
        if arr.ndim != 2 or arr.shape[1] != self.dimension:
            raise QueryError(f"query set has incompatible shape {arr.shape}")
        return extended_centroid(arr, self.capacity, self.omega)

    # -- refinement --------------------------------------------------------

    def _query_array(self, query: np.ndarray | VectorSet) -> np.ndarray:
        return np.asarray(
            query.vectors if isinstance(query, VectorSet) else query, dtype=float
        )

    def _prepare_query(self, query_arr: np.ndarray):
        """Pad the query once per query (reused across all its blocks)."""
        if self._batch_refine:
            return self._packed.pad_query(query_arr)
        return None

    def _refine_many(
        self, prepared, query_arr: np.ndarray, ids: Sequence[int]
    ) -> np.ndarray:
        """Exact distances from the query to the given database objects."""
        if self._batch_refine:
            from repro.core.batch import match_many

            return match_many(
                prepared,
                self._packed,
                indices=np.asarray(ids, dtype=np.intp),
                backend=self.backend,
            )
        return np.array([self._exact(query_arr, self._sets[oid]) for oid in ids])

    # -- telemetry ---------------------------------------------------------

    def _record_query(
        self,
        kind: str,
        stats: QueryStats,
        *,
        seconds: float = 0.0,
        refine_seconds: float = 0.0,
        blocks: int = 0,
        **extra,
    ) -> None:
        """Per-query telemetry: registry counters + one wide event.

        Delegates to :func:`repro.obs.querylog.record_query`, which
        always accounts the counters and — subject to sampling / the
        slow-query threshold — emits one ``query`` record carrying
        exactly the fields of ``stats.as_dict()`` (so trace consumers
        see the same numbers the caller gets back) plus phase timings
        and whatever context the database layer contributed.
        """
        querylog.record_query(
            kind,
            stats.as_dict(),
            len(self._sets),
            seconds=seconds,
            refine_seconds=refine_seconds,
            blocks=blocks,
            **extra,
        )

    # -- queries -----------------------------------------------------------

    def range_query(
        self,
        query: np.ndarray | VectorSet,
        epsilon: float,
        centroid_ranker: CentroidRanker | None = None,
    ) -> tuple[list[QueryMatch], QueryStats]:
        """All objects within minimal matching distance *epsilon*.

        Only candidates whose centroid lies within ``epsilon / k`` of the
        query centroid are refined (Lemma 2); the surviving prefix of the
        ranking is refined through the batched kernel in one pass.
        """
        if epsilon < 0:
            raise QueryError("epsilon must be non-negative")
        stats = QueryStats()
        refine_seconds = 0.0
        blocks = 0
        with span("query.range", epsilon=epsilon) as sp:
            query_arr = self._query_array(query)
            center = self._query_centroid(query)
            cutoff = epsilon / self.capacity
            candidates: list[int] = []  # internal positions
            chunk_source = self._chunk_source(centroid_ranker)
            if chunk_source is not None:
                for chunk_oids, chunk_dists in chunk_source(center):
                    dists_arr = np.asarray(chunk_dists, dtype=float)
                    over = dists_arr > cutoff
                    if over.any():
                        # Ranking is ascending: the first candidate past the
                        # cutoff is counted (it is the one the per-item loop
                        # pulls and breaks on) and everything after is pruned.
                        first = int(np.argmax(over))
                        stats.candidates_ranked += first + 1
                        candidates.extend(self._positions_for(chunk_oids[:first]))
                        break
                    stats.candidates_ranked += len(dists_arr)
                    candidates.extend(self._positions_for(chunk_oids))
            else:
                ranking = centroid_ranker(center)
                for object_id, centroid_dist in ranking:
                    stats.candidates_ranked += 1
                    if centroid_dist > cutoff:
                        break  # ascending ranking: everything after is pruned
                    candidates.append(self._require_position(object_id))
            prepared = self._prepare_query(query_arr)
            results: list[QueryMatch] = []
            for start in range(0, len(candidates), DEFAULT_CHUNK_SIZE):
                chunk = candidates[start : start + DEFAULT_CHUNK_SIZE]
                stats.exact_computations += len(chunk)
                registry().histogram("query.block_candidates").observe(len(chunk))
                with span("query.refine", candidates=len(chunk)) as rsp:
                    exacts = self._refine_many(prepared, query_arr, chunk)
                refine_seconds += rsp.seconds
                blocks += 1
                for pos, exact in zip(chunk, exacts):
                    if exact <= epsilon:
                        results.append(QueryMatch(self.oids[pos], float(exact)))
            stats.pruned = len(self._sets) - stats.exact_computations
            results.sort(key=lambda match: (match.distance, match.object_id))
            sp.set(results=len(results))
        self._record_query(
            "range",
            stats,
            seconds=sp.seconds,
            refine_seconds=refine_seconds,
            blocks=blocks,
            epsilon=epsilon,
            results=len(results),
        )
        return results, stats

    def knn_query(
        self,
        query: np.ndarray | VectorSet,
        n_neighbors: int,
        centroid_ranker: CentroidRanker | None = None,
    ) -> tuple[list[QueryMatch], QueryStats]:
        """The *n_neighbors* nearest objects by minimal matching distance.

        Optimal multi-step k-nn (Seidl & Kriegel 1998), blocked:
        candidates are consumed in ascending lower-bound order and
        refined *block_size* at a time through the batched kernel.  The
        stop condition uses the pruning radius as of the last completed
        block — conservative, so the result set is identical to the
        strictly sequential algorithm — and the walk over each refined
        block replays the sequential stop decision to count
        :attr:`QueryStats.extra_refinements` exactly.

        The search stops only when the next lower bound *strictly*
        exceeds the current k-th exact distance: candidates whose bound
        ties the radius are still refined, so ties at the k-th distance
        resolve canonically by ascending object id (a candidate with a
        strictly greater bound can never tie, since its exact distance
        is at least the bound).  Results are therefore independent of
        the candidate order the ranker produces.
        """
        if n_neighbors < 1:
            raise QueryError("n_neighbors must be >= 1")
        stats = QueryStats()
        refine_seconds = 0.0
        blocks = 0
        with span("query.knn", k=n_neighbors) as sp:
            query_arr = self._query_array(query)
            center = self._query_centroid(query)
            prepared = self._prepare_query(query_arr)
            # Max-heap over (distance, oid) via negation: heap[0] is the
            # current k-th candidate, the first to be displaced.
            heap: list[tuple[float, int]] = []
            pending: list[tuple[int, float]] = []  # (position, lower bound)
            stop = False

            def flush() -> None:
                """Refine the pending block and replay the sequential walk."""
                nonlocal stop, refine_seconds, blocks
                if not pending:
                    return
                ids = [pos for pos, _ in pending]
                stats.exact_computations += len(ids)
                registry().histogram("query.block_candidates").observe(len(ids))
                with span("query.refine", candidates=len(ids)) as rsp:
                    exacts = self._refine_many(prepared, query_arr, ids)
                refine_seconds += rsp.seconds
                blocks += 1
                for (pos, lower_bound), exact in zip(pending, exacts):
                    # The sequential algorithm would have stopped here; this
                    # and every later refinement of the block is overshoot.
                    # (Provably harmless: exact >= lower_bound > radius, so
                    # none of them can displace a heap entry.)
                    if stop or (
                        len(heap) == n_neighbors and lower_bound > -heap[0][0]
                    ):
                        stop = True
                        stats.extra_refinements += 1
                        continue
                    exact = float(exact)
                    oid = self.oids[pos]
                    if len(heap) < n_neighbors:
                        heapq.heappush(heap, (-exact, -oid))
                    elif (exact, oid) < (-heap[0][0], -heap[0][1]):
                        heapq.heapreplace(heap, (-exact, -oid))
                pending.clear()

            chunk_source = self._chunk_source(centroid_ranker)
            if chunk_source is not None:
                # Vectorized consumption.  Between flushes the heap (and so
                # the pruning radius) is frozen, and a flush can only occur
                # once ``pending`` fills, so candidates are examined in
                # windows of at most ``block_size - len(pending)`` against a
                # constant radius — exactly the per-item decisions, batched.
                done = False
                for chunk_oids, chunk_dists in chunk_source(center):
                    bounds = self.capacity * np.asarray(chunk_dists, dtype=float)
                    i = 0
                    while i < len(bounds):
                        window = bounds[i : i + self.block_size - len(pending)]
                        take = len(window)
                        if len(heap) == n_neighbors:
                            over = window > -heap[0][0]
                            if over.any():
                                take = int(np.argmax(over))
                                # The stopping candidate is pulled (counted)
                                # but never refined, like the per-item break.
                                stats.candidates_ranked += take + 1
                                done = True
                        if not done:
                            stats.candidates_ranked += take
                        for t in range(take):
                            pending.append(
                                (
                                    self._require_position(int(chunk_oids[i + t])),
                                    float(window[t]),
                                )
                            )
                        if done:
                            break
                        i += take
                        if len(pending) >= self.block_size:
                            flush()
                            if stop:
                                done = True
                                break
                    if done:
                        break
            else:
                for object_id, centroid_dist in centroid_ranker(center):
                    stats.candidates_ranked += 1
                    lower_bound = self.capacity * centroid_dist
                    # Radius is stale while a block is pending (it can only
                    # have shrunk since), so firing here means the sequential
                    # algorithm stopped at or before this candidate.
                    if len(heap) == n_neighbors and lower_bound > -heap[0][0]:
                        break
                    pending.append((self._require_position(object_id), lower_bound))
                    if len(pending) >= self.block_size:
                        flush()
                        if stop:
                            break
            flush()
            stats.pruned = len(self._sets) - stats.exact_computations
            results = [QueryMatch(-neg_oid, -neg_dist) for neg_dist, neg_oid in heap]
            results.sort(key=lambda match: (match.distance, match.object_id))
            sp.set(results=len(results))
        self._record_query(
            "knn",
            stats,
            seconds=sp.seconds,
            refine_seconds=refine_seconds,
            blocks=blocks,
            k=n_neighbors,
        )
        return results, stats

    def knn_sequential(
        self, query: np.ndarray | VectorSet, n_neighbors: int
    ) -> tuple[list[QueryMatch], QueryStats]:
        """Baseline without the filter: exact distance to every object
        (the "Vect. Set seq. scan" row of Table 2), evaluated through
        the batched kernel in database order."""
        if n_neighbors < 1:
            raise QueryError("n_neighbors must be >= 1")
        with span("query.scan", k=n_neighbors) as sp:
            query_arr = self._query_array(query)
            prepared = self._prepare_query(query_arr)
            n = len(self._sets)
            stats = QueryStats(candidates_ranked=n, exact_computations=n)
            all_ids = list(range(n))
            exacts = np.concatenate(
                [
                    np.atleast_1d(
                        self._refine_many(
                            prepared,
                            query_arr,
                            all_ids[start : start + DEFAULT_CHUNK_SIZE],
                        )
                    )
                    for start in range(0, n, DEFAULT_CHUNK_SIZE)
                ]
            )
            ext = np.asarray(self.oids)
            order = np.lexsort((ext, exacts))[:n_neighbors]
            results = [QueryMatch(int(ext[idx]), float(exacts[idx])) for idx in order]
        # No filter step: the whole scan is refinement.
        self._record_query(
            "scan",
            stats,
            seconds=sp.seconds,
            refine_seconds=sp.seconds,
            blocks=-(-n // DEFAULT_CHUNK_SIZE),
            k=n_neighbors,
        )
        return results, stats

    def knn_refine_subset(
        self,
        query: np.ndarray | VectorSet,
        n_neighbors: int,
        oids: Sequence[int] | np.ndarray,
    ) -> tuple[list[QueryMatch], QueryStats]:
        """Exact k-nn restricted to an explicit candidate subset.

        Refines *every* listed object through the batched kernel (no
        lower-bound pruning — the caller already did its own filtering,
        e.g. the Hamming shortlist of :mod:`repro.approx`) and returns
        the *n_neighbors* closest in the canonical ``(distance, oid)``
        order.  Unknown oids raise :class:`QueryError`; oids must be
        unique (the result carries one entry per listed object).
        """
        if n_neighbors < 1:
            raise QueryError("n_neighbors must be >= 1")
        query_arr = self._query_array(query)
        if query_arr.ndim != 2 or query_arr.shape[1] != self.dimension:
            raise QueryError(f"query set has incompatible shape {query_arr.shape}")
        positions = self._positions_for(np.asarray(oids, dtype=np.int64))
        stats = QueryStats(
            candidates_ranked=len(positions),
            exact_computations=len(positions),
            pruned=len(self._sets) - len(positions),
        )
        if not positions:
            self._record_query("knn_subset", stats, k=n_neighbors)
            return [], stats
        with span("query.knn_subset", k=n_neighbors, candidates=len(positions)) as sp:
            prepared = self._prepare_query(query_arr)
            exacts = np.concatenate(
                [
                    np.atleast_1d(
                        self._refine_many(
                            prepared,
                            query_arr,
                            positions[start : start + DEFAULT_CHUNK_SIZE],
                        )
                    )
                    for start in range(0, len(positions), DEFAULT_CHUNK_SIZE)
                ]
            )
            ext = self._oid_arr[np.asarray(positions, dtype=np.intp)]
            order = np.lexsort((ext, exacts))[:n_neighbors]
            results = [QueryMatch(int(ext[idx]), float(exacts[idx])) for idx in order]
        # The caller already filtered; the whole subset pass is refinement.
        self._record_query(
            "knn_subset",
            stats,
            seconds=sp.seconds,
            refine_seconds=sp.seconds,
            blocks=-(-len(positions) // DEFAULT_CHUNK_SIZE),
            k=n_neighbors,
        )
        return results, stats

    def knn_query_many(
        self, queries: Sequence[np.ndarray | VectorSet], n_neighbors: int
    ) -> list[tuple[list[QueryMatch], QueryStats]]:
        """Blocked k-nn for many queries with cross-query batching.

        Runs the same blocked optimal multi-step algorithm as
        :meth:`knn_query` for every query, but gathers the current block
        of *all* still-active queries into a single batched kernel call
        per round, so the packing and solver overhead amortizes across
        queries as well as candidates.  Per-query results and stats are
        identical to calling :meth:`knn_query` in a loop.
        """
        if n_neighbors < 1:
            raise QueryError("n_neighbors must be >= 1")
        if not len(queries):
            return []
        if not self._batch_refine:
            return [self.knn_query(q, n_neighbors) for q in queries]

        query_arrays = [self._query_array(q) for q in queries]
        for arr in query_arrays:
            if arr.ndim != 2 or arr.shape[1] != self.dimension:
                raise QueryError(f"query set has incompatible shape {arr.shape}")
        packed_queries = PackedSets.pack(
            query_arrays, capacity=self.capacity, omega=self.omega
        )

        class _State:
            __slots__ = ("order", "dists", "pos", "heap", "stats", "stop", "done")

        n_objects = len(self._sets)
        states: list[_State] = []
        for arr in query_arrays:
            center = extended_centroid(arr, self.capacity, self.omega)
            dists = np.linalg.norm(self.centroids - center, axis=1)
            state = _State()
            state.order = np.argsort(dists, kind="stable")
            state.dists = dists
            state.pos = 0
            state.heap = []
            state.stats = QueryStats()
            state.stop = False
            state.done = False
            states.append(state)

        refine_seconds = 0.0
        rounds = 0
        with span("query.knn_many", queries=len(queries), k=n_neighbors) as sp:
            while True:
                qi_idx: list[int] = []
                oid_idx: list[int] = []
                blocks: list[tuple[int, list[tuple[int, float]]]] = []
                for qi, state in enumerate(states):
                    if state.done:
                        continue
                    block: list[tuple[int, float]] = []
                    while state.pos < n_objects and len(block) < self.block_size:
                        object_id = int(state.order[state.pos])
                        state.pos += 1
                        state.stats.candidates_ranked += 1
                        lower_bound = self.capacity * float(state.dists[object_id])
                        if (
                            len(state.heap) == n_neighbors
                            and lower_bound > -state.heap[0][0]
                        ):
                            state.done = True
                            break
                        block.append((object_id, lower_bound))
                    if state.pos >= n_objects:
                        state.done = True
                    if block:
                        blocks.append((qi, block))
                        for object_id, _ in block:
                            qi_idx.append(qi)
                            oid_idx.append(object_id)
                if not blocks:
                    break
                registry().histogram("query.block_candidates").observe(len(qi_idx))
                with span(
                    "query.refine", candidates=len(qi_idx), queries=len(blocks)
                ) as rsp:
                    exacts = match_pairs(
                        packed_queries,
                        np.asarray(qi_idx, dtype=np.intp),
                        np.asarray(oid_idx, dtype=np.intp),
                        right=self._packed,
                        backend=self.backend,
                    )
                refine_seconds += rsp.seconds
                rounds += 1
                offset = 0
                for qi, block in blocks:
                    state = states[qi]
                    state.stats.exact_computations += len(block)
                    for (object_id, lower_bound), exact in zip(
                        block, exacts[offset : offset + len(block)]
                    ):
                        if state.stop or (
                            len(state.heap) == n_neighbors
                            and lower_bound > -state.heap[0][0]
                        ):
                            state.stop = True
                            state.done = True
                            state.stats.extra_refinements += 1
                            continue
                        exact = float(exact)
                        oid = self.oids[object_id]
                        if len(state.heap) < n_neighbors:
                            heapq.heappush(state.heap, (-exact, -oid))
                        elif (exact, oid) < (-state.heap[0][0], -state.heap[0][1]):
                            heapq.heapreplace(state.heap, (-exact, -oid))
                    offset += len(block)

        output: list[tuple[list[QueryMatch], QueryStats]] = []
        # Per-query wall time is not separable inside the cross-query
        # batch; records carry the amortized share plus the batch size.
        share = sp.seconds / len(queries)
        refine_share = refine_seconds / len(queries)
        for state in states:
            state.stats.pruned = n_objects - state.stats.exact_computations
            results = [
                QueryMatch(-neg_oid, -neg_dist) for neg_dist, neg_oid in state.heap
            ]
            results.sort(key=lambda match: (match.distance, match.object_id))
            output.append((results, state.stats))
            self._record_query(
                "knn",
                state.stats,
                seconds=share,
                refine_seconds=refine_share,
                blocks=rounds,
                k=n_neighbors,
                batch=len(queries),
            )
        return output

    # Alias kept for throughput-oriented callers.
    batch_queries = knn_query_many

"""Filter-and-refine query processing on vector set data (Section 4.3).

The engine stores one extended centroid per database object.  Queries
first rank/filter on the centroids — whose Euclidean distance, scaled by
``k``, lower-bounds the minimal matching distance (Lemma 2) — and only
refine surviving candidates with the exact O(k^3) matching distance:

* ε-range queries prune every object whose centroid is farther than
  ``ε / k`` from the query centroid (the paper's filter step),
* k-nn queries use the optimal multi-step algorithm of Seidl & Kriegel:
  candidates are consumed in ascending lower-bound order and the search
  stops as soon as the next lower bound exceeds the current k-th exact
  distance, which provably refines the minimum number of candidates.

The centroid ranking itself can be delegated to a spatial index (the
paper uses an X-tree, see :mod:`repro.index.xtree`) through the
``centroid_ranker`` hook; the default is an in-memory scan, which keeps
this module free of index dependencies.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from repro.core.centroid import extended_centroid
from repro.core.min_matching import vector_set_distance
from repro.core.vector_set import VectorSet
from repro.exceptions import QueryError

#: A ranker yields (object id, centroid distance) in ascending centroid
#: distance; spatial indexes plug in here.
CentroidRanker = Callable[[np.ndarray], Iterator[tuple[int, float]]]
ExactDistance = Callable[[np.ndarray, np.ndarray], float]


@dataclass
class QueryStats:
    """Work accounting for one similarity query.

    Attributes
    ----------
    candidates_ranked:
        Candidates produced by the filter step (centroid comparisons).
    exact_computations:
        Minimal-matching distances actually evaluated (the expensive
        O(k^3) refinements).
    pruned:
        Objects never refined thanks to the lower bound.
    """

    candidates_ranked: int = 0
    exact_computations: int = 0
    pruned: int = 0


@dataclass(frozen=True)
class QueryMatch:
    """One result of a similarity query."""

    object_id: int
    distance: float


class FilterRefineEngine:
    """Answer ε-range and k-nn queries over a collection of vector sets.

    Parameters
    ----------
    sets:
        The database: a sequence of ``(m_i, d)`` arrays or
        :class:`VectorSet` objects.
    capacity:
        The cardinality bound ``k`` shared by all sets.
    omega:
        Reference point of the extended centroids (default: origin).
    exact_distance:
        Exact set distance to refine with; defaults to the minimal
        matching distance with Euclidean element distance and the weight
        function ``w(x) = ||x - omega||`` — i.e. the *same* omega as the
        centroids, which is exactly the precondition of Lemma 2.  If you
        substitute another distance you must ensure the centroid bound
        still lower-bounds it.
    """

    def __init__(
        self,
        sets: Sequence[np.ndarray | VectorSet],
        capacity: int,
        omega: np.ndarray | None = None,
        exact_distance: ExactDistance | None = None,
    ):
        if capacity < 1:
            raise QueryError("capacity must be >= 1")
        if not len(sets):
            raise QueryError("database must not be empty")
        self.capacity = capacity
        self._sets = [
            np.asarray(s.vectors if isinstance(s, VectorSet) else s, dtype=float)
            for s in sets
        ]
        self.dimension = self._sets[0].shape[1]
        for i, arr in enumerate(self._sets):
            if arr.ndim != 2 or arr.shape[1] != self.dimension:
                raise QueryError(f"set {i} has incompatible shape {arr.shape}")
            if len(arr) > capacity:
                raise QueryError(f"set {i} exceeds capacity {capacity}")
        self.omega = (
            np.zeros(self.dimension) if omega is None else np.asarray(omega, dtype=float)
        )
        self.centroids = np.vstack(
            [extended_centroid(arr, capacity, self.omega) for arr in self._sets]
        )
        if exact_distance is None:
            from repro.core.centroid import norm_weight
            from repro.core.min_matching import min_matching_distance

            weight = norm_weight(None if np.allclose(self.omega, 0.0) else self.omega)
            exact_distance = lambda a, b: min_matching_distance(  # noqa: E731
                a, b, weight=weight
            )
        self._exact = exact_distance

    # -- filter step -------------------------------------------------------

    def _scan_ranking(self, query_centroid: np.ndarray) -> Iterator[tuple[int, float]]:
        """Default centroid ranker: full scan, sorted ascending."""
        dists = np.linalg.norm(self.centroids - query_centroid, axis=1)
        for idx in np.argsort(dists, kind="stable"):
            yield int(idx), float(dists[idx])

    def _query_centroid(self, query: np.ndarray | VectorSet) -> np.ndarray:
        arr = np.asarray(
            query.vectors if isinstance(query, VectorSet) else query, dtype=float
        )
        if arr.ndim != 2 or arr.shape[1] != self.dimension:
            raise QueryError(f"query set has incompatible shape {arr.shape}")
        return extended_centroid(arr, self.capacity, self.omega)

    # -- queries -----------------------------------------------------------

    def range_query(
        self,
        query: np.ndarray | VectorSet,
        epsilon: float,
        centroid_ranker: CentroidRanker | None = None,
    ) -> tuple[list[QueryMatch], QueryStats]:
        """All objects within minimal matching distance *epsilon*.

        Only candidates whose centroid lies within ``epsilon / k`` of the
        query centroid are refined (Lemma 2).
        """
        if epsilon < 0:
            raise QueryError("epsilon must be non-negative")
        stats = QueryStats()
        query_arr = np.asarray(
            query.vectors if isinstance(query, VectorSet) else query, dtype=float
        )
        center = self._query_centroid(query)
        ranking = (centroid_ranker or self._scan_ranking)(center)
        cutoff = epsilon / self.capacity
        results: list[QueryMatch] = []
        for object_id, centroid_dist in ranking:
            stats.candidates_ranked += 1
            if centroid_dist > cutoff:
                break  # ranking is ascending: everything after is pruned too
            stats.exact_computations += 1
            exact = self._exact(query_arr, self._sets[object_id])
            if exact <= epsilon:
                results.append(QueryMatch(object_id, exact))
        stats.pruned = len(self._sets) - stats.exact_computations
        results.sort(key=lambda match: (match.distance, match.object_id))
        return results, stats

    def knn_query(
        self,
        query: np.ndarray | VectorSet,
        n_neighbors: int,
        centroid_ranker: CentroidRanker | None = None,
    ) -> tuple[list[QueryMatch], QueryStats]:
        """The *n_neighbors* nearest objects by minimal matching distance.

        Optimal multi-step k-nn (Seidl & Kriegel 1998): consume the
        centroid ranking in ascending order; stop once the scaled
        centroid distance of the next candidate can no longer beat the
        current k-th exact distance.
        """
        if n_neighbors < 1:
            raise QueryError("n_neighbors must be >= 1")
        stats = QueryStats()
        query_arr = np.asarray(
            query.vectors if isinstance(query, VectorSet) else query, dtype=float
        )
        center = self._query_centroid(query)
        ranking = (centroid_ranker or self._scan_ranking)(center)
        # Max-heap (negated distances) of the best n candidates so far.
        heap: list[tuple[float, int]] = []
        for object_id, centroid_dist in ranking:
            stats.candidates_ranked += 1
            lower_bound = self.capacity * centroid_dist
            if len(heap) == n_neighbors and lower_bound >= -heap[0][0]:
                break
            stats.exact_computations += 1
            exact = self._exact(query_arr, self._sets[object_id])
            if len(heap) < n_neighbors:
                heapq.heappush(heap, (-exact, object_id))
            elif exact < -heap[0][0]:
                heapq.heapreplace(heap, (-exact, object_id))
        stats.pruned = len(self._sets) - stats.exact_computations
        results = [QueryMatch(obj, -neg) for neg, obj in heap]
        results.sort(key=lambda match: (match.distance, match.object_id))
        return results, stats

    def knn_sequential(
        self, query: np.ndarray | VectorSet, n_neighbors: int
    ) -> tuple[list[QueryMatch], QueryStats]:
        """Baseline without the filter: exact distance to every object
        (the "Vect. Set seq. scan" row of Table 2)."""
        if n_neighbors < 1:
            raise QueryError("n_neighbors must be >= 1")
        query_arr = np.asarray(
            query.vectors if isinstance(query, VectorSet) else query, dtype=float
        )
        stats = QueryStats(candidates_ranked=len(self._sets))
        distances = []
        for object_id, candidate in enumerate(self._sets):
            stats.exact_computations += 1
            distances.append(QueryMatch(object_id, self._exact(query_arr, candidate)))
        distances.sort(key=lambda match: (match.distance, match.object_id))
        return distances[:n_neighbors], stats

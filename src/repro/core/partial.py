"""Partial similarity on vector sets (Section 4.1's outlook).

The paper names a key advantage of the vector set representation: one
can "distinguish between the distance measure used on the feature
vectors of a set and the way we combine the resulting distances", e.g.
"defining partial similarity, where it is only necessary to compare the
closest i < k vectors of a set".

:func:`partial_matching_distance` implements exactly that: the cost of
the best matching restricted to its ``i`` cheapest pairs.  A part that
*contains* a sub-structure of another part scores low even when the
remaining covers differ completely — useful for retrieving assemblies
that share a component.

Note: partial similarity is **not** a metric (the identity of
indiscernibles fails — two objects sharing ``i`` covers have distance 0)
— so it must be used with scan- or M-tree-external filtering, never with
the Lemma 2 centroid bound.
"""

from __future__ import annotations

import numpy as np

from repro.core.matching import hungarian
from repro.core.min_matching import DistanceFn, resolve_distance
from repro.exceptions import DistanceError


def partial_matching_distance(
    x: np.ndarray,
    y: np.ndarray,
    i: int,
    dist: str | DistanceFn = "euclidean",
) -> float:
    """Sum of the ``i`` cheapest pairs of the optimal partial matching.

    Computes a minimum-cost matching of exactly ``i`` pairs between the
    sets (via an assignment problem with free slots for the unmatched
    remainder of each side) and returns its total cost.

    Parameters
    ----------
    x, y:
        ``(m, d)`` and ``(n, d)`` vector sets.
    i:
        Number of element pairs to match; ``1 <= i <= min(m, n)``.
    dist:
        Element distance (name or cross-distance callable).
    """
    arr_x = np.asarray(x, dtype=float)
    arr_y = np.asarray(y, dtype=float)
    if arr_x.ndim != 2 or arr_y.ndim != 2 or not len(arr_x) or not len(arr_y):
        raise DistanceError("partial matching needs non-empty (m, d) arrays")
    if arr_x.shape[1] != arr_y.shape[1]:
        raise DistanceError("dimension mismatch between sets")
    m, n = len(arr_x), len(arr_y)
    if not 1 <= i <= min(m, n):
        raise DistanceError(f"need 1 <= i <= min(m, n) = {min(m, n)}, got {i}")
    cross = resolve_distance(dist)(arr_x, arr_y)

    # Optimal i-cardinality matching == assignment on an augmented
    # square matrix: each x row gets (n - ?) ... construction: size
    # (m + n - i): rows = x's plus (n - i) dummy rows that absorb the
    # unmatched y's; columns = y's plus (m - i) dummy columns absorbing
    # unmatched x's.  Dummy/dummy cells are infeasible (they would steal
    # match slots), dummy/real cells are free.
    size = m + n - i
    big = float(cross.sum()) + 1.0
    matrix = np.full((size, size), big)
    matrix[:m, :n] = cross
    if m > i:
        matrix[:m, n:] = 0.0  # x unmatched
    if n > i:
        matrix[m:, :n] = 0.0  # y unmatched
    assignment = hungarian(matrix)
    total = float(matrix[np.arange(size), assignment].sum())
    if total >= big:
        raise DistanceError("partial matching reduction became infeasible")
    return total


def best_common_substructure(
    x: np.ndarray,
    y: np.ndarray,
    dist: str | DistanceFn = "euclidean",
) -> list[float]:
    """Partial distances for every i in ``1..min(m, n)``.

    The resulting profile (monotonically non-decreasing in i) shows how
    much of the two objects' structure agrees: a flat start followed by
    a jump means a large shared sub-assembly plus disagreeing remainder.
    """
    arr_x = np.asarray(x, dtype=float)
    arr_y = np.asarray(y, dtype=float)
    upper = min(len(arr_x), len(arr_y))
    return [partial_matching_distance(arr_x, arr_y, i, dist) for i in range(1, upper + 1)]

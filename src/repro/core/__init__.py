"""Core contribution: vector sets, minimal matching distance, filter step.

This subpackage implements Section 4 of the paper:

* :mod:`repro.core.vector_set` — the vector set representation,
* :mod:`repro.core.matching` — the Kuhn–Munkres (Hungarian) algorithm,
  written from scratch with O(k^3) worst-case complexity,
* :mod:`repro.core.min_matching` — the minimal matching distance
  (Definition 6) with pluggable weight functions,
* :mod:`repro.core.permutation` — the minimum Euclidean distance under
  permutation (Definitions 3/4), both brute force and via matching,
* :mod:`repro.core.centroid` — extended centroids and the Lemma 2 lower
  bound used as a filter step,
* :mod:`repro.core.queries` — filter-and-refine ε-range and optimal
  multi-step k-nn query processing,
* :mod:`repro.core.batch` — batched minimal-matching kernels over
  omega-padded packed tensors, with a lockstep batched Hungarian and
  a parallel pairwise-distance engine.
"""

from repro.core.batch import (
    PackedSets,
    hungarian_batch,
    match_many,
    match_pairs,
    pairwise_matrix,
)
from repro.core.centroid import (
    centroid_lower_bound,
    extended_centroid,
    norm_weight,
)
from repro.core.matching import hungarian, assignment_cost
from repro.core.min_matching import (
    MatchResult,
    min_matching_distance,
    min_matching_match,
    vector_set_distance,
)
from repro.core.partial import best_common_substructure, partial_matching_distance
from repro.core.permutation import (
    permutation_distance_bruteforce,
    permutation_distance_via_matching,
)
from repro.core.queries import FilterRefineEngine, QueryStats
from repro.core.ranking import incremental_ranking
from repro.core.vector_set import VectorSet

__all__ = [
    "VectorSet",
    "hungarian",
    "assignment_cost",
    "MatchResult",
    "min_matching_distance",
    "min_matching_match",
    "vector_set_distance",
    "permutation_distance_bruteforce",
    "permutation_distance_via_matching",
    "partial_matching_distance",
    "best_common_substructure",
    "extended_centroid",
    "centroid_lower_bound",
    "norm_weight",
    "FilterRefineEngine",
    "QueryStats",
    "incremental_ranking",
    "PackedSets",
    "hungarian_batch",
    "match_many",
    "match_pairs",
    "pairwise_matrix",
]

"""Extended centroids and the Lemma 2 lower bound (the filter step).

For a vector set ``X`` with ``|X| <= k`` and a reference point ``omega``
outside the data space, the *extended centroid* (Definition 8)

    C(X) = ( sum_i x_i + (k - |X|) * omega ) / k

is a single d-dimensional point.  Lemma 2 proves

    k * || C(X) - C(Y) ||  <=  d_mm(X, Y)

when the minimal matching distance uses the Euclidean element distance
and the weight ``w(x) = || x - omega ||`` (Definition 7).  Centroids can
therefore live in any vector index (the paper uses an X-tree) and prune
candidates: for an ε-range query only sets whose centroid is within
``ε / k`` of the query centroid must be refined.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.vector_set import VectorSet
from repro.exceptions import DistanceError


def norm_weight(omega: np.ndarray | None = None) -> Callable[[np.ndarray], np.ndarray]:
    """The weight function family ``w_omega(x) = || x - omega ||_2``
    of Definition 7.  ``omega = None`` means the origin — the paper's
    choice, because no real cover has zero volume, keeping ``w > 0``."""
    if omega is None:
        return lambda arr: np.linalg.norm(arr, axis=1)
    ref = np.asarray(omega, dtype=float)
    return lambda arr: np.linalg.norm(arr - ref, axis=1)


def extended_centroid(
    vectors: np.ndarray | VectorSet,
    k: int,
    omega: np.ndarray | None = None,
) -> np.ndarray:
    """Extended centroid of a vector set (Definition 8)."""
    if isinstance(vectors, VectorSet):
        arr = np.asarray(vectors.vectors)
        if k < vectors.size:
            raise DistanceError(f"capacity k={k} below set size {vectors.size}")
    else:
        arr = np.asarray(vectors, dtype=float)
        if arr.ndim != 2 or not len(arr):
            raise DistanceError(f"expected (m, d) vectors, got shape {arr.shape}")
        if k < len(arr):
            raise DistanceError(f"capacity k={k} below set size {len(arr)}")
    if omega is None:
        omega = np.zeros(arr.shape[1])
    omega = np.asarray(omega, dtype=float)
    if omega.shape != (arr.shape[1],):
        raise DistanceError("omega has wrong dimension")
    return (arr.sum(axis=0) + (k - len(arr)) * omega) / float(k)


def centroid_lower_bound(
    centroid_x: np.ndarray, centroid_y: np.ndarray, k: int
) -> float:
    """The Lemma 2 lower bound ``k * || C(X) - C(Y) ||_2`` on the minimal
    matching distance between the underlying sets."""
    if k < 1:
        raise DistanceError("k must be >= 1")
    cx = np.asarray(centroid_x, dtype=float)
    cy = np.asarray(centroid_y, dtype=float)
    return float(k * np.linalg.norm(cx - cy))

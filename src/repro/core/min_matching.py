"""Minimal matching distance between vector sets (Definition 6).

For two sets ``X = {x_1..x_m}`` and ``Y = {y_1..y_n}`` with ``m >= n``,

    d_mm(X, Y) = min over enumerations pi of
                 sum_i dist(x_pi(i), y_i)  +  sum over unmatched x of w(x)

i.e. a minimum-weight perfect matching where every element of the larger
set that stays unmatched pays the weight penalty ``w``.  With a metric
``dist`` and a weight satisfying ``w(x) + w(y) >= dist(x, y)`` and
``w > 0``, the result is a metric (Lemma 1, via the netflow distance of
Ramon & Bruynooghe).

Implementation: the ``m x m`` cost matrix gets one dummy column per
missing element of the smaller set, whose cost for row ``x`` is ``w(x)``;
a standard square assignment then realizes Definition 6 exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.matching import hungarian
from repro.core.vector_set import VectorSet
from repro.exceptions import DistanceError

DistanceFn = Callable[[np.ndarray, np.ndarray], np.ndarray]
WeightFn = Callable[[np.ndarray], np.ndarray]


def squared_euclidean_cross(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Pairwise squared Euclidean distances via the Gram-matrix identity
    ``||x||^2 + ||y||^2 - 2 x.y``, clipped at zero.

    This avoids the O(m*n*d) broadcast temporary of the textbook form
    and the sqrt-of-negative risk from cancellation.  All dot products
    go through ``np.einsum``, whose fixed summation order makes the
    result independent of batch shape — in particular ``x == y`` rows
    cancel to *exactly* zero, which the query engine relies on for
    self-distances (a BLAS matmul does not guarantee this).
    """
    x_sq = np.einsum("ij,ij->i", x, x)
    y_sq = np.einsum("ij,ij->i", y, y)
    sq = x_sq[:, np.newaxis] + y_sq[np.newaxis, :] - 2.0 * np.einsum("id,jd->ij", x, y)
    np.maximum(sq, 0.0, out=sq)
    return sq


def euclidean_cross(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Pairwise Euclidean distances: ``(m, d) x (n, d) -> (m, n)``."""
    sq = squared_euclidean_cross(x, y)
    return np.sqrt(sq, out=sq)


def squared_euclidean_cross_reference(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """The pre-Gram broadcast form, kept as a test oracle only."""
    diff = x[:, np.newaxis, :] - y[np.newaxis, :, :]
    return np.sum(diff * diff, axis=2)


def euclidean_cross_reference(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """The pre-Gram broadcast form, kept as a test oracle only."""
    return np.sqrt(squared_euclidean_cross_reference(x, y))


def manhattan_cross(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Pairwise L1 distances."""
    return np.sum(np.abs(x[:, np.newaxis, :] - y[np.newaxis, :, :]), axis=2)


_CROSS_DISTANCES: dict[str, DistanceFn] = {
    "euclidean": euclidean_cross,
    "sqeuclidean": squared_euclidean_cross,
    "manhattan": manhattan_cross,
}


def resolve_distance(dist: str | DistanceFn) -> DistanceFn:
    """Turn a distance name or callable into a cross-distance function."""
    if callable(dist):
        return dist
    try:
        return _CROSS_DISTANCES[dist]
    except KeyError:
        raise DistanceError(
            f"unknown distance {dist!r}; choose from {sorted(_CROSS_DISTANCES)}"
        ) from None


def as_set_array(vectors: np.ndarray | VectorSet) -> np.ndarray:
    """Coerce a raw array or :class:`VectorSet` to a validated float
    ``(m, d)`` array (shared by every set-distance entry point)."""
    if isinstance(vectors, VectorSet):
        arr = np.asarray(vectors.vectors, dtype=float)
    else:
        arr = np.asarray(vectors, dtype=float)
    # VectorSet validates on construction, but frozen dataclasses can be
    # bypassed — enforce the same contract on both branches.
    if arr.ndim != 2 or not len(arr):
        raise DistanceError(f"expected a non-empty (m, d) array, got shape {arr.shape}")
    return arr


# Backwards-compatible private alias.
_as_array = as_set_array


@dataclass(frozen=True)
class MatchResult:
    """Outcome of a minimal matching distance computation.

    Attributes
    ----------
    distance:
        The minimal matching distance value.
    pairs:
        ``(p, 2)`` index pairs (row in X, row in Y) that were matched.
    unmatched:
        Indices in the larger set that paid the weight penalty.
    is_identity:
        Whether the matching equals the identity alignment
        (``x_i <-> y_i``) — the quantity behind Table 1: a "proper
        permutation" is any optimal matching that is *not* the identity.
    """

    distance: float
    pairs: np.ndarray
    unmatched: np.ndarray
    is_identity: bool


def min_matching_match(
    x: np.ndarray | VectorSet,
    y: np.ndarray | VectorSet,
    dist: str | DistanceFn = "euclidean",
    weight: WeightFn | None = None,
    backend: str = "own",
) -> MatchResult:
    """Minimal matching distance with the full matching reported.

    Parameters
    ----------
    x, y:
        Vector sets (``(m, d)`` arrays or :class:`VectorSet`).
    dist:
        Element distance: a name (``"euclidean"``, ``"sqeuclidean"``,
        ``"manhattan"``) or a cross-distance callable.
    weight:
        Penalty ``w`` for unmatched elements of the larger set; defaults
        to the Euclidean norm (``omega = 0``, the paper's choice).  For
        metric behaviour it must satisfy the Lemma 1 conditions together
        with *dist*.
    backend:
        Assignment backend, see :func:`repro.core.matching.hungarian`.
    """
    arr_x = _as_array(x)
    arr_y = _as_array(y)
    if arr_x.shape[1] != arr_y.shape[1]:
        raise DistanceError(
            f"dimension mismatch: {arr_x.shape[1]} vs {arr_y.shape[1]}"
        )
    cross = resolve_distance(dist)
    if weight is None:
        weight = lambda arr: np.linalg.norm(arr, axis=1)  # noqa: E731

    swapped = False
    if len(arr_x) < len(arr_y):
        arr_x, arr_y = arr_y, arr_x
        swapped = True
    m, n = len(arr_x), len(arr_y)

    cost = np.empty((m, m))
    cost[:, :n] = cross(arr_x, arr_y)
    if m > n:
        penalties = np.asarray(weight(arr_x), dtype=float)
        if penalties.shape != (m,):
            raise DistanceError("weight function must return one value per vector")
        cost[:, n:] = penalties[:, np.newaxis]

    assignment = hungarian(cost, backend=backend)
    total = float(cost[np.arange(m), assignment].sum())

    matched_rows = np.nonzero(assignment < n)[0]
    pairs = np.column_stack([matched_rows, assignment[matched_rows]])
    unmatched = np.nonzero(assignment >= n)[0]
    if swapped:
        pairs = pairs[:, ::-1]
    # An empty matching is vacuously not the identity alignment
    # (``np.all`` of an empty array is True, which would miscount it as
    # a non-permutation in the Table 1 statistics).
    is_identity = bool(len(pairs)) and bool(np.all(pairs[:, 0] == pairs[:, 1]))
    return MatchResult(distance=total, pairs=pairs, unmatched=unmatched, is_identity=is_identity)


def min_matching_distance(
    x: np.ndarray | VectorSet,
    y: np.ndarray | VectorSet,
    dist: str | DistanceFn = "euclidean",
    weight: WeightFn | None = None,
    backend: str = "own",
) -> float:
    """Minimal matching distance value (Definition 6)."""
    return min_matching_match(x, y, dist=dist, weight=weight, backend=backend).distance


def vector_set_distance(
    x: np.ndarray | VectorSet,
    y: np.ndarray | VectorSet,
    backend: str = "own",
) -> float:
    """The paper's vector set model distance: minimal matching distance
    with Euclidean element distance and Euclidean-norm weights
    (``omega = 0``) — the configuration used in the Figure 9
    experiments."""
    return min_matching_distance(x, y, dist="euclidean", weight=None, backend=backend)

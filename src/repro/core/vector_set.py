"""The vector set representation of a data object (Section 4).

A :class:`VectorSet` is a finite set of d-dimensional feature vectors
with a cardinality bound ``k``.  It is deliberately a thin, immutable
wrapper around an ``(m, d)`` array: the distance machinery operates on
the raw arrays, while this class carries the capacity bound and the
storage-size accounting used by the I/O cost model (the paper points out
that vector sets need no dummy padding, so smaller objects really are
smaller on disk — Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import DistanceError


@dataclass(frozen=True)
class VectorSet:
    """An immutable set of at most *capacity* d-dimensional vectors.

    Attributes
    ----------
    vectors:
        ``(m, d)`` array, ``1 <= m <= capacity``.  The row order carries
        no meaning (it is the greedy extraction order when produced by
        the pipeline, which is convenient for the permutation-rate
        statistics, but distances never depend on it).
    capacity:
        The cardinality bound ``k`` of the model.
    """

    vectors: np.ndarray
    capacity: int

    def __post_init__(self) -> None:
        arr = np.asarray(self.vectors, dtype=float)
        if arr.ndim != 2:
            raise DistanceError(f"vector set must be (m, d), got shape {arr.shape}")
        if not len(arr):
            raise DistanceError("vector set must contain at least one vector")
        if self.capacity < len(arr):
            raise DistanceError(
                f"vector set of size {len(arr)} exceeds capacity {self.capacity}"
            )
        arr = arr.copy()
        arr.setflags(write=False)
        object.__setattr__(self, "vectors", arr)

    @property
    def size(self) -> int:
        """Number of stored vectors ``m``."""
        return len(self.vectors)

    @property
    def dimension(self) -> int:
        """Dimensionality ``d`` of the element space."""
        return self.vectors.shape[1]

    def nbytes(self) -> int:
        """Bytes needed to store the set (8-byte floats, no padding)."""
        return self.vectors.size * 8

    def padded(self, fill: np.ndarray | None = None) -> np.ndarray:
        """Return the set as a dense ``(capacity, d)`` array, padding
        missing rows with *fill* (default: the zero vector, the paper's
        dummy cover)."""
        if fill is None:
            fill = np.zeros(self.dimension)
        fill = np.asarray(fill, dtype=float)
        if fill.shape != (self.dimension,):
            raise DistanceError("fill vector has wrong dimension")
        result = np.tile(fill, (self.capacity, 1))
        result[: self.size] = self.vectors
        return result

    def __iter__(self):
        return iter(self.vectors)

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VectorSet(m={self.size}, d={self.dimension}, k={self.capacity})"

"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch every failure mode of this package with a single ``except`` clause
while still being able to distinguish finer-grained conditions.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the :mod:`repro` library."""


class GeometryError(ReproError):
    """A mesh or solid is malformed (degenerate triangles, empty solids, ...)."""


class VoxelizationError(ReproError):
    """Voxelization failed or was given inconsistent grid parameters."""


class FeatureError(ReproError):
    """A feature model received input it cannot handle."""


class DistanceError(ReproError):
    """A distance function was used with incompatible operands."""


class IndexError_(ReproError):
    """An index structure was used inconsistently (not to be confused
    with the built-in :class:`IndexError`)."""


class QueryError(ReproError):
    """A similarity query was malformed (k <= 0, negative range, ...)."""


class DatasetError(ReproError):
    """A dataset generator received invalid parameters."""


class StorageError(ReproError):
    """Persistence layer failure (unknown format, corrupt file, ...)."""


class SnapshotIntegrityError(StorageError):
    """A snapshot archive failed its integrity check.

    Carries enough context for recovery-ladder logs to be actionable:
    which archive *member* (array name) failed, and a human
    classification of what that member holds (index node table, object
    store column, ...).
    """

    def __init__(self, path, member: str, detail: str, *, kind: str | None = None):
        self.path = str(path)
        self.member = member
        self.kind = kind or f"archive member {member!r}"
        super().__init__(f"{path}: corrupt {self.kind}: {detail}")


class WALError(StorageError):
    """The write-ahead log is unreadable or structurally inconsistent."""


class LockTimeout(ReproError):
    """An ``RWLock.read``/``RWLock.write`` acquisition timed out."""


class IngestError(ReproError):
    """Batch ingestion failed as a whole (bad policy, nothing ingested,
    or a caller asked :meth:`IngestReport.raise_if_failed` to escalate)."""

"""Hierarchical ξ-cluster extraction from reachability plots.

Flat ε-cuts (:func:`~repro.clustering.reachability.extract_clusters`)
see only one density level; the OPTICS paper's ξ-method extracts the
*hierarchy* of clusters by finding steep-down/steep-up area pairs in the
reachability plot.  This realizes the paper's Figure 9/10 observation
programmatically: the vector set model's plot contains nested clusters
(classes G, G1, G2) that a single cut cannot show.

The implementation follows Ankerst et al.'s definitions in simplified
form: a position is a ξ-steep downward point if its reachability drops
by a factor of at least ``1 - xi`` to its successor; maximal steep-down
areas open cluster candidates that matching steep-up areas close; a
candidate is kept if every interior point's reachability lies below both
ends (up to ξ) and it has at least ``min_cluster_size`` members.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clustering.optics import ClusterOrdering
from repro.exceptions import ReproError


@dataclass(frozen=True)
class XiCluster:
    """One hierarchical cluster: plot positions [start, end] inclusive."""

    start: int
    end: int
    objects: tuple[int, ...]

    @property
    def size(self) -> int:
        return self.end - self.start + 1

    def contains(self, other: "XiCluster") -> bool:
        return self.start <= other.start and other.end <= self.end and self != other


def _steep_down(values: np.ndarray, index: int, xi: float) -> bool:
    return values[index + 1] <= values[index] * (1.0 - xi)


def _steep_up(values: np.ndarray, index: int, xi: float) -> bool:
    return values[index] <= values[index + 1] * (1.0 - xi)


def extract_xi_clusters(
    ordering: ClusterOrdering,
    xi: float = 0.05,
    min_cluster_size: int = 4,
) -> list[XiCluster]:
    """Extract the cluster hierarchy from a reachability plot.

    Returns clusters sorted by (start, -size); nested clusters are
    included alongside their parents — use :meth:`XiCluster.contains`
    to reconstruct the tree.
    """
    if not 0.0 < xi < 1.0:
        raise ReproError("xi must be in (0, 1)")
    if min_cluster_size < 2:
        raise ReproError("min_cluster_size must be >= 2")
    values = ordering.reachability.copy()
    n = len(values)
    if n < min_cluster_size:
        return []
    # Replace infinities by a value above everything finite so steepness
    # tests behave (an inf start is "maximally steep down").
    finite = values[np.isfinite(values)]
    ceiling = (finite.max() if len(finite) else 1.0) * 2.0 + 1.0
    values = np.where(np.isfinite(values), values, ceiling)

    # Collect maximal steep-down and steep-up areas (simplified: runs of
    # steep points allowing no interruptions).
    down_starts: list[int] = []
    clusters: list[XiCluster] = []
    index = 0
    while index < n - 1:
        if _steep_down(values, index, xi):
            down_starts.append(index)
            index += 1
            continue
        if _steep_up(values, index, xi):
            # The high successor values[index + 1] is the closing wall;
            # the cluster itself spans [start + 1, index].
            end = index
            wall = values[index + 1]
            for start in down_starts:
                if end - start < min_cluster_size:
                    continue
                interior = values[start + 1 : end + 1]
                bound = min(values[start], wall)
                if len(interior) and interior.max() <= bound + 1e-12:
                    clusters.append(
                        XiCluster(
                            start=start + 1,
                            end=end,
                            objects=tuple(
                                int(o) for o in ordering.order[start + 1 : end + 1]
                            ),
                        )
                    )
        index += 1

    # Deduplicate identical spans, sort by position then size.
    unique = {(c.start, c.end): c for c in clusters}
    result = sorted(unique.values(), key=lambda c: (c.start, -(c.size)))
    return result


def hierarchy_pairs(clusters: list[XiCluster]) -> list[tuple[XiCluster, XiCluster]]:
    """All (parent, child) nesting pairs among the extracted clusters."""
    pairs = []
    for parent in clusters:
        for child in clusters:
            if parent.contains(child):
                pairs.append((parent, child))
    return pairs

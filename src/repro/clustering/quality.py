"""Objective cluster-quality metrics against ground-truth labels.

The paper judges its reachability plots visually ("the objects in
clusters A and C are intuitively similar...").  Our synthetic datasets
come with ground-truth part classes, so every visual claim can be scored
numerically:

* :func:`cluster_purity` — fraction of objects whose cluster's majority
  class matches their own (noise counts as its own singleton),
* :func:`adjusted_rand_index` — chance-corrected pair-counting agreement,
* :func:`best_cut_quality` — sweep the eps cuts of a reachability plot
  and report the best achievable quality (how much structure the model
  *can* reveal),
* :func:`structure_contrast` — a label-free score of how pronounced the
  valleys of a reachability plot are.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.clustering.optics import ClusterOrdering
from repro.clustering.reachability import cut_levels, extract_clusters
from repro.exceptions import ReproError


def _clusters_to_assignment(
    clusters: Sequence[Sequence[int]], noise: Sequence[int], n: int
) -> np.ndarray:
    """Map clusters + noise to an assignment array; noise objects each
    get a unique singleton label so they never count as agreeing pairs."""
    assignment = np.full(n, -1, dtype=int)
    for label, members in enumerate(clusters):
        for obj in members:
            assignment[obj] = label
    next_label = len(clusters)
    for obj in noise:
        assignment[obj] = next_label
        next_label += 1
    if np.any(assignment < 0):
        raise ReproError("clusters and noise do not cover all objects")
    return assignment


def _contingency(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    labels_a, inverse_a = np.unique(a, return_inverse=True)
    labels_b, inverse_b = np.unique(b, return_inverse=True)
    table = np.zeros((len(labels_a), len(labels_b)), dtype=np.int64)
    np.add.at(table, (inverse_a, inverse_b), 1)
    return table


def adjusted_rand_index(labels_true: Sequence[int], labels_pred: Sequence[int]) -> float:
    """Adjusted Rand index between two assignments (1 = identical,
    ~0 = random agreement)."""
    a = np.asarray(labels_true)
    b = np.asarray(labels_pred)
    if a.shape != b.shape:
        raise ReproError("label arrays must have equal length")
    table = _contingency(a, b)

    def comb2(x: np.ndarray) -> np.ndarray:
        return x * (x - 1) / 2.0

    sum_cells = comb2(table).sum()
    sum_rows = comb2(table.sum(axis=1)).sum()
    sum_cols = comb2(table.sum(axis=0)).sum()
    total = comb2(np.array(len(a)))
    expected = sum_rows * sum_cols / total if total else 0.0
    max_index = (sum_rows + sum_cols) / 2.0
    if max_index == expected:
        return 1.0 if sum_cells == expected else 0.0
    return float((sum_cells - expected) / (max_index - expected))


def cluster_purity(
    clusters: Sequence[Sequence[int]],
    noise: Sequence[int],
    labels: Sequence[int],
) -> float:
    """Weighted majority-class purity over all objects (noise objects
    contribute purity 1 each over their singleton, diluting nothing —
    so models that call everything noise still score low via
    :func:`adjusted_rand_index`; use both)."""
    labels = np.asarray(labels)
    n = len(labels)
    covered = 0
    agreeing = 0
    for members in clusters:
        if not members:
            continue
        member_labels = labels[list(members)]
        _, counts = np.unique(member_labels, return_counts=True)
        agreeing += int(counts.max())
        covered += len(members)
    # Noise objects are trivially pure singletons.
    agreeing += len(noise)
    covered += len(noise)
    if covered != n:
        raise ReproError("clusters and noise must partition the dataset")
    return agreeing / n


def best_cut_quality(
    ordering: ClusterOrdering,
    labels: Sequence[int],
    n_levels: int = 25,
    min_clusters: int = 2,
) -> tuple[float, float]:
    """Best adjusted Rand index over eps cuts of the reachability plot.

    Returns ``(best_ari, best_eps)``.  This turns the paper's "which
    model finds the intuitive classes" question into a number: a model
    whose plot has no usable valleys cannot reach a high ARI at any cut.
    """
    labels = np.asarray(labels)
    n = len(labels)
    best_ari, best_eps = -1.0, float("nan")
    for eps in cut_levels(ordering, n_levels):
        clusters, noise = extract_clusters(ordering, float(eps))
        if len(clusters) < min_clusters:
            continue
        assignment = _clusters_to_assignment(clusters, noise, n)
        ari = adjusted_rand_index(labels, assignment)
        if ari > best_ari:
            best_ari, best_eps = ari, float(eps)
    return best_ari, best_eps


def structure_contrast(ordering: ClusterOrdering) -> float:
    """Label-free plot-structure score in [0, 1].

    The contrast between the typical valley floor (25th percentile of
    finite reachability) and the typical ridge (90th percentile): flat,
    structureless plots — like the paper observes for the volume model —
    score near 0, deeply valleyed plots score near 1.
    """
    finite = ordering.reachability[np.isfinite(ordering.reachability)]
    if len(finite) < 2:
        return 0.0
    low = float(np.quantile(finite, 0.25))
    high = float(np.quantile(finite, 0.90))
    if high <= 0:
        return 0.0
    return max(0.0, (high - low) / high)

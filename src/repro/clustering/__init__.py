"""Clustering layer: OPTICS, reachability plots and evaluation metrics.

The paper evaluates similarity models by running the density-based
hierarchical clustering algorithm OPTICS (Ankerst et al. 1999) on the
whole dataset and inspecting the reachability plots (Section 5.2).  This
subpackage reimplements OPTICS, the plot/cluster-extraction machinery of
Figure 5, a single-link baseline, and — since our synthetic datasets have
ground-truth classes — objective cluster-quality metrics that replace the
paper's visual inspection.
"""

from repro.clustering.hierarchy import single_link_clusters, single_link_dendrogram
from repro.clustering.optics import ClusterOrdering, optics
from repro.clustering.quality import (
    adjusted_rand_index,
    best_cut_quality,
    cluster_purity,
    structure_contrast,
)
from repro.clustering.reachability import extract_clusters, render_reachability_plot
from repro.clustering.xi import XiCluster, extract_xi_clusters, hierarchy_pairs

__all__ = [
    "XiCluster",
    "extract_xi_clusters",
    "hierarchy_pairs",
    "optics",
    "ClusterOrdering",
    "extract_clusters",
    "render_reachability_plot",
    "single_link_dendrogram",
    "single_link_clusters",
    "adjusted_rand_index",
    "cluster_purity",
    "best_cut_quality",
    "structure_contrast",
]

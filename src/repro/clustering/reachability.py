"""Reachability plots: cluster extraction and terminal rendering.

The reachability plot (Figure 5) plots the reachability value of every
object in cluster order; valleys are clusters.  Cutting the plot at a
density threshold ``eps`` yields the flat clustering the paper inspects:
a consecutive subsequence of objects with reachability below the cut
belongs to one cluster, objects opening a valley are added to it, and
objects that are not core at the cut level are noise.
"""

from __future__ import annotations

import numpy as np

from repro.clustering.optics import ClusterOrdering
from repro.exceptions import ReproError


def extract_clusters(
    ordering: ClusterOrdering, eps: float
) -> tuple[list[list[int]], list[int]]:
    """Cut the reachability plot at *eps* (ExtractDBSCAN clustering).

    Returns ``(clusters, noise)`` where each cluster is a list of object
    indices (database indexing, not plot positions).
    """
    if eps < 0:
        raise ReproError("eps must be non-negative")
    clusters: list[list[int]] = []
    noise: list[int] = []
    current: list[int] | None = None
    for position, obj in enumerate(ordering.order):
        if ordering.reachability[position] > eps:
            # The object is not density-reachable at this level: it either
            # opens a new cluster (if core) or is noise.
            if ordering.core_distances[position] <= eps:
                current = [int(obj)]
                clusters.append(current)
            else:
                current = None
                noise.append(int(obj))
        else:
            if current is None:
                # Reachable but the valley opener was noise — start a
                # cluster anyway (its predecessor defined the density).
                current = []
                clusters.append(current)
            current.append(int(obj))
    return [c for c in clusters if c], noise


def auto_cut_level(ordering: ClusterOrdering, quantile: float = 0.4) -> float:
    """Default cut level: a quantile of the finite reachability values.

    The 0.4 quantile sits below the typical inter-cluster ridges while
    staying above the valley floors, which makes it a serviceable
    automatic ``eps`` for :func:`extract_clusters` when the caller has
    not inspected the plot.  Returns ``0.0`` when every reachability
    value is infinite (all objects are isolated at the generating
    distance).
    """
    if not 0.0 <= quantile <= 1.0:
        raise ReproError("quantile must be in [0, 1]")
    finite = ordering.reachability[np.isfinite(ordering.reachability)]
    if not len(finite):
        return 0.0
    return float(np.quantile(finite, quantile))


def cut_levels(ordering: ClusterOrdering, n_levels: int = 20) -> np.ndarray:
    """Candidate eps cuts: quantiles of the finite reachability values."""
    finite = ordering.reachability[np.isfinite(ordering.reachability)]
    if not len(finite):
        return np.array([])
    quantiles = np.linspace(0.05, 0.95, n_levels)
    return np.unique(np.quantile(finite, quantiles))


def render_reachability_plot(
    ordering: ClusterOrdering,
    height: int = 12,
    max_width: int = 120,
    title: str | None = None,
) -> str:
    """Render the reachability plot as ASCII art.

    Infinite reachability values are drawn as full-height ``|`` spikes
    (the separators between connected components); finite values are
    scaled into *height* rows of ``#`` bars.  If the ordering is longer
    than *max_width*, consecutive positions are aggregated by their
    maximum, which preserves the valley structure.
    """
    if height < 2:
        raise ReproError("plot height must be >= 2")
    values = ordering.reachability.copy()
    n = len(values)
    if n > max_width:
        # Aggregate bins by max to keep cluster boundaries visible.
        edges = np.linspace(0, n, max_width + 1).astype(int)
        values = np.array(
            [values[a:b].max() if b > a else 0.0 for a, b in zip(edges[:-1], edges[1:])]
        )
    finite = values[np.isfinite(values)]
    top = float(finite.max()) if len(finite) else 1.0
    top = top if top > 0 else 1.0
    # Number of filled rows per column (infinite -> full height + spike).
    bars = np.zeros(len(values), dtype=int)
    is_inf = ~np.isfinite(values)
    bars[~is_inf] = np.ceil(values[~is_inf] / top * (height - 1)).astype(int)
    bars[is_inf] = height

    lines = []
    if title:
        lines.append(title)
    lines.append(f"reachability (max finite = {top:.4f})")
    for row in range(height, 0, -1):
        chars = []
        for column, bar in enumerate(bars):
            if bar >= row:
                chars.append("|" if is_inf[column] else "#")
            else:
                chars.append(" ")
        lines.append("".join(chars).rstrip())
    lines.append("-" * len(values))
    return "\n".join(lines)

"""Single-link hierarchical clustering (baseline).

OPTICS is "similar to hierarchical Single-Link clustering methods"
(Section 5.2, citing Jain & Dubes); this module provides that classic
method for comparison.  The dendrogram is computed from the minimum
spanning tree of the complete distance graph (Prim, O(n^2)), which is
exactly the single-link merge structure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ReproError


@dataclass(frozen=True)
class Merge:
    """One dendrogram merge: the two objects whose components join and
    the link distance at which they do."""

    a: int
    b: int
    distance: float


def single_link_dendrogram(distance_matrix: np.ndarray) -> list[Merge]:
    """Single-link merges in ascending distance order via Prim's MST."""
    matrix = np.asarray(distance_matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ReproError(f"distance matrix must be square, got {matrix.shape}")
    n = len(matrix)
    if n == 1:
        return []
    in_tree = np.zeros(n, dtype=bool)
    best_dist = matrix[0].copy()
    best_from = np.zeros(n, dtype=int)
    in_tree[0] = True
    best_dist[0] = np.inf
    edges: list[Merge] = []
    for _ in range(n - 1):
        nxt = int(np.argmin(best_dist))
        edges.append(Merge(int(best_from[nxt]), nxt, float(best_dist[nxt])))
        in_tree[nxt] = True
        closer = matrix[nxt] < best_dist
        closer &= ~in_tree
        best_dist[closer] = matrix[nxt][closer]
        best_from[closer] = nxt
        best_dist[nxt] = np.inf
    edges.sort(key=lambda merge: merge.distance)
    return edges


def single_link_clusters(
    distance_matrix: np.ndarray, cut: float
) -> list[list[int]]:
    """Flat clusters: connected components of MST edges below *cut*."""
    matrix = np.asarray(distance_matrix, dtype=float)
    n = len(matrix)
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for merge in single_link_dendrogram(matrix):
        if merge.distance <= cut:
            parent[find(merge.a)] = find(merge.b)
    groups: dict[int, list[int]] = {}
    for i in range(n):
        groups.setdefault(find(i), []).append(i)
    return sorted(groups.values(), key=lambda grp: (-len(grp), grp[0]))

"""OPTICS: Ordering Points To Identify the Clustering Structure.

Re-implementation of Ankerst, Breunig, Kriegel & Sander (SIGMOD 1999) as
used by the paper's evaluation.  The algorithm produces a linear
ordering of the database in which density-based clusters of *any*
density appear as valleys of the *reachability distance*:

* ``core_distance(p)``: distance to the ``min_pts``-th neighbor of ``p``
  (undefined/infinite if ``p`` has fewer than ``min_pts`` neighbors
  within the generating distance ``eps``),
* ``reachability(o | p) = max(core_distance(p), dist(p, o))``.

Distances are obtained through a caller-supplied *row function* so that
feature-vector models can compute a whole distance row vectorized while
vector-set models evaluate the minimal matching distance per pair — and
so that experiment drivers can wrap the row function to collect
statistics (Table 1 counts the permutations that occur during exactly
such a run).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.exceptions import ReproError
from repro.obs import counter, emit, span

#: Returns all distances from object *i* to the whole database.
DistanceRows = Callable[[int], np.ndarray]


@dataclass
class ClusterOrdering:
    """The output of OPTICS: a cluster ordering with annotations.

    Attributes
    ----------
    order:
        Permutation of object indices in visit order.
    reachability:
        ``reachability[j]`` is the reachability distance of the object
        at position ``j`` of the ordering (``inf`` for the first object
        of every new component).
    core_distances:
        ``core_distances[j]``: core distance of the object at position
        ``j`` (``inf`` for non-core objects).
    """

    order: np.ndarray
    reachability: np.ndarray
    core_distances: np.ndarray

    def __len__(self) -> int:
        return len(self.order)

    def reachability_of(self, object_index: int) -> float:
        """Reachability value of a specific object (by database index)."""
        position = int(np.nonzero(self.order == object_index)[0][0])
        return float(self.reachability[position])


def distance_rows_from_matrix(matrix: np.ndarray) -> DistanceRows:
    """Adapt a precomputed symmetric distance matrix to the row API."""
    arr = np.asarray(matrix, dtype=float)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise ReproError(f"distance matrix must be square, got {arr.shape}")
    return lambda i: arr[i]


def distance_rows_from_function(
    objects: Sequence,
    distance: Callable[[object, object], float],
    max_cache_rows: int = 0,
) -> DistanceRows:
    """Adapt a pairwise distance function to the row API.

    With *max_cache_rows* > 0, up to that many most-recently-used rows
    are kept in memory — useful when a caller (or a wrapped statistics
    collector) revisits rows, without ever materializing the full
    O(n^2) matrix.  OPTICS itself requests each row exactly once, so the
    cache defaults to off.
    """

    def compute(i: int) -> np.ndarray:
        anchor = objects[i]
        return np.array([distance(anchor, other) for other in objects])

    if max_cache_rows <= 0:
        return compute

    from collections import OrderedDict

    cache: OrderedDict[int, np.ndarray] = OrderedDict()

    def rows(i: int) -> np.ndarray:
        if i in cache:
            cache.move_to_end(i)
            counter("optics.row_cache_hits").inc()
            return cache[i]
        counter("optics.row_cache_misses").inc()
        row = compute(i)
        cache[i] = row
        if len(cache) > max_cache_rows:
            cache.popitem(last=False)
        return row

    return rows


def distance_rows_from_sets(
    sets: Sequence,
    capacity: int | None = None,
    omega: np.ndarray | None = None,
    n_jobs: int | None = None,
    backend: str = "lockstep",
) -> DistanceRows:
    """Row API over vector sets via the batched minimal-matching kernel.

    Computes the full symmetric matrix once through
    :func:`repro.core.batch.pairwise_matrix` (chunked batches, symmetric
    halving, optional process fan-out via *n_jobs*) and serves rows from
    it — for vector-set OPTICS runs this replaces n per-pair Python
    loops with a handful of vectorized kernel calls.
    """
    from repro.core.batch import pairwise_matrix

    with span("cluster.pairwise_matrix", n=len(sets), jobs=n_jobs):
        matrix = pairwise_matrix(
            sets, capacity=capacity, omega=omega, backend=backend, n_jobs=n_jobs
        )
    return distance_rows_from_matrix(matrix)


def optics(
    n_objects: int,
    distance_rows: DistanceRows,
    min_pts: int = 5,
    eps: float = np.inf,
) -> ClusterOrdering:
    """Compute the OPTICS cluster ordering.

    Parameters
    ----------
    n_objects:
        Database size.
    distance_rows:
        ``distance_rows(i)`` must return the distances from object ``i``
        to every object (including itself).  It is called exactly once
        per object, when the object is processed.
    min_pts:
        Core-point threshold; the paper's evaluation methodology
        ([20], DASFAA 2003) uses small values around 5.
    eps:
        Generating distance; ``inf`` (default) reproduces the full
        hierarchical structure.
    """
    if n_objects < 1:
        raise ReproError("need at least one object")
    if min_pts < 1:
        raise ReproError("min_pts must be >= 1")
    if eps < 0:
        raise ReproError("eps must be non-negative")

    processed = np.zeros(n_objects, dtype=bool)
    reachability = np.full(n_objects, np.inf)  # per object, by database index
    core_distance = np.full(n_objects, np.inf)
    order: list[int] = []
    order_reach: list[float] = []
    order_core: list[float] = []

    def process(index: int) -> None:
        """Mark *index* processed and update seeds from its neighborhood."""
        processed[index] = True
        order.append(index)
        order_reach.append(reachability[index])
        dists = np.asarray(distance_rows(index), dtype=float)
        if dists.shape != (n_objects,):
            raise ReproError("distance_rows returned a row of wrong length")
        within = dists <= eps
        n_neighbors = int(within.sum())  # includes the object itself
        if n_neighbors >= min_pts:
            core = float(np.partition(dists, min_pts - 1)[min_pts - 1])
            core_distance[index] = core
            new_reach = np.maximum(core, dists)
            update = within & ~processed & (new_reach < reachability)
            reachability[update] = new_reach[update]
        order_core.append(core_distance[index])

    # Progress events fire roughly every 10% of the expansion (always at
    # the end), so long cluster runs are visible in the trace.
    progress_step = max(1, n_objects // 10)
    with span("cluster.optics", n=n_objects, min_pts=min_pts):
        while len(order) < n_objects:
            pending = ~processed
            candidates = np.nonzero(pending)[0]
            finite = reachability[candidates] < np.inf
            if finite.any():
                # Expand the seed with the smallest reachability...
                best = candidates[np.argmin(reachability[candidates])]
            else:
                # ...or start a fresh component at the lowest unprocessed index.
                best = candidates[0]
            process(int(best))
            counter("optics.processed").inc()
            done = len(order)
            if done % progress_step == 0 or done == n_objects:
                emit("optics_progress", processed=done, total=n_objects)

    return ClusterOrdering(
        order=np.asarray(order),
        reachability=np.asarray(order_reach),
        core_distances=np.asarray(order_core),
    )

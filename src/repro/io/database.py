"""The object database: normalized objects, scale factors and features.

Section 3.2: "We store each object normalized with respect to translation
and scaling in the database.  Furthermore, we store the scaling factors
for each of the three dimensions" — this module is that store.  Beyond
the paper it also persists extracted features keyed by model name, so
expensive extractions (greedy covers, solid-angle convolutions) are paid
once per dataset and reused by every experiment.

Storage layout of :meth:`ObjectDatabase.save`: one compressed ``.npz``
holding all grids, features and metadata, portable and dependency-free.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.exceptions import StorageError
from repro.normalize.pose import PoseInfo
from repro.voxel.grid import VoxelGrid


@dataclass
class StoredObject:
    """One database record."""

    name: str
    family: str
    class_id: int
    grid: VoxelGrid
    pose: PoseInfo
    features: dict[str, np.ndarray] = field(default_factory=dict)

    def feature_nbytes(self, model_name: str) -> int:
        """Bytes the named feature occupies (used by the I/O cost model;
        vector sets are stored without dummy padding, Section 4.1)."""
        try:
            return int(self.features[model_name].size * 8)
        except KeyError:
            raise StorageError(f"{self.name}: no features for {model_name!r}") from None


class ObjectDatabase:
    """An in-memory, persistable collection of :class:`StoredObject`."""

    def __init__(self) -> None:
        self._objects: list[StoredObject] = []

    # -- collection interface ------------------------------------------------

    def add(self, obj: StoredObject) -> int:
        """Append a record; returns its object id."""
        self._objects.append(obj)
        return len(self._objects) - 1

    def __len__(self) -> int:
        return len(self._objects)

    def __getitem__(self, object_id: int) -> StoredObject:
        return self._objects[object_id]

    def __iter__(self):
        return iter(self._objects)

    def labels(self) -> np.ndarray:
        return np.array([obj.class_id for obj in self._objects])

    def names(self) -> list[str]:
        return [obj.name for obj in self._objects]

    # -- features --------------------------------------------------------------

    def set_features(self, model_name: str, features: list[np.ndarray]) -> None:
        """Attach one feature array per object under *model_name*."""
        if len(features) != len(self._objects):
            raise StorageError(
                f"got {len(features)} feature arrays for {len(self._objects)} objects"
            )
        for obj, array in zip(self._objects, features):
            obj.features[model_name] = np.asarray(array, dtype=float)

    def get_features(self, model_name: str) -> list[np.ndarray]:
        try:
            return [obj.features[model_name] for obj in self._objects]
        except KeyError:
            raise StorageError(f"no features stored under {model_name!r}") from None

    def has_features(self, model_name: str) -> bool:
        return bool(self._objects) and all(
            model_name in obj.features for obj in self._objects
        )

    # -- persistence --------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Persist the whole database to one compressed ``.npz``."""
        arrays: dict[str, np.ndarray] = {}
        meta = []
        for index, obj in enumerate(self._objects):
            arrays[f"grid_{index}"] = np.packbits(obj.grid.occupancy)
            arrays[f"origin_{index}"] = obj.grid.origin
            for model_name, feature in obj.features.items():
                arrays[f"feat_{index}_{model_name}"] = feature
            meta.append(
                {
                    "name": obj.name,
                    "family": obj.family,
                    "class_id": obj.class_id,
                    "resolution": obj.grid.resolution,
                    "voxel_size": obj.grid.voxel_size,
                    "scale_factors": list(obj.pose.scale_factors),
                    "translation": list(obj.pose.translation),
                    "feature_models": sorted(obj.features),
                }
            )
        arrays["meta"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
        try:
            np.savez_compressed(Path(path), **arrays)
        except OSError as exc:
            raise StorageError(f"cannot write database {path}: {exc}") from exc

    @classmethod
    def load(cls, path: str | Path) -> "ObjectDatabase":
        """Load a database written by :meth:`save`."""
        db = cls()
        try:
            with np.load(Path(path)) as data:
                meta = json.loads(bytes(data["meta"]).decode())
                for index, record in enumerate(meta):
                    resolution = int(record["resolution"])
                    occupancy = np.unpackbits(
                        data[f"grid_{index}"], count=resolution**3
                    ).astype(bool)
                    grid = VoxelGrid(
                        occupancy.reshape((resolution,) * 3),
                        data[f"origin_{index}"],
                        float(record["voxel_size"]),
                    )
                    pose = PoseInfo(
                        scale_factors=tuple(record["scale_factors"]),
                        translation=tuple(record["translation"]),
                    )
                    features = {
                        model_name: data[f"feat_{index}_{model_name}"]
                        for model_name in record["feature_models"]
                    }
                    db.add(
                        StoredObject(
                            name=record["name"],
                            family=record["family"],
                            class_id=int(record["class_id"]),
                            grid=grid,
                            pose=pose,
                            features=features,
                        )
                    )
        except (OSError, KeyError, ValueError, json.JSONDecodeError) as exc:
            raise StorageError(f"cannot load database {path}: {exc}") from exc
        return db

"""The object database: normalized objects, scale factors and features.

Section 3.2: "We store each object normalized with respect to translation
and scaling in the database.  Furthermore, we store the scaling factors
for each of the three dimensions" — this module is that store.  Beyond
the paper it also persists extracted features keyed by model name, so
expensive extractions (greedy covers, solid-angle convolutions) are paid
once per dataset and reused by every experiment.

Storage layout of :meth:`ObjectDatabase.save`: one compressed ``.npz``
holding all grids, features and metadata, portable and dependency-free.

Robustness (format version 2):

* **Atomic saves** — :meth:`ObjectDatabase.save` writes to a sibling
  temporary file and ``os.replace``\\ s it over the target, so a crash
  mid-write can never corrupt a previously good database.
* **Per-record checksums** — every record's grid, origin and feature
  bytes are CRC32-checksummed at save time and verified at load time.
* **Strict vs tolerant loads** — ``load(path, strict=False)`` skips
  records whose payload is corrupt (bad checksum, undecodable zip
  member, implausible shape) and reports them in
  :attr:`ObjectDatabase.skipped` instead of raising on the first bad
  byte.  Version-1 files (no checksums) still load.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.exceptions import StorageError
from repro.normalize.pose import PoseInfo
from repro.voxel.grid import VoxelGrid

#: Current on-disk format version written by :meth:`ObjectDatabase.save`.
FORMAT_VERSION = 2

#: Largest raster resolution a record may declare; anything beyond this
#: is treated as corruption (4096^3 bits is already a 8 GiB occupancy).
MAX_RESOLUTION = 4096


@dataclass(frozen=True)
class SkippedRecord:
    """A record :meth:`ObjectDatabase.load` skipped in tolerant mode."""

    index: int
    name: str
    error_type: str
    error: str


def _record_checksum(
    packed: np.ndarray, origin: np.ndarray, features: dict[str, np.ndarray]
) -> str:
    """CRC32 over a record's payload bytes (grid, origin, features)."""
    crc = zlib.crc32(np.ascontiguousarray(packed, dtype=np.uint8).tobytes())
    crc = zlib.crc32(np.ascontiguousarray(origin, dtype=float).tobytes(), crc)
    for model_name in sorted(features):
        crc = zlib.crc32(
            np.ascontiguousarray(features[model_name], dtype=float).tobytes(), crc
        )
    return f"{crc & 0xFFFFFFFF:08x}"


@dataclass
class StoredObject:
    """One database record."""

    name: str
    family: str
    class_id: int
    grid: VoxelGrid
    pose: PoseInfo
    features: dict[str, np.ndarray] = field(default_factory=dict)

    def feature_nbytes(self, model_name: str) -> int:
        """Bytes the named feature occupies (used by the I/O cost model;
        vector sets are stored without dummy padding, Section 4.1)."""
        try:
            return int(self.features[model_name].size * 8)
        except KeyError:
            raise StorageError(f"{self.name}: no features for {model_name!r}") from None


class ObjectDatabase:
    """An in-memory, persistable collection of :class:`StoredObject`."""

    def __init__(self) -> None:
        self._objects: list[StoredObject] = []
        #: Records skipped by the last tolerant :meth:`load` (empty for
        #: strict loads and freshly built databases).
        self.skipped: list[SkippedRecord] = []

    # -- collection interface ------------------------------------------------

    def add(self, obj: StoredObject) -> int:
        """Append a record; returns its object id."""
        self._objects.append(obj)
        return len(self._objects) - 1

    def __len__(self) -> int:
        return len(self._objects)

    def __getitem__(self, object_id: int) -> StoredObject:
        return self._objects[object_id]

    def __iter__(self):
        return iter(self._objects)

    def labels(self) -> np.ndarray:
        return np.array([obj.class_id for obj in self._objects])

    def names(self) -> list[str]:
        return [obj.name for obj in self._objects]

    # -- features --------------------------------------------------------------

    def set_features(self, model_name: str, features: list[np.ndarray]) -> None:
        """Attach one feature array per object under *model_name*."""
        if len(features) != len(self._objects):
            raise StorageError(
                f"got {len(features)} feature arrays for {len(self._objects)} objects"
            )
        for obj, array in zip(self._objects, features):
            obj.features[model_name] = np.asarray(array, dtype=float)

    def get_features(self, model_name: str) -> list[np.ndarray]:
        try:
            return [obj.features[model_name] for obj in self._objects]
        except KeyError:
            raise StorageError(f"no features stored under {model_name!r}") from None

    def has_features(self, model_name: str) -> bool:
        return bool(self._objects) and all(
            model_name in obj.features for obj in self._objects
        )

    # -- persistence --------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Persist the whole database to one compressed ``.npz``.

        The write is atomic: everything goes to a sibling temporary file
        first and is renamed over *path* only once fully written, so an
        interrupted save leaves any pre-existing database untouched.
        """
        path = Path(path)
        arrays: dict[str, np.ndarray] = {}
        records = []
        for index, obj in enumerate(self._objects):
            packed = np.packbits(obj.grid.occupancy)
            origin = np.asarray(obj.grid.origin, dtype=float)
            arrays[f"grid_{index}"] = packed
            arrays[f"origin_{index}"] = origin
            for model_name, feature in obj.features.items():
                arrays[f"feat_{index}_{model_name}"] = feature
            records.append(
                {
                    "name": obj.name,
                    "family": obj.family,
                    "class_id": obj.class_id,
                    "resolution": obj.grid.resolution,
                    "voxel_size": obj.grid.voxel_size,
                    "scale_factors": list(obj.pose.scale_factors),
                    "translation": list(obj.pose.translation),
                    "feature_models": sorted(obj.features),
                    "checksum": _record_checksum(packed, origin, obj.features),
                }
            )
        meta = {"format_version": FORMAT_VERSION, "records": records}
        arrays["meta"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            # savez on an open handle keeps numpy from appending ".npz"
            # to the temporary name.
            with open(tmp, "wb") as handle:
                np.savez_compressed(handle, **arrays)
            os.replace(tmp, path)
        except OSError as exc:
            raise StorageError(f"cannot write database {path}: {exc}") from exc
        finally:
            try:
                tmp.unlink(missing_ok=True)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass

    @staticmethod
    def _decode_record(data, index: int, record: dict, version: int) -> StoredObject:
        """Decode and validate one saved record (raises on corruption)."""
        name = record.get("name", f"record-{index}")
        resolution = int(record["resolution"])
        if not 1 <= resolution <= MAX_RESOLUTION:
            raise StorageError(
                f"record {index} ({name}): implausible resolution {resolution}"
            )
        packed = np.asarray(data[f"grid_{index}"])
        origin = np.asarray(data[f"origin_{index}"], dtype=float)
        features = {
            model_name: data[f"feat_{index}_{model_name}"]
            for model_name in record["feature_models"]
        }
        if version >= 2:
            actual = _record_checksum(packed, origin, features)
            if actual != record.get("checksum"):
                raise StorageError(
                    f"record {index} ({name}): checksum mismatch "
                    f"(stored {record.get('checksum')!r}, computed {actual!r})"
                )
        n_voxels = resolution**3
        if packed.size * 8 < n_voxels:
            raise StorageError(
                f"record {index} ({name}): occupancy data truncated"
            )
        occupancy = np.unpackbits(packed, count=n_voxels).astype(bool)
        grid = VoxelGrid(
            occupancy.reshape((resolution,) * 3),
            origin,
            float(record["voxel_size"]),
        )
        pose = PoseInfo(
            scale_factors=tuple(float(s) for s in record["scale_factors"]),
            translation=tuple(float(t) for t in record["translation"]),
        )
        return StoredObject(
            name=name,
            family=record["family"],
            class_id=int(record["class_id"]),
            grid=grid,
            pose=pose,
            features=features,
        )

    @classmethod
    def load(cls, path: str | Path, strict: bool = True) -> "ObjectDatabase":
        """Load a database written by :meth:`save`.

        With ``strict=True`` (default) any corruption raises
        :class:`StorageError`.  With ``strict=False`` records whose
        payload cannot be decoded or fails its checksum are skipped and
        reported in the returned database's :attr:`skipped` list; only
        container-level damage (unreadable zip, undecodable metadata)
        still raises.
        """
        path = Path(path)
        db = cls()
        try:
            with np.load(path) as data:
                meta = json.loads(bytes(data["meta"]).decode())
                if isinstance(meta, list):  # format version 1 (no checksums)
                    version, records = 1, meta
                elif isinstance(meta, dict):
                    version = int(meta.get("format_version", 0))
                    records = meta.get("records")
                    if version < 1 or not isinstance(records, list):
                        raise StorageError(f"{path}: malformed database metadata")
                    if version > FORMAT_VERSION:
                        raise StorageError(
                            f"{path}: format version {version} is newer than "
                            f"the supported {FORMAT_VERSION}"
                        )
                else:
                    raise StorageError(f"{path}: malformed database metadata")
                for index, record in enumerate(records):
                    try:
                        if not isinstance(record, dict):
                            raise StorageError(
                                f"record {index}: metadata entry is not a mapping"
                            )
                        obj = cls._decode_record(data, index, record, version)
                    except Exception as exc:
                        if strict:
                            raise
                        name = (
                            record.get("name", f"record-{index}")
                            if isinstance(record, dict)
                            else f"record-{index}"
                        )
                        db.skipped.append(
                            SkippedRecord(index, name, type(exc).__name__, str(exc))
                        )
                        continue
                    db.add(obj)
        except StorageError:
            raise
        except Exception as exc:
            # OSError, zlib.error, zipfile.BadZipFile, KeyError, json
            # decoding failures, ... — anything the container can throw.
            raise StorageError(f"cannot load database {path}: {exc}") from exc
        return db

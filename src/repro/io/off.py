"""OFF (Object File Format) mesh reader/writer.

OFF is the simplest widely used mesh interchange format; CAD parts
exported for similarity search pipelines like the paper's are routinely
shipped this way.  Faces with more than three vertices are fan-
triangulated on read.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.exceptions import StorageError
from repro.geometry.mesh import TriangleMesh


def _meaningful_lines(text: str) -> list[str]:
    lines = []
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if line:
            lines.append(line)
    return lines


def read_off(path: str | Path) -> TriangleMesh:
    """Read an OFF file into a :class:`TriangleMesh`."""
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise StorageError(f"cannot read OFF file {path}: {exc}") from exc
    lines = _meaningful_lines(text)
    if not lines:
        raise StorageError(f"{path}: empty OFF file")
    cursor = 0
    header = lines[cursor]
    if header.upper().startswith("OFF"):
        cursor += 1
        remainder = header[3:].strip()
        if remainder:  # counts on the same line as the magic
            lines.insert(cursor, remainder)
    try:
        n_vertices, n_faces, _ = (int(tok) for tok in lines[cursor].split()[:3])
    except (ValueError, IndexError):
        raise StorageError(f"{path}: malformed OFF counts line") from None
    cursor += 1
    if len(lines) < cursor + n_vertices + n_faces:
        raise StorageError(f"{path}: truncated OFF file")
    try:
        vertices = np.array(
            [[float(tok) for tok in lines[cursor + i].split()[:3]] for i in range(n_vertices)]
        )
    except ValueError:
        raise StorageError(f"{path}: malformed vertex line") from None
    cursor += n_vertices
    faces: list[list[int]] = []
    for i in range(n_faces):
        tokens = lines[cursor + i].split()
        try:
            arity = int(tokens[0])
            indices = [int(tok) for tok in tokens[1 : 1 + arity]]
        except (ValueError, IndexError):
            raise StorageError(f"{path}: malformed face line") from None
        if arity < 3 or len(indices) != arity:
            raise StorageError(f"{path}: face with arity {arity} is invalid")
        for j in range(1, arity - 1):  # fan triangulation
            faces.append([indices[0], indices[j], indices[j + 1]])
    return TriangleMesh(vertices, np.asarray(faces, dtype=int))


def write_off(mesh: TriangleMesh, path: str | Path) -> None:
    """Write a :class:`TriangleMesh` as OFF."""
    lines = ["OFF", f"{mesh.num_vertices} {mesh.num_faces} 0"]
    lines.extend(
        f"{vertex[0]:.9g} {vertex[1]:.9g} {vertex[2]:.9g}" for vertex in mesh.vertices
    )
    lines.extend(f"3 {face[0]} {face[1]} {face[2]}" for face in mesh.faces)
    try:
        Path(path).write_text("\n".join(lines) + "\n")
    except OSError as exc:
        raise StorageError(f"cannot write OFF file {path}: {exc}") from exc

"""OFF (Object File Format) mesh reader/writer.

OFF is the simplest widely used mesh interchange format; CAD parts
exported for similarity search pipelines like the paper's are routinely
shipped this way.  Faces with more than three vertices are fan-
triangulated on read.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.exceptions import ReproError, StorageError
from repro.geometry.mesh import TriangleMesh


def _meaningful_lines(text: str) -> list[tuple[int, str]]:
    """Strip comments/blanks, keeping 1-based source line numbers."""
    lines = []
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.split("#", 1)[0].strip()
        if line:
            lines.append((lineno, line))
    return lines


def _parse_off(text: str, path) -> TriangleMesh:
    lines = _meaningful_lines(text)
    if not lines:
        raise StorageError(f"{path}: empty OFF file")
    cursor = 0
    header_lineno, header = lines[cursor]
    if header.upper().startswith("OFF"):
        cursor += 1
        remainder = header[3:].strip()
        if remainder:  # counts on the same line as the magic
            lines.insert(cursor, (header_lineno, remainder))
    if cursor >= len(lines):
        raise StorageError(f"{path}: missing OFF counts line")
    counts_lineno, counts_line = lines[cursor]
    try:
        n_vertices, n_faces, _ = (int(tok) for tok in counts_line.split()[:3])
    except (ValueError, IndexError):
        raise StorageError(
            f"{path}:{counts_lineno}: malformed OFF counts line"
        ) from None
    if n_vertices < 0 or n_faces < 0:
        raise StorageError(f"{path}:{counts_lineno}: negative OFF counts")
    if n_vertices == 0:
        raise StorageError(f"{path}: OFF file declares no vertices")
    cursor += 1
    # The declared counts are capped against the actual file content
    # before any allocation happens, so a tiny file cannot declare its
    # way into a huge buffer.
    if len(lines) < cursor + n_vertices + n_faces:
        raise StorageError(f"{path}: truncated OFF file")
    try:
        vertices = np.array(
            [
                [float(tok) for tok in lines[cursor + i][1].split()[:3]]
                for i in range(n_vertices)
            ],
            dtype=float,
        )
    except ValueError:
        raise StorageError(f"{path}: malformed vertex line") from None
    if vertices.ndim != 2 or vertices.shape[1] != 3:
        raise StorageError(f"{path}: vertex lines must carry 3 coordinates")
    if not np.isfinite(vertices).all():
        raise StorageError(f"{path}: non-finite vertex coordinates")
    cursor += n_vertices
    faces: list[list[int]] = []
    for i in range(n_faces):
        lineno, line = lines[cursor + i]
        tokens = line.split()
        try:
            arity = int(tokens[0])
            indices = [int(tok) for tok in tokens[1 : 1 + arity]]
        except (ValueError, IndexError):
            raise StorageError(f"{path}:{lineno}: malformed face line") from None
        if arity < 3 or len(indices) != arity:
            raise StorageError(
                f"{path}:{lineno}: face with arity {arity} is invalid"
            )
        for index in indices:
            if not 0 <= index < n_vertices:
                raise StorageError(
                    f"{path}:{lineno}: face index {index} outside "
                    f"[0, {n_vertices})"
                )
        for j in range(1, arity - 1):  # fan triangulation
            faces.append([indices[0], indices[j], indices[j + 1]])
    return TriangleMesh(vertices, np.asarray(faces, dtype=int).reshape(-1, 3))


def read_off(path: str | Path) -> TriangleMesh:
    """Read an OFF file into a :class:`TriangleMesh`.

    Any malformed input raises :class:`StorageError` (or another
    :class:`~repro.exceptions.ReproError`) carrying the offending line
    number where one is known; no foreign exception type can leak from
    arbitrary input bytes.
    """
    try:
        text = Path(path).read_text()
    except (OSError, UnicodeDecodeError) as exc:
        raise StorageError(f"cannot read OFF file {path}: {exc}") from exc
    try:
        return _parse_off(text, path)
    except ReproError:
        raise
    except Exception as exc:  # belt-and-braces: never leak a foreign type
        raise StorageError(f"{path}: unreadable OFF ({exc})") from exc


def write_off(mesh: TriangleMesh, path: str | Path) -> None:
    """Write a :class:`TriangleMesh` as OFF."""
    lines = ["OFF", f"{mesh.num_vertices} {mesh.num_faces} 0"]
    lines.extend(
        f"{vertex[0]:.9g} {vertex[1]:.9g} {vertex[2]:.9g}" for vertex in mesh.vertices
    )
    lines.extend(f"3 {face[0]} {face[1]} {face[2]}" for face in mesh.faces)
    try:
        Path(path).write_text("\n".join(lines) + "\n")
    except OSError as exc:
        raise StorageError(f"cannot write OFF file {path}: {exc}") from exc

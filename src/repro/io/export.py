"""CSV export of experiment artifacts.

The paper's figures are reachability plots and its tables are small
grids of numbers; these helpers dump both — plus distance matrices —
as plain CSV so the results can be re-plotted with any external tool
(gnuplot, pandas, a spreadsheet).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.clustering.optics import ClusterOrdering
from repro.exceptions import StorageError


def export_reachability_csv(
    ordering: ClusterOrdering,
    path: str | Path,
    names: Sequence[str] | None = None,
) -> None:
    """Write a reachability plot as CSV: position, object id, (name),
    reachability, core distance.  Infinite values are written as the
    string ``inf`` (readable by numpy and pandas)."""
    if names is not None and len(names) != len(ordering):
        raise StorageError("need one name per object")
    try:
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            header = ["position", "object_id"]
            if names is not None:
                header.append("name")
            header += ["reachability", "core_distance"]
            writer.writerow(header)
            for position in range(len(ordering)):
                obj = int(ordering.order[position])
                row: list = [position, obj]
                if names is not None:
                    row.append(names[obj])
                row += [
                    ordering.reachability[position],
                    ordering.core_distances[position],
                ]
                writer.writerow(row)
    except OSError as exc:
        raise StorageError(f"cannot write CSV {path}: {exc}") from exc


def export_distance_matrix_csv(
    matrix: np.ndarray,
    path: str | Path,
    names: Sequence[str] | None = None,
) -> None:
    """Write a (symmetric) distance matrix as CSV with optional header
    row/column of object names."""
    arr = np.asarray(matrix, dtype=float)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise StorageError(f"distance matrix must be square, got {arr.shape}")
    if names is not None and len(names) != len(arr):
        raise StorageError("need one name per object")
    try:
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            if names is not None:
                writer.writerow(["", *names])
            for index, row in enumerate(arr):
                prefix = [names[index]] if names is not None else []
                writer.writerow(prefix + [f"{value:.9g}" for value in row])
    except OSError as exc:
        raise StorageError(f"cannot write CSV {path}: {exc}") from exc


def export_table_csv(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    path: str | Path,
) -> None:
    """Write an experiment table (same shape as
    :func:`repro.evaluation.report.format_table` input) as CSV."""
    if any(len(row) != len(headers) for row in rows):
        raise StorageError("every row must match the header length")
    try:
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(headers)
            writer.writerows(rows)
    except OSError as exc:
        raise StorageError(f"cannot write CSV {path}: {exc}") from exc

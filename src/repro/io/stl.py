"""STL mesh reader/writer (ASCII and binary).

STL is the de-facto exchange format of voxelization-oriented CAD
tooling.  The reader auto-detects ASCII vs binary; vertices are *not*
welded (STL carries no connectivity), which is fine for voxelization.
"""

from __future__ import annotations

import struct
from pathlib import Path

import numpy as np

from repro.exceptions import ReproError, StorageError
from repro.geometry.mesh import TriangleMesh


def _require_finite(verts: np.ndarray, path) -> None:
    if verts.size and not np.isfinite(verts).all():
        raise StorageError(f"{path}: non-finite vertex coordinates")


def _read_ascii(text: str, path) -> TriangleMesh:
    vertices: list[list[float]] = []
    for lineno, line in enumerate(text.splitlines(), 1):
        tokens = line.split()
        if tokens[:1] == ["vertex"]:
            if len(tokens) < 4:
                raise StorageError(f"{path}:{lineno}: malformed vertex line")
            try:
                vertices.append([float(tok) for tok in tokens[1:4]])
            except ValueError:
                raise StorageError(
                    f"{path}:{lineno}: malformed vertex line"
                ) from None
    if not vertices or len(vertices) % 3:
        raise StorageError(f"{path}: ASCII STL does not contain whole triangles")
    verts = np.asarray(vertices)
    _require_finite(verts, path)
    faces = np.arange(len(verts)).reshape(-1, 3)
    return TriangleMesh(verts, faces)


def _read_binary(blob: bytes, path) -> TriangleMesh:
    if len(blob) < 84:
        raise StorageError(f"{path}: binary STL too short")
    (n_triangles,) = struct.unpack_from("<I", blob, 80)
    # Cap the declared count against the actual file size *before* any
    # allocation, so a crafted 84-byte header declaring 2^31 triangles
    # fails fast instead of attempting a multi-GB buffer.
    available = (len(blob) - 84) // 50
    if n_triangles > available:
        raise StorageError(
            f"{path}: binary STL declares {n_triangles} triangles but the "
            f"file only holds {available}"
        )
    raw = np.frombuffer(blob, dtype=np.uint8, count=n_triangles * 50, offset=84)
    records = raw.reshape(n_triangles, 50)
    floats = records[:, :48].copy().view("<f4").reshape(n_triangles, 12)
    verts = floats[:, 3:12].reshape(-1, 3).astype(float)  # skip the normal
    _require_finite(verts, path)
    faces = np.arange(len(verts)).reshape(-1, 3)
    return TriangleMesh(verts, faces)


def read_stl(path: str | Path) -> TriangleMesh:
    """Read an STL file (format auto-detected).

    Any malformed input raises :class:`StorageError` (or another
    :class:`~repro.exceptions.ReproError`); no foreign exception type
    can leak from arbitrary input bytes.
    """
    try:
        blob = Path(path).read_bytes()
    except OSError as exc:
        raise StorageError(f"cannot read STL file {path}: {exc}") from exc
    try:
        head = blob[:512].lstrip()
        if head.startswith(b"solid"):
            try:
                return _read_ascii(blob.decode("ascii", errors="strict"), path)
            except (UnicodeDecodeError, StorageError):
                pass  # "solid" prefix but actually binary — fall through
        return _read_binary(blob, path)
    except ReproError:
        raise
    except Exception as exc:  # belt-and-braces: never leak a foreign type
        raise StorageError(f"{path}: unreadable STL ({exc})") from exc


def write_stl_ascii(mesh: TriangleMesh, path: str | Path, name: str = "repro") -> None:
    """Write a mesh as ASCII STL."""
    tri = mesh.triangles()
    normals = np.cross(tri[:, 1] - tri[:, 0], tri[:, 2] - tri[:, 0])
    lengths = np.linalg.norm(normals, axis=1, keepdims=True)
    normals = np.divide(normals, lengths, out=np.zeros_like(normals), where=lengths > 0)
    lines = [f"solid {name}"]
    for face, normal in zip(tri, normals):
        lines.append(f"  facet normal {normal[0]:.9g} {normal[1]:.9g} {normal[2]:.9g}")
        lines.append("    outer loop")
        for vertex in face:
            lines.append(f"      vertex {vertex[0]:.9g} {vertex[1]:.9g} {vertex[2]:.9g}")
        lines.append("    endloop")
        lines.append("  endfacet")
    lines.append(f"endsolid {name}")
    try:
        Path(path).write_text("\n".join(lines) + "\n")
    except OSError as exc:
        raise StorageError(f"cannot write STL file {path}: {exc}") from exc


def write_stl_binary(mesh: TriangleMesh, path: str | Path) -> None:
    """Write a mesh as binary STL."""
    tri = mesh.triangles().astype("<f4")
    normals = np.cross(
        tri[:, 1] - tri[:, 0], tri[:, 2] - tri[:, 0]
    ).astype("<f4")
    lengths = np.linalg.norm(normals, axis=1, keepdims=True)
    normals = np.divide(normals, lengths, out=np.zeros_like(normals), where=lengths > 0)
    records = np.zeros((len(tri), 50), dtype=np.uint8)
    payload = np.concatenate([normals[:, np.newaxis, :], tri], axis=1)  # (n, 4, 3)
    records[:, :48] = payload.reshape(len(tri), 12).view(np.uint8).reshape(len(tri), 48)
    blob = b"repro binary stl".ljust(80, b"\0") + struct.pack("<I", len(tri)) + records.tobytes()
    try:
        Path(path).write_bytes(blob)
    except OSError as exc:
        raise StorageError(f"cannot write STL file {path}: {exc}") from exc

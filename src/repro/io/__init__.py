"""Persistence: mesh formats, voxel grids and the object database."""

from pathlib import Path

from repro.exceptions import StorageError
from repro.io.database import ObjectDatabase, SkippedRecord, StoredObject
from repro.io.export import (
    export_distance_matrix_csv,
    export_reachability_csv,
    export_table_csv,
)
from repro.io.off import read_off, write_off
from repro.io.stl import read_stl, write_stl_ascii, write_stl_binary
from repro.io.vox import load_grid, save_grid


def read_mesh(path):
    """Read a mesh file, dispatching on its suffix (``.stl``/``.off``)."""
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix == ".off":
        return read_off(path)
    if suffix == ".stl":
        return read_stl(path)
    raise StorageError(
        f"unsupported mesh format: {path.suffix!r} (use .stl or .off)"
    )


__all__ = [
    "read_mesh",
    "read_off",
    "write_off",
    "read_stl",
    "write_stl_ascii",
    "write_stl_binary",
    "save_grid",
    "load_grid",
    "ObjectDatabase",
    "StoredObject",
    "SkippedRecord",
    "export_reachability_csv",
    "export_distance_matrix_csv",
    "export_table_csv",
]

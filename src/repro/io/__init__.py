"""Persistence: mesh formats, voxel grids and the object database."""

from repro.io.database import ObjectDatabase, StoredObject
from repro.io.export import (
    export_distance_matrix_csv,
    export_reachability_csv,
    export_table_csv,
)
from repro.io.off import read_off, write_off
from repro.io.stl import read_stl, write_stl_ascii, write_stl_binary
from repro.io.vox import load_grid, save_grid

__all__ = [
    "read_off",
    "write_off",
    "read_stl",
    "write_stl_ascii",
    "write_stl_binary",
    "save_grid",
    "load_grid",
    "ObjectDatabase",
    "StoredObject",
    "export_reachability_csv",
    "export_distance_matrix_csv",
    "export_table_csv",
]

"""Voxel-grid persistence (compressed ``.npz``).

Writes are atomic (temp file + ``os.replace``) and loads validate the
declared resolution against the stored payload before allocating, so a
corrupt or truncated file raises :class:`StorageError` instead of a
foreign exception or a runaway allocation.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.exceptions import ReproError, StorageError
from repro.voxel.grid import VoxelGrid

#: Largest plausible raster resolution for a persisted grid.
MAX_RESOLUTION = 4096


def save_grid(grid: VoxelGrid, path: str | Path) -> None:
    """Persist a voxel grid (occupancy bit-packed, origin, voxel size)."""
    path = Path(path)
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    try:
        with open(tmp, "wb") as handle:
            np.savez_compressed(
                handle,
                packed=np.packbits(grid.occupancy),
                resolution=np.array([grid.resolution]),
                origin=grid.origin,
                voxel_size=np.array([grid.voxel_size]),
            )
        os.replace(tmp, path)
    except OSError as exc:
        raise StorageError(f"cannot write voxel grid {path}: {exc}") from exc
    finally:
        try:
            tmp.unlink(missing_ok=True)
        except OSError:  # pragma: no cover - best-effort cleanup
            pass


def load_grid(path: str | Path) -> VoxelGrid:
    """Load a voxel grid written by :func:`save_grid`."""
    try:
        with np.load(Path(path)) as data:
            resolution = int(data["resolution"][0])
            packed = np.asarray(data["packed"])
            origin = np.asarray(data["origin"], dtype=float)
            voxel_size = float(data["voxel_size"][0])
    except ReproError:
        raise
    except Exception as exc:
        # OSError, KeyError, ValueError, zlib.error, BadZipFile, ...
        raise StorageError(f"cannot load voxel grid {path}: {exc}") from exc
    if not 1 <= resolution <= MAX_RESOLUTION:
        raise StorageError(f"{path}: implausible resolution {resolution}")
    if origin.shape != (3,):
        raise StorageError(f"{path}: origin must have 3 components")
    if packed.dtype != np.uint8:
        raise StorageError(f"{path}: occupancy data has dtype {packed.dtype}")
    n_voxels = resolution**3
    if packed.size * 8 < n_voxels:
        raise StorageError(f"{path}: occupancy data truncated")
    occupancy = np.unpackbits(packed, count=n_voxels).astype(bool)
    return VoxelGrid(occupancy.reshape((resolution,) * 3), origin, voxel_size)

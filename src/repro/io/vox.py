"""Voxel-grid persistence (compressed ``.npz``)."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.exceptions import StorageError
from repro.voxel.grid import VoxelGrid


def save_grid(grid: VoxelGrid, path: str | Path) -> None:
    """Persist a voxel grid (occupancy bit-packed, origin, voxel size)."""
    try:
        np.savez_compressed(
            Path(path),
            packed=np.packbits(grid.occupancy),
            resolution=np.array([grid.resolution]),
            origin=grid.origin,
            voxel_size=np.array([grid.voxel_size]),
        )
    except OSError as exc:
        raise StorageError(f"cannot write voxel grid {path}: {exc}") from exc


def load_grid(path: str | Path) -> VoxelGrid:
    """Load a voxel grid written by :func:`save_grid`."""
    try:
        with np.load(Path(path)) as data:
            resolution = int(data["resolution"][0])
            packed = data["packed"]
            origin = data["origin"]
            voxel_size = float(data["voxel_size"][0])
    except (OSError, KeyError, ValueError) as exc:
        raise StorageError(f"cannot load voxel grid {path}: {exc}") from exc
    n_voxels = resolution**3
    occupancy = np.unpackbits(packed, count=n_voxels).astype(bool)
    return VoxelGrid(occupancy.reshape((resolution,) * 3), origin, voxel_size)

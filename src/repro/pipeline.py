"""End-to-end preparation pipeline: geometry -> voxels -> features.

Mirrors the paper's data flow (Section 3): parts are voxelized at a
raster resolution ``r``, normalized with respect to translation and
scaling (storing the per-axis scale factors), brought into a canonical
90-degree pose (the stored-object side of Definition 2's invariances),
and finally handed to a feature model.

    >>> from repro.pipeline import Pipeline
    >>> from repro.datasets import make_car_dataset
    >>> from repro.features import VectorSetModel
    >>> parts, labels = make_car_dataset()
    >>> pipeline = Pipeline(resolution=15)
    >>> objects = pipeline.process_parts(parts[:4])
    >>> sets = [VectorSetModel(k=7).extract(o.grid) for o in objects]
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass, replace
from pathlib import Path

import numpy as np

from repro.datasets.parts import CADPart
from repro.exceptions import IngestError, ReproError, StorageError
from repro.geometry.mesh import TriangleMesh
from repro.geometry.sdf import Solid
from repro.normalize.pose import PoseInfo, normalize_grid
from repro.normalize.symmetry import canonicalize_grid
from repro.obs import emit, registry, span
from repro.voxel.grid import VoxelGrid
from repro.voxel.voxelize import voxelize_mesh, voxelize_solid

#: Valid values for the ``on_error`` ingestion policy.
ON_ERROR_POLICIES = ("raise", "skip", "retry")

#: Mesh file suffixes the directory ingest path recognizes.
MESH_SUFFIXES = (".stl", ".off")


@dataclass(frozen=True)
class ProcessedObject:
    """A dataset object after the full preparation pipeline."""

    name: str
    family: str
    class_id: int
    grid: VoxelGrid
    pose: PoseInfo


@dataclass(frozen=True)
class IngestRecord:
    """Per-object outcome of a batch ingest.

    Attributes
    ----------
    name:
        Object name (part name or mesh file stem).
    status:
        ``"ok"`` or ``"failed"``.
    attempts:
        How many pipeline attempts were spent on this object (1 for a
        first-try success, up to the length of the retry ladder).
    seconds:
        Wall time spent on this object across all attempts.
    error_type / error:
        Exception class name and message of the *last* failure (``None``
        for successes).
    fallback:
        Which retry-ladder rung produced the success (``None`` when the
        initial attempt worked), e.g. ``"supersample"`` or
        ``"reduced-resolution"``.
    source:
        Originating file for directory ingests, ``None`` otherwise.
    """

    name: str
    status: str
    attempts: int
    seconds: float
    error_type: str | None = None
    error: str | None = None
    fallback: str | None = None
    source: str | None = None


class IngestReport(Sequence):
    """Outcome of a batch ingest: surviving objects plus per-object records.

    The report is a read-only sequence of the successfully processed
    :class:`ProcessedObject` instances, so existing callers that iterate
    or index the result of :meth:`Pipeline.process_parts` keep working
    unchanged.  Failure details live in :attr:`records`.
    """

    def __init__(self, policy: str = "raise") -> None:
        self.policy = policy
        self.records: list[IngestRecord] = []
        self.objects: list[ProcessedObject] = []

    # -- sequence protocol (over the successes) -----------------------------

    def __len__(self) -> int:
        return len(self.objects)

    def __getitem__(self, index):
        return self.objects[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IngestReport(ok={len(self.objects)}, "
            f"failed={len(self.failures)}, policy={self.policy!r})"
        )

    # -- recording -----------------------------------------------------------

    def record_success(
        self,
        obj: ProcessedObject,
        attempts: int = 1,
        seconds: float = 0.0,
        fallback: str | None = None,
        source: str | None = None,
    ) -> None:
        self.objects.append(obj)
        self.records.append(
            IngestRecord(
                name=obj.name,
                status="ok",
                attempts=attempts,
                seconds=seconds,
                fallback=fallback,
                source=source,
            )
        )

    def record_failure(
        self,
        name: str,
        exc: BaseException,
        attempts: int = 1,
        seconds: float = 0.0,
        source: str | None = None,
    ) -> None:
        self.records.append(
            IngestRecord(
                name=name,
                status="failed",
                attempts=attempts,
                seconds=seconds,
                error_type=type(exc).__name__,
                error=str(exc),
                source=source,
            )
        )

    def demote(self, obj: ProcessedObject, exc: BaseException) -> None:
        """Convert an earlier success into a failure (e.g. a later stage
        such as feature extraction rejected the object)."""
        self.objects = [o for o in self.objects if o is not obj]
        for index, rec in enumerate(self.records):
            if rec.name == obj.name and rec.status == "ok":
                self.records[index] = replace(
                    rec,
                    status="failed",
                    error_type=type(exc).__name__,
                    error=str(exc),
                )
                return
        self.record_failure(obj.name, exc)

    # -- reporting -----------------------------------------------------------

    @property
    def failures(self) -> list[IngestRecord]:
        return [rec for rec in self.records if rec.status == "failed"]

    @property
    def total_seconds(self) -> float:
        return sum(rec.seconds for rec in self.records)

    def all_ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        """Human-readable multi-line summary (used by the CLI)."""
        lines = [
            f"{len(self.objects)}/{len(self.records)} objects ingested "
            f"({len(self.failures)} failed, policy={self.policy}, "
            f"{self.total_seconds:.2f}s)"
        ]
        for rec in self.failures:
            where = rec.source or rec.name
            lines.append(
                f"  FAILED {where}: {rec.error_type}: {rec.error} "
                f"(attempts={rec.attempts})"
            )
        return "\n".join(lines)

    def raise_if_failed(self) -> None:
        """Escalate any recorded failure to an :class:`IngestError`."""
        if self.failures:
            raise IngestError(
                f"{len(self.failures)} of {len(self.records)} objects failed "
                f"to ingest:\n{self.summary()}"
            )


class Pipeline:
    """Voxelization + normalization pipeline.

    Parameters
    ----------
    resolution:
        Raster resolution ``r`` (the paper uses 15 for the cover-based
        models and 30 for the histogram models).
    margin:
        Empty voxels kept on each raster side.
    keep_aspect:
        Preserve object proportions when fitting into the raster.
    canonical_pose:
        Quotient out the 90-degree-rotation/reflection invariance at
        ingest by rotating every object into its canonical pose (see
        :func:`repro.normalize.symmetry.canonical_symmetry_matrix`).
        Disable to keep raw poses and evaluate Definition 2's minimum
        per distance computation instead.
    include_reflections:
        Whether the canonical pose may mirror objects (tunable
        reflection invariance, Section 3.2).
    """

    def __init__(
        self,
        resolution: int = 15,
        margin: int = 1,
        keep_aspect: bool = True,
        canonical_pose: bool = True,
        include_reflections: bool = True,
    ):
        if resolution < 2:
            raise ReproError("resolution must be >= 2")
        self.resolution = resolution
        self.margin = margin
        self.keep_aspect = keep_aspect
        self.canonical_pose = canonical_pose
        self.include_reflections = include_reflections

    # -- single objects -----------------------------------------------------

    def process_grid(self, grid: VoxelGrid) -> tuple[VoxelGrid, PoseInfo]:
        """Normalize an already-voxelized object."""
        normalized, pose = normalize_grid(grid)
        if self.canonical_pose:
            normalized = canonicalize_grid(normalized, self.include_reflections)
        return normalized, pose

    def process_solid(
        self,
        solid: Solid,
        resolution: int | None = None,
        supersample: int | None = None,
    ) -> tuple[VoxelGrid, PoseInfo]:
        """Voxelize and normalize an analytic solid.

        Uses unbiased center sampling; if a degenerate alignment leaves
        the grid empty (possible for features much thinner than one
        voxel), the voxelization is retried with conservative
        supersampling before giving up.  ``resolution``/``supersample``
        override the pipeline defaults (used by the retry ladder).
        """
        res = resolution or self.resolution
        base_supersample = supersample or 1
        grid = voxelize_solid(
            solid,
            res,
            margin=self.margin,
            keep_aspect=self.keep_aspect,
            supersample=base_supersample,
        )
        if grid.is_empty() and base_supersample == 1:
            grid = voxelize_solid(
                solid,
                res,
                margin=self.margin,
                keep_aspect=self.keep_aspect,
                supersample=4,
            )
        if grid.is_empty():
            raise ReproError("solid voxelized to an empty grid; check its size")
        return self.process_grid(grid)

    def process_mesh(
        self,
        mesh: TriangleMesh,
        fill: bool = True,
        resolution: int | None = None,
    ) -> tuple[VoxelGrid, PoseInfo]:
        """Voxelize and normalize a triangle mesh."""
        grid = voxelize_mesh(
            mesh,
            resolution or self.resolution,
            margin=self.margin,
            keep_aspect=self.keep_aspect,
            fill=fill,
        )
        return self.process_grid(grid)

    def features_for_grid(self, grid: VoxelGrid, model, cache=None) -> np.ndarray:
        """Normalize one grid and extract its feature array.

        The single-object ingest flow (normalize → content-addressed
        feature cache → extract on miss) used by the mutable similarity
        database's ``add`` path; batch ingestion goes through
        ``process_parts``/``extract_many`` instead.  Pass a
        :class:`~repro.features.cache.FeatureCache` to share entries
        across calls, or None for a default-rooted cache.
        """
        from repro.features.cache import FeatureCache

        normalized, _pose = self.process_grid(grid)
        cache = cache if cache is not None else FeatureCache()
        return cache.get_or_extract(normalized, model)

    def process_part(self, part: CADPart, **overrides) -> ProcessedObject:
        """Process one labeled dataset part."""
        grid, pose = self.process_solid(part.solid, **overrides)
        return ProcessedObject(
            name=part.name,
            family=part.family,
            class_id=part.class_id,
            grid=grid,
            pose=pose,
        )

    # -- batches -------------------------------------------------------------

    def _reduced_resolution(self) -> int:
        """The resolution the last retry-ladder rung falls back to."""
        return max(self.resolution // 2, 2 * self.margin + 2, 4)

    def _retry_ladder(self, kind: str) -> list[tuple[str | None, dict]]:
        """The bounded attempt ladder for ``on_error="retry"``.

        Rung 1 is the normal pipeline.  Rung 2 re-voxelizes with
        conservative supersampling (solids; the mesh rasterizer is
        already supersampled, so meshes get a plain re-read/retry which
        clears transient I/O faults).  Rung 3 drops to a reduced raster
        resolution as a last resort.
        """
        reduced = self._reduced_resolution()
        if kind == "solid":
            ladder: list[tuple[str | None, dict]] = [
                (None, {}),
                ("supersample", {"supersample": 4}),
            ]
        else:
            ladder = [(None, {}), ("retry", {})]
        if reduced < self.resolution:
            ladder.append(("reduced-resolution", {"resolution": reduced}))
        return ladder

    def _ingest_one(
        self,
        name: str,
        build,
        kind: str,
        on_error: str,
        report: IngestReport,
        source: str | None = None,
    ) -> None:
        """Run *build* under the *on_error* policy, recording the outcome.

        ``build(**overrides)`` must return a :class:`ProcessedObject`.
        With ``on_error="raise"`` the first exception propagates
        unchanged; ``"skip"`` records a single failed attempt;
        ``"retry"`` walks the bounded fallback ladder before recording
        a failure.
        """
        ladder = self._retry_ladder(kind) if on_error == "retry" else [(None, {})]
        start = time.perf_counter()
        last_exc: BaseException | None = None
        with span("ingest.object", object=name, kind=kind):
            for attempt, (fallback, overrides) in enumerate(ladder, 1):
                try:
                    obj = build(**overrides)
                except Exception as exc:
                    if on_error == "raise":
                        raise
                    last_exc = exc
                    continue
                report.record_success(
                    obj,
                    attempts=attempt,
                    seconds=time.perf_counter() - start,
                    fallback=fallback,
                    source=source,
                )
                return
        assert last_exc is not None
        report.record_failure(
            name,
            last_exc,
            attempts=len(ladder),
            seconds=time.perf_counter() - start,
            source=source,
        )

    def process_parts(
        self,
        parts: list[CADPart],
        on_error: str = "raise",
        n_jobs: int | None = None,
    ) -> IngestReport:
        """Process a whole dataset (deterministic, order-preserving).

        Parameters
        ----------
        parts:
            The labeled parts to push through the pipeline.
        on_error:
            Failure policy. ``"raise"`` (default) propagates the first
            failure unchanged; ``"skip"`` isolates failures to the part
            that caused them and records them in the report; ``"retry"``
            additionally walks a bounded fallback ladder (supersampled
            re-voxelization, then reduced resolution) before giving up
            on a part.
        n_jobs:
            Worker processes (``None``/``0`` = serial, negative = all
            cores) from the shared pool of :mod:`repro.parallel`.  Each
            part is voxelized and normalized in a worker under the same
            per-object policy/retry ladder; single-part reports are
            merged back in input order, so results — including the
            records and the first-failure semantics of ``"raise"`` —
            match the serial path exactly.

        Returns
        -------
        IngestReport
            A sequence of the surviving :class:`ProcessedObject`
            instances (drop-in compatible with the previous ``list``
            return) carrying per-object :class:`IngestRecord` entries.
        """
        if on_error not in ON_ERROR_POLICIES:
            raise IngestError(
                f"unknown on_error policy {on_error!r}; choose from {ON_ERROR_POLICIES}"
            )
        from repro.parallel import resolve_n_jobs

        jobs = resolve_n_jobs(n_jobs)
        with span("ingest.process_parts", n=len(parts), jobs=jobs, policy=on_error):
            if jobs > 1 and len(parts) > 1:
                tasks = [(self, part, on_error) for part in parts]
                report = _merge_reports(
                    on_error, _pool_map(_ingest_part_task, tasks, jobs)
                )
            else:
                report = IngestReport(on_error)
                for part in parts:
                    self._ingest_one(
                        part.name,
                        lambda **ov: self.process_part(part, **ov),
                        "solid",
                        on_error,
                        report,
                    )
        _record_ingest_report(report)
        return report

    def process_mesh_directory(
        self,
        directory: str | Path,
        on_error: str = "skip",
        fill: bool = True,
        suffixes: tuple[str, ...] = MESH_SUFFIXES,
        n_jobs: int | None = None,
    ) -> IngestReport:
        """Ingest every mesh file in *directory* (sorted, deterministic).

        Files are matched case-insensitively against *suffixes*; each
        becomes a :class:`ProcessedObject` named after its stem, family
        ``"mesh"``, and a class id equal to its position in the sorted
        file list (stable even when other files fail).  The default
        policy is ``"skip"`` — real mesh collections routinely contain a
        few malformed exports, and one bad file must not abort the
        batch.  ``n_jobs`` parallelizes over files exactly like
        :meth:`process_parts` does over parts.
        """
        if on_error not in ON_ERROR_POLICIES:
            raise IngestError(
                f"unknown on_error policy {on_error!r}; choose from {ON_ERROR_POLICIES}"
            )
        from repro.io import read_mesh
        from repro.parallel import resolve_n_jobs

        directory = Path(directory)
        try:
            files = sorted(
                p for p in directory.iterdir() if p.suffix.lower() in suffixes
            )
        except OSError as exc:
            raise StorageError(f"cannot list mesh directory {directory}: {exc}") from exc
        jobs = resolve_n_jobs(n_jobs)
        with span(
            "ingest.process_meshes", n=len(files), jobs=jobs, policy=on_error
        ):
            if jobs > 1 and len(files) > 1:
                tasks = [
                    (self, path, class_id, on_error, fill)
                    for class_id, path in enumerate(files)
                ]
                report = _merge_reports(
                    on_error, _pool_map(_ingest_mesh_task, tasks, jobs)
                )
            else:
                report = IngestReport(on_error)
                for class_id, path in enumerate(files):

                    def build(path=path, class_id=class_id, **overrides):
                        mesh = read_mesh(path)
                        grid, pose = self.process_mesh(mesh, fill=fill, **overrides)
                        return ProcessedObject(
                            name=path.stem,
                            family="mesh",
                            class_id=class_id,
                            grid=grid,
                            pose=pose,
                        )

                    self._ingest_one(
                        path.stem, build, "mesh", on_error, report, source=str(path)
                    )
        _record_ingest_report(report)
        return report


# -- process-pool work units ---------------------------------------------------
#
# Module-level (picklable) single-object tasks: each runs the full
# per-object pipeline — voxelization included — under the caller's
# on_error policy inside a worker process and returns a one-object
# IngestReport.  Under on_error="raise" the exception propagates out of
# the worker; _pool_map iterates results in submission order, so the
# *earliest* failing object aborts the batch, matching the serial path.


def _ingest_part_task(task) -> IngestReport:
    pipeline, part, on_error = task
    report = IngestReport(on_error)
    pipeline._ingest_one(
        part.name,
        lambda **ov: pipeline.process_part(part, **ov),
        "solid",
        on_error,
        report,
    )
    return report


def _ingest_mesh_task(task) -> IngestReport:
    pipeline, path, class_id, on_error, fill = task
    from repro.io import read_mesh

    def build(**overrides):
        mesh = read_mesh(path)
        grid, pose = pipeline.process_mesh(mesh, fill=fill, **overrides)
        return ProcessedObject(
            name=path.stem,
            family="mesh",
            class_id=class_id,
            grid=grid,
            pose=pose,
        )

    report = IngestReport(on_error)
    pipeline._ingest_one(path.stem, build, "mesh", on_error, report, source=str(path))
    return report


def _pool_map(task_fn, tasks: list, jobs: int) -> list:
    from repro.parallel import pool_map

    return pool_map(task_fn, tasks, jobs)


def _record_ingest_report(report: IngestReport) -> None:
    """Fold one batch-ingest outcome into the metrics registry.

    Counted exactly once per top-level batch (never inside workers, so
    parallel runs can't double count), which makes serial and ``--jobs``
    totals identical for the same inputs.
    """
    reg = registry()
    if not reg.enabled:
        return
    reg.counter("ingest.objects_ok").inc(len(report.objects))
    reg.counter("ingest.objects_failed").inc(len(report.failures))
    reg.counter("ingest.attempts").inc(sum(rec.attempts for rec in report.records))
    emit(
        "ingest",
        ok=len(report.objects),
        failed=len(report.failures),
        policy=report.policy,
        seconds=report.total_seconds,
    )


def _merge_reports(on_error: str, partials: list[IngestReport]) -> IngestReport:
    """Concatenate single-object reports in submission order."""
    report = IngestReport(on_error)
    for partial in partials:
        report.objects.extend(partial.objects)
        report.records.extend(partial.records)
    return report


def pairwise_distance_matrix(objects: list, distance) -> np.ndarray:
    """Symmetric pairwise distance matrix of arbitrary objects.

    Evaluates ``distance`` once per unordered pair; handy for OPTICS on
    small datasets and for the single-link baseline.
    """
    n = len(objects)
    matrix = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            value = float(distance(objects[i], objects[j]))
            matrix[i, j] = value
            matrix[j, i] = value
    return matrix

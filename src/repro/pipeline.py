"""End-to-end preparation pipeline: geometry -> voxels -> features.

Mirrors the paper's data flow (Section 3): parts are voxelized at a
raster resolution ``r``, normalized with respect to translation and
scaling (storing the per-axis scale factors), brought into a canonical
90-degree pose (the stored-object side of Definition 2's invariances),
and finally handed to a feature model.

    >>> from repro.pipeline import Pipeline
    >>> from repro.datasets import make_car_dataset
    >>> from repro.features import VectorSetModel
    >>> parts, labels = make_car_dataset()
    >>> pipeline = Pipeline(resolution=15)
    >>> objects = pipeline.process_parts(parts[:4])
    >>> sets = [VectorSetModel(k=7).extract(o.grid) for o in objects]
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.parts import CADPart
from repro.exceptions import ReproError
from repro.geometry.mesh import TriangleMesh
from repro.geometry.sdf import Solid
from repro.normalize.pose import PoseInfo, normalize_grid
from repro.normalize.symmetry import canonicalize_grid
from repro.voxel.grid import VoxelGrid
from repro.voxel.voxelize import voxelize_mesh, voxelize_solid


@dataclass(frozen=True)
class ProcessedObject:
    """A dataset object after the full preparation pipeline."""

    name: str
    family: str
    class_id: int
    grid: VoxelGrid
    pose: PoseInfo


class Pipeline:
    """Voxelization + normalization pipeline.

    Parameters
    ----------
    resolution:
        Raster resolution ``r`` (the paper uses 15 for the cover-based
        models and 30 for the histogram models).
    margin:
        Empty voxels kept on each raster side.
    keep_aspect:
        Preserve object proportions when fitting into the raster.
    canonical_pose:
        Quotient out the 90-degree-rotation/reflection invariance at
        ingest by rotating every object into its canonical pose (see
        :func:`repro.normalize.symmetry.canonical_symmetry_matrix`).
        Disable to keep raw poses and evaluate Definition 2's minimum
        per distance computation instead.
    include_reflections:
        Whether the canonical pose may mirror objects (tunable
        reflection invariance, Section 3.2).
    """

    def __init__(
        self,
        resolution: int = 15,
        margin: int = 1,
        keep_aspect: bool = True,
        canonical_pose: bool = True,
        include_reflections: bool = True,
    ):
        if resolution < 2:
            raise ReproError("resolution must be >= 2")
        self.resolution = resolution
        self.margin = margin
        self.keep_aspect = keep_aspect
        self.canonical_pose = canonical_pose
        self.include_reflections = include_reflections

    # -- single objects -----------------------------------------------------

    def process_grid(self, grid: VoxelGrid) -> tuple[VoxelGrid, PoseInfo]:
        """Normalize an already-voxelized object."""
        normalized, pose = normalize_grid(grid)
        if self.canonical_pose:
            normalized = canonicalize_grid(normalized, self.include_reflections)
        return normalized, pose

    def process_solid(self, solid: Solid) -> tuple[VoxelGrid, PoseInfo]:
        """Voxelize and normalize an analytic solid.

        Uses unbiased center sampling; if a degenerate alignment leaves
        the grid empty (possible for features much thinner than one
        voxel), the voxelization is retried with conservative
        supersampling before giving up.
        """
        grid = voxelize_solid(
            solid, self.resolution, margin=self.margin, keep_aspect=self.keep_aspect
        )
        if grid.is_empty():
            grid = voxelize_solid(
                solid,
                self.resolution,
                margin=self.margin,
                keep_aspect=self.keep_aspect,
                supersample=4,
            )
        if grid.is_empty():
            raise ReproError("solid voxelized to an empty grid; check its size")
        return self.process_grid(grid)

    def process_mesh(self, mesh: TriangleMesh, fill: bool = True) -> tuple[VoxelGrid, PoseInfo]:
        """Voxelize and normalize a triangle mesh."""
        grid = voxelize_mesh(
            mesh,
            self.resolution,
            margin=self.margin,
            keep_aspect=self.keep_aspect,
            fill=fill,
        )
        return self.process_grid(grid)

    def process_part(self, part: CADPart) -> ProcessedObject:
        """Process one labeled dataset part."""
        grid, pose = self.process_solid(part.solid)
        return ProcessedObject(
            name=part.name,
            family=part.family,
            class_id=part.class_id,
            grid=grid,
            pose=pose,
        )

    # -- batches -------------------------------------------------------------

    def process_parts(self, parts: list[CADPart]) -> list[ProcessedObject]:
        """Process a whole dataset (deterministic, order-preserving)."""
        return [self.process_part(part) for part in parts]


def pairwise_distance_matrix(objects: list, distance) -> np.ndarray:
    """Symmetric pairwise distance matrix of arbitrary objects.

    Evaluates ``distance`` once per unordered pair; handy for OPTICS on
    small datasets and for the single-link baseline.
    """
    n = len(objects)
    matrix = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            value = float(distance(objects[i], objects[j]))
            matrix[i, j] = value
            matrix[j, i] = value
    return matrix

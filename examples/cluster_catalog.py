"""Cluster the part catalog with OPTICS and read the reachability plot.

This is the paper's evaluation methodology (Section 5.2) as an
application: instead of judging a similarity model by a handful of
hand-picked queries, cluster the *whole* catalog and inspect the
reachability plot — valleys are groups of similar parts, ridges separate
them, and lone spikes are one-off parts (noise).

Run:  python examples/cluster_catalog.py
"""

from collections import Counter

from repro import Pipeline, VectorSetModel, min_matching_distance
from repro.clustering import extract_clusters, optics, render_reachability_plot
from repro.clustering.optics import distance_rows_from_matrix
from repro.clustering.quality import best_cut_quality
from repro.datasets import make_car_dataset
from repro.pipeline import pairwise_distance_matrix


def main() -> None:
    parts, labels = make_car_dataset(
        class_counts={
            "tire": 14, "door": 14, "engine_block": 12, "seat": 12, "fender": 12,
        },
        n_noise=6,
        seed=5,
    )
    pipeline = Pipeline(resolution=15)
    objects = pipeline.process_parts(parts)
    model = VectorSetModel(k=7)
    sets = [model.extract(obj.grid) for obj in objects]

    print("computing pairwise minimal matching distances ...")
    matrix = pairwise_distance_matrix(sets, min_matching_distance)
    ordering = optics(len(sets), distance_rows_from_matrix(matrix), min_pts=4)

    print()
    print(render_reachability_plot(ordering, height=10, max_width=100,
                                   title="Car catalog — vector set model (k=7)"))

    best_ari, best_eps = best_cut_quality(ordering, labels)
    clusters, noise = extract_clusters(ordering, best_eps)
    print(f"\ncut at eps={best_eps:.3f} (ARI vs ground truth: {best_ari:.3f}):")
    for index, members in enumerate(clusters):
        composition = Counter(objects[m].family for m in members)
        print(f"  cluster {index}: {dict(composition)}")
    print(f"  noise: {len(noise)} parts "
          f"({Counter(objects[m].family for m in noise)})")


if __name__ == "__main__":
    main()

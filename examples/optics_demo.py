"""Reachability plots 101 — the paper's Figure 5 as a runnable demo.

Generates a 2-D dataset with nested density structure (two sub-clusters
inside a super-cluster, plus a separate cluster and noise), runs OPTICS
and renders the reachability plot.  Cutting the plot at two different
levels yields the two clusterings the paper's Figure 5 illustrates.

Run:  python examples/optics_demo.py
"""

import numpy as np

from repro.clustering import extract_clusters, optics, render_reachability_plot
from repro.clustering.optics import distance_rows_from_matrix


def main() -> None:
    rng = np.random.default_rng(42)
    cluster_a1 = rng.normal(loc=(0.0, 0.0), scale=0.04, size=(40, 2))
    cluster_a2 = rng.normal(loc=(0.35, 0.05), scale=0.05, size=(40, 2))
    cluster_b = rng.normal(loc=(1.2, 0.8), scale=0.10, size=(50, 2))
    noise = rng.uniform(-0.4, 1.8, size=(15, 2))
    points = np.vstack([cluster_a1, cluster_a2, cluster_b, noise])

    diff = points[:, np.newaxis, :] - points[np.newaxis, :, :]
    matrix = np.sqrt((diff * diff).sum(axis=2))
    ordering = optics(len(points), distance_rows_from_matrix(matrix), min_pts=5)

    print(render_reachability_plot(ordering, height=12, max_width=100,
                                   title="Figure 5 demo — nested 2-D clusters"))

    for eps, label in ((0.30, "coarse cut (A, B)"), (0.10, "fine cut (A1, A2, B)")):
        clusters, noise_points = extract_clusters(ordering, eps)
        sizes = sorted((len(c) for c in clusters), reverse=True)
        print(f"eps={eps:.2f}  {label}: cluster sizes {sizes}, "
              f"{len(noise_points)} noise points")


if __name__ == "__main__":
    main()

"""Partial similarity and the scaling-invariance toggle in practice.

Two retrieval refinements the vector set representation enables
(Sections 3.2 and 4.1 of the paper):

1. *Partial similarity* — an engineer looks for parts that CONTAIN a
   given sub-structure (e.g. any assembly built around a tire), which
   the full matching distance hides behind the non-shared covers.
2. *Scaling invariance OFF* — the same search, but only parts of
   matching physical size qualify (a model-car tire is not a reuse
   candidate for a truck tire).

Run:  python examples/partial_and_scaling.py
"""

import numpy as np

from repro import Pipeline, VectorSetModel, min_matching_distance
from repro.core.partial import partial_matching_distance
from repro.features.scaling import denormalize_cover_vectors
from repro.geometry.sdf import Box, Torus
from repro.geometry.transform import Transform


def main() -> None:
    pipeline = Pipeline(resolution=15)
    model = VectorSetModel(k=7)

    tire = Torus(major_radius=1.0, minor_radius=0.33)
    catalog = {
        "plain tire": tire,
        "tire + mounting frame": tire | Box(center=(0, 0, 0.9), size=(2.4, 0.4, 0.5)),
        "tire + axle stub": tire | Box(center=(0, 0, 0), size=(0.4, 0.4, 1.6)),
        "unrelated housing": Box(size=(2.0, 1.2, 0.6)) - Box(size=(1.2, 0.7, 0.8)),
        "tire, 2x scale": tire.transformed(Transform.scaling(2.0)),
    }

    features, poses = {}, {}
    for name, solid in catalog.items():
        grid, pose = pipeline.process_solid(solid)
        features[name] = model.extract(grid)
        poses[name] = pose

    query = features["plain tire"]
    print("query: plain tire\n")
    print(f"{'candidate':26} {'full match':>11} {'partial i=2':>12}")
    for name in catalog:
        if name == "plain tire":
            continue
        full = min_matching_distance(query, features[name])
        i = min(2, len(query), len(features[name]))
        partial = partial_matching_distance(query, features[name], i)
        print(f"{name:26} {full:>11.3f} {partial:>12.3f}")

    print("\n-> partial matching surfaces the assemblies that contain the tire.")

    print("\nscaling invariance toggle (tire vs its 2x copy):")
    invariant = min_matching_distance(query, features["tire, 2x scale"])
    aware = min_matching_distance(
        denormalize_cover_vectors(query, poses["plain tire"]),
        denormalize_cover_vectors(features["tire, 2x scale"], poses["tire, 2x scale"]),
    )
    print(f"  invariance ON  (stored normalized): {invariant:.4f}")
    print(f"  invariance OFF (world units):       {aware:.4f}")
    print("-> identical shape, but the size difference now counts.")


if __name__ == "__main__":
    main()

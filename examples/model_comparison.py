"""Compare all four similarity models of the paper on one dataset.

Runs the volume model, the solid-angle model, the cover sequence model
(plain and with the permutation distance) and the vector set model over
the same parts and scores each by how well its OPTICS reachability plot
can be cut into the ground-truth part families — the quantitative
version of the paper's Figures 6–9 comparison.

Run:  python examples/model_comparison.py
"""

import numpy as np

from repro import (
    CoverSequenceModel,
    Pipeline,
    SolidAngleModel,
    VectorSetModel,
    VolumeModel,
    min_matching_distance,
    permutation_distance_via_matching,
)
from repro.clustering import optics
from repro.clustering.optics import distance_rows_from_matrix
from repro.clustering.quality import best_cut_quality, structure_contrast
from repro.datasets import make_car_dataset
from repro.evaluation.report import format_table
from repro.pipeline import pairwise_distance_matrix


def euclidean_matrix(features):
    flat = np.vstack([np.asarray(f).ravel() for f in features])
    diff = flat[:, np.newaxis, :] - flat[np.newaxis, :, :]
    return np.sqrt((diff * diff).sum(axis=2))


def main() -> None:
    parts, labels = make_car_dataset(
        class_counts={"tire": 12, "door": 12, "engine_block": 12, "seat": 12},
        n_noise=5,
        seed=31,
    )

    pipeline15 = Pipeline(resolution=15)
    pipeline30 = Pipeline(resolution=30)
    objects15 = pipeline15.process_parts(parts)
    objects30 = pipeline30.process_parts(parts)

    rows = []

    def score(name, matrix):
        ordering = optics(len(parts), distance_rows_from_matrix(matrix), min_pts=4)
        ari, _ = best_cut_quality(ordering, labels)
        rows.append([name, ari, structure_contrast(ordering)])

    # Histogram models on r = 30 (the paper's pairing).
    for model in (VolumeModel(5), SolidAngleModel(5, kernel_radius=4)):
        features = [model.extract(obj.grid) for obj in objects30]
        score(model.name, euclidean_matrix(features))

    # Cover-based models on r = 15.
    cover_model = CoverSequenceModel(k=7)
    cover_features = [cover_model.extract(obj.grid) for obj in objects15]
    score(cover_model.name + " / euclidean", euclidean_matrix(cover_features))

    set_model = VectorSetModel(k=7)
    vector_sets = [set_model.extract(obj.grid) for obj in objects15]
    score(
        "cover sequence / permutation distance",
        pairwise_distance_matrix(vector_sets, permutation_distance_via_matching),
    )
    score(
        set_model.name + " / min matching",
        pairwise_distance_matrix(vector_sets, min_matching_distance),
    )

    print()
    print(
        format_table(
            ["model / distance", "best ARI", "plot contrast"],
            rows,
            title="Model comparison on the synthetic car dataset",
        )
    )


if __name__ == "__main__":
    main()

"""Import meshes (STL/OFF), voxelize them, and query the part database.

CAD data rarely arrives as analytic solids; this example exercises the
boundary-representation path: triangle meshes are written to and read
from standard exchange formats, surface-rasterized, solid-filled, and
then enter exactly the same pipeline as everything else.

Run:  python examples/mesh_import.py
"""

import tempfile
from pathlib import Path

from repro import FilterRefineEngine, Pipeline, VectorSetModel
from repro.datasets import make_car_dataset
from repro.geometry.mesh import box_mesh, cylinder_mesh, torus_mesh
from repro.io import read_off, read_stl, write_off, write_stl_binary


def main() -> None:
    pipeline = Pipeline(resolution=15)
    model = VectorSetModel(k=7)

    # Build a reference database from analytic parts.
    parts, _ = make_car_dataset(
        class_counts={"tire": 10, "door": 10, "engine_block": 10}, n_noise=3
    )
    objects = pipeline.process_parts(parts)
    sets = [model.extract(obj.grid) for obj in objects]
    engine = FilterRefineEngine(sets, capacity=7)

    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)

        # A "customer" ships a tire-like part as binary STL ...
        tire_mesh = torus_mesh(major_radius=1.0, minor_radius=0.33,
                               major_segments=48, minor_segments=24)
        stl_path = tmp_path / "customer_tire.stl"
        write_stl_binary(tire_mesh, stl_path)

        # ... and a door-like panel as OFF.
        door_mesh = box_mesh(size=(2.2, 0.25, 1.8))
        off_path = tmp_path / "customer_panel.off"
        write_off(door_mesh, off_path)

        for path, reader, expected in (
            (stl_path, read_stl, "tire"),
            (off_path, read_off, "door"),
        ):
            mesh = reader(path)
            grid, _ = pipeline.process_mesh(mesh)
            query_set = model.extract(grid)
            results, _ = engine.knn_query(query_set, 3)
            families = [objects[m.object_id].family for m in results]
            print(f"{path.name}: {mesh.num_faces} triangles -> "
                  f"{grid.count} voxels -> nearest families {families}")
            assert families.count(expected) >= 2, (path.name, families)

    print("\nmesh-imported parts retrieve their analytic counterparts.")


if __name__ == "__main__":
    main()

"""Quickstart: index a CAD dataset and run a similarity query.

Builds a small synthetic car-part dataset, pushes it through the full
paper pipeline (voxelize at r=15, normalize, canonical pose, greedy
covers, vector sets), and answers a 5-nn query with the minimal
matching distance accelerated by the extended-centroid filter.

Run:  python examples/quickstart.py
"""

from repro import FilterRefineEngine, Pipeline, VectorSetModel
from repro.datasets import make_car_dataset


def main() -> None:
    # 1. A labeled dataset of parametric CAD parts (stand-in for the
    #    paper's proprietary ~200-part car dataset).
    parts, _ = make_car_dataset(
        class_counts={"tire": 10, "door": 10, "engine_block": 10, "seat": 10},
        n_noise=4,
    )

    # 2. The preparation pipeline of Section 3: voxel raster r = 15,
    #    translation/scale normalization, canonical 90-degree pose.
    pipeline = Pipeline(resolution=15)
    objects = pipeline.process_parts(parts)

    # 3. The vector set model (Section 4): every object becomes a set of
    #    at most k = 7 six-dimensional cover vectors.
    model = VectorSetModel(k=7)
    sets = [model.extract(obj.grid) for obj in objects]
    print(f"prepared {len(sets)} objects; "
          f"set sizes: min={min(map(len, sets))}, max={max(map(len, sets))}")

    # 4. Similarity queries: minimal matching distance, filtered through
    #    the Lemma 2 centroid lower bound.
    engine = FilterRefineEngine(sets, capacity=7)
    query_id = 0  # the first part (a door; classes are sorted by name)
    results, stats = engine.knn_query(sets[query_id], 5)

    print(f"\n5-nn of {objects[query_id].name}:")
    for match in results:
        neighbor = objects[match.object_id]
        print(f"  {neighbor.name:20s} family={neighbor.family:12s} "
              f"distance={match.distance:.4f}")
    print(f"\nfilter refined {stats.exact_computations} of {len(sets)} objects "
          f"({stats.pruned} pruned by the centroid bound)")


if __name__ == "__main__":
    main()

"""Part retrieval: the paper's motivating CAD-reuse scenario.

An engineer designed a new bracket and wants to know whether a similar
part already exists in the company database (so it can be reused instead
of manufactured).  This example

* builds and persists a part database with precomputed features,
* reloads it (as a separate session would),
* queries it with a *new, unseen* part in a random orientation,
* and shows that the retrieval is invariant to that orientation.

Run:  python examples/part_retrieval.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import FilterRefineEngine, Pipeline, VectorSetModel
from repro.datasets import make_car_dataset
from repro.datasets.parts import make_part, random_placement
from repro.io.database import ObjectDatabase, StoredObject

MODEL_NAME = "vector-set(k=7)"


def build_database(path: Path) -> None:
    """One-time ingest: voxelize, normalize, extract, persist."""
    parts, _ = make_car_dataset(seed=77)
    pipeline = Pipeline(resolution=15)
    model = VectorSetModel(k=7)

    database = ObjectDatabase()
    features = []
    for part in parts:
        processed = pipeline.process_part(part)
        database.add(
            StoredObject(
                name=processed.name,
                family=processed.family,
                class_id=processed.class_id,
                grid=processed.grid,
                pose=processed.pose,
            )
        )
        features.append(model.extract(processed.grid))
    database.set_features(MODEL_NAME, features)
    database.save(path)
    print(f"ingested {len(database)} parts -> {path}")


def query_database(path: Path) -> None:
    """A later session: load the database and search with a new part."""
    database = ObjectDatabase.load(path)
    sets = database.get_features(MODEL_NAME)
    engine = FilterRefineEngine(sets, capacity=7)

    pipeline = Pipeline(resolution=15)
    model = VectorSetModel(k=7)
    rng = np.random.default_rng(123)

    # The "new" part: a bracket the database has never seen, dropped in
    # at an arbitrary 90-degree orientation and position.
    new_part = make_part("bracket", rng, place=False)
    for trial in range(3):
        placed = new_part.solid.transformed(random_placement(rng))
        grid, _ = pipeline.process_solid(placed)
        query_set = model.extract(grid)
        results, stats = engine.knn_query(query_set, 5)
        families = [database[m.object_id].family for m in results]
        print(f"\norientation {trial + 1}: retrieved families = {families} "
              f"(refined {stats.exact_computations}/{len(sets)})")
        assert families.count("bracket") >= 3, "retrieval should find brackets"
    print("\nretrieval is stable across orientations — reuse candidate found.")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "car_parts.npz"
        build_database(path)
        query_database(path)


if __name__ == "__main__":
    main()

"""Array-native index cores: equivalence, zero-copy loads, durability.

The struct-of-arrays cores of :mod:`repro.index.arraycore` promise
*literal* equality with the pointer trees they mirror — same oids, same
``(distance, oid)`` order, bit-identical distances — plus a dense
snapshot container whose mmap-backed load answers its first query
without materializing the tree.  These tests pin each promise:

* ``structure_digest`` of a core's serialized form equals the pointer
  tree's, and ``inflate`` reconstructs an identical tree;
* ``knn_many`` equals per-query ``knn`` across backends, corpora
  (uniform, clustered, duplicate-heavy, box entries) and k values,
  including the degenerate shapes (empty tree, empty batch, k > n);
* zero-copy loads keep O(1) resident copies (every table is a view on
  one shared ``np.memmap``) and survive a fresh subprocess
  byte-for-byte;
* CRC corruption and structural corruption are both caught — by
  ``read_dense_archive(verify=True)`` / ``repro db verify`` and by
  ``check_invariants`` respectively.
"""

from __future__ import annotations

import subprocess
import sys

import numpy as np
import pytest

from repro.db import SimilarityDatabase
from repro.exceptions import IndexError_, SnapshotIntegrityError
from repro.index import MTree, RStarTree, SequentialScan, XTree
from repro.index.arraycore import (
    MTreeArrayCore,
    RTreeArrayCore,
    ScanArrayCore,
    densify,
)
from repro.index.dense import read_dense_archive, write_dense_archive
from repro.index.snapshot import serialize_index, structure_digest

DIM = 4

BACKENDS = {
    "rstar": lambda: RStarTree(DIM, capacity=4),
    "xtree": lambda: XTree(DIM, capacity=4, max_overlap=0.0),
    "scan": lambda: SequentialScan(DIM),
}


def corpus(name: str, rng: np.random.Generator, n: int = 400) -> np.ndarray:
    if name == "uniform":
        return rng.uniform(0.0, 100.0, size=(n, DIM))
    if name == "clustered":
        centers = rng.uniform(0.0, 100.0, size=(8, DIM))
        family = rng.integers(0, len(centers), size=n)
        points = centers[family] + rng.normal(0.0, 4.0, size=(n, DIM))
        points[: n // 20] = rng.uniform(0.0, 100.0, size=(n // 20, DIM))
        return points
    if name == "duplicates":
        base = rng.integers(0, 8, size=(n // 4, DIM)).astype(float)
        return np.repeat(base, 4, axis=0)
    raise AssertionError(name)


def build(backend: str, points: np.ndarray):
    tree = BACKENDS[backend]()
    for oid, point in enumerate(points):
        tree.insert(point, oid)
    return tree


# -- structural equivalence -----------------------------------------------


@pytest.mark.parametrize("backend", sorted(BACKENDS))
def test_digest_and_inflate_roundtrip(backend):
    rng = np.random.default_rng(5)
    tree = build(backend, corpus("clustered", rng))
    core = tree.dense_core()
    core.check_invariants()
    want = structure_digest(tree)
    meta, arrays = core.serialized()
    tree_meta, tree_arrays = serialize_index(tree)
    assert set(arrays) == set(tree_arrays)
    for name in arrays:
        assert np.array_equal(arrays[name], tree_arrays[name]), name
    inflated = core.inflate()
    assert structure_digest(inflated) == want
    if hasattr(inflated, "check_invariants"):
        inflated.check_invariants()


@pytest.mark.parametrize("backend", sorted(BACKENDS))
def test_core_queries_equal_pointer(backend):
    rng = np.random.default_rng(6)
    points = corpus("clustered", rng)
    tree = build(backend, points)
    core = tree.dense_core()
    for query in rng.uniform(0.0, 100.0, size=(10, DIM)):
        assert core.knn(query, 7) == tree.knn(query, 7)
        assert core.range_search(query, 9.0) == tree.range_search(query, 9.0)


# -- batched knn ----------------------------------------------------------


@pytest.mark.parametrize("backend", sorted(BACKENDS))
@pytest.mark.parametrize("name", ["uniform", "clustered", "duplicates"])
def test_knn_many_matches_knn(backend, name):
    rng = np.random.default_rng(7)
    points = corpus(name, rng)
    tree = build(backend, points)
    core = tree.dense_core()
    queries = np.vstack(
        [rng.uniform(0.0, 100.0, size=(12, DIM)), points[:6]]
    )
    for k in (1, 3, 10, 60):
        batched = core.knn_many(queries, k)
        assert batched == [core.knn(q, k) for q in queries]
        assert batched == [tree.knn(q, k) for q in queries]


def test_knn_many_box_entries():
    # Box entries (lo != hi) take the non-point distance path.
    rng = np.random.default_rng(8)
    tree = RStarTree(3, capacity=4)
    for oid in range(200):
        lower = rng.uniform(0.0, 50.0, size=3)
        tree.insert_box(lower, lower + rng.uniform(0.0, 5.0, size=3), oid)
    core = tree.dense_core()
    queries = rng.uniform(0.0, 60.0, size=(10, 3))
    for k in (1, 5, 20):
        assert core.knn_many(queries, k) == [core.knn(q, k) for q in queries]


def test_knn_many_edges():
    rng = np.random.default_rng(9)
    empty = XTree(DIM, capacity=4).dense_core()
    queries = rng.uniform(0.0, 1.0, size=(3, DIM))
    assert empty.knn_many(queries, 5) == [[], [], []]
    assert empty.knn_many(np.empty((0, DIM)), 5) == []
    tiny = build("rstar", rng.uniform(0.0, 1.0, size=(3, DIM)))
    core = tiny.dense_core()
    assert core.knn_many(queries, 10) == [core.knn(q, 10) for q in queries]
    with pytest.raises(IndexError_):
        core.knn_many(queries, 0)
    with pytest.raises(IndexError_):
        core.knn_many(np.zeros((2, DIM + 1)), 1)


def test_knn_many_mtree_parity():
    rng = np.random.default_rng(10)

    def euclidean(a, b):
        return float(np.linalg.norm(np.asarray(a, float) - np.asarray(b, float)))

    tree = MTree(euclidean, capacity=4)
    points = rng.integers(-20, 20, size=(80, DIM)).astype(float)
    for oid, point in enumerate(points):
        tree.insert(point, oid)
    core = tree.dense_core()
    assert isinstance(core, MTreeArrayCore)
    queries = list(rng.integers(-20, 20, size=(5, DIM)).astype(float))
    assert core.knn_many(queries, 6) == [core.knn(q, 6) for q in queries]


def test_knn_many_charges_pages_and_counters():
    from repro import obs
    from repro.obs.metrics import registry

    rng = np.random.default_rng(11)
    tree = build("xtree", corpus("clustered", rng))
    core = tree.dense_core()
    queries = rng.uniform(0.0, 100.0, size=(8, DIM))
    obs.enable()
    try:
        registry().reset()
        before = core.pages.cost.page_accesses
        core.knn_many(queries, 5)
        assert core.pages.cost.page_accesses > before
        batched = registry().counter("index.nodes_batched").value
        assert batched > 0
    finally:
        obs.disable()
        registry().reset()


# -- dense snapshots: zero-copy, durability, verification ------------------


def make_db(n: int = 60, seed: int = 12) -> SimilarityDatabase:
    rng = np.random.default_rng(seed)
    db = SimilarityDatabase(5, backend="xtree")
    for oid in range(n):
        size = int(rng.integers(1, 6))
        db.add(oid, rng.standard_normal((size, 7)))
    return db


def test_dense_load_is_zero_copy(tmp_path):
    db = make_db()
    rng = np.random.default_rng(13)
    query = rng.standard_normal((2, 7))
    want = db.knn_query(query, 5)[0]
    npz_path, dense_path = tmp_path / "db.npz", tmp_path / "db.dense"
    db.save(npz_path)
    db.save(dense_path, dense=True)

    meta, arrays = read_dense_archive(dense_path)
    bases = set()
    for name, array in arrays.items():
        base = array
        while isinstance(base, np.ndarray) and base.base is not None:
            base = base.base
        bases.add(id(base))
        assert not array.flags.writeable, name
    # O(1) resident copies: every table is a view over ONE shared mmap.
    assert len(bases) == 1

    loaded = SimilarityDatabase.load(dense_path)
    # Zero tree rebuild: the index slot holds the array core itself,
    # not a reconstructed pointer tree.
    assert isinstance(loaded._index, RTreeArrayCore)
    assert loaded.knn_query(query, 5)[0] == want
    assert SimilarityDatabase.load(npz_path).knn_query(query, 5)[0] == want


def test_dense_load_subprocess_byte_for_byte(tmp_path):
    db = make_db(seed=14)
    rng = np.random.default_rng(15)
    query = rng.standard_normal((2, 7))
    want = [
        (match.object_id, match.distance.hex())
        for match in db.knn_query(query, 5)[0]
    ]
    dense_path = tmp_path / "db.dense"
    db.save(dense_path, dense=True)
    query_path = tmp_path / "query.npy"
    np.save(query_path, query)
    script = (
        "import sys, numpy as np\n"
        "from repro.db import SimilarityDatabase\n"
        "db = SimilarityDatabase.load(sys.argv[1])\n"
        "query = np.load(sys.argv[2])\n"
        "for match in db.knn_query(query, 5)[0]:\n"
        "    print(match.object_id, match.distance.hex())\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", script, str(dense_path), str(query_path)],
        capture_output=True,
        text=True,
        check=True,
    )
    got = [
        (int(oid), dist)
        for oid, dist in (line.split() for line in proc.stdout.splitlines())
    ]
    assert got == want


def test_mutation_after_zero_copy_load(tmp_path):
    db = make_db(seed=16)
    dense_path = tmp_path / "db.dense"
    db.save(dense_path, dense=True)
    rng = np.random.default_rng(17)
    extra = rng.standard_normal((3, 7))
    query = rng.standard_normal((2, 7))

    loaded = SimilarityDatabase.load(dense_path)
    loaded.add(999, extra)
    db.add(999, extra)
    assert loaded.knn_query(query, 5)[0] == db.knn_query(query, 5)[0]


def test_dense_crc_corruption_detected(tmp_path):
    from repro.cli import main

    db = make_db(seed=18)
    dense_path = tmp_path / "db.dense"
    db.save(dense_path, dense=True)
    assert main(["db", "verify", str(dense_path)]) == 0

    raw = bytearray(dense_path.read_bytes())
    raw[-8] ^= 0xFF  # flip a byte inside the last array block
    dense_path.write_bytes(bytes(raw))
    with pytest.raises(SnapshotIntegrityError):
        read_dense_archive(dense_path, verify=True)
    assert main(["db", "verify", str(dense_path)]) == 1


def test_check_invariants_rejects_corrupt_tables():
    rng = np.random.default_rng(19)
    tree = build("rstar", corpus("uniform", rng, n=120))
    meta, arrays = serialize_index(tree)
    broken = dict(arrays)
    offsets = np.array(broken["entry_offsets"], dtype=np.int64)
    offsets[-1] += 1  # points past the entry tables
    broken["entry_offsets"] = offsets
    with pytest.raises(IndexError_):
        RTreeArrayCore(meta, broken).check_invariants()


def test_dense_roundtrip_preserves_arrays(tmp_path):
    rng = np.random.default_rng(20)
    tree = build("xtree", corpus("clustered", rng, n=150))
    meta, arrays = serialize_index(tree)
    path = tmp_path / "tree.dense"
    write_dense_archive(path, dict(meta, format="test"), arrays)
    got_meta, got_arrays = read_dense_archive(path, "test", verify=True)
    assert set(got_arrays) == set(arrays)
    for name in arrays:
        assert np.array_equal(got_arrays[name], arrays[name]), name
    core = RTreeArrayCore(dict(got_meta, **meta), dict(got_arrays))
    core.check_invariants()
    query = rng.uniform(0.0, 100.0, size=DIM)
    assert core.knn(query, 5) == tree.knn(query, 5)
